"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on environments whose setuptools/pip lack the
PEP 660 editable-wheel machinery (legacy editable installs go through
``setup.py develop``).
"""

from setuptools import setup

setup()
