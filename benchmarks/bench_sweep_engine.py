"""SWEEP — shared-context sweep engine: exactness gate and end-to-end speedup.

Runs the combined THM8+13+15+22 competitive-ratio workload twice: once with
PR-1 style sequential orchestration (fresh solver and private trackers per
run) and once through the shared-context sweep engine (:mod:`repro.exp`), then

* asserts the engine reproduces every pinned PR-1 cost within 1e-6 and agrees
  with the sequential orchestration to 1e-9, and
* records both wall times — plus the PR-1 reference wall time — in
  ``benchmarks/output/BENCH_sweep.json`` so the performance trajectory of the
  sweep path is tracked numerically (wall times are advisory, costs gate).
"""

from repro.bench import PINNED_SWEEP_COSTS, run_sweep_bench

from bench_utils import OUTPUT_DIR, once, result_section, write_result


def test_sweep_engine_combined_workload(benchmark):
    json_path = str(OUTPUT_DIR / "BENCH_sweep.json")
    payload = once(benchmark, run_sweep_bench, json_path=json_path)

    assert payload["max_cost_deviation"] <= payload["tolerance"]
    assert len(PINNED_SWEEP_COSTS) == sum(
        len(exp["rows"]) + len({row["instance"] for row in exp["rows"]})
        for exp in payload["experiments"].values()
    )

    rows = [
        {
            "experiment": name,
            "instance": row["instance"],
            "algorithm": row["algorithm"],
            "cost": round(row["cost"], 4),
            "ratio": round(row["ratio"], 4),
            "seconds": row["elapsed_seconds"],
        }
        for name, experiment in payload["experiments"].items()
        for row in experiment["rows"]
    ]
    timing = [
        {
            "orchestration": "PR-1 reference (pinned)",
            "wall_seconds": payload["pr1_reference"]["wall_seconds"],
            "speedup_vs_pr1": 1.0,
        },
        {
            "orchestration": "sequential (PR-1 style, this machine)",
            "wall_seconds": payload["sequential_wall_seconds"],
            "speedup_vs_pr1": round(
                payload["pr1_reference"]["wall_seconds"] / payload["sequential_wall_seconds"], 2
            ),
        },
        {
            "orchestration": "shared-context engine",
            "wall_seconds": payload["engine_wall_seconds"],
            "speedup_vs_pr1": payload["speedup_vs_pr1"],
        },
    ]
    text = "\n\n".join(
        [
            "Experiment SWEEP — shared-context sweep engine on the combined "
            "THM8+13+15+22 workload",
            result_section("per-run costs and ratios (identical across orchestrations)", rows),
            result_section("wall-time comparison (advisory)", timing),
            f"max cost deviation from pinned PR-1 values: {payload['max_cost_deviation']:.2e} "
            f"(gate: {payload['tolerance']:g})",
        ]
    )
    write_result("SWEEP_engine", text)
