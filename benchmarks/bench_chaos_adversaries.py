"""LB-CHAOS — chaos-family adversaries: interleaved ski rental and the adaptive worst prefix.

PR 6's chaos layer promotes the adversarial constructions to first-class
scenario families; this benchmark regenerates the lower-bound curves against
them.  Two constructions:

* ``interleaved_ski_rental_instance`` — per-type ski-rental pressure woven
  across a heterogeneous fleet: for each type a burst to the cumulative
  capacity through that type, then an idle gap tuned to its break-even
  horizon.  The spiritual equivalent of the companion paper's ``2d``
  interleaving (the exact construction is not in this paper, see DESIGN.md).
* ``adaptive_adversary`` — a greedy worst-prefix search that replays
  Algorithm A from scratch against every candidate extension and keeps the
  one maximising the empirical ratio.  Its ratio history is monotone
  non-decreasing by construction: the adversary never accepts an extension
  that lowers the ratio achieved so far.

Both stay below the proven ``2d+1`` upper bound of Theorem 8 while clearly
exceeding the benign-workload ratios, and both are deterministic — the rows
written to ``LB_chaos_adversaries.txt`` regenerate bit-identically.
"""

import numpy as np

from repro import AlgorithmA, run_online, solve_optimal
from repro.online.adversary import adaptive_adversary, interleaved_ski_rental_instance
from repro.workloads.fleets import cpu_gpu_fleet, single_type_fleet

from bench_utils import once, result_section, write_result


def _run():
    interleaved_rows = []
    for n_cycles in (2, 4, 6):
        inst = interleaved_ski_rental_instance(
            cpu_gpu_fleet(cpu_count=4, gpu_count=2), n_cycles=n_cycles, max_gap=10
        )
        opt = solve_optimal(inst, return_schedule=False).cost
        result = run_online(inst, AlgorithmA())
        interleaved_rows.append(
            {
                "trace": f"interleaved ski d=2, {n_cycles} cycles",
                "T": inst.T,
                "optimal": round(opt, 2),
                "algorithm_A": round(result.cost, 2),
                "ratio": round(result.cost / opt, 3),
                "bound_2d_plus_1": 2 * inst.d + 1,
            }
        )

    adaptive_rows = []
    histories = {}
    for seed in (0, 1, 2):
        res = adaptive_adversary(single_type_fleet(count=3), T=10, candidates=4, seed=seed)
        adaptive_rows.append(
            {
                "seed": seed,
                "T": res.instance.T,
                "offline": round(res.offline_cost, 2),
                "online": round(res.online_cost, 2),
                "ratio": round(res.ratio, 3),
                "bound_2d_plus_1": 2 * res.instance.d + 1,
            }
        )
        histories[seed] = res.ratio_history
    return interleaved_rows, adaptive_rows, histories


def test_chaos_adversary_curves(benchmark):
    interleaved_rows, adaptive_rows, histories = once(benchmark, _run)

    # adversarial pressure is real (ratio > 1) but bounded by Theorem 8
    assert all(1.0 < r["ratio"] <= r["bound_2d_plus_1"] + 1e-6 for r in interleaved_rows)
    assert all(1.0 < r["ratio"] <= r["bound_2d_plus_1"] + 1e-6 for r in adaptive_rows)
    # the greedy prefix search never accepts a ratio-lowering extension
    for history in histories.values():
        assert all(b >= a - 1e-9 for a, b in zip(history, history[1:]))
    # determinism: the same seed regenerates the same curve
    again = adaptive_adversary(single_type_fleet(count=3), T=10, candidates=4, seed=0)
    assert again.ratio_history == histories[0]

    history_lines = "\n".join(
        f"  seed {seed}: " + " -> ".join(f"{r:.3f}" for r in history)
        for seed, history in sorted(histories.items())
    )
    text = "\n\n".join(
        [
            "Experiment LB-CHAOS — chaos-family adversaries vs Algorithm A (bound 2d+1, Thm 8)",
            result_section("interleaved ski rental across a CPU+GPU fleet (chaos-interleaved-ski)", interleaved_rows),
            result_section("adaptive worst-prefix adversary (chaos-adaptive)", adaptive_rows),
            "Adaptive ratio histories (monotone: the adversary keeps the worst prefix found)\n" + history_lines,
        ]
    )
    write_result("LB_chaos_adversaries", text)
