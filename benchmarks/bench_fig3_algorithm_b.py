"""FIG3 — Figure 3: behaviour of online Algorithm B with time-dependent idle costs.

Figure 3 prints an explicit example for one server type with ``beta_j = 6``:

* idle operating costs   l_{t,j} = 3 1 4 1 2 1 1 2 3 5 1 3,
* prefix optima          \\hat x^t_{t,j} = 1 2 1 3 0 0 1 2 0 0 0 0,
* resulting runtimes     \\bar t_{t,j} = 3 2 4 4 3 3 2 1 2 (for t = 1..9),
* retirement sets        W_5 = {1,2}, W_8 = {3}, W_9 = {4,5}, W_10 = {6,7,8}, W_12 = {9}.

This benchmark replays exactly those series through Algorithm B and reports the
regenerated runtimes, W_t sets and the x^B series, checking them against the
numbers printed in the paper.
"""

import numpy as np

from repro import ConstantCost, ProblemInstance, ServerType, run_online
from repro.analysis import step_plot
from repro.core.cost_functions import ScaledCost
from repro.online import AlgorithmB, FixedSequenceTracker, compute_retirement_sets, compute_runtimes

from bench_utils import once, result_section, write_result

FIG3_IDLE = np.array([3, 1, 4, 1, 2, 1, 1, 2, 3, 5, 1, 3], dtype=float)
FIG3_XHAT = np.array([1, 2, 1, 3, 0, 0, 1, 2, 0, 0, 0, 0])
FIG3_BETA = 6.0
PAPER_RUNTIMES = [3, 2, 4, 4, 3, 3, 2, 1, 2]
PAPER_W_SETS = {5: [1, 2], 8: [3], 9: [4, 5], 10: [6, 7, 8], 12: [9]}


def _instance():
    base = ConstantCost(level=1.0)
    types = (ServerType("fig3", count=3, switching_cost=FIG3_BETA, capacity=1.0, cost_function=base),)
    table = tuple((ScaledCost(base, float(l)),) for l in FIG3_IDLE)
    return ProblemInstance(types, np.zeros(len(FIG3_IDLE)), cost_functions=table, name="figure-3")


def _run():
    runtimes = compute_runtimes(FIG3_IDLE, FIG3_BETA)
    w_sets = compute_retirement_sets(FIG3_IDLE, FIG3_BETA)
    algo = AlgorithmB(tracker=FixedSequenceTracker(FIG3_XHAT))
    result = run_online(_instance(), algo)
    return runtimes, w_sets, algo, result


def test_fig3_algorithm_b_trace(benchmark):
    runtimes, w_sets, algo, result = once(benchmark, _run)

    assert list(runtimes[:9]) == PAPER_RUNTIMES
    regenerated_w = {t + 1: [u + 1 for u in us] for t, us in enumerate(w_sets) if us}
    assert regenerated_w == PAPER_W_SETS
    x_b = result.schedule.x[:, 0]
    assert np.all(x_b >= FIG3_XHAT)

    rows = [
        {
            "t": t + 1,
            "l_t": int(FIG3_IDLE[t]),
            "xhat_t": int(FIG3_XHAT[t]),
            "bar_t": int(runtimes[t]) if t < 9 else "-",
            "W_t": "{" + ",".join(str(u + 1) for u in w_sets[t]) + "}" if w_sets[t] else "{}",
            "x_B_t": int(x_b[t]),
        }
        for t in range(len(FIG3_IDLE))
    ]
    text = "\n\n".join(
        [
            "Experiment FIG3 — Figure 3 (Algorithm B, beta_j = 6, time-dependent idle costs)",
            result_section("per-slot series (paper values regenerated exactly)", rows),
            step_plot(x_b, title="Algorithm B active servers x^B_{t,j}"),
            f"paper runtimes  : {PAPER_RUNTIMES}",
            f"measured        : {list(runtimes[:9])}",
            f"paper W_t sets  : {PAPER_W_SETS}",
            f"measured        : {regenerated_w}",
        ]
    )
    write_result("FIG3_algorithm_b", text)
