"""FIG2 — Figure 2: blocks ``A_{j,i}`` and special time slots ``tau_{j,k}``.

Figure 2 shows seven blocks of one server type and the three special time
slots constructed in reverse; the resulting index sets are
``B_{j,1} = {1,2}``, ``B_{j,2} = {3,4}``, ``B_{j,3} = {5,6,7}`` and consecutive
special slots are at least ``\\bar t_j`` apart.  This benchmark rebuilds that
decomposition and verifies the partition property the competitive analysis
relies on (each block contains exactly one special slot).
"""

from repro.online.blocks import block_index_sets, blocks_from_power_ups, special_slots, verify_partition

from bench_utils import once, result_section, write_result

# Power-up slots chosen so that the reverse construction yields exactly the
# figure's grouping {1,2}, {3,4}, {5,6,7} (0-based slots below, bar_t = 4).
FIG2_POWER_UPS = [0, 1, 5, 6, 10, 11, 12]
FIG2_RUNTIME = 4


def _run():
    blocks = blocks_from_power_ups(FIG2_POWER_UPS, [FIG2_RUNTIME] * len(FIG2_POWER_UPS))
    taus = special_slots(blocks)
    sets = block_index_sets(blocks)
    return blocks, taus, sets


def test_fig2_block_decomposition(benchmark):
    blocks, taus, sets = once(benchmark, _run)

    assert verify_partition(blocks)
    assert len(taus) == 3
    assert [sorted(i + 1 for i in s) for s in sets] == [[1, 2], [3, 4], [5, 6, 7]]
    assert all(b - a >= FIG2_RUNTIME for a, b in zip(taus, taus[1:]))

    rows = [
        {"block": i + 1, "start": b.start + 1, "end": b.end + 1, "length": b.length,
         "contains_tau": next(k + 1 for k, tau in enumerate(taus) if tau in b)}
        for i, b in enumerate(blocks)
    ]
    text = "\n\n".join(
        [
            "Experiment FIG2 — Figure 2 (blocks and special time slots, bar_t_j = 4)",
            result_section("blocks A_(j,i)", rows),
            f"special slots tau_(j,k) (1-based): {[t + 1 for t in taus]}",
            f"index sets B_(j,k): {[[i + 1 for i in s] for s in sets]}   (paper: [1,2], [3,4], [5,6,7])",
            f"partition property (each block contains exactly one tau): {verify_partition(blocks)}",
        ]
    )
    write_result("FIG2_blocks", text)
