"""LB-CHASE — the Omega(2^d / d) lower bound for general convex function chasing.

Section 1 of the paper explains why it restricts attention to operating costs
of the load-dispatch form (1): for *arbitrary* convex per-slot functions in the
discrete setting, an adversary on the hypercube {0,1}^d (penalising the online
algorithm's current position every slot) forces online switching cost at least
``2^d - 1`` while the offline optimum pays at most ``d``.  This benchmark plays
the game for ``d = 2..6`` and regenerates the exponential-ratio series.
"""

from repro.online.adversary import convex_chasing_game

from bench_utils import once, result_section, write_result


def _run():
    rows = []
    for d in (2, 3, 4, 5, 6):
        game = convex_chasing_game(d)
        rows.append(
            {
                "d": d,
                "steps": 2**d - 1,
                "online_cost": round(game.online_cost, 1),
                "offline_cost": round(game.offline_cost, 1),
                "ratio": round(game.ratio, 2),
                "paper_lower_bound_2^d/d": round(2**d / (2 * d), 2),
            }
        )
    return rows


def test_lb_convex_chasing_exponential_ratio(benchmark):
    rows = once(benchmark, _run)
    # offline pays at most d, online pays Omega(2^d): the ratio grows exponentially
    assert all(row["offline_cost"] <= row["d"] + 1e-9 for row in rows)
    ratios = [row["ratio"] for row in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] >= rows[-1]["paper_lower_bound_2^d/d"]
    text = "\n\n".join(
        [
            "Experiment LB-CHASE — exponential lower bound for general convex function chasing (Section 1)",
            result_section("hypercube chasing game, m_j = 1, beta_j = 1", rows),
            "The measured ratio grows exponentially in d, matching the paper's argument that "
            "general convex functions admit no competitive algorithm — and motivating the "
            "restriction to load-dispatch operating costs, for which Algorithms A/B/C achieve "
            "ratios linear in d.",
        ]
    )
    write_result("LB_CHASE_convex_chasing", text)
