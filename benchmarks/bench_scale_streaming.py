"""SCALE — streaming DP core: checkpointed O(sqrt(T))-memory backtracking.

Runs the large-scale scenario suite (:mod:`repro.workloads.scale`) through the
streaming value pass of :func:`repro.offline.dp.solve_dp` and

* **gates** on exactness: on every ``compare`` scenario the streaming schedule
  must be bit-identical to ``keep_tables=True`` and its cost equal to 1e-9,
* measures wall time and peak memory (tracemalloc + process RSS) for the
  streaming forward pass, the end-to-end streaming solve, the float32 value
  stream and — where it is still payable — the classic all-tables pass, and
* records everything in ``benchmarks/output/BENCH_scale.json`` plus a
  human-readable ``SCALE_streaming.txt``, documenting the projected all-tables
  footprint of the instances the seed code cannot fit (long-horizon
  ``T = 5 * 10^4`` full grids, ``d = 4`` fleets with ``m_j = 10^4`` on
  geometric grids).

Run directly (``python benchmarks/bench_scale_streaming.py``) for the full
suite without the pytest-benchmark harness, or through ``make bench`` /
``pytest --benchmark-only`` like the other experiments (quick suite by
default; set ``BENCH_SCALE_FULL=1`` for the headline sizes).
"""

import os

from repro.bench import run_scale_bench

from bench_utils import OUTPUT_DIR, once, result_section, write_result


def _report(payload: dict) -> str:
    rows = [
        {
            "instance": row["instance"],
            "mode": row["mode"],
            "T": row["T"],
            "d": row["d"],
            "states": row["grid_states"],
            "k": row.get("checkpoint_every"),
            "seconds": row["wall_seconds"],
            "peak_mb": row["tracemalloc_peak_mb"],
            "projected_mb": row["table_history_projected_mb"],
            "rss_mb": row["rss_peak_mb"],
            "cost": None if row.get("cost") is None else round(row["cost"], 2),
        }
        for row in payload["rows"]
    ]
    comparisons = [
        {
            "instance": row["instance"],
            "memory_ratio": row["memory_ratio"],
            "stream_vs_forward": row["stream_wall_vs_forward"],
            "stream_vs_tables": row["stream_wall_vs_tables"],
            "cost_deviation": f"{row['cost_deviation']:.2e}",
            "schedules_identical": row["schedules_identical"],
        }
        for row in payload["comparisons"]
    ]
    sections = [
        "Experiment SCALE — streaming DP core (checkpointed backtracking) on "
        "long-horizon / big-fleet workloads",
        result_section("per-run wall time and peak memory", rows),
        result_section("streaming vs all-tables (gated: equality at 1e-9)", comparisons),
        "keep-tables-projected rows document the all-tables footprint that is "
        "*not* paid: value-table history alone at T*|M|*8 bytes, OOM-or-worse "
        "on typical 4-8 GB runners (the seed code additionally materialised "
        "O(T*|M|*d) dispatch load blocks).",
    ]
    runs = payload.get("runs") or []
    if len(runs) >= 2:
        from repro.bench import trend_deltas

        deltas = trend_deltas(runs)
        delta_text = (
            ", ".join(f"{key} {value:+g}" for key, value in deltas.items())
            if deltas
            else "no shared numeric fields"
        )
        sections.append(
            "trend vs previous recorded run "
            f"({runs[-2]['recorded_at']} -> {runs[-1]['recorded_at']}, "
            f"{len(runs)} run(s) in the BENCH_scale.json series; wall-time "
            f"deltas are advisory, machines differ): {delta_text}"
        )
    return "\n\n".join(sections)


def test_scale_streaming(benchmark):
    full = bool(int(os.environ.get("BENCH_SCALE_FULL", "0")))
    # the quick gate writes its own artifact so a default `make bench` run
    # does not clobber the committed headline (full-suite) BENCH_scale.json
    json_name = "BENCH_scale.json" if full else "BENCH_scale_quick.json"
    payload = once(benchmark, run_scale_bench, full=full, json_path=str(OUTPUT_DIR / json_name))

    assert payload["comparisons"], "suite must contain at least one gated comparison"
    for row in payload["comparisons"]:
        assert row["schedules_identical"]
        assert row["cost_deviation"] <= payload["tolerance"]

    if full:
        write_result("SCALE_streaming", _report(payload))


if __name__ == "__main__":
    payload = run_scale_bench(full=True, json_path=str(OUTPUT_DIR / "BENCH_scale.json"))
    report = _report(payload)
    write_result("SCALE_streaming", report)
    print(report)
    print(f"\nwrote {OUTPUT_DIR / 'BENCH_scale.json'}")
