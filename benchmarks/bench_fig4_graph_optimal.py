"""FIG4 — Figure 4: the layered graph ``G(I)`` and the optimal schedule as a shortest path.

Figure 4 draws the graph for ``d = 2`` server types, ``T = 2`` slots and
``m = (2, 1)`` servers (24 vertices) and highlights a shortest path that
corresponds to the optimal schedule ``x_1 = (2, 0)``, ``x_2 = (1, 1)``.

This benchmark constructs an instance with those dimensions whose optimum
matches the figure's highlighted path, builds the explicit graph, runs both
the networkx shortest-path query and the vectorised DP, and checks that they
agree (and reproduce the figure's schedule).
"""

import numpy as np

from repro import ConstantCost, ProblemInstance, ServerType, solve_optimal
from repro.offline import build_graph, shortest_path_schedule

from bench_utils import once, result_section, write_result


def _instance():
    """d=2, T=2, m=(2,1): chosen so the optimum is x_1=(2,0), x_2=(1,1) as in Figure 4.

    With load-independent costs the path comparison is transparent:
    ``(2,0) -> (1,1)`` costs ``2*beta_1 + beta_2 + 3*c_1 + c_2 = 10.5``,
    ``(0,1) -> (1,1)`` costs ``beta_1 + beta_2 + c_1 + 2*c_2 = 11`` and
    ``(1,1) -> (1,1)`` costs ``beta_1 + beta_2 + 2*(c_1 + c_2) = 12``,
    so the figure's highlighted path is the unique optimum.
    """
    types = (
        ServerType("type-1", count=2, switching_cost=1.0, capacity=1.0,
                   cost_function=ConstantCost(level=1.0)),
        ServerType("type-2", count=1, switching_cost=2.0, capacity=2.0,
                   cost_function=ConstantCost(level=3.5)),
    )
    demand = np.array([2.0, 3.0])
    return ProblemInstance(types, demand, name="figure-4")


def _run():
    instance = _instance()
    graph = build_graph(instance)
    nx_schedule, nx_cost = shortest_path_schedule(instance)
    dp = solve_optimal(instance)
    return instance, graph, nx_schedule, nx_cost, dp


def test_fig4_graph_and_shortest_path(benchmark):
    instance, graph, nx_schedule, nx_cost, dp = once(benchmark, _run)

    # 2 * T * prod_j (m_j + 1) vertices, as in the figure
    assert graph.number_of_nodes() == 2 * 2 * 3 * 2
    assert abs(nx_cost - dp.cost) <= 1e-6 * max(1.0, dp.cost)
    assert nx_schedule.same_as(dp.schedule)
    # the figure's highlighted optimal schedule
    assert tuple(dp.schedule.x[0]) == (2, 0)
    assert tuple(dp.schedule.x[1]) == (1, 1)

    rows = [
        {"slot": t + 1, "x_type1": int(dp.schedule.x[t, 0]), "x_type2": int(dp.schedule.x[t, 1])}
        for t in range(instance.T)
    ]
    text = "\n\n".join(
        [
            "Experiment FIG4 — Figure 4 (graph G(I), d=2, T=2, m=(2,1))",
            f"vertices: {graph.number_of_nodes()} (paper: 2*T*prod(m_j+1) = 24), "
            f"edges: {graph.number_of_edges()}",
            result_section("optimal schedule (paper: x_1=(2,0), x_2=(1,1))", rows),
            f"shortest-path cost (networkx): {nx_cost:.6f}",
            f"dynamic-program cost          : {dp.cost:.6f}",
        ]
    )
    write_result("FIG4_graph_optimal", text)
