"""THM15 — Theorem 15: Algorithm C achieves ``2d + 1 + eps`` via sub-slot refinement.

Algorithm C splits every slot into ``n_t = ceil(d/eps * max_j l_{t,j}/beta_j)``
sub-slots, runs Algorithm B on the refined instance and repairs the schedule
(Lemma 14).  This benchmark sweeps ``eps`` on a priced workload, reports the
measured ratios, the refinement counts and the comparison with plain
Algorithm B, and checks every run against its bound ``2d + 1 + eps``.

All four runs share one engine context: B reads the shared prefix-DP value
stream, and C's sub-slot trackers reuse the shared per-slot grid tensors
(scaled by ``1/n_t``) instead of re-querying dispatch.  The plan addresses
the instance declaratively (:func:`repro.bench.thm15_spec`, a
``priced-cpu-gpu`` registry spec) and materialises it lazily.
"""

from repro.bench import thm15_instance, thm15_spec
from repro.exp import SweepPlan, run_plan, spec

from bench_utils import once, result_section, write_result


def _run():
    instance = thm15_instance()
    report = run_plan(
        SweepPlan(
            scenarios=(thm15_spec(),),
            algorithms=(
                spec("B"),
                spec("C", epsilon=1.0),
                spec("C", epsilon=0.5),
                spec("C", epsilon=0.25),
            ),
        )
    )
    assert all(r.instance == instance.name for r in report.records)
    opt = report.records[0].optimal_cost

    rows = []
    for record in report.records:
        is_b = record.algorithm == "algorithm-B"
        rows.append(
            {
                "algorithm": "B (reference)" if is_b else "C",
                "eps": "-" if is_b else record.extras["epsilon"],
                "mean_sub_slots": 1.0 if is_b else round(record.extras["mean_sub_slots"], 2),
                "cost": round(record.cost, 2),
                "ratio": round(record.ratio, 4),
                "bound": round(record.bound, 3),
                "within_bound": bool(record.within_bound),
            }
        )
    return instance, opt, rows


def test_thm15_algorithm_c_competitive_ratio(benchmark):
    instance, opt, rows = once(benchmark, _run)
    assert all(row["within_bound"] for row in rows)
    text = "\n\n".join(
        [
            "Experiment THM15 — Theorem 15 (Algorithm C, sub-slot refinement)",
            f"instance: {instance.name}, T={instance.T}, d={instance.d}, "
            f"c(I)={instance.c_constant():.3f}, OPT={opt:.2f}",
            result_section("Algorithm B vs. Algorithm C for shrinking eps", rows),
            "Shrinking eps increases the refinement counts n_t while the bound "
            "2d + 1 + eps approaches the time-independent guarantee 2d + 1.",
        ]
    )
    write_result("THM15_algorithm_c_ratio", text)
