"""THM15 — Theorem 15: Algorithm C achieves ``2d + 1 + eps`` via sub-slot refinement.

Algorithm C splits every slot into ``n_t = ceil(d/eps * max_j l_{t,j}/beta_j)``
sub-slots, runs Algorithm B on the refined instance and repairs the schedule
(Lemma 14).  This benchmark sweeps ``eps`` on a priced workload, reports the
measured ratios, the refinement counts and the comparison with plain
Algorithm B, and checks every run against its bound ``2d + 1 + eps``.
"""

import numpy as np

from repro import AlgorithmB, AlgorithmC, run_online, solve_optimal
from repro.dispatch import DispatchSolver

from bench_utils import once, priced_instance, result_section, write_result


def _run():
    instance = priced_instance(T=30)
    dispatcher = DispatchSolver(instance)
    opt = solve_optimal(instance, dispatcher=dispatcher, return_schedule=False).cost
    b_result = run_online(instance, AlgorithmB(), dispatcher=dispatcher)

    rows = [
        {
            "algorithm": "B (reference)",
            "eps": "-",
            "mean_sub_slots": 1.0,
            "cost": round(b_result.cost, 2),
            "ratio": round(b_result.cost / opt, 4),
            "bound": round(2 * instance.d + 1 + instance.c_constant(), 3),
            "within_bound": b_result.cost <= (2 * instance.d + 1 + instance.c_constant()) * opt + 1e-6,
        }
    ]
    for eps in (1.0, 0.5, 0.25):
        algo = AlgorithmC(epsilon=eps)
        result = run_online(instance, algo, dispatcher=dispatcher)
        bound = 2 * instance.d + 1 + eps
        rows.append(
            {
                "algorithm": "C",
                "eps": eps,
                "mean_sub_slots": round(float(np.mean(algo.sub_slot_counts)), 2),
                "cost": round(result.cost, 2),
                "ratio": round(result.cost / opt, 4),
                "bound": round(bound, 3),
                "within_bound": result.cost <= bound * opt + 1e-6,
            }
        )
    return instance, opt, rows


def test_thm15_algorithm_c_competitive_ratio(benchmark):
    instance, opt, rows = once(benchmark, _run)
    assert all(row["within_bound"] for row in rows)
    text = "\n\n".join(
        [
            "Experiment THM15 — Theorem 15 (Algorithm C, sub-slot refinement)",
            f"instance: {instance.name}, T={instance.T}, d={instance.d}, "
            f"c(I)={instance.c_constant():.3f}, OPT={opt:.2f}",
            result_section("Algorithm B vs. Algorithm C for shrinking eps", rows),
            "Shrinking eps increases the refinement counts n_t while the bound "
            "2d + 1 + eps approaches the time-independent guarantee 2d + 1.",
        ]
    )
    write_result("THM15_algorithm_c_ratio", text)
