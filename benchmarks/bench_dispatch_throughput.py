"""SCALE — engineering microbenchmarks: dispatch solver and DP throughput.

Not a paper artifact, but the quantity that makes the reproduction practical:
the offline DP evaluates ``g_t(x)`` for every grid vertex per slot, so the
batched dual-bisection dispatcher and the separable min-plus transition are
the two hot loops.  These benchmarks track their throughput so performance
regressions are visible, and emit machine-readable ``BENCH_dispatch.json`` /
``BENCH_dp.json`` files (wall time, states explored, cache-hit rate) for the
perf-trajectory record.
"""

import numpy as np

from repro import ProblemInstance, QuadraticCost, LinearCost, ServerType, solve_optimal
from repro.dispatch import DispatchSolver
from repro.offline import StateGrid
from repro.offline.transitions import transition
from repro.workloads import diurnal_trace

from bench_utils import result_section, timed, write_bench_json, write_result


def _instance(m=(30, 10), T=16):
    types = (
        ServerType("a", count=m[0], switching_cost=5.0, capacity=1.0,
                   cost_function=QuadraticCost(idle=0.5, a=0.2, b=0.8)),
        ServerType("b", count=m[1], switching_cost=10.0, capacity=3.0,
                   cost_function=LinearCost(idle=1.0, slope=0.6)),
    )
    peak = 0.8 * (m[0] + 3 * m[1])
    return ProblemInstance(types, diurnal_trace(T, period=T // 2, base=peak / 6, peak=peak, noise=0.0))


def test_dispatch_grid_throughput(benchmark):
    """Vectorised evaluation of g_t(x) over a full 31x11 grid (warm engine)."""
    instance = _instance()
    solver = DispatchSolver(instance)
    grid = StateGrid.full(instance.m)
    configs = grid.configs()

    def run():
        costs, _ = solver.solve_grid(4, configs)
        return costs

    costs = benchmark(run)
    assert np.isfinite(costs).sum() > 0
    write_result(
        "SCALE_dispatch_throughput",
        f"grid of {len(configs)} configurations evaluated per call "
        f"(finite costs: {int(np.isfinite(costs).sum())})",
    )

    # ---- machine-readable record: cold block solve vs. warm (memoised) query
    cold_solver = DispatchSolver(instance)
    (block_costs, _), cold_seconds = timed(
        lambda: cold_solver.solve_block(range(instance.T), configs)
    )
    cold_stats = cold_solver.stats.snapshot()
    _, warm_seconds = timed(lambda: cold_solver.solve_block(range(instance.T), configs))
    warm_stats = cold_solver.stats.snapshot()
    write_bench_json(
        "dispatch",
        {
            "workload": {"T": instance.T, "configs": len(configs), "d": instance.d},
            "cold_block_seconds": round(cold_seconds, 6),
            "warm_block_seconds": round(warm_seconds, 6),
            "single_grid_call_seconds_mean": float(benchmark.stats.stats.mean)
            if benchmark.stats is not None else None,
            "unique_slots_solved": cold_stats["unique_solves"],
            "bisection_iterations": cold_stats["bisection_iterations"],
            "cache_hit_rate_after_warm_pass": warm_stats["cache_hit_rate"],
            "finite_costs": int(np.isfinite(block_costs).sum()),
        },
    )


def test_transition_throughput(benchmark):
    """Separable min-plus transition on a 101x41 value tensor."""
    rng = np.random.default_rng(0)
    values = [np.arange(101), np.arange(41)]
    tensor = rng.uniform(0, 100, size=(101, 41))
    beta = [3.0, 7.0]

    result = benchmark(lambda: transition(tensor, values, values, beta))
    assert result.shape == tensor.shape
    assert np.all(result <= tensor + 1e-12)


def test_offline_solver_end_to_end(benchmark):
    """Full exact solve of a 31x11-state, 16-slot instance."""
    instance = _instance()

    result = benchmark.pedantic(
        lambda: solve_optimal(instance, return_schedule=True), rounds=1, iterations=1
    )
    assert result.schedule.is_feasible(instance)
    rows = [{
        "states_per_slot": result.grids[0].size,
        "slots": instance.T,
        "total_cost": round(result.cost, 2),
    }]
    write_result("SCALE_offline_solver", result_section("end-to-end exact solve", rows))
