"""FIG5 — Figure 5: the X' rounding construction of Theorem 16.

Figure 5 shows, for ``gamma = 2`` and ``m_j = 10`` (allowed states
``M^gamma_j = {0, 1, 2, 4, 8, 10}``), how the schedule ``X'`` tracks an optimal
schedule ``X*`` while staying between ``x*`` and ``(2 gamma - 1) x* = 3 x*``
and only changing its value when the invariant would break.

This benchmark re-creates the trajectory for the optimal schedule drawn in the
figure, verifies the invariant slot by slot, and confirms the cost bound
``C(X') <= (2 gamma - 1) C(X*)`` on an instance realising that reference
schedule.
"""

import numpy as np

from repro import ProblemInstance, QuadraticCost, Schedule, ServerType, total_cost
from repro.analysis import step_plot
from repro.offline import StateGrid, round_schedule_to_grid, rounding_invariant_holds

from bench_utils import once, result_section, write_result

GAMMA = 2.0
# The red X* trajectory of Figure 5 (17 slots, values up to m_j = 10).
FIG5_XSTAR = np.array([3, 3, 5, 9, 9, 6, 3, 1, 1, 2, 5, 2, 1, 0, 0, 1, 3])


def _instance():
    types = (
        ServerType("fig5", count=10, switching_cost=4.0, capacity=1.0,
                   cost_function=QuadraticCost(idle=0.5, a=0.2, b=0.5)),
    )
    demand = FIG5_XSTAR.astype(float)  # x* exactly covers the demand
    return ProblemInstance(types, demand, name="figure-5")


def _run():
    grid = StateGrid.geometric([10], GAMMA)
    reference = Schedule(FIG5_XSTAR[:, None])
    rounded = round_schedule_to_grid(reference, grid, GAMMA)
    return grid, reference, rounded


def test_fig5_rounding_construction(benchmark):
    grid, reference, rounded = once(benchmark, _run)

    assert list(grid.values[0]) == [0, 1, 2, 4, 8, 10]
    assert rounding_invariant_holds(reference, rounded, GAMMA)

    instance = _instance()
    ref_cost = total_cost(instance, reference)
    rounded_cost = total_cost(instance, rounded)
    assert rounded_cost <= (2 * GAMMA - 1) * ref_cost + 1e-6

    rows = [
        {
            "t": t + 1,
            "x_star": int(reference.x[t, 0]),
            "upper_(2g-1)x*": int((2 * GAMMA - 1) * reference.x[t, 0]),
            "x_prime": int(rounded.x[t, 0]),
            "on_grid": bool(grid.contains(rounded.x[t])),
        }
        for t in range(reference.T)
    ]
    text = "\n\n".join(
        [
            "Experiment FIG5 — Figure 5 (X' construction, gamma = 2, m_j = 10)",
            f"allowed states M^gamma_j = {list(grid.values[0])} (paper: 0,1,2,4,8,10)",
            result_section("trajectory (invariant x* <= x' <= 3 x*)", rows),
            step_plot(reference.x[:, 0], title="optimal schedule X* (red line in Figure 5)"),
            step_plot(rounded.x[:, 0], title="rounded schedule X' (green line in Figure 5)"),
            f"C(X*) = {ref_cost:.3f},  C(X') = {rounded_cost:.3f},  "
            f"ratio = {rounded_cost / ref_cost:.3f}  <=  2*gamma - 1 = {2 * GAMMA - 1:.1f}",
        ]
    )
    write_result("FIG5_rounding", text)
