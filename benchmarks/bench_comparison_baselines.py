"""COMP — comparison of the paper's algorithms against related-work baselines.

The paper positions Algorithms A/B/C against (i) the homogeneous LCP line of
work of Lin et al., (ii) fractional convex-chasing algorithms such as Online
Balanced Descent, and (iii) the trivial always-on / purely reactive policies
its introduction argues against.  This benchmark runs them all on a shared
workload suite and regenerates the qualitative picture:

* right-sizing (A/B) clearly beats keeping the whole fleet on,
* the heterogeneous algorithms match LCP on homogeneous inputs,
* naive rounding of the fractional OBD trajectory inflates the switching cost.

The workloads are addressed through the scenario registry (``diurnal-cpu-gpu``
and ``homogeneous`` specs) — the fleet/trace wiring this file used to inline
lives in :mod:`repro.scenarios.families`, and each record carries its spec.
"""

import numpy as np

from repro import total_cost
from repro.exp import SharedInstanceContext, run_instance, spec
from repro.online import optimal_static_schedule, receding_horizon_schedule, round_up, run_obd
from repro.scenarios import ScenarioSpec, build as build_scenario

from bench_utils import once, result_section, write_result


def _compare_on(scenario, include_lcp=False):
    # One shared context serves every online run (A/B and the LCP trackers
    # read one prefix-DP value stream), the offline optimum *and* the
    # static/receding-horizon baselines below, which reuse its dispatcher.
    instance = build_scenario(scenario)
    context = SharedInstanceContext(instance)
    specs = [spec("A"), spec("B"), spec("reactive"), spec("follow-demand"), spec("all-on")]
    if include_lcp:
        specs.insert(2, spec("lcp"))
    records = run_instance(instance, algorithms=specs, context=context, scenario=scenario)
    assert all(r.scenario["scenario"] == scenario.name for r in records)
    opt = context.optimal_cost()
    dispatcher = context.dispatcher
    rows = []
    for record in records:
        rows.append(
            {
                "algorithm": record.algorithm,
                "cost": round(record.cost, 2),
                "ratio_vs_opt": round(record.ratio, 3),
                "switching_share": round(record.breakdown["switching"] / record.cost, 3),
            }
        )

    static = optimal_static_schedule(instance, dispatcher=dispatcher)
    rows.append(
        {
            "algorithm": "optimal-static (offline)",
            "cost": round(total_cost(instance, static, dispatcher), 2),
            "ratio_vs_opt": round(total_cost(instance, static, dispatcher) / opt, 3),
            "switching_share": 0.0,
        }
    )
    horizon = receding_horizon_schedule(instance, lookahead=4, dispatcher=dispatcher)
    rows.append(
        {
            "algorithm": "receding-horizon(4) (semi-online)",
            "cost": round(total_cost(instance, horizon, dispatcher), 2),
            "ratio_vs_opt": round(total_cost(instance, horizon, dispatcher) / opt, 3),
            "switching_share": round(
                horizon.switching_cost(instance) / total_cost(instance, horizon, dispatcher), 3
            ),
        }
    )
    rows.append({"algorithm": "offline optimum", "cost": round(opt, 2), "ratio_vs_opt": 1.0, "switching_share": "-"})
    return instance, opt, rows


def _obd_rows(scenario):
    instance = build_scenario(scenario)
    context = SharedInstanceContext(instance)
    dispatcher = context.dispatcher
    opt = context.optimal_cost()
    fractional = run_obd(instance, dispatcher=dispatcher)
    rounded = round_up(fractional, instance)
    rounded_cost = total_cost(instance, rounded, dispatcher)
    return instance, [
        {
            "algorithm": "OBD (fractional relaxation)",
            "cost": round(fractional.cost, 2),
            "ratio_vs_opt": round(fractional.cost / opt, 3),
            "switching_share": round(fractional.total_switching / fractional.cost, 3),
        },
        {
            "algorithm": "OBD rounded up (integral)",
            "cost": round(rounded_cost, 2),
            "ratio_vs_opt": round(rounded_cost / opt, 3),
            "switching_share": round(rounded.switching_cost(instance) / rounded_cost, 3),
        },
    ]


def _run():
    hetero, _, hetero_rows = _compare_on(ScenarioSpec("diurnal-cpu-gpu", {"T": 36}))
    homog, _, homog_rows = _compare_on(ScenarioSpec("homogeneous", {"T": 36}), include_lcp=True)
    obd_instance, obd_rows = _obd_rows(ScenarioSpec("diurnal-cpu-gpu", {"T": 20}, seed=4))
    return (hetero, hetero_rows), (homog, homog_rows), (obd_instance, obd_rows)


def test_comparison_against_baselines(benchmark):
    (hetero, hetero_rows), (homog, homog_rows), (obd_instance, obd_rows) = once(benchmark, _run)

    by_name = {row["algorithm"]: row for row in hetero_rows}
    assert by_name["algorithm-A"]["ratio_vs_opt"] < by_name["all-on"]["ratio_vs_opt"]
    assert by_name["algorithm-A"]["ratio_vs_opt"] <= 2 * hetero.d + 1

    homog_by_name = {row["algorithm"]: row for row in homog_rows}
    assert homog_by_name["LCP"]["ratio_vs_opt"] <= 3.0 + 1e-6
    assert homog_by_name["algorithm-A"]["ratio_vs_opt"] <= 3.0 + 1e-6

    text = "\n\n".join(
        [
            "Experiment COMP — comparison with baselines",
            result_section(
                f"heterogeneous CPU+GPU fleet, diurnal workload (T={hetero.T}, d={hetero.d})", hetero_rows
            ),
            result_section(
                f"homogeneous fleet (T={homog.T}, d=1) — LCP line of work applies here", homog_rows
            ),
            result_section(
                f"fractional OBD vs. naive rounding (T={obd_instance.T})", obd_rows
            ),
        ]
    )
    write_result("COMP_baselines", text)
