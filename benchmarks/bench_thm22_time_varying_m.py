"""THM22 — Theorem 22 / Section 4.3: time-dependent data-center sizes.

Section 4.3 extends both the optimal algorithm and the (1+eps)-approximation to
fleets whose size changes over time (expansion with new servers, maintenance
windows).  This benchmark builds a scenario with a maintenance window and a
fleet expansion, solves it exactly and approximately, verifies feasibility
against the per-slot limits and the approximation bound, and reports the
regenerated schedule summary.
"""

import numpy as np

from repro import ProblemInstance, solve_approx, solve_optimal
from repro.dispatch import DispatchSolver
from repro.workloads import diurnal_trace, old_new_fleet

from bench_utils import once, result_section, write_result


def _instance():
    fleet = old_new_fleet(old_count=6, new_count=4)
    T = 30
    demand = diurnal_trace(T, period=10, base=2.0, peak=10.0, noise=0.05, rng=21)
    counts = np.tile([6, 4], (T, 1))
    counts[10:15, 0] = 2   # maintenance: most old-generation servers offline
    counts[20:, 1] = 6     # expansion: two extra new-generation servers delivered
    inst = ProblemInstance(tuple(fleet), demand, counts=counts, name="time-varying-m")
    # clip demand to the per-slot capacity so the instance stays feasible
    cap = np.array([inst.total_capacity(t) for t in range(T)])
    return ProblemInstance(tuple(fleet), np.minimum(demand, 0.95 * cap), counts=counts,
                           name="time-varying-m")


def _run():
    instance = _instance()
    dispatcher = DispatchSolver(instance)
    exact = solve_optimal(instance, dispatcher=dispatcher)
    approx = solve_approx(instance, epsilon=0.5, dispatcher=dispatcher)
    return instance, exact, approx


def test_thm22_time_varying_fleet(benchmark):
    instance, exact, approx = once(benchmark, _run)

    assert exact.schedule.is_feasible(instance)
    assert approx.schedule.is_feasible(instance)
    assert exact.cost - 1e-6 <= approx.cost <= 1.5 * exact.cost + 1e-6
    # the maintenance window is respected
    assert np.all(exact.schedule.x[10:15, 0] <= 2)
    assert np.all(approx.schedule.x[10:15, 0] <= 2)

    rows = [
        {
            "slot": t,
            "available_old": int(instance.counts_at(t)[0]),
            "available_new": int(instance.counts_at(t)[1]),
            "demand": round(float(instance.demand[t]), 2),
            "opt_old": int(exact.schedule.x[t, 0]),
            "opt_new": int(exact.schedule.x[t, 1]),
            "approx_old": int(approx.schedule.x[t, 0]),
            "approx_new": int(approx.schedule.x[t, 1]),
        }
        for t in range(instance.T)
    ]
    text = "\n\n".join(
        [
            "Experiment THM22 — Theorem 22 / Section 4.3 (time-dependent fleet sizes)",
            f"optimal cost: {exact.cost:.2f}, (1+eps)-approx cost (eps=0.5): {approx.cost:.2f}, "
            f"ratio {approx.cost / exact.cost:.4f} <= 1.5",
            result_section("schedule under a maintenance window (slots 10-14) and an expansion (slot 20+)", rows),
        ]
    )
    write_result("THM22_time_varying_m", text)
