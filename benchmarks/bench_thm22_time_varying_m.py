"""THM22 — Theorem 22 / Section 4.3: time-dependent data-center sizes.

Section 4.3 extends both the optimal algorithm and the (1+eps)-approximation to
fleets whose size changes over time (expansion with new servers, maintenance
windows).  This benchmark builds a scenario with a maintenance window and a
fleet expansion, solves it exactly and approximately, verifies feasibility
against the per-slot limits and the approximation bound, and reports the
regenerated schedule summary.
"""

import numpy as np

from repro.bench import thm22_instance, thm22_spec
from repro.exp import OfflineSpec, SweepPlan, run_plan

from bench_utils import once, result_section, write_result


def _run():
    # Both solves route through one shared engine context: the exact schedule
    # is reconstructed from the context's memoised value stream, the
    # approximation shares its dispatch solver and block caches.  The scenario
    # (maintenance window slots 10-14, expansion from slot 20) is addressed
    # declaratively via repro.bench.thm22_spec — the 'time-varying-m' registry
    # family also gated by perf-regress — and materialised lazily; the local
    # build below only serves the feasibility assertions.
    instance = thm22_instance()
    report = run_plan(
        SweepPlan(
            scenarios=(thm22_spec(),),
            offline=(
                OfflineSpec(solver="optimal"),
                OfflineSpec(solver="approx", epsilon=0.5),
            ),
        )
    )
    exact = report.record(instance.name, "offline-optimal").result
    approx = report.record(instance.name, "approx(eps=0.5)").result
    return instance, exact, approx


def test_thm22_time_varying_fleet(benchmark):
    instance, exact, approx = once(benchmark, _run)

    assert exact.schedule.is_feasible(instance)
    assert approx.schedule.is_feasible(instance)
    assert exact.cost - 1e-6 <= approx.cost <= 1.5 * exact.cost + 1e-6
    # the maintenance window is respected
    assert np.all(exact.schedule.x[10:15, 0] <= 2)
    assert np.all(approx.schedule.x[10:15, 0] <= 2)

    rows = [
        {
            "slot": t,
            "available_old": int(instance.counts_at(t)[0]),
            "available_new": int(instance.counts_at(t)[1]),
            "demand": round(float(instance.demand[t]), 2),
            "opt_old": int(exact.schedule.x[t, 0]),
            "opt_new": int(exact.schedule.x[t, 1]),
            "approx_old": int(approx.schedule.x[t, 0]),
            "approx_new": int(approx.schedule.x[t, 1]),
        }
        for t in range(instance.T)
    ]
    text = "\n\n".join(
        [
            "Experiment THM22 — Theorem 22 / Section 4.3 (time-dependent fleet sizes)",
            f"optimal cost: {exact.cost:.2f}, (1+eps)-approx cost (eps=0.5): {approx.cost:.2f}, "
            f"ratio {approx.cost / exact.cost:.4f} <= 1.5",
            result_section("schedule under a maintenance window (slots 10-14) and an expansion (slot 20+)", rows),
        ]
    )
    write_result("THM22_time_varying_m", text)
