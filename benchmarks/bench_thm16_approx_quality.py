"""THM16 — Theorem 16: quality of the reduced-grid (2*gamma - 1)-approximation.

Theorem 16 proves ``C(X^gamma) <= (2*gamma - 1) * C(X*)``.  This benchmark
measures the actual ratio for several ``gamma`` (equivalently ``eps``) on
fleets large enough that the grid reduction matters, together with the size of
the reduced state space, and checks every measurement against the bound.
"""

import numpy as np

from repro import ProblemInstance, QuadraticCost, ServerType, solve_approx, solve_optimal
from repro.dispatch import DispatchSolver
from repro.offline import approximation_guarantee
from repro.workloads import diurnal_trace

from bench_utils import once, result_section, write_result


def _instance():
    types = (
        ServerType("web", count=48, switching_cost=5.0, capacity=1.0,
                   cost_function=QuadraticCost(idle=0.5, a=0.2, b=0.8)),
        ServerType("batch", count=12, switching_cost=12.0, capacity=3.0,
                   cost_function=QuadraticCost(idle=1.2, a=0.3, b=0.2)),
    )
    demand = diurnal_trace(30, period=15, base=3.0, peak=70.0, noise=0.05, rng=13)
    return ProblemInstance(types, demand, name="approx-quality")


def _run():
    instance = _instance()
    dispatcher = DispatchSolver(instance)
    exact = solve_optimal(instance, dispatcher=dispatcher, return_schedule=False)
    rows = []
    for gamma in (1.125, 1.25, 1.5, 2.0, 3.0):
        approx = solve_approx(instance, gamma=gamma, dispatcher=dispatcher, return_schedule=False)
        rows.append(
            {
                "gamma": gamma,
                "eps_equivalent": round(2 * gamma - 2, 3),
                "grid_states_per_slot": approx.grids[0].size,
                "exact_states_per_slot": exact.grids[0].size,
                "optimal": round(exact.cost, 2),
                "approx_cost": round(approx.cost, 2),
                "measured_ratio": round(approx.cost / exact.cost, 4),
                "proven_bound": round(approximation_guarantee(gamma), 3),
                "within_bound": approx.cost <= approximation_guarantee(gamma) * exact.cost + 1e-6,
            }
        )
    return instance, rows


def test_thm16_approximation_quality(benchmark):
    instance, rows = once(benchmark, _run)
    assert all(row["within_bound"] for row in rows)
    assert all(row["measured_ratio"] >= 1.0 - 1e-9 for row in rows)
    # the measured ratio is monotone-ish in gamma: the coarsest grid is the worst
    assert rows[-1]["measured_ratio"] >= rows[0]["measured_ratio"] - 1e-6
    text = "\n\n".join(
        [
            "Experiment THM16 — Theorem 16 (reduced-grid approximation quality)",
            f"instance: {instance.name}, T={instance.T}, d={instance.d}, m={list(instance.m)}",
            result_section("measured approximation ratio vs. proven bound (2*gamma - 1)", rows),
            "Typical workloads stay well below the worst-case factor; the state-space "
            "reduction (column grid_states_per_slot) is what Theorem 21 turns into the "
            "polynomial runtime.",
        ]
    )
    write_result("THM16_approx_quality", text)
