"""FIG1 — Figure 1: behaviour of online Algorithm A for one server type.

The figure shows, for a single server type with ``\\bar t_j = 5``, the prefix
optima ``\\hat x^t_{t,j}`` (upper plot) and the resulting number of active
servers ``x^A_{t,j}`` (lower plot): every increase of the upper series triggers
power-ups, and every powered-up server runs for exactly five slots.

This benchmark regenerates both series for an equivalent scenario (the paper
does not list the numeric values of its example, only ``\\bar t_j = 5``), plus
the invariants the figure illustrates:

* ``x^A >= \\hat x`` in every slot,
* every power-up's block has length exactly ``\\bar t_j``.
"""

import numpy as np

from repro import ConstantCost, ProblemInstance, ServerType, run_online
from repro.analysis import step_plot
from repro.online import AlgorithmA, FixedSequenceTracker

from bench_utils import once, result_section, write_result

# A reference prefix-optimum series in the spirit of Figure 1 (T = 15, one type).
FIG1_XHAT = np.array([1, 1, 0, 2, 2, 1, 0, 0, 3, 1, 0, 0, 1, 0, 0])
FIG1_BETA = 5.0
FIG1_IDLE = 1.0  # -> \bar t_j = ceil(5/1) = 5


def _instance():
    types = (
        ServerType("fig1", count=4, switching_cost=FIG1_BETA, capacity=1.0,
                   cost_function=ConstantCost(level=FIG1_IDLE)),
    )
    return ProblemInstance(types, np.zeros(len(FIG1_XHAT)), name="figure-1")


def _run():
    instance = _instance()
    algo = AlgorithmA(tracker=FixedSequenceTracker(FIG1_XHAT))
    result = run_online(instance, algo)
    return algo, result


def test_fig1_algorithm_a_trace(benchmark):
    algo, result = once(benchmark, _run)
    x_a = result.schedule.x[:, 0]

    assert algo.runtimes[0] == 5
    assert np.all(x_a >= FIG1_XHAT)
    blocks = algo.blocks(0)
    assert all(b.length == 5 for b in blocks if b.end < len(FIG1_XHAT) - 1)

    rows = [
        {"t": t + 1, "xhat_t": int(FIG1_XHAT[t]), "x_A_t": int(x_a[t]),
         "powered_up": int(algo.power_up_log[t, 0])}
        for t in range(len(FIG1_XHAT))
    ]
    text = "\n\n".join(
        [
            "Experiment FIG1 — Figure 1 (Algorithm A, one server type, bar_t_j = 5)",
            result_section("per-slot series", rows),
            step_plot(FIG1_XHAT, title="prefix optima  \\hat x^t_{t,j}  (upper plot of Figure 1)"),
            step_plot(x_a, title="Algorithm A      x^A_{t,j}          (lower plot of Figure 1)"),
            f"blocks A_(j,i): {[(b.start + 1, b.end + 1) for b in blocks]}  (1-based, length = bar_t_j = 5)",
        ]
    )
    write_result("FIG1_algorithm_a", text)
