"""THM13 — Theorem 13: empirical competitive ratio of Algorithm B.

Theorem 13 proves that Algorithm B is ``(2d + 1 + c(I))``-competitive for
time-dependent operating costs, where ``c(I) = sum_j max_t l_{t,j} / beta_j``.
This benchmark measures the ratio on workloads with time-of-day electricity
prices (several price amplitudes, which change ``c(I)``) and checks the bound.

The four priced instances run through the shared-context sweep engine; the
dispatch layer recognises each priced slot as a scaled copy of the shared base
cost row, so the whole horizon collapses into one vectorised dual bisection.
The plan carries the declarative registry specs of
:func:`repro.bench.thm13_specs` (one ``priced-cpu-gpu`` spec per amplitude —
the single source also gated against pinned PR-1 costs by
``make perf-regress``); instances materialise lazily inside the engine.
"""

from repro.bench import thm13_specs
from repro.exp import SweepPlan, run_plan, spec
from repro.scenarios import build as build_scenario

from bench_utils import once, result_section, write_result


def _run():
    scenarios = thm13_specs()
    report = run_plan(
        SweepPlan(
            scenarios=tuple(s for _, s in scenarios),
            algorithms=(spec("B"),),
        )
    )
    rows = []
    for (label, scenario), record in zip(scenarios, report.records):
        assert record.scenario["scenario"] == scenario.name
        instance = build_scenario(scenario)  # for c(I) — the runs themselves were lazy
        assert record.instance == instance.name
        rows.append(
            {
                "scenario": label,
                "c(I)": round(instance.c_constant(), 3),
                "optimal": round(record.optimal_cost, 2),
                "algorithm_B": round(record.cost, 2),
                "ratio": round(record.ratio, 4),
                "bound_2d+1+c": round(record.bound, 3),
                "within_bound": bool(record.within_bound),
            }
        )
    return rows


def test_thm13_algorithm_b_competitive_ratio(benchmark):
    rows = once(benchmark, _run)
    assert all(row["within_bound"] for row in rows)
    text = "\n\n".join(
        [
            "Experiment THM13 — Theorem 13 (Algorithm B, time-dependent operating costs)",
            result_section("measured ratio vs. bound 2d + 1 + c(I)", rows),
        ]
    )
    write_result("THM13_algorithm_b_ratio", text)
