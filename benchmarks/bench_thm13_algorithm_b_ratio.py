"""THM13 — Theorem 13: empirical competitive ratio of Algorithm B.

Theorem 13 proves that Algorithm B is ``(2d + 1 + c(I))``-competitive for
time-dependent operating costs, where ``c(I) = sum_j max_t l_{t,j} / beta_j``.
This benchmark measures the ratio on workloads with time-of-day electricity
prices (several price amplitudes, which change ``c(I)``) and checks the bound.
"""

import numpy as np

from repro import AlgorithmB, run_online, solve_optimal, theoretical_bound
from repro.dispatch import DispatchSolver

from bench_utils import diurnal_cpu_gpu_instance, once, result_section, write_result


def _scenarios():
    base = diurnal_cpu_gpu_instance(T=36)
    scenarios = []
    for amplitude in (0.0, 0.3, 0.6, 0.9):
        prices = 1.0 + amplitude * np.sin(np.arange(base.T) / base.T * 4 * np.pi + 0.5)
        inst = base.with_price_profile(prices) if amplitude > 0 else base
        scenarios.append((f"price amplitude {amplitude:.1f}", inst))
    return scenarios


def _run():
    rows = []
    for label, instance in _scenarios():
        dispatcher = DispatchSolver(instance)
        opt = solve_optimal(instance, dispatcher=dispatcher, return_schedule=False).cost
        result = run_online(instance, AlgorithmB(), dispatcher=dispatcher)
        bound = theoretical_bound(instance, "B")
        rows.append(
            {
                "scenario": label,
                "c(I)": round(instance.c_constant(), 3),
                "optimal": round(opt, 2),
                "algorithm_B": round(result.cost, 2),
                "ratio": round(result.cost / opt, 4),
                "bound_2d+1+c": round(bound, 3),
                "within_bound": result.cost <= bound * opt + 1e-6,
            }
        )
    return rows


def test_thm13_algorithm_b_competitive_ratio(benchmark):
    rows = once(benchmark, _run)
    assert all(row["within_bound"] for row in rows)
    text = "\n\n".join(
        [
            "Experiment THM13 — Theorem 13 (Algorithm B, time-dependent operating costs)",
            result_section("measured ratio vs. bound 2d + 1 + c(I)", rows),
        ]
    )
    write_result("THM13_algorithm_b_ratio", text)
