"""THM8 — Theorem 8 / Corollary 9: empirical competitive ratio of Algorithm A.

Theorem 8 proves that Algorithm A is ``(2d + 1)``-competitive for
time-independent operating costs, and Corollary 9 improves this to the optimal
``2d`` when the costs are additionally load-independent.  The paper gives no
measurements; this benchmark measures the ratio ``C(X^A) / C(X*)`` on the
synthetic workload suite for ``d in {1, 2, 3}`` and checks that every measured
ratio respects the proven bound (and reports how far below the bound typical
workloads stay).

The runs route through the shared-context sweep engine (:mod:`repro.exp`): per
instance, the offline optimum is read off the same memoised prefix-DP value
stream that drives Algorithm A's tracker, instead of a second DP.  The plan is
*scenario-addressed*: it carries the declarative registry specs of
:func:`repro.bench.thm8_specs` (the single source also gated against pinned
PR-1 costs by ``make perf-regress``) and the engine materialises the
instances lazily, stamping each spec into its records.
"""

from repro.bench import thm8_specs
from repro.exp import SweepPlan, run_plan, spec

from bench_utils import once, result_section, write_result


def _run():
    scenarios = thm8_specs()
    report = run_plan(
        SweepPlan(
            scenarios=tuple(s for _, s in scenarios),
            algorithms=(spec("A"),),
        )
    )
    rows = []
    for (label, scenario), record in zip(scenarios, report.records):
        assert record.scenario["scenario"] == scenario.name
        T, d = record.result.schedule.x.shape
        rows.append(
            {
                "scenario": label,
                "d": d,
                "T": T,
                "optimal": round(record.optimal_cost, 2),
                "algorithm_A": round(record.cost, 2),
                "ratio": round(record.ratio, 4),
                "bound": record.bound,
                "within_bound": bool(record.within_bound),
            }
        )
    return rows


def test_thm8_algorithm_a_competitive_ratio(benchmark):
    rows = once(benchmark, _run)
    assert all(row["within_bound"] for row in rows)
    assert all(row["ratio"] >= 1.0 - 1e-9 for row in rows)
    text = "\n\n".join(
        [
            "Experiment THM8 — Theorem 8 / Corollary 9 (Algorithm A competitive ratio)",
            result_section("measured ratio vs. proven bound (2d+1, resp. 2d for load-independent)", rows),
            "All measured ratios are far below the worst-case bound; the bound is only "
            "approached on adversarial ski-rental traces (see LB-2D).",
        ]
    )
    write_result("THM8_algorithm_a_ratio", text)
