"""THM8 — Theorem 8 / Corollary 9: empirical competitive ratio of Algorithm A.

Theorem 8 proves that Algorithm A is ``(2d + 1)``-competitive for
time-independent operating costs, and Corollary 9 improves this to the optimal
``2d`` when the costs are additionally load-independent.  The paper gives no
measurements; this benchmark measures the ratio ``C(X^A) / C(X*)`` on the
synthetic workload suite for ``d in {1, 2, 3}`` and checks that every measured
ratio respects the proven bound (and reports how far below the bound typical
workloads stay).
"""

from repro import AlgorithmA, run_online, solve_optimal, theoretical_bound
from repro.dispatch import DispatchSolver

from bench_utils import (
    bursty_old_new_instance,
    diurnal_cpu_gpu_instance,
    homogeneous_instance,
    load_independent_instance,
    once,
    result_section,
    spiky_three_tier_instance,
    write_result,
)


def _scenarios():
    return [
        ("homogeneous d=1 (diurnal)", homogeneous_instance(T=48)),
        ("cpu+gpu d=2 (diurnal)", diurnal_cpu_gpu_instance(T=48)),
        ("old+new d=2 (bursty)", bursty_old_new_instance(T=40)),
        ("load-independent d=2 (Corollary 9)", load_independent_instance(T=40)),
        ("three-tier d=3 (spiky)", spiky_three_tier_instance(T=32)),
    ]


def _run():
    rows = []
    for label, instance in _scenarios():
        dispatcher = DispatchSolver(instance)
        opt = solve_optimal(instance, dispatcher=dispatcher, return_schedule=False).cost
        result = run_online(instance, AlgorithmA(), dispatcher=dispatcher)
        bound = theoretical_bound(instance, "A")
        rows.append(
            {
                "scenario": label,
                "d": instance.d,
                "T": instance.T,
                "optimal": round(opt, 2),
                "algorithm_A": round(result.cost, 2),
                "ratio": round(result.cost / opt, 4),
                "bound": bound,
                "within_bound": result.cost <= bound * opt + 1e-6,
            }
        )
    return rows


def test_thm8_algorithm_a_competitive_ratio(benchmark):
    rows = once(benchmark, _run)
    assert all(row["within_bound"] for row in rows)
    assert all(row["ratio"] >= 1.0 - 1e-9 for row in rows)
    text = "\n\n".join(
        [
            "Experiment THM8 — Theorem 8 / Corollary 9 (Algorithm A competitive ratio)",
            result_section("measured ratio vs. proven bound (2d+1, resp. 2d for load-independent)", rows),
            "All measured ratios are far below the worst-case bound; the bound is only "
            "approached on adversarial ski-rental traces (see LB-2D).",
        ]
    )
    write_result("THM8_algorithm_a_ratio", text)
