"""LB-2D — adversarial (ski-rental style) traces pushing Algorithm A towards its bound.

The companion paper [5] proves a lower bound of ``2d`` for heterogeneous
data centers with load-independent costs; the exact construction is not part of
this paper, so the reproduction uses its spiritual equivalent (see DESIGN.md):
per-type demand bursts separated by idle gaps tuned to the ski-rental horizon
``\\bar t_j = ceil(beta_j / f_j(0))``.  On such traces every online rule loses
roughly a factor related to the break-even trade-off, while typical diurnal
workloads stay close to optimal.  This benchmark also reproduces the
rounding-pathology example used to argue that fractional solutions cannot
simply be rounded.
"""

import numpy as np

from repro import AlgorithmA, ConstantCost, ProblemInstance, ServerType, run_online, solve_optimal
from repro.online.adversary import rounding_pathology, ski_rental_instance
from repro.workloads import diurnal_trace

from bench_utils import once, result_section, write_result


def _run():
    rows = []
    for gap_factor in (0.5, 1.0, 1.5):
        victim = ServerType("victim", count=1, switching_cost=8.0, capacity=1.0,
                            cost_function=ConstantCost(level=2.0))
        inst = ski_rental_instance(victim, n_cycles=10, gap_factor=gap_factor)
        opt = solve_optimal(inst, return_schedule=False).cost
        result = run_online(inst, AlgorithmA())
        rows.append(
            {
                "trace": f"ski-rental gap={gap_factor:.1f}x break-even",
                "d": inst.d,
                "optimal": round(opt, 2),
                "algorithm_A": round(result.cost, 2),
                "ratio": round(result.cost / opt, 3),
                "bound_2d": 2 * inst.d,
            }
        )

    # benign reference: the same server type under a diurnal trace
    victim = ServerType("victim", count=4, switching_cost=8.0, capacity=1.0,
                        cost_function=ConstantCost(level=2.0))
    benign = ProblemInstance((victim,), diurnal_trace(44, period=22, base=0.5, peak=3.5, noise=0.05, rng=3),
                             name="benign-diurnal")
    opt = solve_optimal(benign, return_schedule=False).cost
    result = run_online(benign, AlgorithmA())
    rows.append(
        {
            "trace": "benign diurnal (reference)",
            "d": 1,
            "optimal": round(opt, 2),
            "algorithm_A": round(result.cost, 2),
            "ratio": round(result.cost / opt, 3),
            "bound_2d": 2,
        }
    )

    pathology = rounding_pathology(T=200, delta=0.01)
    return rows, pathology


def test_lb_adversarial_traces(benchmark):
    rows, pathology = once(benchmark, _run)
    # adversarial traces produce clearly worse ratios than the benign reference,
    # but never exceed the proven bound (2d for load-independent costs)
    adversarial = [r for r in rows if r["trace"].startswith("ski")]
    benign = rows[-1]
    assert max(r["ratio"] for r in adversarial) > benign["ratio"]
    assert all(r["ratio"] <= r["bound_2d"] + 1e-6 for r in rows)
    assert pathology["blowup"] > 20

    text = "\n\n".join(
        [
            "Experiment LB-2D — adversarial traces for Algorithm A (lower bound 2d of [5])",
            result_section("ski-rental style traces vs. a benign diurnal reference", rows),
            "Rounding pathology (Section 1): fractional schedule oscillating between 1 and 1+delta",
            f"  delta = {pathology['delta']}, fractional switching cost = "
            f"{pathology['fractional_switching_cost']:.2f}, rounded-up switching cost = "
            f"{pathology['rounded_switching_cost']:.2f}, blow-up factor = {pathology['blowup']:.1f}x",
        ]
    )
    write_result("LB_2D_adversarial", text)
