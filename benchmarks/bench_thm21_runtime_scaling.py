"""THM21 — Theorem 21: runtime of the approximation vs. the exact algorithm.

The exact shortest-path algorithm costs ``Theta(T * prod_j (m_j + 1))`` state
evaluations; the (1+eps)-approximation costs ``O(T * eps^-d * prod_j log m_j)``.
This benchmark measures wall-clock runtimes while sweeping

* the fleet size ``m`` (exact vs. approximate),
* the horizon ``T`` (both scale linearly), and
* ``eps`` (the approximation's grid grows like ``(1/eps)^d``),

and reports measured times together with the number of explored states, so the
predicted growth rates can be compared against the measurement.
"""

import time

import numpy as np

from repro import ProblemInstance, QuadraticCost, ServerType, solve_approx, solve_optimal
from repro.dispatch import DispatchSolver
from repro.workloads import diurnal_trace

from bench_utils import once, result_section, write_bench_json, write_result


def _instance(m: int, T: int) -> ProblemInstance:
    types = (
        ServerType("a", count=m, switching_cost=5.0, capacity=1.0,
                   cost_function=QuadraticCost(idle=0.5, a=0.2, b=0.8)),
        ServerType("b", count=max(2, m // 4), switching_cost=10.0, capacity=3.0,
                   cost_function=QuadraticCost(idle=1.0, a=0.3, b=0.3)),
    )
    peak = 0.8 * (m * 1.0 + max(2, m // 4) * 3.0)
    demand = diurnal_trace(T, period=max(4, T // 2), base=peak / 8, peak=peak, noise=0.0)
    return ProblemInstance(types, demand, name=f"scaling-m{m}-T{T}")


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def _run():
    fleet_rows = []
    dispatch_counters = []
    for m in (8, 16, 32, 64):
        instance = _instance(m, T=12)
        dispatcher = DispatchSolver(instance)
        exact, t_exact = _timed(
            lambda: solve_optimal(instance, dispatcher=dispatcher, return_schedule=False)
        )
        approx, t_approx = _timed(lambda: solve_approx(instance, epsilon=0.5, return_schedule=False))
        dispatch_counters.append({"m": m, **dispatcher.stats.snapshot()})
        fleet_rows.append(
            {
                "m": m,
                "exact_states": exact.num_states_explored,
                "exact_seconds": round(t_exact, 4),
                "approx_states": approx.num_states_explored,
                "approx_seconds": round(t_approx, 4),
                "state_reduction": round(exact.num_states_explored / approx.num_states_explored, 2),
            }
        )

    horizon_rows = []
    for T in (8, 16, 32, 64):
        instance = _instance(24, T=T)
        approx, t_approx = _timed(lambda: solve_approx(instance, epsilon=0.5, return_schedule=False))
        horizon_rows.append(
            {"T": T, "approx_states": approx.num_states_explored, "approx_seconds": round(t_approx, 4)}
        )

    eps_rows = []
    instance = _instance(64, T=12)
    for eps in (2.0, 1.0, 0.5, 0.25):
        approx, t_approx = _timed(lambda: solve_approx(instance, epsilon=eps, return_schedule=False))
        eps_rows.append(
            {
                "eps": eps,
                "grid_states_per_slot": approx.grids[0].size,
                "approx_seconds": round(t_approx, 4),
                "cost": round(approx.cost, 2),
            }
        )
    return fleet_rows, horizon_rows, eps_rows, dispatch_counters


def test_thm21_runtime_scaling(benchmark):
    fleet_rows, horizon_rows, eps_rows, dispatch_counters = once(benchmark, _run)

    # the approximation explores asymptotically fewer states as m grows
    reductions = [row["state_reduction"] for row in fleet_rows]
    assert reductions == sorted(reductions)
    # horizon scaling is linear in the number of explored states
    states = [row["approx_states"] for row in horizon_rows]
    assert states[-1] == states[0] * (horizon_rows[-1]["T"] // horizon_rows[0]["T"])
    # finer eps never shrinks the grid
    grids = [row["grid_states_per_slot"] for row in eps_rows]
    assert grids == sorted(grids)

    text = "\n\n".join(
        [
            "Experiment THM21 — Theorem 21 (runtime scaling of the (1+eps)-approximation)",
            result_section("fleet-size sweep (T=12, eps=0.5): exact Theta(T prod m_j) vs. approx O(T prod log m_j)", fleet_rows),
            result_section("horizon sweep (m=24, eps=0.5): both scale linearly in T", horizon_rows),
            result_section("eps sweep (m=64, T=12): grid grows as eps shrinks", eps_rows),
        ]
    )
    write_result("THM21_runtime_scaling", text)

    # machine-readable perf-trajectory record for the DP hot path
    write_bench_json(
        "dp",
        {
            "wall_seconds_total": float(benchmark.stats.stats.mean)
            if benchmark.stats is not None else None,
            "fleet_sweep": fleet_rows,
            "horizon_sweep": horizon_rows,
            "eps_sweep": eps_rows,
            "dispatch_engine": dispatch_counters,
        },
    )
