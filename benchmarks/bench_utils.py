"""Shared helpers for the benchmark harness.

Every benchmark regenerates one "evaluation artifact" of the paper (a figure's
scenario or a theorem's bound) and

* measures the runtime of the computation via ``pytest-benchmark``, and
* writes the regenerated rows / series to ``benchmarks/output/<experiment>.txt``
  so the numbers recorded in EXPERIMENTS.md can be re-created with a single
  ``pytest benchmarks/ --benchmark-only`` run.

The instances used here are synthetic (the paper reports no empirical data);
they are sized so the whole harness completes in a few minutes on a laptop
while still being large enough that the asymptotic effects (grid reduction,
runtime scaling) are visible.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.analysis import format_markdown_table, format_table

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def write_result(experiment: str, text: str) -> Path:
    """Persist the regenerated rows/series of one experiment."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / f"{experiment}.txt"
    path.write_text(text + "\n")
    return path


def result_section(title: str, rows, markdown: bool = False) -> str:
    """Format a table section for the experiment output files."""
    fmt = format_markdown_table if markdown else format_table
    return fmt(rows, title=title)


def write_bench_json(name: str, payload: dict) -> Path:
    """Persist machine-readable benchmark measurements as ``BENCH_<name>.json``.

    Future PRs diff these files against the committed history to track the
    performance trajectory (wall time, states explored, cache-hit rate, ...).
    An environment stamp is added so numbers from different machines are not
    compared blindly.
    """
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / f"BENCH_{name}.json"
    document = {
        "benchmark": name,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        **payload,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path


def timed(func):
    """Run ``func`` once, returning ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark timer.

    Most experiments here are seconds-long end-to-end computations; re-running
    them dozens of times (pytest-benchmark's default calibration) would make the
    harness needlessly slow without adding information.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


# The standard experiment instances that used to be defined here live in the
# scenario registry (src/repro/scenarios/families.py) — address them by name:
# build("diurnal-cpu-gpu", T=36), ScenarioSpec("homogeneous", {"T": 36}), ...
