"""Shared helpers for the benchmark harness.

Every benchmark regenerates one "evaluation artifact" of the paper (a figure's
scenario or a theorem's bound) and

* measures the runtime of the computation via ``pytest-benchmark``, and
* writes the regenerated rows / series to ``benchmarks/output/<experiment>.txt``
  so the numbers recorded in EXPERIMENTS.md can be re-created with a single
  ``pytest benchmarks/ --benchmark-only`` run.

The instances used here are synthetic (the paper reports no empirical data);
they are sized so the whole harness completes in a few minutes on a laptop
while still being large enough that the asymptotic effects (grid reduction,
runtime scaling) are visible.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro import ProblemInstance
from repro.analysis import format_markdown_table, format_table
from repro.workloads import (
    bursty_trace,
    cpu_gpu_fleet,
    diurnal_trace,
    fleet_instance,
    load_independent_fleet,
    old_new_fleet,
    single_type_fleet,
    spike_trace,
    three_tier_fleet,
)

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def write_result(experiment: str, text: str) -> Path:
    """Persist the regenerated rows/series of one experiment."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / f"{experiment}.txt"
    path.write_text(text + "\n")
    return path


def result_section(title: str, rows, markdown: bool = False) -> str:
    """Format a table section for the experiment output files."""
    fmt = format_markdown_table if markdown else format_table
    return fmt(rows, title=title)


def write_bench_json(name: str, payload: dict) -> Path:
    """Persist machine-readable benchmark measurements as ``BENCH_<name>.json``.

    Future PRs diff these files against the committed history to track the
    performance trajectory (wall time, states explored, cache-hit rate, ...).
    An environment stamp is added so numbers from different machines are not
    compared blindly.
    """
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / f"BENCH_{name}.json"
    document = {
        "benchmark": name,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        **payload,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path


def timed(func):
    """Run ``func`` once, returning ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark timer.

    Most experiments here are seconds-long end-to-end computations; re-running
    them dozens of times (pytest-benchmark's default calibration) would make the
    harness needlessly slow without adding information.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


# --------------------------------------------------------------------------- #
# Standard experiment instances
# --------------------------------------------------------------------------- #


def diurnal_cpu_gpu_instance(T: int = 48, seed: int = 1) -> ProblemInstance:
    """Diurnal workload on a CPU+GPU fleet (d=2) — the workhorse scenario."""
    demand = diurnal_trace(T, period=T // 2, base=1.0, peak=10.0, noise=0.05, rng=seed)
    return fleet_instance(cpu_gpu_fleet(cpu_count=5, gpu_count=2), demand, name=f"diurnal-cpu-gpu-T{T}")


def bursty_old_new_instance(T: int = 40, seed: int = 2) -> ProblemInstance:
    """Bursty workload on an old/new-generation fleet (d=2)."""
    demand = bursty_trace(T, base=1.0, burst_height=8.0, burst_probability=0.15, rng=seed)
    return fleet_instance(old_new_fleet(old_count=5, new_count=3), demand, name=f"bursty-old-new-T{T}")


def spiky_three_tier_instance(T: int = 32) -> ProblemInstance:
    """Spiky workload on the three-tier fleet (d=3, small counts)."""
    demand = spike_trace(T, base=0.5, spike_height=8.0, spike_every=8)
    fleet = three_tier_fleet()
    fleet = [st.with_count(min(st.count, 3)) for st in fleet]
    return fleet_instance(fleet, demand, name=f"spiky-three-tier-T{T}")


def homogeneous_instance(T: int = 48, seed: int = 5) -> ProblemInstance:
    """Single-type instance (d=1) for the LCP / homogeneous comparisons."""
    demand = diurnal_trace(T, period=T // 2, base=0.5, peak=6.0, noise=0.05, rng=seed)
    return fleet_instance(single_type_fleet(count=8), demand, name=f"homogeneous-T{T}")


def load_independent_instance(T: int = 40, seed: int = 7) -> ProblemInstance:
    """Load-independent operating costs (Corollary 9 regime)."""
    demand = bursty_trace(T, base=1.0, burst_height=6.0, burst_probability=0.2, rng=seed)
    return fleet_instance(load_independent_fleet(d=2), demand, name=f"load-independent-T{T}")


def priced_instance(T: int = 36, seed: int = 11) -> ProblemInstance:
    """Time-dependent operating costs via a day/night electricity-price profile."""
    base = diurnal_cpu_gpu_instance(T, seed)
    prices = 1.0 + 0.5 * np.sin(np.arange(T) / T * 4.0 * np.pi + 0.7)
    return base.with_price_profile(prices)
