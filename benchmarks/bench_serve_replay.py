"""SERVE — multi-tenant streaming replay: latency percentiles and cache sharing.

Runs the serve-layer benchmark (:func:`repro.bench.run_serve_bench`): one
fleet geometry, ``n`` concurrent :class:`~repro.serve.ControllerSession`
tenants each replaying a rotated copy of the same quantised demand trace,
for ``n`` in {1, 8, 64} — once over one shared
:class:`~repro.serve.ServeCache` and once with per-tenant isolated caches.

* **gates** (deterministic): sharing must be decision-neutral (every tenant's
  cumulative cost identical between modes) and real (strictly fewer unique
  dispatch solves in shared mode for n > 1),
* measures per-tick wall-latency p50/p95/p99, aggregate ticks/sec and
  tenants/sec, and the cache-hit counters, and
* records everything in ``benchmarks/output/BENCH_serve.json`` plus a
  human-readable ``SERVE_replay.txt``.

Run directly (``python benchmarks/bench_serve_replay.py``) or through
``make bench`` / ``pytest --benchmark-only`` like the other experiments.
"""

from repro.bench import run_serve_bench

from bench_utils import once, result_section, write_bench_json, write_result


def _report(payload: dict) -> str:
    rows = [
        {
            "tenants": row["tenants"],
            "mode": row["mode"],
            "total_ticks": row["total_ticks"],
            "p50_ms": row["latency"]["p50_ms"],
            "p95_ms": row["latency"]["p95_ms"],
            "p99_ms": row["latency"]["p99_ms"],
            "ticks_per_s": row["ticks_per_second"],
            "tenants_per_s": row["tenants_per_second"],
            "unique_solves": row["unique_solves"],
            "grid_hit_rate": row["grid_hit_rate"],
        }
        for row in payload["rows"]
    ]
    comparisons = [
        {
            "tenants": row["tenants"],
            "speedup_vs_isolated": row["speedup_vs_isolated"],
            "per_tick_us_shared": row["per_tick_us_shared"],
            "per_tick_us_isolated": row["per_tick_us_isolated"],
            "unique_solves_shared": row["unique_solves_shared"],
            "unique_solves_isolated": row["unique_solves_isolated"],
            "max_cost_deviation": f"{row['max_cost_deviation']:.2e}",
        }
        for row in payload["comparisons"]
    ]
    return "\n\n".join(
        [
            "Experiment SERVE — multi-tenant streaming replay "
            f"({payload['instance']}, {payload['ticks_per_tenant']} ticks/tenant, "
            f"{payload['demand_levels']} demand levels).",
            result_section("per-mode measurements", rows),
            result_section("shared vs isolated", comparisons),
            "Gates: per-tenant cost equality between modes (1e-9) and strictly "
            "fewer unique dispatch solves in shared mode for n > 1.  Wall "
            "times and latency percentiles are advisory (machine-dependent).",
        ]
    )


def test_serve_replay_benchmark(benchmark):
    payload = once(benchmark, run_serve_bench, tenant_counts=(1, 8, 64))

    # the deterministic gates re-asserted at the harness level
    for row in payload["comparisons"]:
        assert row["max_cost_deviation"] <= 1e-9
        if row["tenants"] > 1:
            assert row["unique_solves_shared"] < row["unique_solves_isolated"]

    write_bench_json("serve", payload)
    write_result("SERVE_replay", _report(payload))


if __name__ == "__main__":
    payload = run_serve_bench(tenant_counts=(1, 8, 64))
    write_bench_json("serve", payload)
    path = write_result("SERVE_replay", _report(payload))
    print(_report(payload))
    print(f"\nwrote {path}")
