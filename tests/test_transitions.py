"""Tests for the separable min-plus transitions of the DP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.offline.transitions import (
    relax_dimension,
    startup_cost_tensor,
    switching_cost_between,
    switching_cost_tensor,
    transition,
)


def brute_force_transition(V, src_values, dst_values, beta):
    """O(|src| * |dst|) reference implementation of the separable min-plus product."""
    src_grids = np.meshgrid(*src_values, indexing="ij")
    src_configs = np.stack([g.reshape(-1) for g in src_grids], axis=-1)
    dst_grids = np.meshgrid(*dst_values, indexing="ij")
    dst_configs = np.stack([g.reshape(-1) for g in dst_grids], axis=-1)
    V_flat = np.asarray(V, dtype=float).reshape(-1)
    out = np.empty(len(dst_configs))
    beta = np.asarray(beta, dtype=float)
    for i, x in enumerate(dst_configs):
        costs = V_flat + np.sum(np.maximum(x[None, :] - src_configs, 0) * beta[None, :], axis=1)
        out[i] = np.min(costs)
    return out.reshape(tuple(len(v) for v in dst_values))


class TestRelaxDimension:
    def test_single_dimension_small_example(self):
        V = np.array([0.0, 10.0, 1.0, 5.0])
        src = np.array([0, 1, 2, 3])
        out = relax_dimension(V, src, src, beta=2.0, axis=0)
        expected = brute_force_transition(V, [src], [src], [2.0])
        np.testing.assert_allclose(out, expected)

    def test_zero_beta_gives_global_minimum(self):
        V = np.array([3.0, 1.0, 7.0])
        src = np.array([0, 1, 2])
        out = relax_dimension(V, src, src, beta=0.0, axis=0)
        np.testing.assert_allclose(out, [1.0, 1.0, 1.0])

    def test_different_source_and_target_values(self):
        V = np.array([0.0, 4.0, 2.0])
        src = np.array([0, 2, 5])
        dst = np.array([0, 1, 3, 5, 6])
        out = relax_dimension(V, src, dst, beta=1.0, axis=0)
        expected = brute_force_transition(V, [src], [dst], [1.0])
        np.testing.assert_allclose(out, expected)

    def test_handles_infinite_entries(self):
        V = np.array([np.inf, 2.0, np.inf])
        src = np.array([0, 1, 2])
        out = relax_dimension(V, src, src, beta=1.0, axis=0)
        expected = brute_force_transition(V, [src], [src], [1.0])
        np.testing.assert_allclose(out, expected)

    def test_axis_argument(self):
        V = np.arange(6, dtype=float).reshape(2, 3)
        src0 = np.array([0, 1])
        src1 = np.array([0, 1, 2])
        out = relax_dimension(V, src1, src1, beta=0.5, axis=1)
        for row in range(2):
            np.testing.assert_allclose(
                out[row], brute_force_transition(V[row], [src1], [src1], [0.5])
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            relax_dimension(np.zeros(3), np.array([0, 1]), np.array([0, 1]), 1.0, axis=0)


class TestFullTransition:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force_2d(self, seed):
        rng = np.random.default_rng(seed)
        src = [np.arange(4), np.arange(3)]
        V = rng.uniform(0, 10, size=(4, 3))
        beta = [2.0, 5.0]
        out = transition(V, src, src, beta)
        np.testing.assert_allclose(out, brute_force_transition(V, src, src, beta))

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brute_force_3d(self, seed):
        rng = np.random.default_rng(100 + seed)
        src = [np.arange(3), np.arange(2), np.arange(4)]
        V = rng.uniform(0, 5, size=(3, 2, 4))
        beta = [1.0, 3.0, 0.5]
        out = transition(V, src, src, beta)
        np.testing.assert_allclose(out, brute_force_transition(V, src, src, beta))

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brute_force_on_reduced_grids(self, seed):
        rng = np.random.default_rng(200 + seed)
        src = [np.array([0, 1, 2, 4, 8, 10]), np.array([0, 1, 3])]
        dst = [np.array([0, 1, 2, 4, 8, 10]), np.array([0, 2, 3])]
        V = rng.uniform(0, 20, size=(6, 3))
        beta = [1.5, 4.0]
        out = transition(V, src, dst, beta)
        np.testing.assert_allclose(out, brute_force_transition(V, src, dst, beta))

    def test_dimension_count_validation(self):
        with pytest.raises(ValueError):
            transition(np.zeros((2, 2)), [np.arange(2)], [np.arange(2), np.arange(2)], [1.0, 1.0])

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_matches_brute_force(self, data):
        n1 = data.draw(st.integers(1, 5))
        n2 = data.draw(st.integers(1, 4))
        V = np.array(
            data.draw(
                st.lists(
                    st.floats(0.0, 100.0), min_size=n1 * n2, max_size=n1 * n2
                )
            )
        ).reshape(n1, n2)
        src = [np.sort(np.unique(np.concatenate([[0], data.draw(st.lists(st.integers(0, 9), max_size=n1 - 1))]))) if False else np.arange(n1),
               np.arange(n2)]
        beta = [data.draw(st.floats(0.0, 5.0)), data.draw(st.floats(0.0, 5.0))]
        out = transition(V, src, src, beta)
        np.testing.assert_allclose(out, brute_force_transition(V, src, src, beta), rtol=1e-9, atol=1e-9)


class TestSwitchingCostHelpers:
    def test_switching_cost_between(self):
        assert switching_cost_between([1, 2], [3, 1], [2.0, 5.0]) == pytest.approx(4.0)
        assert switching_cost_between([3, 1], [1, 2], [2.0, 5.0]) == pytest.approx(5.0)
        assert switching_cost_between([1, 1], [1, 1], [2.0, 5.0]) == 0.0

    def test_switching_cost_tensor(self):
        values = [np.array([0, 1, 2]), np.array([0, 1])]
        tensor = switching_cost_tensor(values, [2, 1], [3.0, 7.0])
        assert tensor.shape == (3, 2)
        assert tensor[0, 0] == pytest.approx(2 * 3.0 + 1 * 7.0)
        assert tensor[2, 1] == pytest.approx(0.0)
        assert tensor[1, 0] == pytest.approx(3.0 + 7.0)

    def test_startup_cost_tensor(self):
        values = [np.array([0, 2]), np.array([0, 1, 3])]
        tensor = startup_cost_tensor(values, [1.0, 2.0])
        assert tensor.shape == (2, 3)
        assert tensor[0, 0] == 0.0
        assert tensor[1, 2] == pytest.approx(2.0 + 6.0)

    def test_startup_equals_switching_from_zero(self):
        values = [np.array([0, 1, 4]), np.array([0, 2])]
        startup = startup_cost_tensor(values, [1.5, 3.0])
        for i, a in enumerate(values[0]):
            for k, b in enumerate(values[1]):
                assert startup[i, k] == pytest.approx(
                    switching_cost_between([0, 0], [a, b], [1.5, 3.0])
                )
