"""Tests for the observability layer: metrics registry, tracer, watch.

Three properties anchor the layer:

* **registry equality** — the counters the registry reports must be the same
  numbers the legacy ``counters()`` dicts report (one source of truth,
  two read paths), and the deterministic snapshot must be equality-stable
  across bit-identical replays;
* **bounded cardinality** — 1k+ short-lived tenants over one shared cache
  must not grow registry memory unboundedly (series caps + weakref
  collectors), mirroring the ledger-budget churn gate in test_batch.py;
* **watch exactness** — ``repro serve watch`` rebuilt from telemetry rows
  must reproduce :func:`~repro.serve.telemetry.summarise_sessions`
  equality-exactly, which is what ``make watch-smoke`` gates in CI.
"""

import gc
import json

import numpy as np
import pytest

from repro.scenarios import build
from repro.scenarios.events import EventPlan
from repro.serve import (
    ChaosFeed,
    ControllerSession,
    FabricWatcher,
    FaultInjector,
    InstanceFeed,
    LATENCY_BUCKETS_NS,
    MetricsRegistry,
    ServeCache,
    ServeEngine,
    TelemetryTail,
    TelemetryWriter,
    TickTracer,
    WatchModel,
    latency_percentiles,
    summarise_sessions,
)
from repro.serve.metrics import Counter, DEFAULT_MAX_SERIES, Gauge, Histogram
from repro.serve.watch import watch_command
from repro.workloads.scale import quantise_trace


def _quantised(T=32, levels=8):
    inst = build("diurnal-cpu-gpu", T=T)
    return inst.with_demand(quantise_trace(inst.demand, levels=levels))


# --------------------------------------------------------------------------- #
# Metrics registry semantics
# --------------------------------------------------------------------------- #


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        c = reg.counter("ticks", tenant="a")
        c.inc()
        c.add(2)
        assert c.value == 3
        assert reg.counter("ticks", tenant="a") is c  # same series, same object
        g = reg.gauge("virtual_slots", deterministic=True, cache="c0")
        g.set(7)
        h = reg.histogram("tick_latency_ns", tenant="a")
        h.observe(1500)  # second bucket (1000 < 1500 <= 1778)
        h.observe(10**12)  # overflow bucket
        d = h.to_dict()
        assert d["count"] == 2 and d["sum"] == 1500 + 10**12
        assert d["counts"][1] == 1 and d["counts"][-1] == 1
        assert len(d["counts"]) == len(LATENCY_BUCKETS_NS) + 1

    def test_series_naming_and_kind_mismatch(self):
        reg = MetricsRegistry()
        c = reg.counter("x", b="2", a="1")
        assert c.series == 'x{a="1",b="2"}'  # labels sorted, order-insensitive
        assert reg.counter("x", a="1", b="2") is c
        assert reg.counter("y").series == "y"
        with pytest.raises(TypeError):
            reg.gauge("x", b="2", a="1")

    def test_snapshot_and_deterministic_subset(self):
        reg = MetricsRegistry()
        reg.counter("ticks", tenant="a").add(5)
        reg.gauge("cumulative_cost", deterministic=True, tenant="a").set(1.5)
        reg.gauge("cache_hit_rate").set(0.5)  # wall-clock-ish: non-deterministic
        reg.histogram("tick_latency_ns", tenant="a").observe(2000)
        snap = reg.snapshot()
        assert snap["schema"] == 1
        assert snap["counters"] == {'ticks{tenant="a"}': 5}
        assert 'cache_hit_rate' in snap["gauges"]
        assert 'tick_latency_ns{tenant="a"}' in snap["histograms"]
        json.dumps(snap)  # JSON-safe throughout
        det = reg.deterministic_snapshot()
        assert det["values"] == {
            'ticks{tenant="a"}': 5,
            'cumulative_cost{tenant="a"}': 1.5,
        }

    def test_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("ticks", tenant="a").add(3)
        reg.histogram("lat", bounds=(10, 20), tenant="a").observe(15)
        text = reg.prometheus_text()
        assert "# TYPE ticks counter" in text
        assert 'ticks{tenant="a"} 3' in text
        assert '# TYPE lat histogram' in text
        assert 'le="+Inf"' in text
        assert 'lat_count{tenant="a"} 1' in text

    def test_series_cap_evicts_lru_and_folds(self):
        reg = MetricsRegistry(max_series_per_metric=4)
        for k in range(10):
            reg.counter("ticks", tenant=f"t{k}").inc()
        assert reg.series_count("ticks") == 4
        snap = reg.snapshot()
        evicted = snap["evicted"]["ticks"]
        assert evicted["series"] == 6 and evicted["value"] == 6
        # survivors are the most recently used
        assert 'ticks{tenant="t9"}' in snap["counters"]
        assert 'ticks{tenant="t0"}' not in snap["counters"]

    def test_collectors_are_weak(self):
        reg = MetricsRegistry()

        class Source:
            def __init__(self, name):
                self.c = reg.counter("pulls", src=name)

            def collect(self):
                self.c.inc()

        live = Source("live")
        dead = Source("dead")
        reg.register_collector(live.collect)
        reg.register_collector(dead.collect)
        del dead
        gc.collect()
        reg.collect()
        assert reg.counter("pulls", src="live").value == 1
        assert reg.counter("pulls", src="dead").value == 0  # not resurrected


# --------------------------------------------------------------------------- #
# Cardinality under tenant churn (satellite d)
# --------------------------------------------------------------------------- #


class TestCardinalityChurn:
    def test_1100_tenant_churn_keeps_registry_bounded(self):
        """1100 short-lived tenants over one shared cache must not grow
        registry memory unboundedly (mirrors the ledger-budget churn gate):
        dead sessions leave no series behind (weakref collectors), periodic
        scrapes mid-churn stay small, and the collector list is pruned."""
        instance = _quantised(T=32, levels=32)
        cache = ServeCache(instance.server_types)
        registry = cache.metrics
        n_tenants, ticks = 1100, 3
        ticks_series_seen = []
        for k in range(n_tenants):
            demands = np.roll(instance.demand, k % instance.T)[:ticks]
            session = ControllerSession(
                "reactive", instance.server_types, cache=cache,
                history=False, name=f"t{k}"
            )
            for demand in demands:
                session.observe(float(demand))
            if k % 200 == 199:
                # a mid-churn scrape only walks *live* sessions: at most the
                # one in hand, never the hundreds already gone
                registry.snapshot()
                ticks_series_seen.append(registry.series_count("ticks"))
        del session
        gc.collect()
        registry.snapshot()
        # per-tenant families never approached 1100-wide: only sessions live
        # at a scrape ever materialise series (one here, per scrape), so
        # growth is bounded by the scrape count, not the tenant count
        assert max(ticks_series_seen) <= len(ticks_series_seen) + 1
        for family in ("ticks", "sla_violations", "cumulative_cost",
                       "tick_latency_ns"):
            assert registry.series_count(family) <= len(ticks_series_seen) + 2
        assert registry.series_count() <= 128
        # dead sessions' collectors were pruned (weakrefs), so a scrape only
        # walks live objects — the cache itself plus at most the last session
        assert len(registry._collectors) <= 8
        # the cache's registry-backed counters still read correctly
        assert cache.counters()["unique_solves"] > 0

    def test_series_cap_bounds_1100_live_tenants(self):
        """Even when 1100 sessions are all *live* at scrape time, per-tenant
        families stop at the series cap and fold the overflow into the
        ``evicted`` aggregate instead of growing without bound."""
        instance = _quantised(T=8, levels=8)
        cache = ServeCache(instance.server_types)
        registry = cache.metrics
        sessions = []
        for k in range(1100):
            session = ControllerSession(
                "reactive", instance.server_types, cache=cache,
                history=False, name=f"t{k}"
            )
            session.observe(float(instance.demand[0]))
            sessions.append(session)
        snap = registry.snapshot()
        assert registry.series_count("ticks") == DEFAULT_MAX_SERIES
        assert snap["evicted"]["ticks"]["series"] == 1100 - DEFAULT_MAX_SERIES
        assert registry.series_count() <= 12 * DEFAULT_MAX_SERIES

    def test_registry_snapshot_stable_across_identical_replays(self):
        instance = _quantised(T=16)

        def replay():
            engine = ServeEngine(share_caches=True)
            for k in range(4):
                feed = InstanceFeed(
                    instance.with_demand(np.roll(instance.demand, k), name=f"t{k}")
                )
                engine.add_tenant(f"t{k}", "reactive", feed)
            engine.run()
            return engine.metrics.deterministic_snapshot()

        assert replay() == replay()


# --------------------------------------------------------------------------- #
# TelemetryWriter: buffering, rotation, schema (satellites a + b)
# --------------------------------------------------------------------------- #


class TestTelemetryWriter:
    def test_schema_stamped_and_legacy_rows_accepted(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetryWriter(path) as writer:
            writer.write({"t": 0, "latency_ms": 0.001}, tenant="a")
        with open(path) as handle:
            row = json.loads(handle.readline())
        assert row["schema"] == 1 and row["tenant"] == "a"
        # a legacy (versionless) row mixed in is still consumed by the tail
        with open(path, "a") as handle:
            handle.write(json.dumps({"t": 1, "tenant": "a", "latency_ms": 0.002}) + "\n")
            handle.write(json.dumps({"t": 2, "schema": 99}) + "\n")
        tail = TelemetryTail(path)
        rows = tail.poll()
        assert [r["t"] for r in rows] == [0, 1]
        assert tail.skipped_schema == 1

    def test_flush_every_buffers_and_close_flushes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TelemetryWriter(path, flush_every=100)
        for t in range(5):
            writer.write({"t": t}, tenant="a")
        # small rows sit in the user-space buffer until an explicit flush
        assert path.read_text() == ""
        writer.flush()
        assert len(path.read_text().splitlines()) == 5
        for t in range(5, 8):
            writer.write({"t": t}, tenant="a")
        writer.close()  # close flushes the tail
        assert len(path.read_text().splitlines()) == 8

    def test_rotation_keeps_two_generations(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TelemetryWriter(path, rotate_bytes=200)
        for t in range(50):
            writer.write({"t": t}, tenant="a")
        writer.close()
        first = tmp_path / "t.jsonl.1"
        second = tmp_path / "t.jsonl.2"
        assert writer.rotations >= 2
        assert first.exists() and second.exists()
        # every surviving generation holds contiguous, parseable rows
        for p in (second, first, path):
            for line in p.read_text().splitlines():
                json.loads(line)

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetryWriter(None, flush_every=0)
        with pytest.raises(ValueError):
            TelemetryWriter(None, rotate_bytes=0)

    def test_incremental_tail_handles_partial_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"t": 0}\n{"t": 1')
        tail = TelemetryTail(path)
        assert [r["t"] for r in tail.poll()] == [0]
        with open(path, "a") as handle:
            handle.write('}\n')
        assert [r["t"] for r in tail.poll()] == [1]


# --------------------------------------------------------------------------- #
# latency_percentiles ns path (satellite c)
# --------------------------------------------------------------------------- #


class TestLatencyPercentiles:
    def test_empty_is_exactly_ticks_zero(self):
        assert latency_percentiles([]) == {"ticks": 0}
        assert latency_percentiles(latencies_ns=[]) == {"ticks": 0}

    def test_ns_path_and_histogram(self):
        ns = [1_000_000, 2_000_000, 3_000_000, 4_000_000]
        out = latency_percentiles(latencies_ns=ns)
        assert out["ticks"] == 4
        assert out["p50_ms"] == 2.5
        hist = out["histogram"]
        assert hist["bucket_le_ns"] == list(LATENCY_BUCKETS_NS)
        assert sum(hist["counts"]) == 4
        # 1ms lands exactly on the 1_000_000 bound: side="left" puts it in
        # the bucket whose bound it equals
        assert hist["counts"][LATENCY_BUCKETS_NS.index(1_000_000)] == 1

    def test_seconds_path_agrees_with_ns_path(self):
        ns = np.array([1234, 56789, 1_000_000, 987_654_321], dtype=np.int64)
        via_seconds = latency_percentiles([v * 1e-9 for v in ns])
        via_ns = latency_percentiles(latencies_ns=ns)
        assert via_seconds == via_ns


# --------------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------------- #


class TestTracer:
    def test_sampling_knob(self):
        tracer = TickTracer(trace_every=3)
        sampled = [tracer.should_sample() for _ in range(9)]
        assert sampled == [True, False, False] * 3
        assert tracer.sampled_ticks == 3

    def test_peek_does_not_consume(self):
        tracer = TickTracer(trace_every=2)
        assert tracer.peek() and tracer.peek()
        assert tracer.should_sample()
        assert not tracer.peek()

    def test_traced_session_is_bit_identical(self):
        instance = _quantised(T=24)
        plain = ControllerSession("A", instance.server_types)
        traced = ControllerSession(
            "A", instance.server_types, tracer=TickTracer(trace_every=2)
        )
        for value in instance.demand:
            plain.observe(float(value))
            traced.observe(float(value))
        plain.finish()
        traced.finish()
        assert np.array_equal(plain.schedule.x, traced.schedule.x)
        assert plain.cumulative_cost == traced.cumulative_cost

    def test_phase_breakdown_and_decide_attribution(self):
        instance = _quantised(T=16)
        tracer = TickTracer(trace_every=1)
        session = ControllerSession("A", instance.server_types, tracer=tracer)
        for value in instance.demand:
            session.observe(float(value))
        session.finish()
        phases = tracer.summary()["phases"]
        assert phases["prepare"]["spans"] == 16
        assert phases["commit"]["spans"] == 16
        decide = sum(
            row["spans"] for name, row in phases.items() if name.startswith("decide[")
        )
        assert decide == 16

    def test_chrome_trace_shape(self, tmp_path):
        tracer = TickTracer()
        tracer.record("prepare", "a", 0, 1000, 2500)
        tracer.record("commit", "b", 0, 2500, 3000)
        trace = tracer.to_chrome_trace()
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert len(events) == 2 and len(meta) == 2
        assert events[0]["ts"] == 0.0 and events[0]["dur"] == 1.5  # µs, rebased
        assert {e["tid"] for e in events} == {1, 2}
        out = tmp_path / "trace.json"
        tracer.dump(out)
        json.loads(out.read_text())

    def test_max_spans_bound(self):
        tracer = TickTracer(max_spans=2)
        for k in range(5):
            tracer.record("p", "a", k, 0, 1)
        assert len(tracer.spans) == 2 and tracer.dropped_spans == 3


# --------------------------------------------------------------------------- #
# Watch: exact summary reproduction + command surface
# --------------------------------------------------------------------------- #


class TestWatch:
    def _engine_with_telemetry(self, tmp_path, n=3, T=24):
        instance = _quantised(T=T)
        engine = ServeEngine(share_caches=True)
        for k in range(n):
            feed = InstanceFeed(
                instance.with_demand(np.roll(instance.demand, k), name=f"t{k}")
            )
            engine.add_tenant(f"t{k}", "A", feed)
        path = tmp_path / "telemetry.jsonl"
        with TelemetryWriter(path) as writer:
            engine.run(telemetry=writer)
        return engine, path

    def test_watch_model_matches_summarise_sessions_exactly(self, tmp_path):
        engine, path = self._engine_with_telemetry(tmp_path)
        model = WatchModel()
        model.ingest_all(TelemetryTail(path).poll())
        assert model.summary() == summarise_sessions(engine.sessions)

    def test_watch_model_shed_and_sla_exact_under_chaos(self, tmp_path):
        instance = _quantised(T=32)
        plan = EventPlan.generate(instance.T, instance.d, seed=7, n_events=4)
        feed = ChaosFeed(InstanceFeed(instance), plan)
        session = ControllerSession(
            "A", instance.server_types, degradation="shed", name="chaotic"
        )
        path = tmp_path / "telemetry.jsonl"
        with TelemetryWriter(path) as writer:
            for tick in feed:
                state = session.observe(
                    tick.demand, cost_row=tick.cost_row, counts=tick.counts
                )
                writer.write(state.as_row(), tenant=session.name)
        session.finish()
        model = WatchModel()
        model.ingest_all(TelemetryTail(path).poll())
        assert model.summary() == summarise_sessions([session])

    def test_expect_gate_passes_and_fails(self, tmp_path, capsys):
        engine, path = self._engine_with_telemetry(tmp_path)
        expected = tmp_path / "expected.json"
        expected.write_text(
            json.dumps({"schema": 1, "summary": summarise_sessions(engine.sessions)})
        )
        assert watch_command(path, expect=str(expected)) == 0
        wrong = summarise_sessions(engine.sessions)
        wrong["total_cost"] += 1.0
        expected.write_text(json.dumps({"summary": wrong}))
        assert watch_command(path, expect=str(expected)) == 1
        assert "MISMATCH" in capsys.readouterr().err

    def test_json_and_html_outputs(self, tmp_path):
        _, path = self._engine_with_telemetry(tmp_path, n=2, T=8)
        json_out = tmp_path / "summary.json"
        html_out = tmp_path / "page.html"
        assert watch_command(path, json_out=str(json_out)) == 0
        payload = json.loads(json_out.read_text())
        assert payload["schema"] == 1 and payload["tenants"] == 2
        assert watch_command(path, html_out=str(html_out)) == 0
        page = html_out.read_text()
        assert page.startswith("<!DOCTYPE html>") and "t0" in page

    def test_missing_path_is_an_error(self, tmp_path):
        assert watch_command(tmp_path / "nope.jsonl", once=True) == 2

    def test_fabric_watcher_reads_run_dir(self, tmp_path):
        worker = tmp_path / "worker-0"
        worker.mkdir()
        (worker / "heartbeat.json").write_text(json.dumps(
            {"schema": 1, "worker": 0, "incarnation": 1, "round": 3,
             "time": 0.0, "ticks": {"a": 9}}
        ))
        (worker / "result.json").write_text(json.dumps(
            {"schema": 1, "worker": 0, "incarnation": 1, "rounds": 4,
             "tenants": {"a": {"status": "drained", "ticks": 12,
                               "breaker": {"state": "closed"}}},
             "metrics": {"schema": 1, "counters": {"ticks{tenant=\"a\"}": 12}}}
        ))
        (tmp_path / "a.ckpt.json").write_text(json.dumps(
            {"tick": 12, "cum_operating": 3.0, "cum_switching": 1.5,
             "sla_violations": 0, "shed_total": 0.0}
        ))
        summary = FabricWatcher(tmp_path).summary()
        worker_row = summary["workers"][0]
        assert worker_row["status"] == "done"
        assert worker_row["tenants"]["a"]["breaker"] == "closed"
        assert worker_row["metric_series"] == 1
        assert summary["totals"] == {
            "ticks": 12, "cost": 4.5, "sla_violations": 0, "shed_demand": 0.0
        }


# --------------------------------------------------------------------------- #
# Registry threading through the serve layers
# --------------------------------------------------------------------------- #


class TestRegistryThreading:
    def test_session_counters_surface_in_registry(self):
        instance = _quantised(T=12)
        session = ControllerSession("A", instance.server_types, name="solo")
        for value in instance.demand:
            session.observe(float(value))
        session.finish()
        snap = session.metrics.snapshot()
        assert snap["counters"]['ticks{tenant="solo"}'] == 12
        hist = snap["histograms"]['tick_latency_ns{tenant="solo"}']
        assert hist["count"] == 12
        assert session.latency_summary()["histogram"]["counts"] == hist["counts"]

    def test_cache_counters_dict_equals_registry_series(self):
        instance = _quantised(T=12)
        cache = ServeCache(instance.server_types, metrics_label="c0")
        session = ControllerSession("A", instance.server_types, cache=cache)
        for value in instance.demand:
            session.observe(float(value))
        counters = cache.counters()
        snap = cache.metrics.snapshot()["counters"]
        for key in ("tensor_hits", "tensor_misses", "table_gathers",
                    "unique_solves", "slot_queries"):
            assert snap[f'{key}{{cache="c0"}}'] == counters[key]

    def test_engine_report_carries_registry_snapshot(self):
        instance = _quantised(T=8)
        engine = ServeEngine(share_caches=True)
        engine.add_tenant("a", "reactive", InstanceFeed(instance))
        report = engine.run()
        metrics = report["metrics"]
        assert metrics["schema"] == 1
        assert metrics["counters"]['ticks{tenant="a"}'] == 8

    def test_chaos_injector_counters(self):
        instance = _quantised(T=16)
        plan = EventPlan.generate(instance.T, instance.d, seed=3, n_events=4)
        registry = MetricsRegistry()
        injector = FaultInjector(
            plan, server_types=instance.server_types,
            metrics=registry, tenant="chaotic",
        )
        perturbed = 0
        for tick in InstanceFeed(instance):
            out = injector.inject(tick)
            perturbed += out is not tick
        counters = injector.counters()
        assert counters["injected_ticks"] == perturbed > 0
        assert (
            registry.counter("chaos_injected_ticks", tenant="chaotic").value
            == perturbed
        )
        assert perturbed <= (
            counters["demand_faults"]
            + counters["capacity_faults"]
            + counters["price_faults"]
        )
