"""Tests for the analysis toolkit: metrics, ratios, sweeps, ASCII plots, reports."""

import numpy as np
import pytest

from repro import (
    AlgorithmA,
    ProblemInstance,
    Reactive,
    Schedule,
    compute_metrics,
    empirical_ratio,
    ratio_table,
    solve_optimal,
    theoretical_bound,
)
from repro.analysis import (
    SweepResult,
    compare_plot,
    format_markdown_table,
    format_table,
    rows_to_csv,
    run_sweep,
    schedule_plot,
    series_plot,
    step_plot,
)
from repro.analysis.competitive import RatioResult


class TestMetrics:
    def test_metrics_consistency(self, small_instance):
        sched = solve_optimal(small_instance).schedule
        metrics = compute_metrics(small_instance, sched, name="opt")
        assert metrics.total_cost == pytest.approx(metrics.operating_cost + metrics.switching_cost)
        assert metrics.operating_cost == pytest.approx(metrics.idle_cost + metrics.load_dependent_cost)
        assert metrics.feasible
        assert metrics.mean_utilisation <= 1.0 + 1e-9

    def test_metrics_row_keys(self, small_instance):
        sched = Schedule.constant(small_instance.T, small_instance.m)
        row = compute_metrics(small_instance, sched, name="all-on").as_row()
        assert row["name"] == "all-on"
        assert {"total", "operating", "switching", "power_ups", "feasible"} <= set(row)

    def test_peak_and_power_ups(self, small_instance):
        sched = Schedule.from_rows([[1, 0], [2, 0], [3, 1], [1, 0], [0, 0], [3, 0]])
        metrics = compute_metrics(small_instance, sched)
        np.testing.assert_array_equal(metrics.peak_active, [3, 1])
        assert int(np.sum(metrics.power_ups)) == int(np.sum(sched.power_ups()))


class TestCompetitiveHelpers:
    def test_empirical_ratio(self, small_instance):
        res = empirical_ratio(small_instance, AlgorithmA(), bound=theoretical_bound(small_instance, "A"))
        assert res.ratio >= 1.0 - 1e-9
        assert res.within_bound
        row = res.as_row()
        assert row["within_bound"] is True
        assert row["algorithm"] == "algorithm-A"

    def test_ratio_without_bound(self, small_instance):
        res = empirical_ratio(small_instance, Reactive())
        assert res.within_bound is None
        assert "bound" not in res.as_row()

    def test_zero_optimum_edge_case(self):
        res = RatioResult(instance="x", algorithm="a", online_cost=0.0, optimal_cost=0.0)
        assert res.ratio == 1.0
        res2 = RatioResult(instance="x", algorithm="a", online_cost=1.0, optimal_cost=0.0)
        assert res2.ratio == float("inf")

    def test_ratio_table(self, small_instance, homogeneous_instance):
        rows = ratio_table(
            [small_instance.prefix(4), homogeneous_instance.prefix(4)],
            [AlgorithmA, Reactive],
        )
        assert len(rows) == 4
        assert all(r.ratio >= 1.0 - 1e-9 for r in rows)

    def test_theoretical_bounds(self, small_instance, load_independent_instance):
        assert theoretical_bound(small_instance, "A") == 5.0
        assert theoretical_bound(load_independent_instance, "A") == 4.0
        assert theoretical_bound(small_instance, "B") == pytest.approx(5.0 + small_instance.c_constant())
        assert theoretical_bound(small_instance, "C", epsilon=0.25) == pytest.approx(5.25)
        with pytest.raises(ValueError):
            theoretical_bound(small_instance, "C")
        with pytest.raises(ValueError):
            theoretical_bound(small_instance, "Z")


class TestSweep:
    def test_run_sweep_product(self):
        result = run_sweep(
            lambda a, b: {"sum": a + b},
            {"a": [1, 2, 3], "b": [10, 20]},
        )
        assert len(result) == 6
        assert set(result.column("sum")) == {11, 21, 12, 22, 13, 23}
        assert all("elapsed_seconds" in row for row in result.as_rows())

    def test_filter_and_column(self):
        result = run_sweep(lambda a, b: {"sum": a + b}, {"a": [1, 2], "b": [5]})
        filtered = result.filter(a=2)
        assert len(filtered) == 1
        assert filtered.column("sum") == [7]

    def test_repeat_validation(self):
        with pytest.raises(ValueError):
            run_sweep(lambda a: {"v": a}, {"a": [1]}, repeat=0)


class TestReports:
    ROWS = [
        {"name": "A", "cost": 12.5, "ratio": 1.2},
        {"name": "B", "cost": 30.0, "ratio": 2.9},
    ]

    def test_format_table(self):
        text = format_table(self.ROWS, title="results")
        assert "results" in text
        assert "name" in text and "ratio" in text
        assert "12.5" in text

    def test_markdown_table(self):
        text = format_markdown_table(self.ROWS)
        assert text.startswith("| name")
        assert "| A " in text or "| A |" in text

    def test_csv(self):
        text = rows_to_csv(self.ROWS)
        lines = text.strip().splitlines()
        assert lines[0] == "name,cost,ratio"
        assert len(lines) == 3

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"
        assert format_markdown_table([]) == "(no rows)"

    def test_heterogeneous_columns(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text


class TestAsciiPlots:
    def test_step_plot_integral_series(self):
        text = step_plot([0, 1, 3, 2, 0], title="servers")
        assert "servers" in text
        assert "#" in text
        # three rows of bars for a max of 3
        assert text.count("|") >= 3

    def test_step_plot_float_series(self):
        text = step_plot([0.0, 2.5, 7.9], height=5)
        assert "#" in text

    def test_step_plot_empty(self):
        assert "empty" in step_plot([])

    def test_step_plot_rejects_2d(self):
        with pytest.raises(ValueError):
            step_plot(np.zeros((2, 2)))

    def test_series_and_schedule_plot(self, small_instance):
        sched = solve_optimal(small_instance).schedule
        text = schedule_plot(sched.x, type_names=["cpu", "gpu"], title="optimal")
        assert "cpu" in text and "gpu" in text and "optimal" in text
        combo = compare_plot(small_instance.demand, {"opt": sched.x}, type_index=0)
        assert "demand" in combo and "opt" in combo
