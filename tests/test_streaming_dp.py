"""Streaming DP core: checkpointed backtracking vs the all-tables reference.

The streaming value pass (:func:`repro.offline.dp.solve_dp` without
``keep_tables``) must be a pure memory optimisation: the backward pass
rematerialises each checkpoint window by re-running the forward recurrence, so
the recovered tables — and therefore the argmin chain — are **bit-identical**
to the classic pass.  These tests assert exactly that, across

* full and gamma-reduced grids,
* time-varying fleet sizes ``m_{t,j}`` (different grids per slot),
* checkpoint windows 1, 7, T and > T (degenerate window shapes), and
* the float32 value stream (schedule-quality within 1e-5 of cost after the
  float64 re-evaluation).

Plus the supporting cast: the window auto-tuner, the windowed operating-cost
provider, the ``return_schedule=False -> schedule is None`` contract, and the
checkpointed :class:`~repro.online.tracker.SharedValueStream`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ProblemInstance
from repro.dispatch.allocation import DispatchSolver
from repro.offline.dp import (
    STREAMING_TABLE_BYTES_THRESHOLD,
    WindowedOperatingCosts,
    default_checkpoint_every,
    operating_cost_tensors,
    solve_dp,
)
from repro.offline.graph_approx import solve_approx
from repro.offline.graph_optimal import solve_optimal
from repro.offline.state_grid import grid_for_slot
from repro.online.base import SlotContext
from repro.online.tracker import SharedTrackerFactory, SharedValueStream
from repro.workloads import (
    bursty_trace,
    cpu_gpu_fleet,
    diurnal_trace,
    fleet_instance,
    old_new_fleet,
)

WINDOWS = [1, 7, None, "T", "T+13"]  # None = auto; resolved per instance below


def _resolve_window(window, T):
    if window == "T":
        return T
    if window == "T+13":
        return T + 13
    return window


@pytest.fixture
def horizon_instance():
    """T=41 (prime, so windows never divide evenly), d=2, noisy demands."""
    return fleet_instance(
        cpu_gpu_fleet(cpu_count=4, gpu_count=2),
        diurnal_trace(41, period=12, base=1.0, peak=9.0, noise=0.1, rng=3),
        name="stream-horizon",
    )


@pytest.fixture
def varying_counts_instance():
    """Time-varying m_{t,j}: maintenance window plus a late expansion."""
    T = 36
    base = fleet_instance(
        old_new_fleet(old_count=4, new_count=3),
        bursty_trace(T, base=1.0, burst_height=6.0, burst_probability=0.2, rng=5),
    )
    counts = np.tile([4, 3], (T, 1)).astype(int)
    counts[8:14, 0] = 2
    counts[20:, 1] = 5
    cap = np.array(
        [4.0 * 1.0 + c * 2.0 for c in counts[:, 1]]
    )  # old capacity 1.0, new capacity 2.0
    demand = np.minimum(base.demand, 0.9 * cap)
    return ProblemInstance(base.server_types, demand, counts=counts, name="stream-varying")


class TestCheckpointedEquivalence:
    @pytest.mark.parametrize("window", WINDOWS)
    def test_full_grid_schedules_bit_identical(self, horizon_instance, window):
        reference = solve_dp(horizon_instance, keep_tables=True)
        window = _resolve_window(window, horizon_instance.T)
        streamed = solve_dp(horizon_instance, checkpoint_every=window)
        assert streamed.schedule is not None
        assert np.array_equal(streamed.schedule.x, reference.schedule.x)
        assert streamed.cost == pytest.approx(reference.cost, abs=1e-9)

    @pytest.mark.parametrize("window", WINDOWS)
    @pytest.mark.parametrize("gamma", [1.3, 2.0])
    def test_reduced_grid_schedules_bit_identical(self, horizon_instance, window, gamma):
        reference = solve_dp(horizon_instance, gamma=gamma, keep_tables=True)
        window = _resolve_window(window, horizon_instance.T)
        streamed = solve_dp(horizon_instance, gamma=gamma, checkpoint_every=window)
        assert np.array_equal(streamed.schedule.x, reference.schedule.x)
        assert streamed.cost == pytest.approx(reference.cost, abs=1e-9)

    @pytest.mark.parametrize("window", [1, 5, 7, 36, 49])
    def test_time_varying_counts_bit_identical(self, varying_counts_instance, window):
        reference = solve_dp(varying_counts_instance, keep_tables=True)
        streamed = solve_dp(varying_counts_instance, checkpoint_every=window)
        assert np.array_equal(streamed.schedule.x, reference.schedule.x)
        assert streamed.cost == pytest.approx(reference.cost, abs=1e-9)

    def test_time_varying_counts_reduced_grid(self, varying_counts_instance):
        reference = solve_dp(varying_counts_instance, gamma=1.5, keep_tables=True)
        streamed = solve_dp(varying_counts_instance, gamma=1.5, checkpoint_every=7)
        assert np.array_equal(streamed.schedule.x, reference.schedule.x)
        assert streamed.cost == pytest.approx(reference.cost, abs=1e-9)

    def test_cost_only_streaming_matches(self, horizon_instance):
        reference = solve_dp(horizon_instance, keep_tables=True)
        cost_only = solve_dp(horizon_instance, checkpoint_every=7, return_schedule=False)
        assert cost_only.schedule is None
        # the forward minimum is the re-evaluated schedule cost up to dispatch
        # tolerance (exactly the same relationship as the classic pass)
        assert cost_only.cost == pytest.approx(reference.cost, rel=1e-9)

    def test_streaming_result_records_window(self, horizon_instance):
        assert solve_dp(horizon_instance, checkpoint_every=7).checkpoint_every == 7
        # windows larger than T are clamped
        assert (
            solve_dp(horizon_instance, checkpoint_every=10_000).checkpoint_every
            == horizon_instance.T
        )
        # small instances auto-tune to the full-history pass
        assert solve_dp(horizon_instance).checkpoint_every is None

    def test_solver_entry_points_thread_streaming(self, horizon_instance):
        exact = solve_optimal(horizon_instance, checkpoint_every=9)
        assert np.array_equal(
            exact.schedule.x, solve_optimal(horizon_instance, keep_tables=True).schedule.x
        )
        approx = solve_approx(horizon_instance, epsilon=0.5, checkpoint_every=9)
        reference = solve_approx(horizon_instance, epsilon=0.5, keep_tables=True)
        assert np.array_equal(approx.schedule.x, reference.schedule.x)
        assert approx.cost == pytest.approx(reference.cost, abs=1e-9)


class TestFloat32Stream:
    def test_float32_cost_close_and_reeval_exact(self, horizon_instance):
        reference = solve_dp(horizon_instance, keep_tables=True)
        streamed = solve_dp(horizon_instance, checkpoint_every=7, value_dtype="float32")
        # the cost is within the float32 stream tolerance of the optimum ...
        assert streamed.cost == pytest.approx(reference.cost, rel=1e-5)
        # ... and is the *float64* re-evaluation of the schedule the float32
        # argmin chain picked, not a single-precision accumulation
        from repro.core.costs import total_cost

        assert streamed.cost == pytest.approx(
            total_cost(horizon_instance, streamed.schedule), abs=1e-9
        )

    def test_float32_cost_only(self, horizon_instance):
        reference = solve_dp(horizon_instance, return_schedule=False)
        streamed = solve_dp(
            horizon_instance, checkpoint_every=7, return_schedule=False, value_dtype="float32"
        )
        assert streamed.cost == pytest.approx(reference.cost, rel=1e-5)

    def test_float32_keep_tables_dtype(self, horizon_instance):
        result = solve_dp(horizon_instance, keep_tables=True, value_dtype="float32")
        assert all(table.dtype == np.float32 for table in result.value_tables)

    def test_rejects_other_dtypes(self, horizon_instance):
        with pytest.raises(ValueError):
            solve_dp(horizon_instance, value_dtype="int32")


class TestAutoTuner:
    def test_small_keeps_history(self):
        assert default_checkpoint_every(100, 100) is None

    def test_large_takes_sqrt(self):
        assert default_checkpoint_every(50_000, 2_501) == 224  # ceil(sqrt(50000))

    def test_threshold_boundary(self):
        states = 1000
        small_T = STREAMING_TABLE_BYTES_THRESHOLD // (states * 8)
        assert default_checkpoint_every(small_T, states) is None
        assert default_checkpoint_every(small_T + 1, states) is not None

    def test_float32_itemsize_doubles_reach(self):
        states = 1000
        T = STREAMING_TABLE_BYTES_THRESHOLD // (states * 8) + 1
        assert default_checkpoint_every(T, states, itemsize=8) is not None
        assert default_checkpoint_every(T, states, itemsize=4) is None


class TestWindowedProvider:
    def test_matches_whole_horizon_tensors(self, horizon_instance):
        dispatcher = DispatchSolver(horizon_instance)
        grids = tuple(
            grid_for_slot(horizon_instance, t) for t in range(horizon_instance.T)
        )
        reference = operating_cost_tensors(horizon_instance, grids, dispatcher)
        provider = WindowedOperatingCosts(
            horizon_instance, grids, DispatchSolver(horizon_instance), window=7, memoise=False
        )
        for t in range(horizon_instance.T):
            np.testing.assert_allclose(
                provider.tensor(t), reference[t], rtol=0, atol=1e-9, equal_nan=True
            )

    def test_signature_memo_bounds_dispatch_work(self, horizon_instance):
        dispatcher = DispatchSolver(horizon_instance)
        grids = tuple(
            grid_for_slot(horizon_instance, t) for t in range(horizon_instance.T)
        )
        provider = WindowedOperatingCosts(
            horizon_instance, grids, dispatcher, window=7, memoise=False
        )
        for t in range(horizon_instance.T):
            provider.tensor(t)
        first_pass = dispatcher.stats.unique_solves
        # a second full traversal (the backward pass) is served from the memo
        for t in range(horizon_instance.T):
            provider.tensor(t)
        assert dispatcher.stats.unique_solves == first_pass
        assert provider.signature_memo_hits >= horizon_instance.T

    def test_memo_budget_zero_degrades_to_recompute(self, horizon_instance):
        dispatcher = DispatchSolver(horizon_instance)
        grids = tuple(
            grid_for_slot(horizon_instance, t) for t in range(horizon_instance.T)
        )
        provider = WindowedOperatingCosts(
            horizon_instance, grids, dispatcher, window=7, memoise=False, memo_bytes=0
        )
        for t in range(horizon_instance.T):
            provider.tensor(t)
        assert provider.signature_memo_hits == 0
        # correctness unaffected
        reference = operating_cost_tensors(
            horizon_instance, grids, DispatchSolver(horizon_instance)
        )
        np.testing.assert_allclose(provider.tensor(40), reference[40], atol=1e-9)

    def test_streaming_does_not_grow_dispatch_cache(self, horizon_instance):
        dispatcher = DispatchSolver(horizon_instance)
        solve_dp(horizon_instance, dispatcher=dispatcher, checkpoint_every=7)
        assert len(dispatcher._block_cache) == 0

    def test_classic_pass_still_memoises(self, horizon_instance):
        dispatcher = DispatchSolver(horizon_instance)
        solve_dp(horizon_instance, dispatcher=dispatcher, keep_tables=True)
        assert len(dispatcher._block_cache) > 0


class TestCostOnlyContract:
    def test_schedule_none_and_empty_instance(self, horizon_instance, two_type_fleet):
        assert solve_dp(horizon_instance, return_schedule=False).schedule is None
        empty = ProblemInstance(two_type_fleet, np.zeros(0))
        assert solve_dp(empty, return_schedule=False).schedule is None
        with_schedule = solve_dp(empty)
        assert with_schedule.schedule is not None and with_schedule.schedule.T == 0


class TestCheckpointedSharedStream:
    def _context(self, instance, checkpoint_every=None):
        return SlotContext(instance)

    @pytest.mark.parametrize("window", [1, 7, 50])
    def test_stream_replay_and_backtrack(self, horizon_instance, window):
        instance = horizon_instance
        slots = self._context(instance)
        reference = solve_dp(instance, keep_tables=True)

        factory = SharedTrackerFactory(checkpoint_every=window)
        tracker = factory.tracker()
        for t in range(instance.T):
            tracker.observe(slots.slot(t))
        stream = factory.stream()
        assert len(stream) == instance.T
        # the frontier minimum is the offline optimum of the forward tables
        assert float(np.min(stream.value_at(instance.T - 1))) == pytest.approx(
            float(np.min(reference.value_tables[-1])), abs=1e-9
        )
        # rematerialised interior tensors equal the reference tables exactly
        for t in (0, 3, window - 1 if window > 1 else 1, instance.T // 2, instance.T - 2):
            t = min(max(t, 0), instance.T - 1)
            np.testing.assert_array_equal(
                np.asarray(stream.value_at(t)), np.asarray(reference.value_tables[t])
            )
        # the windowed backward pass reproduces the reference schedule
        configs = stream.backtrack(instance.beta)
        assert np.array_equal(configs, reference.schedule.x)

    def test_second_tracker_replays_identically(self, horizon_instance):
        slots = self._context(horizon_instance)
        factory = SharedTrackerFactory(checkpoint_every=6)
        first = factory.tracker()
        hats_first = [first.observe(slots.slot(t)) for t in range(horizon_instance.T)]
        second = factory.tracker(tie_break="largest")
        hats_second = []
        for t in range(horizon_instance.T):
            hats_second.append(second.observe(slots.slot(t)))
        plain = SharedTrackerFactory()
        ref_first = plain.tracker()
        ref_hats = [ref_first.observe(slots.slot(t)) for t in range(horizon_instance.T)]
        assert np.array_equal(np.array(hats_first), np.array(ref_hats))
        ref_second = plain.tracker(tie_break="largest")
        ref_hats2 = [ref_second.observe(slots.slot(t)) for t in range(horizon_instance.T)]
        assert np.array_equal(np.array(hats_second), np.array(ref_hats2))

    def test_checkpointed_stream_refuses_values_property(self):
        stream = SharedValueStream(checkpoint_every=4)
        with pytest.raises(RuntimeError):
            stream.values

    def test_rejects_bad_checkpoint_every(self):
        with pytest.raises(ValueError):
            SharedValueStream(checkpoint_every=0)


class TestSlotContextBudget:
    def test_budgeted_context_bounds_cache_and_stays_exact(self, horizon_instance):
        from repro.online.algorithm_a import AlgorithmA
        from repro.online.base import run_online

        plain = SlotContext(horizon_instance)
        budgeted = SlotContext(horizon_instance, tensor_budget_bytes=10_000)
        ref = run_online(horizon_instance, AlgorithmA(), slot_context=plain)
        got = run_online(horizon_instance, AlgorithmA(), slot_context=budgeted)
        assert np.array_equal(got.schedule.x, ref.schedule.x)
        assert got.cost == pytest.approx(ref.cost, abs=1e-9)
        assert budgeted._tensor_bytes_used <= 10_000
        assert len(budgeted._tensor_cache) < len(plain._tensor_cache)
        # the budgeted context keeps whole-grid blocks out of the dispatcher's
        # cache (small per-configuration rows from the algorithms' candidate
        # queries are fine — they are O(d) each, not O(|M| * d))
        grid = grid_for_slot(horizon_instance, 0)
        assert all(
            costs.shape[0] < grid.size
            for costs, _ in budgeted.dispatcher._block_cache.values()
        )

    def test_checkpointed_shared_context_sets_budget(self, horizon_instance):
        from repro.exp.shared import SharedInstanceContext

        ctx = SharedInstanceContext(horizon_instance, checkpoint_every=7)
        assert ctx.slots.tensor_budget_bytes == SharedInstanceContext.DEFAULT_TENSOR_BUDGET_BYTES
        assert SharedInstanceContext(horizon_instance).slots.tensor_budget_bytes is None


class TestSweepPlanPlumbing:
    def test_checkpointed_plan_reproduces_plain_records(self, horizon_instance):
        from repro.exp.engine import OfflineSpec, SweepPlan, run_plan, spec

        def plan(checkpoint_every):
            return SweepPlan(
                instances=(horizon_instance,),
                algorithms=(spec("A"), spec("B")),
                offline=(OfflineSpec(solver="approx", epsilon=0.5, checkpoint_every=5),),
                checkpoint_every=checkpoint_every,
            )

        plain = run_plan(plan(None))
        checkpointed = run_plan(plan(6))
        assert len(plain.records) == len(checkpointed.records)
        for a, b in zip(plain.records, checkpointed.records):
            assert a.algorithm == b.algorithm
            assert b.cost == pytest.approx(a.cost, abs=1e-9)
            assert b.optimal_cost == pytest.approx(a.optimal_cost, abs=1e-9)

    def test_offline_spec_float32(self, horizon_instance):
        from repro.exp.engine import OfflineSpec, run_instance

        records = run_instance(
            horizon_instance,
            offline=(
                OfflineSpec(solver="approx", epsilon=0.5),
                OfflineSpec(
                    solver="approx", epsilon=0.5, label="approx-f32",
                    checkpoint_every=7, value_dtype="float32",
                ),
            ),
        )
        by_label = {r.algorithm: r for r in records}
        assert by_label["approx-f32"].cost == pytest.approx(
            by_label["approx(eps=0.5)"].cost, rel=1e-5
        )
