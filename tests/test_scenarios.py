"""Tests for the declarative scenario registry and plan compiler.

Covers the four contracts the scenario layer makes:

* **addressability** — specs round-trip through dicts/JSON and rebuild the
  identical instance (same seed ⇒ identical demand arrays, fleets, names),
* **validation** — unknown family names and unknown parameters fail eagerly
  with specific errors, at spec, build and plan-compile time,
* **lazy execution** — a scenario-addressed ``SweepPlan`` produces costs
  identical (1e-9) to the equivalent hand-built instance plan, serial and
  process-sharded, with no ``ProblemInstance`` pickled into worker shards and
  the spec stamped into every record, and
* **unified seeding** — one scenario seed derives trace and fleet randomness
  through spawned sub-streams.
"""

import io
import json
from contextlib import redirect_stdout

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.instance import ProblemInstance
from repro.exp import SweepPlan, run_plan, spec
from repro.exp.engine import _shard_payloads, _plan_sources
from repro.scenarios import (
    ScenarioParamError,
    ScenarioSpec,
    UnknownScenarioError,
    build,
    compile_plan,
    describe,
    family,
    load_plan,
    names,
    scenario_specs,
    validate,
)
from repro.workloads import perturbed_fleet, spawn_streams
from repro.workloads.fleets import cpu_gpu_fleet
from repro.workloads.scale import big_fleet_instance, long_horizon_instance


# --------------------------------------------------------------------------- #
# ScenarioSpec round-trips
# --------------------------------------------------------------------------- #


class TestScenarioSpec:
    def test_dict_round_trip(self):
        original = ScenarioSpec("diurnal-cpu-gpu", {"T": 24, "peak": 8.0}, seed=3)
        assert ScenarioSpec.from_dict(original.to_dict()) == original

    def test_json_round_trip(self):
        original = ScenarioSpec("priced-cpu-gpu", {"T": 12, "amplitude": 0.3, "name": "x"}, seed=7)
        restored = ScenarioSpec.from_json(original.to_json())
        assert restored == original
        assert restored.params == {"T": 12, "amplitude": 0.3, "name": "x"}

    def test_minimal_spec_omits_empty_fields(self):
        assert ScenarioSpec("homogeneous").to_dict() == {"scenario": "homogeneous"}

    def test_parse_accepts_name_dict_and_spec(self):
        by_name = ScenarioSpec.parse("homogeneous")
        by_dict = ScenarioSpec.parse({"scenario": "homogeneous"})
        passthrough = ScenarioSpec.parse(by_name)
        assert by_name == by_dict == passthrough

    def test_rejects_non_json_params(self):
        with pytest.raises(TypeError):
            ScenarioSpec("homogeneous", {"T": np.int64(5)})
        with pytest.raises(TypeError):
            ScenarioSpec("homogeneous", {"fn": lambda: None})

    def test_rejects_bad_seed_and_name(self):
        with pytest.raises(TypeError):
            ScenarioSpec("homogeneous", seed="five")
        with pytest.raises(TypeError):
            ScenarioSpec("")

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown scenario-spec keys"):
            ScenarioSpec.from_dict({"scenario": "homogeneous", "instances": []})

    def test_tuple_params_canonicalised_to_lists(self):
        spec = ScenarioSpec("any", {"xs": (1, 2), "nested": {"ys": (3,)}})
        assert spec.params == {"xs": [1, 2], "nested": {"ys": [3]}}
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_hash_consistent_with_numeric_equality(self):
        a = ScenarioSpec("homogeneous", {"T": 1}, seed=2)
        b = ScenarioSpec("homogeneous", {"T": 1.0}, seed=2)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_with_overrides_merges(self):
        base = ScenarioSpec("homogeneous", {"T": 10})
        out = base.with_overrides(seed=2, peak=4.0)
        assert out.params == {"T": 10, "peak": 4.0}
        assert out.seed == 2
        assert base.params == {"T": 10}  # untouched


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #


class TestRegistry:
    def test_expected_families_registered(self):
        expected = {
            "diurnal-cpu-gpu", "homogeneous", "bursty-old-new", "load-independent",
            "spiky-three-tier", "priced-cpu-gpu", "time-varying-m",
            "heterogeneous-random", "long-horizon", "big-fleet",
        }
        assert expected <= set(names())

    def test_describe_exposes_params_and_defaults(self):
        info = describe("diurnal-cpu-gpu")
        assert info["params"]["T"] == 48
        assert info["params"]["seed"] == 1
        assert info["description"]
        assert info["smoke_params"]

    def test_every_family_has_buildable_smoke_params(self):
        for name in names():
            fam = family(name)
            instance = build(ScenarioSpec(name, dict(fam.smoke_params)))
            assert isinstance(instance, ProblemInstance)
            assert instance.T > 0
            assert instance.is_feasible()

    def test_unknown_family_raises(self):
        with pytest.raises(UnknownScenarioError, match="unknown scenario family 'nope'"):
            build("nope")

    def test_unknown_param_raises(self):
        with pytest.raises(ScenarioParamError, match="unknown parameter"):
            build("homogeneous", horizon=10)
        with pytest.raises(ScenarioParamError, match="unknown parameter"):
            validate(ScenarioSpec("homogeneous", {"horizon": 10}))

    def test_deterministic_rebuild(self):
        for name in ("diurnal-cpu-gpu", "bursty-old-new", "heterogeneous-random"):
            spec_obj = ScenarioSpec(name, {"T": 12}, seed=9)
            a, b = build(spec_obj), build(spec_obj)
            assert a.name == b.name
            assert np.array_equal(a.demand, b.demand)
            assert a.server_types == b.server_types

    def test_seed_changes_stochastic_families(self):
        a = build("diurnal-cpu-gpu", T=12, seed=0)
        b = build("diurnal-cpu-gpu", T=12, seed=1)
        assert not np.array_equal(a.demand, b.demand)

    def test_name_override_param(self):
        instance = build("homogeneous", T=8, name="my-own-name")
        assert instance.name == "my-own-name"


# --------------------------------------------------------------------------- #
# Unified seeding
# --------------------------------------------------------------------------- #


class TestSeeding:
    def test_spawn_streams_deterministic_and_independent(self):
        a1, b1 = spawn_streams(42, 2)
        a2, b2 = spawn_streams(42, 2)
        assert np.array_equal(a1.random(8), a2.random(8))
        assert np.array_equal(b1.random(8), b2.random(8))
        assert not np.array_equal(spawn_streams(42, 2)[0].random(8), spawn_streams(43, 2)[0].random(8))

    def test_perturbed_fleet_seeded_and_identity_at_zero(self):
        fleet = cpu_gpu_fleet()
        assert perturbed_fleet(fleet, jitter=0.0, rng=1) == list(fleet)
        j1 = perturbed_fleet(fleet, jitter=0.3, rng=spawn_streams(1, 1)[0])
        j2 = perturbed_fleet(fleet, jitter=0.3, rng=spawn_streams(1, 1)[0])
        assert [st.switching_cost for st in j1] == [st.switching_cost for st in j2]
        assert j1[0].switching_cost != fleet[0].switching_cost
        with pytest.raises(ValueError):
            perturbed_fleet(fleet, jitter=-0.1)

    def test_scale_builders_share_trace_across_heterogeneity(self):
        # the fleet sub-stream is independent of the trace sub-stream, and the
        # trace is sized against the unperturbed fleet: turning fleet jitter on
        # must not change the demand (up to the feasibility clip)
        plain = long_horizon_instance(T=64, cpu_count=6, gpu_count=4, levels=8, seed=5)
        jittered = long_horizon_instance(
            T=64, cpu_count=6, gpu_count=4, levels=8, seed=5, heterogeneity=0.2
        )
        assert jittered.server_types != plain.server_types
        cap = min(
            sum(st.count * st.capacity for st in plain.server_types),
            sum(st.count * st.capacity for st in jittered.server_types),
        )
        assert np.array_equal(np.minimum(plain.demand, cap), np.minimum(jittered.demand, cap))
        plain2 = long_horizon_instance(T=64, cpu_count=6, gpu_count=4, levels=8, seed=5)
        assert np.array_equal(plain.demand, plain2.demand)

    def test_big_fleet_builder_deterministic(self):
        a = big_fleet_instance(T=32, d=2, m_max=10, levels=8, seed=3)
        b = big_fleet_instance(T=32, d=2, m_max=10, levels=8, seed=3)
        assert np.array_equal(a.demand, b.demand)
        assert a.name == "big-fleet-T32-d2-m10"

    def test_heterogeneous_random_family_trace_independent_of_jitter(self):
        a = build("heterogeneous-random", T=16, jitter=0.0, seed=4)
        b = build("heterogeneous-random", T=16, jitter=0.5, seed=4)
        # same seed, different fleet jitter: fleets differ...
        assert a.server_types != b.server_types
        # ...but the demand stream is untouched up to the capacity clip
        cap = min(
            sum(st.count * st.capacity for st in a.server_types),
            sum(st.count * st.capacity for st in b.server_types),
        )
        mask = (a.demand < cap) & (b.demand < cap)
        assert mask.any()
        assert np.array_equal(a.demand[mask], b.demand[mask])


# --------------------------------------------------------------------------- #
# Plan compiler
# --------------------------------------------------------------------------- #


class TestCompiler:
    def test_compile_minimal_plan(self):
        plan = compile_plan({"scenarios": ["homogeneous"], "algorithms": ["A"]})
        assert plan.instances == ()
        assert plan.scenarios == (ScenarioSpec("homogeneous"),)
        assert plan.algorithms[0].kind == "A"

    def test_common_params_merge_with_entry_precedence(self):
        plan = compile_plan({
            "scenarios": ["homogeneous", {"scenario": "bursty-old-new", "params": {"T": 10}}],
            "params": {"T": 24},
            "algorithms": ["A"],
        })
        assert plan.scenarios[0].params == {"T": 24}
        assert plan.scenarios[1].params == {"T": 10}

    def test_seeds_expand(self):
        plan = compile_plan({
            "scenarios": ["homogeneous"], "seeds": [0, 1, 2], "algorithms": ["A"],
        })
        assert [s.seed for s in plan.scenarios] == [0, 1, 2]

    def test_entry_level_seed_survives_global_seeds(self):
        plan = compile_plan({
            "scenarios": [{"scenario": "homogeneous", "seed": 9}, "diurnal-cpu-gpu"],
            "seeds": [0, 1],
            "algorithms": ["A"],
        })
        assert [(s.name, s.seed) for s in plan.scenarios] == [
            ("homogeneous", 9), ("diurnal-cpu-gpu", 0), ("diurnal-cpu-gpu", 1),
        ]

    def test_seeds_must_be_an_integer_list(self):
        for bad in ("12", 5, [1, "2"], [True]):
            with pytest.raises(ValueError, match="seeds"):
                compile_plan({"scenarios": ["homogeneous"], "seeds": bad, "algorithms": ["A"]})

    def test_null_jobs_and_compute_optimal_mean_defaults(self):
        plan = compile_plan({
            "scenarios": ["homogeneous"],
            "algorithms": ["A"],
            "jobs": None,
            "compute_optimal": None,
            "checkpoint_every": None,
        })
        assert plan.jobs == 1
        assert plan.compute_optimal is True

    def test_offline_and_algorithm_dicts(self):
        plan = compile_plan({
            "scenarios": ["time-varying-m"],
            "algorithms": [{"kind": "C", "params": {"epsilon": 0.5}, "label": "C(0.5)"}],
            "offline": [{"solver": "approx", "epsilon": 0.5, "return_schedule": False}],
            "jobs": 3,
            "compute_optimal": False,
        })
        assert plan.algorithms[0].params == {"epsilon": 0.5}
        assert plan.offline[0].solver == "approx"
        assert plan.jobs == 3
        assert plan.compute_optimal is False

    def test_unknown_scenario_fails_at_compile_time(self):
        with pytest.raises(UnknownScenarioError):
            compile_plan({"scenarios": ["nope"], "algorithms": ["A"]})

    def test_unknown_param_fails_at_compile_time(self):
        with pytest.raises(ScenarioParamError):
            compile_plan({"scenarios": [{"scenario": "homogeneous", "params": {"bogus": 1}}]})

    def test_unknown_plan_key_rejected(self):
        with pytest.raises(ValueError, match="unknown plan keys"):
            compile_plan({"scenarios": ["homogeneous"], "instances": []})

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="at least one scenario"):
            compile_plan({"algorithms": ["A"]})

    def test_load_plan_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "scenarios": [{"scenario": "homogeneous", "params": {"T": 8}}],
            "algorithms": ["A"],
        }))
        plan = load_plan(path, jobs=2)
        assert plan.jobs == 2
        assert plan.scenarios[0].params == {"T": 8}

    def test_load_plan_rejects_bad_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_plan(path)

    def test_scenario_specs_helper(self):
        specs = scenario_specs(["homogeneous", "diurnal-cpu-gpu"], params={"T": 10}, seeds=[1, 2])
        assert len(specs) == 4
        assert all(s.params == {"T": 10} for s in specs)
        assert [s.seed for s in specs] == [1, 2, 1, 2]


# --------------------------------------------------------------------------- #
# Lazy execution through the sweep engine
# --------------------------------------------------------------------------- #


THREE_FAMILY_SPECS = (
    ScenarioSpec("homogeneous", {"T": 12}, seed=5),
    ScenarioSpec("diurnal-cpu-gpu", {"T": 12}, seed=1),
    ScenarioSpec("bursty-old-new", {"T": 12}, seed=2),
)


class TestLazyPlans:
    def _hand_built(self):
        return SweepPlan(
            instances=tuple(build(s) for s in THREE_FAMILY_SPECS),
            algorithms=(spec("A"), spec("B")),
        )

    def test_scenario_plan_matches_hand_built_serial(self):
        lazy = SweepPlan(scenarios=THREE_FAMILY_SPECS, algorithms=(spec("A"), spec("B")))
        a, b = run_plan(lazy), run_plan(self._hand_built())
        assert len(a.records) == len(b.records) == 6
        for ra, rb in zip(a.records, b.records):
            assert ra.instance == rb.instance
            assert ra.algorithm == rb.algorithm
            assert abs(ra.cost - rb.cost) <= 1e-9
            assert abs(ra.optimal_cost - rb.optimal_cost) <= 1e-9

    def test_scenario_plan_matches_hand_built_sharded(self):
        lazy = SweepPlan(scenarios=THREE_FAMILY_SPECS, algorithms=(spec("A"), spec("B")), jobs=2)
        sharded, serial = run_plan(lazy), run_plan(self._hand_built())
        assert sharded.meta["jobs"] == 2
        for ra, rb in zip(sharded.records, serial.records):
            assert abs(ra.cost - rb.cost) <= 1e-9
            assert ra.scenario is not None

    def test_no_instance_pickled_into_scenario_shards(self):
        plan = SweepPlan(scenarios=THREE_FAMILY_SPECS, algorithms=(spec("A"),), jobs=2)
        payloads = _shard_payloads(plan, plan.algorithms, plan.offline)
        assert len(payloads) == 3
        for payload in payloads:
            instance, scenario = payload[0], payload[1]
            assert instance is None
            assert isinstance(scenario, ScenarioSpec)
            assert not any(isinstance(item, ProblemInstance) for item in payload)

    def test_mixed_instances_and_scenarios_run_in_plan_order(self):
        plan = SweepPlan(
            instances=(build("homogeneous", T=10),),
            scenarios=(ScenarioSpec("diurnal-cpu-gpu", {"T": 10}),),
            algorithms=(spec("A"),),
        )
        report = run_plan(plan)
        assert [r.instance for r in report.records] == ["homogeneous-T10", "diurnal-cpu-gpu-T10"]
        assert report.records[0].scenario is None
        assert report.records[1].scenario == {"scenario": "diurnal-cpu-gpu", "params": {"T": 10}}

    def test_scenario_stamp_in_records_and_rows(self):
        plan = SweepPlan(scenarios=(ScenarioSpec("homogeneous", {"T": 10}, seed=3),),
                         algorithms=(spec("A"),))
        report = run_plan(plan)
        record = report.records[0]
        assert record.scenario == {"scenario": "homogeneous", "params": {"T": 10}, "seed": 3}
        assert record.as_row()["scenario"] == record.scenario
        assert report.meta["scenarios"] == [record.scenario]

    def test_string_and_dict_scenario_entries_accepted(self):
        plan = SweepPlan(
            scenarios=("homogeneous", {"scenario": "homogeneous", "params": {"T": 10}}),
            algorithms=(),
            offline=(),
        )
        sources = _plan_sources(plan)
        assert [s.params for _, s in sources] == [{}, {"T": 10}]

    def test_invalid_scenario_in_plan_fails_before_running(self):
        plan = SweepPlan(scenarios=("nope",), algorithms=(spec("A"),))
        with pytest.raises(UnknownScenarioError):
            run_plan(plan)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


def run_cli(*argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = cli_main(list(argv))
    return code, buffer.getvalue()


class TestScenarioCli:
    def test_list(self):
        code, out = run_cli("scenarios", "list")
        assert code == 0
        for name in ("diurnal-cpu-gpu", "homogeneous", "big-fleet"):
            assert name in out

    def test_describe(self):
        code, out = run_cli("scenarios", "describe", "priced-cpu-gpu")
        assert code == 0
        assert "amplitude" in out
        assert "seed" in out

    def test_describe_unknown_exits(self):
        with pytest.raises(SystemExit, match="unknown scenario family"):
            run_cli("scenarios", "describe", "nope")

    def test_describe_without_name_exits(self):
        with pytest.raises(SystemExit, match="needs a scenario name"):
            run_cli("scenarios", "describe")

    def test_build_with_params(self, tmp_path):
        target = tmp_path / "spec.json"
        code, out = run_cli(
            "scenarios", "build", "homogeneous", "--param", "T=9", "--seed", "4",
            "--json", str(target),
        )
        assert code == 0
        assert "homogeneous-T9" in out
        assert json.loads(target.read_text()) == {
            "scenario": "homogeneous", "params": {"T": 9}, "seed": 4,
        }

    def test_build_unknown_param_exits(self):
        with pytest.raises(SystemExit, match="unknown parameter"):
            run_cli("scenarios", "build", "homogeneous", "--param", "bogus=1")

    def test_sweep_scenario_flag(self, tmp_path):
        target = tmp_path / "report.json"
        code, out = run_cli(
            "sweep", "--scenario", "homogeneous,diurnal-cpu-gpu", "--param", "T=10",
            "--algorithms", "A", "--json", str(target),
        )
        assert code == 0
        assert "homogeneous-T10" in out
        assert "diurnal-cpu-gpu-T10" in out
        payload = json.loads(target.read_text())
        assert all(row["scenario"]["params"] == {"T": 10} for row in payload["rows"])

    def test_sweep_scenario_seed_flag_applies(self):
        code, out = run_cli("sweep", "--scenario", "homogeneous", "--param", "T=10",
                            "--seed", "3", "--algorithms", "A")
        assert code == 0
        # the spec seed shows in the table's seed column (family default would not)
        assert "| 3    |" in out

    def test_sweep_plan_file_with_null_jobs(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "scenarios": ["homogeneous"], "params": {"T": 10},
            "algorithms": ["A"], "jobs": None,
        }))
        code, out = run_cli("sweep", "--plan", str(path))
        assert code == 0
        assert "homogeneous-T10" in out

    def test_sweep_scenario_jobs_matches_serial(self):
        code1, out1 = run_cli("sweep", "--scenario", "homogeneous", "--param", "T=10",
                              "--seeds", "0,1", "--algorithms", "A", "--jobs", "2")
        code2, out2 = run_cli("sweep", "--scenario", "homogeneous", "--param", "T=10",
                              "--seeds", "0,1", "--algorithms", "A")
        assert code1 == code2 == 0

        def costs(text):
            return [line.split("|")[2].strip() for line in text.splitlines() if "algorithm-A" in line]

        assert costs(out1) == costs(out2)

    def test_sweep_plan_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "scenarios": ["homogeneous"],
            "params": {"T": 10},
            "algorithms": ["A"],
        }))
        code, out = run_cli("sweep", "--plan", str(path))
        assert code == 0
        assert "homogeneous-T10" in out

    def test_sweep_plan_and_scenario_are_exclusive(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{}")
        with pytest.raises(SystemExit, match="mutually exclusive"):
            run_cli("sweep", "--plan", str(path), "--scenario", "homogeneous")

    def test_sweep_plan_rejects_overridden_flags(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"scenarios": ["homogeneous"], "algorithms": ["A"]}))
        with pytest.raises(SystemExit, match="--seeds does not apply"):
            run_cli("sweep", "--plan", str(path), "--seeds", "7,8")
        with pytest.raises(SystemExit, match="--param does not apply"):
            run_cli("sweep", "--plan", str(path), "--param", "T=24")
        with pytest.raises(SystemExit, match="--algorithms does not apply"):
            run_cli("sweep", "--plan", str(path), "--algorithms", "B")
        with pytest.raises(SystemExit, match="--seed does not apply"):
            run_cli("sweep", "--plan", str(path), "--seed", "0")

    def test_sweep_plan_without_algorithms_uses_cli_selection(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"scenarios": ["homogeneous"], "params": {"T": 10}}))
        code, out = run_cli("sweep", "--plan", str(path), "--algorithms", "A,B")
        assert code == 0
        assert "algorithm-A" in out and "algorithm-B" in out

    def test_sweep_empty_algorithms_rejected(self):
        with pytest.raises(SystemExit, match="no algorithms selected"):
            run_cli("sweep", "--scenario", "homogeneous", "--algorithms", "")

    def test_sweep_unknown_scenario_exits(self):
        with pytest.raises(SystemExit, match="unknown scenario family"):
            run_cli("sweep", "--scenario", "nope", "--algorithms", "A")

    def test_legacy_fleet_trace_sweep_still_works(self):
        code, out = run_cli("sweep", "--fleet", "cpu-gpu", "--trace", "diurnal",
                            "--slots", "10", "--algorithms", "A")
        assert code == 0
        assert "cpu-gpu/diurnal" in out
