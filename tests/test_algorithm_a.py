"""Tests for online Algorithm A (Section 2, Theorem 8, Corollary 9, Figures 1-2)."""

import math

import numpy as np
import pytest

from repro import (
    ConstantCost,
    ProblemInstance,
    QuadraticCost,
    ServerType,
    run_online,
    solve_optimal,
    theoretical_bound,
)
from repro.online import AlgorithmA, DPPrefixTracker, FixedSequenceTracker
from repro.online.blocks import block_index_sets, special_slots, verify_partition
from repro.workloads import diurnal_trace, spike_trace

from conftest import random_instance


def single_type_instance(T=15, beta=5.0, idle=1.0, m=3):
    types = (
        ServerType("only", count=m, switching_cost=beta, capacity=1.0,
                   cost_function=ConstantCost(level=idle)),
    )
    return ProblemInstance(types, np.zeros(T))


class TestBookkeeping:
    """The power-up / power-down rules, tested against a fixed x_hat sequence (Figure 1 style)."""

    def test_runtime_is_ceil_beta_over_idle(self, small_instance):
        algo = AlgorithmA(tracker=FixedSequenceTracker(np.zeros((6, 2), dtype=int)))
        run_online(small_instance, algo)
        np.testing.assert_array_equal(algo.runtimes, [np.ceil(4.0 / 0.5), np.ceil(9.0 / 1.5)])

    def test_zero_idle_cost_means_never_power_down(self):
        types = (ServerType("free-idle", count=2, switching_cost=3.0, capacity=1.0,
                            cost_function=QuadraticCost(idle=0.0, a=0.0, b=1.0)),)
        inst = ProblemInstance(types, np.array([1.0, 0.0, 0.0, 0.0, 1.0]))
        algo = AlgorithmA()
        result = run_online(inst, algo)
        assert math.isinf(algo.runtimes[0])
        # once powered up, the server stays on until the end of the horizon
        assert np.all(result.schedule.x[:, 0] >= 1)

    def test_figure1_style_behaviour(self):
        """A server powered up at slot s is powered down exactly bar_t slots later."""
        inst = single_type_instance(T=15, beta=5.0, idle=1.0)  # bar_t = 5
        xhat = np.array([1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0])
        algo = AlgorithmA(tracker=FixedSequenceTracker(xhat))
        result = run_online(inst, algo)
        expected = np.array([1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0])
        np.testing.assert_array_equal(result.schedule.x[:, 0], expected)

    def test_server_runs_even_if_prefix_optimum_drops(self):
        inst = single_type_instance(T=10, beta=4.0, idle=2.0)  # bar_t = 2
        xhat = np.array([2, 0, 0, 0, 2, 0, 0, 0, 0, 0])
        algo = AlgorithmA(tracker=FixedSequenceTracker(xhat))
        result = run_online(inst, algo)
        expected = np.array([2, 2, 0, 0, 2, 2, 0, 0, 0, 0])
        np.testing.assert_array_equal(result.schedule.x[:, 0], expected)

    def test_tops_up_only_the_difference(self):
        inst = single_type_instance(T=8, beta=6.0, idle=2.0)  # bar_t = 3
        xhat = np.array([1, 2, 3, 0, 0, 0, 0, 0])
        algo = AlgorithmA(tracker=FixedSequenceTracker(xhat))
        result = run_online(inst, algo)
        # power-ups: 1 at t0, 1 at t1, 1 at t2; each runs 3 slots
        np.testing.assert_array_equal(algo.power_up_log[:, 0], [1, 1, 1, 0, 0, 0, 0, 0])
        np.testing.assert_array_equal(result.schedule.x[:, 0], [1, 2, 3, 2, 1, 0, 0, 0])

    def test_staggered_expiry_with_simultaneous_powerups(self):
        inst = single_type_instance(T=8, beta=3.0, idle=1.0, m=4)  # bar_t = 3
        xhat = np.array([2, 0, 4, 0, 0, 0, 0, 0])
        algo = AlgorithmA(tracker=FixedSequenceTracker(xhat))
        result = run_online(inst, algo)
        # 2 servers run slots 0-2; 2 more start at slot 2 and run slots 2-4
        np.testing.assert_array_equal(result.schedule.x[:, 0], [2, 2, 4, 2, 2, 0, 0, 0])

    def test_invariant_x_at_least_xhat(self, small_instance):
        algo = AlgorithmA()
        result = run_online(small_instance, algo)
        assert np.all(result.schedule.x >= algo.prefix_optima)

    def test_feasibility_lemma1(self, small_instance):
        """Lemma 1: the schedule of Algorithm A is feasible."""
        result = run_online(small_instance, AlgorithmA())
        assert result.schedule.is_feasible(small_instance)

    def test_feasibility_on_random_instances(self):
        for seed in range(5):
            rng = np.random.default_rng(8000 + seed)
            inst = random_instance(rng, T=8, d=2, max_servers=3)
            result = run_online(inst, AlgorithmA())
            assert result.schedule.is_feasible(inst)

    def test_explicit_tracker_and_gamma_are_exclusive(self):
        with pytest.raises(ValueError):
            AlgorithmA(tracker=DPPrefixTracker(), gamma=2.0)

    def test_step_before_start_raises(self, small_instance):
        algo = AlgorithmA()
        with pytest.raises(RuntimeError):
            algo.step(None)  # type: ignore[arg-type]


class TestBlocksAndSpecialSlots:
    """The block decomposition of the competitive analysis (Figure 2)."""

    def test_blocks_have_length_bar_t(self):
        inst = single_type_instance(T=20, beta=6.0, idle=2.0)  # bar_t = 3
        xhat = np.zeros(20, dtype=int)
        xhat[[0, 4, 5, 12]] = [1, 2, 1, 1]
        algo = AlgorithmA(tracker=FixedSequenceTracker(xhat))
        run_online(inst, algo)
        blocks = algo.blocks(0)
        # power-ups: 1 at slot 0, 2 at slot 4 (the single extra request at slot 5
        # is already covered by running servers), 1 at slot 12 -> 4 blocks
        assert len(blocks) == 4
        assert all(b.length == 3 for b in blocks if b.end < 19)

    def test_every_block_contains_exactly_one_special_slot(self):
        inst = single_type_instance(T=30, beta=5.0, idle=1.0)  # bar_t = 5
        rng = np.random.default_rng(0)
        xhat = rng.integers(0, 3, size=30)
        algo = AlgorithmA(tracker=FixedSequenceTracker(xhat))
        run_online(inst, algo)
        blocks = algo.blocks(0)
        if blocks:
            assert verify_partition(blocks)

    def test_special_slots_are_at_least_bar_t_apart(self):
        inst = single_type_instance(T=30, beta=5.0, idle=1.0)  # bar_t = 5
        rng = np.random.default_rng(1)
        xhat = rng.integers(0, 3, size=30)
        algo = AlgorithmA(tracker=FixedSequenceTracker(xhat))
        run_online(inst, algo)
        blocks = algo.blocks(0)
        taus = special_slots(blocks)
        assert all(b - a >= 5 for a, b in zip(taus, taus[1:]))

    def test_block_index_sets_partition_all_blocks(self):
        inst = single_type_instance(T=25, beta=4.0, idle=1.0)  # bar_t = 4
        rng = np.random.default_rng(2)
        xhat = rng.integers(0, 4, size=25)
        algo = AlgorithmA(tracker=FixedSequenceTracker(xhat))
        run_online(inst, algo)
        blocks = algo.blocks(0)
        sets = block_index_sets(blocks)
        flattened = sorted(i for group in sets for i in group)
        assert flattened == list(range(len(blocks)))


class TestCompetitiveness:
    """Theorem 8 / Corollary 9: measured ratios never exceed the proven bounds."""

    def test_bound_on_small_instance(self, small_instance):
        opt = solve_optimal(small_instance, return_schedule=False).cost
        result = run_online(small_instance, AlgorithmA())
        assert result.cost <= (2 * small_instance.d + 1) * opt + 1e-6

    def test_bound_on_load_independent_instance(self, load_independent_instance):
        """Corollary 9: ratio at most 2d for load- and time-independent costs."""
        opt = solve_optimal(load_independent_instance, return_schedule=False).cost
        result = run_online(load_independent_instance, AlgorithmA())
        assert result.cost <= 2 * load_independent_instance.d * opt + 1e-6
        assert theoretical_bound(load_independent_instance, "A") == 2 * load_independent_instance.d

    def test_bound_on_homogeneous_instance(self, homogeneous_instance):
        opt = solve_optimal(homogeneous_instance, return_schedule=False).cost
        result = run_online(homogeneous_instance, AlgorithmA())
        assert result.cost <= 3 * opt + 1e-6  # 2d + 1 with d = 1

    @pytest.mark.parametrize("seed", range(8))
    def test_bound_on_random_instances(self, seed):
        rng = np.random.default_rng(9000 + seed)
        inst = random_instance(rng, T=8, d=2, max_servers=3)
        opt = solve_optimal(inst, return_schedule=False).cost
        result = run_online(inst, AlgorithmA())
        if opt > 1e-9:
            assert result.cost / opt <= 2 * inst.d + 1 + 1e-6

    def test_bound_on_diurnal_workload(self, two_type_fleet):
        demand = diurnal_trace(36, period=12, base=1.0, peak=9.0, noise=0.1, rng=5)
        inst = ProblemInstance(two_type_fleet, demand)
        opt = solve_optimal(inst, return_schedule=False).cost
        result = run_online(inst, AlgorithmA())
        assert result.cost <= (2 * inst.d + 1) * opt + 1e-6

    def test_bound_on_spiky_workload(self, two_type_fleet):
        demand = spike_trace(30, base=0.0, spike_height=4.0, spike_every=6)
        inst = ProblemInstance(two_type_fleet, demand)
        opt = solve_optimal(inst, return_schedule=False).cost
        result = run_online(inst, AlgorithmA())
        assert result.cost <= (2 * inst.d + 1) * opt + 1e-6

    def test_online_cost_at_least_optimal(self, small_instance):
        opt = solve_optimal(small_instance, return_schedule=False).cost
        result = run_online(small_instance, AlgorithmA())
        assert result.cost >= opt - 1e-6

    def test_reduced_grid_tracker_still_feasible(self, small_instance):
        result = run_online(small_instance, AlgorithmA(gamma=2.0))
        assert result.schedule.is_feasible(small_instance)
