"""Tests for the optimal offline algorithm (Section 4.1).

The vectorised DP is validated against three independent references:
the explicit networkx shortest-path on the paper's graph G(I), a pairwise
O(|M|^2) dynamic program, exhaustive enumeration on tiny instances, and the
MILP formulation for linear operating costs.
"""

import numpy as np
import pytest

from repro import (
    ConstantCost,
    LinearCost,
    ProblemInstance,
    QuadraticCost,
    Schedule,
    ServerType,
    evaluate_schedule,
    solve_milp,
    solve_optimal,
    total_cost,
)
from repro.offline import (
    build_graph,
    exhaustive_optimal,
    optimal_cost,
    pairwise_dp_optimal,
    shortest_path_schedule,
    solve_lp_relaxation,
)

from conftest import random_instance


class TestOptimalBasics:
    def test_schedule_is_feasible(self, small_instance):
        res = solve_optimal(small_instance)
        assert res.schedule.is_feasible(small_instance)

    def test_reported_cost_matches_reevaluation(self, small_instance):
        res = solve_optimal(small_instance)
        assert res.cost == pytest.approx(total_cost(small_instance, res.schedule), rel=1e-6)

    def test_cost_only_mode_matches(self, small_instance):
        full = solve_optimal(small_instance)
        cost_only = solve_optimal(small_instance, return_schedule=False)
        assert cost_only.cost == pytest.approx(full.cost, rel=1e-6)
        # cost-only results carry no schedule at all: a zero-length placeholder
        # used to be returned here and could be mistaken for a solved schedule
        assert cost_only.schedule is None

    def test_zero_demand_gives_empty_schedule(self, two_type_fleet):
        inst = ProblemInstance(two_type_fleet, np.zeros(4))
        res = solve_optimal(inst)
        assert res.cost == pytest.approx(0.0)
        assert np.all(res.schedule.x == 0)

    def test_empty_instance(self, two_type_fleet):
        inst = ProblemInstance(two_type_fleet, np.zeros(0))
        res = solve_optimal(inst)
        assert res.cost == 0.0 and res.schedule.T == 0

    def test_infeasible_instance_raises(self, two_type_fleet):
        inst = ProblemInstance(two_type_fleet, np.array([1.0, 100.0]))
        with pytest.raises(ValueError):
            solve_optimal(inst)

    def test_keep_tables(self, small_instance):
        res = solve_optimal(small_instance, keep_tables=True)
        assert res.value_tables is not None and len(res.value_tables) == small_instance.T
        # the minimum of the final table is the optimal cost (up to dispatch tolerance)
        assert float(np.min(res.value_tables[-1])) == pytest.approx(res.cost, rel=1e-6)

    def test_num_states_explored(self, small_instance):
        res = solve_optimal(small_instance)
        assert res.num_states_explored == small_instance.T * 4 * 3

    def test_optimal_cost_helper(self, small_instance):
        assert optimal_cost(small_instance) == pytest.approx(solve_optimal(small_instance).cost)

    def test_single_slot_instance(self, two_type_fleet):
        inst = ProblemInstance(two_type_fleet, np.array([2.0]))
        res = solve_optimal(inst)
        assert res.schedule.is_feasible(inst)
        # single slot: cost is g_0(x) + startup switching for the chosen x
        assert res.cost == pytest.approx(total_cost(inst, res.schedule), rel=1e-9)


class TestAgainstReferences:
    def test_matches_pairwise_dp(self, small_instance):
        fast = solve_optimal(small_instance)
        _, slow_cost = pairwise_dp_optimal(small_instance)
        assert fast.cost == pytest.approx(slow_cost, rel=1e-6)

    def test_matches_exhaustive_on_prefix(self, small_instance):
        prefix = small_instance.prefix(4)
        fast = solve_optimal(prefix)
        _, exhaustive_cost = exhaustive_optimal(prefix)
        assert fast.cost == pytest.approx(exhaustive_cost, rel=1e-6)

    def test_matches_networkx_shortest_path(self, small_instance):
        fast = solve_optimal(small_instance)
        _, nx_cost = shortest_path_schedule(small_instance)
        assert fast.cost == pytest.approx(nx_cost, rel=1e-6)

    def test_matches_milp_on_linear_instance(self, linear_instance):
        fast = solve_optimal(linear_instance)
        milp = solve_milp(linear_instance)
        assert fast.cost == pytest.approx(milp.cost, rel=1e-6)

    def test_lp_relaxation_is_lower_bound(self, linear_instance):
        fast = solve_optimal(linear_instance)
        lp = solve_lp_relaxation(linear_instance)
        assert lp.cost <= fast.cost + 1e-6

    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances_match_pairwise_dp(self, seed):
        rng = np.random.default_rng(1000 + seed)
        inst = random_instance(rng, T=4, d=2, max_servers=3)
        fast = solve_optimal(inst)
        _, slow_cost = pairwise_dp_optimal(inst)
        assert fast.cost == pytest.approx(slow_cost, rel=1e-5)
        assert fast.schedule.is_feasible(inst)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_homogeneous_matches_exhaustive(self, seed):
        rng = np.random.default_rng(2000 + seed)
        inst = random_instance(rng, T=4, d=1, max_servers=3)
        fast = solve_optimal(inst)
        _, exhaustive_cost = exhaustive_optimal(inst)
        assert fast.cost == pytest.approx(exhaustive_cost, rel=1e-5)

    def test_three_types(self):
        types = (
            ServerType("a", count=2, switching_cost=2.0, capacity=1.0,
                       cost_function=QuadraticCost(idle=0.4, a=0.1, b=0.6)),
            ServerType("b", count=2, switching_cost=5.0, capacity=2.0,
                       cost_function=LinearCost(idle=0.8, slope=0.5)),
            ServerType("c", count=1, switching_cost=8.0, capacity=4.0,
                       cost_function=ConstantCost(level=2.2)),
        )
        inst = ProblemInstance(types, np.array([1.0, 4.0, 2.0, 0.0, 6.0]))
        fast = solve_optimal(inst)
        _, slow_cost = pairwise_dp_optimal(inst)
        assert fast.cost == pytest.approx(slow_cost, rel=1e-6)


class TestOptimalityStructure:
    def test_optimal_never_worse_than_any_handcrafted_schedule(self, small_instance):
        res = solve_optimal(small_instance)
        for rows in (
            [[1, 0], [2, 0], [1, 1], [1, 0], [0, 0], [3, 0]],
            [[0, 1], [0, 1], [1, 1], [0, 1], [0, 1], [0, 1]],
            [[3, 2]] * 6,
        ):
            candidate = Schedule.from_rows(rows)
            if candidate.is_feasible(small_instance):
                assert res.cost <= total_cost(small_instance, candidate) + 1e-6

    def test_switching_cost_never_doubles_demand_peak(self, small_instance):
        """Sanity: the optimal schedule's switching cost is bounded by powering up the peak once."""
        res = solve_optimal(small_instance)
        peak_cost = float(np.sum(small_instance.m * small_instance.beta))
        assert evaluate_schedule(small_instance, res.schedule).total_switching <= peak_cost + 1e-9

    def test_optimal_cost_monotone_in_switching_costs(self, two_type_fleet):
        """Raising every beta_j can only make the optimum more expensive
        (every fixed schedule's cost is monotone in beta)."""
        demand = np.array([2.0, 0.0, 2.0, 0.0, 2.0, 0.0, 2.0])
        cheap = ProblemInstance(two_type_fleet, demand)
        expensive_types = tuple(
            ServerType(st.name, st.count, st.switching_cost * 50.0, st.capacity, st.cost_function)
            for st in two_type_fleet
        )
        expensive = ProblemInstance(expensive_types, demand)
        assert optimal_cost(expensive) >= optimal_cost(cheap) - 1e-9
        # and with expensive switching the optimum does not power-cycle more often
        # than the total number of cycles a demand burst could force
        bursts = int(np.sum((demand[1:] > 0) & (demand[:-1] == 0))) + 1
        ups_expensive = solve_optimal(expensive).schedule.num_power_ups().sum()
        assert ups_expensive <= bursts * int(np.sum(cheap.m))

    def test_monotone_in_demand(self, two_type_fleet):
        """Optimal cost is monotone when demand increases pointwise."""
        low = ProblemInstance(two_type_fleet, np.array([1.0, 2.0, 0.0, 1.0]))
        high = ProblemInstance(two_type_fleet, np.array([2.0, 3.0, 1.0, 2.0]))
        assert optimal_cost(high) >= optimal_cost(low) - 1e-9


class TestTimeVaryingCounts:
    def test_respects_reduced_counts(self, small_instance):
        counts = np.tile(small_instance.m, (small_instance.T, 1))
        counts[2] = [3, 1]  # fewer GPUs available during slot 2 (demand 5)
        inst = small_instance.with_counts(counts)
        res = solve_optimal(inst)
        assert res.schedule.is_feasible(inst)
        assert res.schedule.x[2, 1] <= 1

    def test_cost_never_decreases_with_fewer_servers(self, small_instance):
        counts = np.tile(small_instance.m, (small_instance.T, 1))
        counts[2] = [3, 1]
        inst = small_instance.with_counts(counts)
        assert optimal_cost(inst) >= optimal_cost(small_instance) - 1e-9

    def test_matches_pairwise_dp_with_time_varying_counts(self, small_instance):
        counts = np.tile(small_instance.m, (small_instance.T, 1))
        counts[1] = [2, 1]
        counts[4] = [1, 2]
        inst = small_instance.with_counts(counts)
        fast = solve_optimal(inst)
        _, slow_cost = pairwise_dp_optimal(inst)
        assert fast.cost == pytest.approx(slow_cost, rel=1e-6)

    def test_infeasible_when_counts_too_small(self, small_instance):
        counts = np.tile(small_instance.m, (small_instance.T, 1))
        counts[2] = [1, 0]  # capacity 1 < demand 5
        inst = small_instance.with_counts(counts)
        with pytest.raises(ValueError):
            solve_optimal(inst)


class TestExplicitGraph:
    def test_figure4_graph_shape(self):
        """Figure 4: d=2, T=2, m=(2,1) gives 2*T*prod(m_j+1) = 24 vertices."""
        types = (
            ServerType("one", count=2, switching_cost=1.0, capacity=1.0,
                       cost_function=ConstantCost(1.0)),
            ServerType("two", count=1, switching_cost=2.0, capacity=2.0,
                       cost_function=ConstantCost(1.5)),
        )
        inst = ProblemInstance(types, np.array([2.0, 2.0]))
        graph = build_graph(inst)
        assert graph.number_of_nodes() == 2 * 2 * (2 + 1) * (1 + 1)

    def test_graph_edge_weights(self, small_instance):
        graph = build_graph(small_instance.prefix(2))
        # operating edge weight equals g_t(x)
        from repro.dispatch import DispatchSolver

        solver = DispatchSolver(small_instance.prefix(2))
        weight = graph.get_edge_data((0, "up", (1, 1)), (0, "down", (1, 1)))["weight"]
        assert weight == pytest.approx(solver.solve(0, [1, 1]).cost)
        # power-up edge weight equals beta_1
        weight_up = graph.get_edge_data((0, "up", (0, 0)), (0, "up", (1, 0)))["weight"]
        assert weight_up == pytest.approx(4.0)

    def test_bruteforce_guard(self, small_instance):
        with pytest.raises(ValueError):
            exhaustive_optimal(small_instance, max_schedules=10)
