"""Tests for the (1+eps)-approximation (Section 4.2) and the X' rounding construction."""

import numpy as np
import pytest

from repro import (
    ProblemInstance,
    QuadraticCost,
    Schedule,
    ServerType,
    solve_approx,
    solve_optimal,
    total_cost,
)
from repro.offline import (
    approximation_guarantee,
    gamma_for_epsilon,
    round_schedule_to_grid,
    rounding_invariant_holds,
    StateGrid,
)
from repro.workloads import diurnal_trace

from conftest import random_instance


class TestParameterMapping:
    def test_gamma_for_epsilon(self):
        assert gamma_for_epsilon(1.0) == pytest.approx(1.5)
        assert gamma_for_epsilon(0.5) == pytest.approx(1.25)
        with pytest.raises(ValueError):
            gamma_for_epsilon(0.0)

    def test_guarantee(self):
        assert approximation_guarantee(1.5) == pytest.approx(2.0)
        assert approximation_guarantee(2.0) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            approximation_guarantee(1.0)

    def test_epsilon_maps_to_one_plus_eps_guarantee(self):
        for eps in (0.25, 0.5, 1.0, 2.0):
            assert approximation_guarantee(gamma_for_epsilon(eps)) == pytest.approx(1.0 + eps)

    def test_either_epsilon_or_gamma(self, small_instance):
        with pytest.raises(ValueError):
            solve_approx(small_instance, epsilon=0.5, gamma=1.5)
        with pytest.raises(ValueError):
            solve_approx(small_instance, gamma=0.9)


class TestApproximationQuality:
    def test_guarantee_holds_on_small_instance(self, small_instance):
        opt = solve_optimal(small_instance).cost
        for eps in (0.25, 0.5, 1.0, 2.0):
            res = solve_approx(small_instance, epsilon=eps)
            assert res.schedule.is_feasible(small_instance)
            assert res.cost <= (1.0 + eps) * opt + 1e-6
            assert res.cost >= opt - 1e-6  # cannot beat the optimum

    @pytest.mark.parametrize("seed", range(6))
    def test_guarantee_holds_on_random_instances(self, seed):
        rng = np.random.default_rng(3000 + seed)
        inst = random_instance(rng, T=5, d=2, max_servers=6)
        opt = solve_optimal(inst).cost
        for gamma in (1.25, 2.0):
            res = solve_approx(inst, gamma=gamma)
            assert res.cost <= approximation_guarantee(gamma) * opt + 1e-6
            assert res.cost >= opt - 1e-6

    def test_larger_fleet_guarantee(self):
        """Approximation on a fleet too large for exhaustive search but fine for the exact DP."""
        types = (
            ServerType("big", count=40, switching_cost=5.0, capacity=1.0,
                       cost_function=QuadraticCost(idle=0.5, a=0.2, b=0.8)),
            ServerType("small", count=10, switching_cost=10.0, capacity=3.0,
                       cost_function=QuadraticCost(idle=1.0, a=0.3, b=0.2)),
        )
        demand = diurnal_trace(20, period=10, base=2.0, peak=45.0, noise=0.0)
        inst = ProblemInstance(types, demand)
        opt = solve_optimal(inst, return_schedule=False).cost
        res = solve_approx(inst, epsilon=0.5)
        assert res.cost <= 1.5 * opt + 1e-6
        assert res.cost >= opt - 1e-6

    def test_result_records_gamma(self, small_instance):
        res = solve_approx(small_instance, epsilon=0.5)
        assert res.gamma == pytest.approx(1.25)

    def test_explores_fewer_states_than_exact(self):
        types = (
            ServerType("many", count=100, switching_cost=5.0, capacity=1.0,
                       cost_function=QuadraticCost(idle=0.5, a=0.2, b=0.8)),
        )
        inst = ProblemInstance(types, diurnal_trace(10, base=5, peak=90, noise=0.0))
        exact = solve_optimal(inst, return_schedule=False)
        approx = solve_approx(inst, epsilon=1.0, return_schedule=False)
        assert approx.num_states_explored < exact.num_states_explored / 3

    def test_schedule_uses_only_grid_values(self, small_instance):
        res = solve_approx(small_instance, gamma=2.0)
        for t in range(small_instance.T):
            grid = res.grids[t]
            assert grid.contains(res.schedule.x[t])

    def test_time_varying_counts(self, small_instance):
        counts = np.tile(small_instance.m, (small_instance.T, 1))
        counts[2] = [3, 1]
        inst = small_instance.with_counts(counts)
        opt = solve_optimal(inst).cost
        res = solve_approx(inst, epsilon=0.5)
        assert res.schedule.is_feasible(inst)
        assert res.cost <= 1.5 * opt + 1e-6


class TestRoundingConstruction:
    """The X' schedule from the proof of Theorem 16 (equation (18), Figure 5)."""

    def test_invariant_holds_for_optimal_schedule(self, small_instance):
        opt = solve_optimal(small_instance).schedule
        gamma = 2.0
        grid = StateGrid.geometric(small_instance.m, gamma)
        rounded = round_schedule_to_grid(opt, grid, gamma)
        assert rounding_invariant_holds(opt, rounded, gamma)
        assert rounded.is_feasible(small_instance)

    def test_rounded_values_lie_on_grid(self, small_instance):
        opt = solve_optimal(small_instance).schedule
        gamma = 1.5
        grid = StateGrid.geometric(small_instance.m, gamma)
        rounded = round_schedule_to_grid(opt, grid, gamma)
        for t in range(rounded.T):
            assert grid.contains(rounded.x[t])

    def test_rounded_cost_within_guarantee(self, small_instance):
        """C(X') <= (2 gamma - 1) C(X*) — Lemmas 19 + 20 combined."""
        opt_result = solve_optimal(small_instance)
        for gamma in (1.25, 1.5, 2.0):
            grid = StateGrid.geometric(small_instance.m, gamma)
            rounded = round_schedule_to_grid(opt_result.schedule, grid, gamma)
            assert total_cost(small_instance, rounded) <= (
                (2 * gamma - 1) * opt_result.cost + 1e-6
            )

    def test_shortest_path_no_worse_than_rounding(self, small_instance):
        """The schedule from the reduced-grid shortest path can only be cheaper than X'."""
        gamma = 2.0
        opt = solve_optimal(small_instance)
        grid = StateGrid.geometric(small_instance.m, gamma)
        rounded = round_schedule_to_grid(opt.schedule, grid, gamma)
        approx = solve_approx(small_instance, gamma=gamma)
        assert approx.cost <= total_cost(small_instance, rounded) + 1e-6

    @pytest.mark.parametrize("seed", range(5))
    def test_invariant_on_random_instances(self, seed):
        rng = np.random.default_rng(4000 + seed)
        inst = random_instance(rng, T=6, d=2, max_servers=8)
        opt = solve_optimal(inst).schedule
        gamma = 1.0 + float(rng.uniform(0.1, 1.5))
        grid = StateGrid.geometric(inst.m, gamma)
        rounded = round_schedule_to_grid(opt, grid, gamma)
        assert rounding_invariant_holds(opt, rounded, gamma)

    def test_figure5_trajectory(self):
        """Reproduce the lazy behaviour of Figure 5: X' only moves to restore the invariant."""
        gamma = 2.0
        grid = StateGrid([np.array([0, 1, 2, 4, 8, 10])])
        reference = Schedule(np.array([[3, 3, 5, 9, 9, 6, 3, 1, 1, 2, 5, 2, 1, 0, 0, 1, 3]]).T)
        rounded = round_schedule_to_grid(reference, grid, gamma)
        assert rounding_invariant_holds(reference, rounded, gamma)
        # lazy: the number of value changes of X' is at most that of X* and typically lower
        changes_ref = int(np.sum(np.abs(np.diff(reference.x[:, 0])) > 0))
        changes_rounded = int(np.sum(np.abs(np.diff(rounded.x[:, 0])) > 0))
        assert changes_rounded <= changes_ref

    def test_gamma_validation(self, small_instance):
        grid = StateGrid.geometric(small_instance.m, 2.0)
        with pytest.raises(ValueError):
            round_schedule_to_grid(Schedule.empty(3, 2), grid, gamma=1.0)
