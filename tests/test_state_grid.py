"""Tests for the state grids (full and geometrically reduced, Section 4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.offline.state_grid import StateGrid, geometric_levels, grid_for_slot


class TestGeometricLevels:
    def test_paper_example_gamma_2_m_10(self):
        """Figure 5 uses gamma=2 and m=10: the allowed states are {0,1,2,4,8,10}."""
        np.testing.assert_array_equal(geometric_levels(10, 2.0), [0, 1, 2, 4, 8, 10])

    def test_contains_zero_one_and_m(self):
        levels = geometric_levels(37, 1.5)
        assert levels[0] == 0
        assert 1 in levels
        assert levels[-1] == 37

    def test_m_zero_and_one(self):
        np.testing.assert_array_equal(geometric_levels(0, 2.0), [0])
        np.testing.assert_array_equal(geometric_levels(1, 2.0), [0, 1])

    def test_consecutive_values_close(self):
        """Consecutive grid values are either adjacent integers or within a factor gamma.

        (Adjacent integers cannot be refined any further in the discrete
        setting; away from that regime the geometric spacing guarantees the
        factor-gamma bound used in the proof of Theorem 16.)
        """
        for gamma in (1.25, 1.5, 2.0, 3.0):
            levels = geometric_levels(200, gamma)
            positive = levels[levels > 0]
            for a, b in zip(positive[:-1], positive[1:]):
                assert b == a + 1 or b <= gamma * a + 1e-9

    def test_size_is_logarithmic(self):
        # |M^gamma_j| = O(log_gamma m): for m = 10**6 and gamma=2 the set stays tiny
        levels = geometric_levels(10**6, 2.0)
        assert len(levels) <= 2 * np.log2(10**6) + 4

    def test_gamma_must_exceed_one(self):
        with pytest.raises(ValueError):
            geometric_levels(10, 1.0)

    def test_negative_m_rejected(self):
        with pytest.raises(ValueError):
            geometric_levels(-1, 2.0)

    @given(m=st.integers(0, 500), gamma=st.floats(1.05, 4.0))
    @settings(max_examples=80, deadline=None)
    def test_levels_are_valid_subset(self, m, gamma):
        levels = geometric_levels(m, gamma)
        assert levels[0] == 0 and levels[-1] == m
        assert np.all(np.diff(levels) > 0)
        assert np.all((levels >= 0) & (levels <= m))
        positive = levels[levels > 0]
        for a, b in zip(positive[:-1], positive[1:]):
            assert b == a + 1 or b <= gamma * a + 1e-9


class TestStateGrid:
    def test_full_grid(self):
        grid = StateGrid.full([2, 1])
        assert grid.shape == (3, 2)
        assert grid.size == 6
        configs = grid.configs()
        assert configs.shape == (6, 2)
        # row-major (C) order: last dimension varies fastest
        np.testing.assert_array_equal(configs[:3], [[0, 0], [0, 1], [1, 0]])

    def test_configs_match_value_tensor_flattening(self):
        grid = StateGrid.full([2, 2])
        tensor = np.arange(grid.size).reshape(grid.shape)
        configs = grid.configs()
        for flat_index in range(grid.size):
            multi = np.unravel_index(flat_index, grid.shape)
            np.testing.assert_array_equal(grid.config_at(multi), configs[flat_index])
            assert tensor[multi] == flat_index

    def test_index_of_roundtrip(self):
        grid = StateGrid.geometric([10, 5], 2.0)
        for config in grid.configs():
            idx = grid.index_of(config)
            np.testing.assert_array_equal(grid.config_at(idx), config)

    def test_index_of_rejects_off_grid(self):
        grid = StateGrid.geometric([10], 2.0)
        with pytest.raises(ValueError):
            grid.index_of([3])
        assert not grid.contains([3])
        assert grid.contains([4])

    def test_ceil_floor_next(self):
        grid = StateGrid.geometric([10], 2.0)  # {0,1,2,4,8,10}
        assert grid.ceil_value(0, 3) == 4
        assert grid.floor_value(0, 3) == 2
        assert grid.ceil_value(0, 8) == 8
        assert grid.next_value(0, 8) == 10
        assert grid.next_value(0, 10) is None
        with pytest.raises(ValueError):
            grid.ceil_value(0, 11)

    def test_max_ratio(self):
        grid = StateGrid.geometric([10], 2.0)
        assert grid.max_ratio(0) <= 2.0 + 1e-9
        assert StateGrid.full([5]).max_ratio(0) <= 2.0  # 1->2 is the worst case

    def test_requires_zero(self):
        with pytest.raises(ValueError):
            StateGrid([np.array([1, 2])])

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            StateGrid([np.array([-1, 0, 2])])

    def test_from_epsilon_guarantee_mapping(self):
        grid = StateGrid.from_epsilon([100], epsilon=1.0)
        # gamma = 1.5: consecutive values are adjacent integers or within the factor 1.5
        values = grid.values[0]
        positive = values[values > 0]
        for a, b in zip(positive[:-1], positive[1:]):
            assert b == a + 1 or b <= 1.5 * a + 1e-9
        with pytest.raises(ValueError):
            StateGrid.from_epsilon([100], epsilon=0.0)

    def test_max_values(self):
        grid = StateGrid.geometric([10, 7], 1.5)
        np.testing.assert_array_equal(grid.max_values(), [10, 7])


class TestGridForSlot:
    def test_full_grid_uses_slot_counts(self, small_instance):
        counts = np.tile(small_instance.m, (small_instance.T, 1))
        counts[3] = [1, 1]
        inst = small_instance.with_counts(counts)
        grid = grid_for_slot(inst, 3)
        assert grid.shape == (2, 2)
        grid0 = grid_for_slot(inst, 0)
        assert grid0.shape == (4, 3)

    def test_reduced_grid(self, small_instance):
        grid = grid_for_slot(small_instance, 0, gamma=2.0)
        assert grid.shape[0] <= 4 and grid.shape[1] <= 3
        # reduced grid values are a subset of the full range
        assert all(v <= m for vals, m in zip(grid.values, small_instance.m) for v in vals)
