"""Tests for the chaos layer: event plans, fault injection, graceful degradation.

Three contracts are exercised end to end:

* **event plans** (:mod:`repro.scenarios.events`) are seeded, JSON-round-trip
  exactly, and bake into batch-feasible instances via ``apply_event_plan``;
* **graceful degradation**: shed-mode sessions absorb mid-stream faults
  (overload, unplanned machine loss under open Algorithm-B power-up records)
  without raising, with deterministic SLA accounting flowing into
  ``FleetState.as_row`` and the engine report — while strict mode keeps
  raising, so the batch-equivalence gates lose nothing;
* **determinism**: same seed + same event plan ⇒ bit-identical schedules and
  SLA counters, including across a JSON checkpoint/restore round-trip and
  through hardened inputs (JSONL feeds with line-level errors/checksums,
  checkpoints with integrity checksums).
"""

import json

import numpy as np
import pytest

from repro import scenarios
from repro.online import AlgorithmA, AlgorithmB, run_online
from repro.online.adversary import adaptive_adversary, interleaved_ski_rental_instance
from repro.scenarios import ScenarioSpec
from repro.scenarios.events import EVENT_KINDS, ChaosEvent, EventPlan, apply_event_plan
from repro.scenarios.registry import ScenarioParamError
from repro.serve import (
    ChaosFeed,
    CheckpointCorruptError,
    ControllerSession,
    FaultInjector,
    FeedError,
    InstanceFeed,
    JsonlFeed,
    ServeEngine,
    Tick,
    load_checkpoint,
    payload_checksum,
    verify_chaos_replay,
    verify_replay,
    write_jsonl_trace,
)
from repro.workloads.fleets import cpu_gpu_fleet, single_type_fleet


CHAOS_FAMILIES = [n for n in scenarios.names() if n.startswith("chaos-")]


# --------------------------------------------------------------------------- #
# Event plans
# --------------------------------------------------------------------------- #


class TestChaosEvent:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            ChaosEvent("meteor", t=1)
        with pytest.raises(ValueError, match="magnitude"):
            ChaosEvent("flash_crowd", t=1, magnitude=0.0)
        with pytest.raises(ValueError, match="fraction"):
            ChaosEvent("capacity_drop", t=1, magnitude=1.5)
        with pytest.raises(ValueError, match="duration"):
            ChaosEvent("price_shock", t=1, duration=0)

    def test_window(self):
        event = ChaosEvent("price_shock", t=3, duration=2)
        assert not event.active_at(2)
        assert event.active_at(3) and event.active_at(4)
        assert not event.active_at(5)

    def test_dict_round_trip(self):
        event = ChaosEvent("capacity_drop", t=2, duration=3, magnitude=0.5, type_index=1)
        assert ChaosEvent.from_dict(event.to_dict()) == event


class TestEventPlan:
    def test_generate_deterministic(self):
        a = EventPlan.generate(24, 2, seed=11)
        b = EventPlan.generate(24, 2, seed=11)
        assert a == b
        assert a.seed == 11
        assert EventPlan.generate(24, 2, seed=12) != a

    def test_generate_windows_inside_horizon(self):
        plan = EventPlan.generate(16, 2, seed=3, n_events=20)
        assert all(1 <= e.t < 16 for e in plan.events)
        assert all(e.duration >= 1 for e in plan.events)

    def test_json_round_trip(self):
        plan = EventPlan.generate(24, 2, seed=5)
        assert EventPlan.from_json(plan.to_json()) == plan
        # parse accepts plans, dicts, event lists, JSON text and None
        assert EventPlan.parse(plan) is plan
        assert EventPlan.parse(plan.to_dict()) == plan
        assert EventPlan.parse(list(plan.events)).events == plan.events
        assert EventPlan.parse(None) == EventPlan()

    def test_counts_at_compounds_and_recovers(self):
        plan = EventPlan(events=(
            ChaosEvent("capacity_drop", t=2, duration=2, magnitude=0.5),
            ChaosEvent("capacity_drop", t=3, duration=1, magnitude=0.5, type_index=0),
        ))
        base = np.array([4, 2])
        assert np.array_equal(plan.counts_at(1, base), base)
        assert np.array_equal(plan.counts_at(2, base), [2, 1])
        # overlapping drops compound sequentially at t=3
        assert np.array_equal(plan.counts_at(3, base), [1, 1])
        assert np.array_equal(plan.counts_at(4, base), base)

    def test_counts_at_always_removes_at_least_one(self):
        plan = EventPlan(events=(ChaosEvent("capacity_drop", t=0, magnitude=0.01),))
        assert np.array_equal(plan.counts_at(0, np.array([3])), [2])
        assert np.array_equal(plan.counts_at(0, np.array([0])), [0])

    def test_factors(self):
        plan = EventPlan(events=(
            ChaosEvent("price_shock", t=1, duration=2, magnitude=2.0),
            ChaosEvent("price_shock", t=2, duration=1, magnitude=3.0),
            ChaosEvent("flash_crowd", t=2, duration=1, magnitude=4.0),
        ))
        assert plan.price_factor_at(0) == 1.0
        assert plan.price_factor_at(1) == 2.0
        assert plan.price_factor_at(2) == 6.0
        assert plan.demand_factor_at(2) == 4.0


class TestApplyEventPlan:
    def test_baked_instance_stays_feasible(self):
        base = scenarios.build("diurnal-cpu-gpu", T=16)
        # price shocks and flash crowds are batch-safe for any algorithm;
        # baked capacity drops need tuned windows (chaos-outage) because an
        # online algorithm's already-powered machines may exceed shrunken
        # counts — unplanned drops are the serve layer's job
        plan = EventPlan.generate(16, 2, seed=9, n_events=6,
                                  kinds=("price_shock", "flash_crowd"))
        inst = apply_event_plan(base, plan, cap_fraction=0.9)
        # strict batch validation must accept the baked instance
        result = run_online(inst, AlgorithmA())
        assert np.isfinite(result.cost)

    def test_flash_crowd_raises_demand(self):
        base = scenarios.build("diurnal-cpu-gpu", T=12)
        plan = EventPlan(events=(ChaosEvent("flash_crowd", t=4, duration=2, magnitude=1.5),))
        inst = apply_event_plan(base, plan)
        assert inst.demand[4] > base.demand[4]
        assert inst.demand[0] == base.demand[0]

    def test_price_shock_scales_costs(self):
        base = scenarios.build("diurnal-cpu-gpu", T=8)
        plan = EventPlan(events=(ChaosEvent("price_shock", t=3, duration=1, magnitude=2.0),))
        inst = apply_event_plan(base, plan)
        z = 0.5
        assert inst.cost_row(3)[0].value(z) == pytest.approx(2.0 * base.cost_row(3)[0].value(z))
        assert inst.cost_row(2)[0].value(z) == pytest.approx(base.cost_row(2)[0].value(z))


# --------------------------------------------------------------------------- #
# Chaos scenario families
# --------------------------------------------------------------------------- #


class TestChaosFamilies:
    def test_family_set_registered(self):
        assert set(CHAOS_FAMILIES) >= {
            "chaos-outage", "chaos-price-shock", "chaos-flash-crowd", "chaos-mixed",
            "chaos-ski-rental", "chaos-interleaved-ski", "chaos-adaptive",
        }
        for name in CHAOS_FAMILIES:
            assert "chaos" in scenarios.family(name).tags

    @pytest.mark.parametrize("name", CHAOS_FAMILIES)
    def test_smoke_and_default_instances_pass_batch_gate(self, name):
        fam = scenarios.family(name)
        for params in (fam.smoke_params, {}):
            inst = scenarios.build(ScenarioSpec(name, dict(params)))
            result = run_online(inst, AlgorithmA())
            assert np.isfinite(result.cost)

    def test_spec_events_override(self):
        events = [{"kind": "flash_crowd", "t": 2, "duration": 2, "magnitude": 1.4}]
        spec = ScenarioSpec("chaos-outage", {"T": 12}, events=events)
        inst = scenarios.build(spec)
        base = scenarios.build(ScenarioSpec("chaos-outage", {"T": 12, "drop_fraction": 0.5}))
        # the explicit plan replaces the built-in outage window
        assert inst.T == base.T
        assert not inst.has_time_dependent_counts

    def test_events_rejected_on_non_event_aware_family(self):
        spec = ScenarioSpec("homogeneous", {"T": 8}, events=[
            {"kind": "flash_crowd", "t": 1, "magnitude": 2.0}
        ])
        with pytest.raises(ScenarioParamError, match="event-aware"):
            scenarios.validate(spec)

    def test_spec_events_round_trip(self):
        spec = ScenarioSpec("chaos-mixed", {"T": 12}, seed=3, events=[
            {"kind": "price_shock", "t": 4, "duration": 2, "magnitude": 2.5}
        ])
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.event_plan().events[0].kind == "price_shock"

    def test_adversary_families_deterministic(self):
        a = scenarios.build(ScenarioSpec("chaos-adaptive", {"T": 5, "candidates": 2}))
        b = scenarios.build(ScenarioSpec("chaos-adaptive", {"T": 5, "candidates": 2}))
        assert np.array_equal(a.demand, b.demand)
        x = scenarios.build(ScenarioSpec("chaos-interleaved-ski", {"n_cycles": 1, "max_gap": 6}))
        y = scenarios.build(ScenarioSpec("chaos-interleaved-ski", {"n_cycles": 1, "max_gap": 6}))
        assert np.array_equal(x.demand, y.demand)


class TestAdversaries:
    def test_interleaved_ski_puts_pressure_on_each_type(self):
        fleet = cpu_gpu_fleet(cpu_count=3, gpu_count=2)
        inst = interleaved_ski_rental_instance(fleet, n_cycles=2, max_gap=5)
        capacities = np.cumsum([st.count * st.capacity for st in fleet])
        # every cumulative-capacity burst level appears in the trace
        for level in capacities:
            assert np.any(np.isclose(inst.demand, level))

    def test_adaptive_adversary_beats_trivial_ratio(self):
        fleet = single_type_fleet(count=3)
        result = adaptive_adversary(fleet, T=8, candidates=3, seed=0)
        assert result.ratio > 1.0
        assert len(result.ratio_history) == 8
        # the empirical ratio never decreases along the greedy prefix
        assert all(b >= a - 1e-9 for a, b in zip(result.ratio_history, result.ratio_history[1:]))

    def test_adaptive_adversary_deterministic(self):
        fleet = single_type_fleet(count=2)
        a = adaptive_adversary(fleet, T=6, candidates=3, seed=4)
        b = adaptive_adversary(fleet, T=6, candidates=3, seed=4)
        assert np.array_equal(a.instance.demand, b.instance.demand)
        assert a.ratio == b.ratio


# --------------------------------------------------------------------------- #
# Fault injection
# --------------------------------------------------------------------------- #


def _base_instance(T=12):
    return scenarios.build("diurnal-cpu-gpu", T=T)


class TestFaultInjector:
    def test_quiet_tick_passes_through(self):
        inst = _base_instance()
        injector = FaultInjector(EventPlan.generate(12, 2, seed=1), inst.server_types)
        tick = Tick(t=0, demand=1.0)
        assert injector.inject(tick) is tick  # tick 0 is never faulted

    def test_flash_crowd_multiplies_demand(self):
        plan = EventPlan(events=(ChaosEvent("flash_crowd", t=1, magnitude=3.0),))
        injector = FaultInjector(plan)
        out = injector.inject(Tick(t=1, demand=2.0))
        assert out.demand == pytest.approx(6.0)

    def test_capacity_drop_needs_fleet(self):
        plan = EventPlan(events=(ChaosEvent("capacity_drop", t=1, magnitude=0.5),))
        with pytest.raises(ValueError, match="server_types"):
            FaultInjector(plan).inject(Tick(t=1, demand=1.0))

    def test_scaled_rows_are_memoised(self):
        inst = _base_instance()
        plan = EventPlan(events=(ChaosEvent("price_shock", t=1, duration=3, magnitude=2.0),))
        injector = FaultInjector(plan, inst.server_types)
        row_a = injector.inject(Tick(t=1, demand=1.0)).cost_row
        row_b = injector.inject(Tick(t=2, demand=2.0)).cost_row
        # identical objects, so the serve cache's ledgers keep deduplicating
        assert row_a is row_b
        assert row_a[0].factor == 2.0

    def test_chaos_feed_wraps_instance_feed(self):
        inst = _base_instance()
        plan = EventPlan(events=(ChaosEvent("flash_crowd", t=2, duration=1, magnitude=2.0),))
        ticks = list(ChaosFeed(InstanceFeed(inst), plan))
        assert len(ticks) == inst.T
        assert ticks[2].demand == pytest.approx(2.0 * inst.demand[2])
        assert ticks[3].demand == pytest.approx(inst.demand[3])


# --------------------------------------------------------------------------- #
# Graceful degradation
# --------------------------------------------------------------------------- #


class TestGracefulDegradation:
    def test_strict_still_raises_on_overload(self):
        inst = _base_instance()
        session = ControllerSession("A", inst.server_types)
        with pytest.raises(ValueError, match="capacity"):
            session.observe(1e6)

    def test_shed_mode_sheds_and_accounts(self):
        inst = _base_instance()
        capacity = float(np.sum([st.count * st.capacity for st in inst.server_types]))
        session = ControllerSession("A", inst.server_types, degradation="shed")
        state = session.observe(capacity + 5.0)
        assert state.sla_violation
        assert state.served_demand == pytest.approx(capacity)
        assert state.shed_demand == pytest.approx(5.0)
        assert session.sla_violations == 1
        assert session.shed_demand_total == pytest.approx(5.0)
        row = state.as_row()
        assert row["sla_violation"] is True
        assert row["shed_demand"] == pytest.approx(5.0)
        # feasible ticks keep the default accounting
        quiet = session.observe(1.0)
        assert not quiet.sla_violation
        assert quiet.as_row()["sla_violation"] is False
        assert "shed_demand" not in quiet.as_row()

    def test_invalid_degradation_rejected(self):
        inst = _base_instance()
        with pytest.raises(ValueError, match="degradation"):
            ControllerSession("A", inst.server_types, degradation="panic")

    def test_unplanned_shrink_with_open_power_up_records(self):
        """Satellite: live m_t shrinkage under Algorithm B's open records.

        B tracks open power-up records per type; an unplanned capacity drop
        must clamp its configuration (forced power-downs) without corrupting
        the records — and the machines come straight back when capacity
        recovers.
        """
        inst = _base_instance()
        full = np.array([st.count for st in inst.server_types], dtype=int)
        shrunk = full.copy()
        shrunk[0] = max(full[0] - 4, 0)

        # strict sessions refuse the shrunken tick outright
        strict = ControllerSession("B", inst.server_types)
        strict.observe(6.0)
        with pytest.raises(ValueError, match="fleet limits"):
            strict.observe(6.0, counts=shrunk)

        # shed sessions clamp, account, and recover
        session = ControllerSession("B", inst.server_types, degradation="shed")
        high = session.observe(6.0)
        assert np.all(high.config <= full)
        algorithm = session.algorithm
        open_records = sum(len(r) for r in algorithm._records)
        assert open_records > 0  # B holds open power-up records mid-stream

        capacity_shrunk = float(np.sum(shrunk * np.array([st.capacity for st in inst.server_types])))
        dropped = session.observe(min(6.0, capacity_shrunk), counts=shrunk)
        assert np.all(dropped.config <= shrunk)
        assert dropped.forced_down > 0
        assert dropped.sla_violation
        assert session.forced_downs == dropped.forced_down
        # the open records survive the forced power-down
        assert sum(len(r) for r in algorithm._records) > 0

        recovered = session.observe(6.0)
        assert np.all(recovered.config <= full)
        # capacity recovered: the algorithm's state powers machines back up
        assert int(recovered.config[0]) > int(dropped.config[0])

    def test_shed_replay_never_raises_and_is_deterministic(self):
        inst = _base_instance(T=16)
        plan = EventPlan.generate(16, 2, seed=21, n_events=5)
        report = verify_chaos_replay(inst, plan)
        assert report["ok"]
        assert report["cost_deviation"] <= 1e-9

    def test_verify_chaos_replay_counts_expected_shed(self):
        inst = _base_instance()
        plan = EventPlan(events=(ChaosEvent("flash_crowd", t=3, duration=4, magnitude=80.0),))
        report = verify_chaos_replay(inst, plan)
        assert report["sla_violations"] >= report["expected_shed_ticks"] > 0
        assert report["shed_demand"] > 0

    def test_engine_chaos_tenants_share_plan(self):
        inst = _base_instance()
        plan = EventPlan(events=(ChaosEvent("flash_crowd", t=2, duration=2, magnitude=60.0),))
        engine = ServeEngine()
        for name in ("t0", "t1"):
            engine.add_tenant(name, "A", InstanceFeed(inst), chaos=plan)
        report = engine.run()
        # correlated bursts: both tenants violate, and it reaches the report
        assert report["sla_violations"] >= 4
        assert report["shed_demand"] > 0
        for summary in report["tenant_summaries"]:
            assert summary["degradation"] == "shed"
            assert summary["sla_violations"] >= 2

    def test_plain_tenants_stay_strict(self):
        inst = _base_instance()
        engine = ServeEngine()
        session = engine.add_tenant("plain", "A", InstanceFeed(inst))
        assert session.degradation == "strict"
        report = engine.run()
        assert report["sla_violations"] == 0


# --------------------------------------------------------------------------- #
# Hardened inputs: JSONL feeds
# --------------------------------------------------------------------------- #


class TestJsonlHardening:
    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"demand": 1.0}\nnot json at all\n', encoding="utf-8")
        with pytest.raises(FeedError, match=r"trace\.jsonl:2"):
            list(JsonlFeed(path))

    def test_missing_demand_key_reports_location(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"load": 1.0}\n', encoding="utf-8")
        with pytest.raises(FeedError, match="no 'demand' key"):
            list(JsonlFeed(path))

    def test_non_numeric_and_negative_demand_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"demand": "much"}\n', encoding="utf-8")
        with pytest.raises(FeedError, match="not a number"):
            list(JsonlFeed(path))
        path.write_text('-1.5\n', encoding="utf-8")
        with pytest.raises(FeedError, match="non-negative"):
            list(JsonlFeed(path))

    def test_skip_policy_counts_and_continues(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('1.0\ngarbage\n{"demand": 2.0}\n{"oops": 3}\n4.0\n', encoding="utf-8")
        feed = JsonlFeed(path, on_error="skip")
        demands = [tick.demand for tick in feed]
        assert demands == [1.0, 2.0, 4.0]
        assert feed.skipped == 2
        # tick indices stay contiguous after skips
        assert [tick.t for tick in JsonlFeed(path, on_error="skip")] == [0, 1, 2]

    def test_invalid_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="on_error"):
            JsonlFeed(tmp_path / "x.jsonl", on_error="ignore")

    def test_checksummed_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        n = write_jsonl_trace(path, [1.0, 2.5, 0.0], checksum=True)
        assert n == 3
        demands = [t.demand for t in JsonlFeed(path, verify_checksum=True)]
        assert demands == [1.0, 2.5, 0.0]

    def test_checksum_mismatch_fails_loudly(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl_trace(path, [1.0, 2.0], checksum=True)
        corrupted = path.read_text(encoding="utf-8").replace('"demand": 2.0', '"demand": 3.0')
        path.write_text(corrupted, encoding="utf-8")
        with pytest.raises(FeedError, match="checksum mismatch"):
            list(JsonlFeed(path))  # checksums are verified whenever present
        # ... and the skip policy can degrade past it
        feed = JsonlFeed(path, on_error="skip")
        assert [t.demand for t in feed] == [1.0]
        assert feed.skipped == 1

    def test_verify_checksum_requires_the_field(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl_trace(path, [1.0], checksum=False)
        with pytest.raises(FeedError, match="checksum required"):
            list(JsonlFeed(path, verify_checksum=True))

    def test_open_retries_transient_errors(self, tmp_path, monkeypatch):
        path = tmp_path / "trace.jsonl"
        write_jsonl_trace(path, [1.0])
        real_open = open
        attempts = {"n": 0}

        def flaky_open(*args, **kwargs):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise OSError("transient")
            return real_open(*args, **kwargs)

        import repro.serve.feed as feed_mod

        monkeypatch.setattr("builtins.open", flaky_open)
        feed = JsonlFeed(path, retries=2, retry_delay=0.001)
        assert [t.demand for t in feed] == [1.0]
        assert attempts["n"] == 2
        monkeypatch.undo()
        with pytest.raises(OSError):
            list(JsonlFeed(tmp_path / "missing.jsonl", retries=1, retry_delay=0.001))


# --------------------------------------------------------------------------- #
# Hardened inputs: checkpoint integrity
# --------------------------------------------------------------------------- #


class TestCheckpointIntegrity:
    def _session(self, ticks=4):
        inst = _base_instance()
        session = ControllerSession("A", inst.server_types)
        for t in range(ticks):
            session.observe(float(inst.demand[t]))
        return inst, session

    def test_checkpoint_carries_valid_checksum(self):
        _, session = self._session()
        payload = session.checkpoint()
        body = {k: v for k, v in payload.items() if k != "checksum"}
        assert payload["checksum"] == payload_checksum(body)
        assert payload["checksum"].startswith("crc32:")

    def test_tampered_checkpoint_fails_restore(self):
        inst, session = self._session()
        payload = json.loads(json.dumps(session.checkpoint()))
        payload["cum_operating"] += 1.0
        fresh = ControllerSession("A", inst.server_types)
        with pytest.raises(CheckpointCorruptError, match="integrity"):
            fresh.restore(payload)

    def test_version_is_checked_before_checksum(self):
        inst, session = self._session()
        payload = session.checkpoint()
        payload["version"] = 99
        fresh = ControllerSession("A", inst.server_types)
        with pytest.raises(ValueError, match="version"):
            fresh.restore(payload)

    def test_checksum_less_checkpoints_still_load(self):
        inst, session = self._session()
        payload = json.loads(json.dumps(session.checkpoint()))
        del payload["checksum"]  # a pre-chaos checkpoint
        fresh = ControllerSession("A", inst.server_types)
        fresh.restore(payload)
        assert fresh.ticks == session.ticks
        assert fresh.cumulative_cost == pytest.approx(session.cumulative_cost)

    def test_counters_round_trip_through_checkpoint(self):
        inst = _base_instance()
        capacity = float(np.sum([st.count * st.capacity for st in inst.server_types]))
        session = ControllerSession("A", inst.server_types, degradation="shed")
        session.observe(capacity + 3.0)
        restored = session.checkpoint_roundtrip()
        assert restored.degradation == "shed"
        assert restored.sla_violations == 1
        assert restored.shed_demand_total == pytest.approx(3.0)

    def test_load_checkpoint_from_disk(self, tmp_path):
        _, session = self._session()
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps(session.checkpoint()), encoding="utf-8")
        payload = load_checkpoint(path)
        assert payload["tick"] == session.ticks

    def test_load_checkpoint_truncated_fails_loudly(self, tmp_path):
        _, session = self._session()
        path = tmp_path / "ckpt.json"
        text = json.dumps(session.checkpoint())
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.raises(CheckpointCorruptError, match="not valid JSON"):
            load_checkpoint(path)

    def test_load_checkpoint_retries(self, tmp_path, monkeypatch):
        _, session = self._session(ticks=2)
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps(session.checkpoint()), encoding="utf-8")
        real_open = open
        attempts = {"n": 0}

        def flaky_open(*args, **kwargs):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise OSError("transient")
            return real_open(*args, **kwargs)

        monkeypatch.setattr("builtins.open", flaky_open)
        payload = load_checkpoint(path, retries=2, retry_delay=0.001)
        assert payload["tick"] == 2
        assert attempts["n"] == 2


# --------------------------------------------------------------------------- #
# Determinism gate over the chaos families
# --------------------------------------------------------------------------- #


class TestChaosDeterminism:
    @pytest.mark.parametrize("name", CHAOS_FAMILIES)
    def test_chaos_families_replay_deterministically(self, name):
        fam = scenarios.family(name)
        inst = scenarios.build(ScenarioSpec(name, dict(fam.smoke_params)))
        plan = EventPlan.generate(inst.T, inst.d, seed=7, n_events=3)
        report = verify_chaos_replay(inst, plan)
        assert report["ok"]

    @pytest.mark.parametrize("name", CHAOS_FAMILIES)
    def test_chaos_families_pass_strict_serve_gate(self, name):
        """Without injection, chaos families obey the batch-equivalence gate."""
        fam = scenarios.family(name)
        inst = scenarios.build(ScenarioSpec(name, dict(fam.smoke_params)))
        checkpoint_at = max(1, inst.T // 2) if inst.T >= 2 else None
        report = verify_replay(inst, "A", checkpoint_at=checkpoint_at)
        assert report["ok"]

    def test_algorithm_b_under_chaos(self):
        inst = _base_instance(T=14)
        plan = EventPlan(events=(
            ChaosEvent("capacity_drop", t=4, duration=3, magnitude=0.8),
            ChaosEvent("flash_crowd", t=9, duration=2, magnitude=30.0),
        ))
        report = verify_chaos_replay(inst, plan, algorithm="B")
        assert report["ok"]
        assert report["sla_violations"] > 0
