"""The :meth:`OnlineAlgorithm.step` contract every registered algorithm obeys.

The serve layer keeps algorithm objects alive across whole demand streams and
(through the sweep engine) reuses them across instances, so it depends on two
invariants the base-class docstrings promise but nothing previously asserted:

* **determinism under replay** — feeding the same slot sequence to the same
  algorithm object twice (with ``start`` between runs) yields the identical
  schedule, and a freshly constructed algorithm yields that same schedule;
* **statelessness across instances** — running an algorithm on instance
  ``I1``, then ``I2``, then ``I1`` again reproduces the first ``I1`` schedule
  exactly (``start`` must reset every decision-relevant byte).

Parametrised over every registered algorithm kind — A/B/C, LCP, and the
baselines — plus both tracker tie-breaks for the DP prefix tracker.
"""

import numpy as np
import pytest

from repro.online.base import run_online
from repro.online.tracker import DPPrefixTracker
from repro.scenarios import build
from repro.serve import SERVE_ALGORITHMS, build_serve_algorithm

KINDS = sorted(SERVE_ALGORITHMS)


@pytest.fixture(scope="module")
def instances():
    return {
        "I1": build("diurnal-cpu-gpu", T=10),
        "I2": build("bursty-old-new", T=10),
    }


@pytest.mark.parametrize("kind", KINDS)
class TestStepContract:
    def test_deterministic_under_repeated_replay(self, kind, instances):
        algorithm = build_serve_algorithm(kind)
        first = run_online(instances["I1"], algorithm)
        second = run_online(instances["I1"], algorithm)
        assert np.array_equal(first.schedule.x, second.schedule.x)
        assert first.cost == pytest.approx(second.cost, abs=1e-12)

    def test_fresh_object_reproduces_reused_object(self, kind, instances):
        reused = build_serve_algorithm(kind)
        run_online(instances["I2"], reused)  # dirty the object on another instance
        replay = run_online(instances["I1"], reused)
        fresh = run_online(instances["I1"], build_serve_algorithm(kind))
        assert np.array_equal(replay.schedule.x, fresh.schedule.x)

    def test_stateless_across_instances(self, kind, instances):
        algorithm = build_serve_algorithm(kind)
        before = run_online(instances["I1"], algorithm)
        run_online(instances["I2"], algorithm)
        after = run_online(instances["I1"], algorithm)
        assert np.array_equal(before.schedule.x, after.schedule.x)
        assert before.cost == pytest.approx(after.cost, abs=1e-12)

    def test_schedules_respect_fleet_limits(self, kind, instances):
        # run_online validates per step; assert the assembled schedule too
        instance = instances["I1"]
        result = run_online(instance, build_serve_algorithm(kind))
        for t in range(instance.T):
            assert np.all(result.schedule.x[t] >= 0)
            assert np.all(result.schedule.x[t] <= instance.counts_at(t))


class TestTrackerTieBreaks:
    @pytest.mark.parametrize("tie_break", ["smallest", "largest"])
    def test_tracker_deterministic_across_resets(self, tie_break, instances):
        from repro.online.base import SlotContext

        instance = instances["I1"]
        context = SlotContext(instance)
        tracker = DPPrefixTracker(tie_break=tie_break)
        runs = []
        for _ in range(2):
            tracker.reset()
            runs.append(
                np.stack([tracker.observe(context.slot(t)) for t in range(instance.T)])
            )
        assert np.array_equal(runs[0], runs[1])

    def test_tie_break_interval_well_formed_on_homogeneous(self):
        """smallest <= largest per slot on a homogeneous instance — the LCP
        projection interval both tie-breaks feed is well formed."""
        from repro.online.base import SlotContext

        instance = build("homogeneous", T=10)
        context = SlotContext(instance)
        lower = DPPrefixTracker(tie_break="smallest")
        upper = DPPrefixTracker(tie_break="largest")
        for t in range(instance.T):
            lo = lower.observe(context.slot(t))
            hi = upper.observe(context.slot(t))
            assert np.all(lo <= hi)
