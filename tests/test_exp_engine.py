"""Equivalence suite for the shared-context sweep engine.

The engine is pure orchestration: batching algorithms × instances through one
shared context per instance (dispatch solver, grid tensors, prefix-DP value
stream) must not change a single schedule, cost or ratio relative to the
sequential ``run_online`` path.  These tests assert exactly that — to 1e-9 on
costs and exact equality on schedules — for every algorithm family on the
three instance classes (time-invariant, priced, time-varying counts), plus the
shared-tracker path with both tie-breaks, the per-run dispatch-stat deltas,
and the process-sharded path.
"""

import numpy as np
import pytest

from repro import (
    AlgorithmA,
    AlgorithmB,
    AlgorithmC,
    LazyCapacityProvisioning,
    run_online,
    solve_approx,
    solve_optimal,
)
from repro.core.instance import ProblemInstance
from repro.dispatch import DispatchSolver
from repro.exp import (
    AlgorithmSpec,
    OfflineSpec,
    SharedInstanceContext,
    SweepPlan,
    run_instance,
    run_plan,
    spec,
)
from repro.online import DPPrefixTracker, SharedTrackerFactory, SlotContext
from repro.workloads import cpu_gpu_fleet, diurnal_trace, fleet_instance, single_type_fleet


def _time_invariant(T=14):
    return fleet_instance(
        cpu_gpu_fleet(cpu_count=4, gpu_count=2),
        diurnal_trace(T, period=T // 2, base=1.0, peak=8.0, noise=0.05, rng=3),
        name="eng-ti",
    )


def _priced(T=14):
    base = _time_invariant(T)
    prices = 1.0 + 0.6 * np.sin(np.arange(T) / T * 4 * np.pi + 0.4)
    return base.with_price_profile(prices, name="eng-priced")


def _varying_counts(T=14):
    # expansion-only fleet (online algorithms never power down on shrink, so a
    # shrinking fleet would make B/C infeasible by construction)
    base = _time_invariant(T)
    counts = np.tile([4, 2], (T, 1))
    counts[:4] = [2, 1]
    counts[4:8] = [3, 2]
    demand = np.minimum(base.demand, 4.0)
    return ProblemInstance(base.server_types, demand, counts=counts, name="eng-counts")


def _homogeneous(T=14):
    return fleet_instance(
        single_type_fleet(count=6),
        diurnal_trace(T, period=T // 2, base=0.5, peak=5.0, noise=0.05, rng=7),
        name="eng-homog",
    )


ALL_INSTANCES = [_time_invariant, _priced, _varying_counts]


def _sequential(instance, algorithm):
    """The reference path: fresh solver, private trackers, separate optimum."""
    dispatcher = DispatchSolver(instance)
    opt = solve_optimal(instance, dispatcher=dispatcher, return_schedule=False).cost
    result = run_online(instance, algorithm, dispatcher=dispatcher)
    return result, opt


class TestEngineEquivalence:
    @pytest.mark.parametrize("make_instance", ALL_INSTANCES)
    def test_a_b_c_match_sequential_runs(self, make_instance):
        instance = make_instance()
        report = run_plan(
            SweepPlan(
                instances=(instance,),
                algorithms=(spec("A"), spec("B"), spec("C", epsilon=0.5)),
            )
        )
        references = {
            "algorithm-A": AlgorithmA(),
            "algorithm-B": AlgorithmB(),
            "algorithm-C": AlgorithmC(epsilon=0.5),
        }
        assert len(report.records) == 3
        for record in report.records:
            seq, opt = _sequential(instance, references[record.algorithm])
            assert np.array_equal(record.result.schedule.x, seq.schedule.x)
            assert record.cost == pytest.approx(seq.cost, abs=1e-9)
            assert record.optimal_cost == pytest.approx(opt, abs=1e-9)
            assert record.ratio == pytest.approx(seq.cost / opt, abs=1e-9)
            assert record.result.breakdown.total == pytest.approx(seq.breakdown.total, abs=1e-9)
            assert record.result.breakdown.total_switching == pytest.approx(
                seq.breakdown.total_switching, abs=1e-9
            )

    def test_lcp_shared_stream_uses_both_tie_breaks(self):
        instance = _homogeneous()
        report = run_plan(SweepPlan(instances=(instance,), algorithms=(spec("lcp", bound=None),)))
        seq, opt = _sequential(instance, LazyCapacityProvisioning())
        record = report.records[0]
        assert np.array_equal(record.result.schedule.x, seq.schedule.x)
        assert record.cost == pytest.approx(seq.cost, abs=1e-9)
        assert record.optimal_cost == pytest.approx(opt, abs=1e-9)

    @pytest.mark.parametrize("make_instance", ALL_INSTANCES)
    def test_shared_tracker_matches_private_per_tie_break(self, make_instance):
        instance = make_instance()
        context = SharedInstanceContext(instance)
        for tie_break in ("smallest", "largest"):
            shared = context.tracker(tie_break=tie_break)
            private = DPPrefixTracker(tie_break=tie_break)
            private_slots = SlotContext(instance)
            shared.reset()
            private.reset()
            for t in range(instance.T):
                x_shared = shared.observe(context.slots.slot(t))
                x_private = private.observe(private_slots.slot(t))
                assert np.array_equal(x_shared, x_private), (tie_break, t)
            assert shared.prefix_optimum_cost() == pytest.approx(
                private.prefix_optimum_cost(), abs=1e-9
            )

    @pytest.mark.parametrize("make_instance", ALL_INSTANCES)
    def test_stream_values_equal_offline_dp_tables(self, make_instance):
        instance = make_instance()
        context = SharedInstanceContext(instance)
        engine_opt = context.optimal_cost()
        stream = context.trackers.stream(None)
        reference = solve_optimal(instance, keep_tables=True)
        assert len(stream) == instance.T
        for t in range(instance.T):
            assert np.allclose(
                stream.values[t], reference.value_tables[t], atol=1e-12, equal_nan=True
            )
        assert engine_opt == pytest.approx(
            solve_optimal(instance, return_schedule=False).cost, abs=1e-9
        )

    def test_offline_specs_match_direct_solvers(self):
        instance = _varying_counts()
        report = run_plan(
            SweepPlan(
                instances=(instance,),
                offline=(OfflineSpec(solver="optimal"), OfflineSpec(solver="approx", epsilon=0.5)),
            )
        )
        exact = report.record(instance.name, "offline-optimal").result
        approx = report.record(instance.name, "approx(eps=0.5)").result
        ref_exact = solve_optimal(instance)
        ref_approx = solve_approx(instance, epsilon=0.5)
        assert np.array_equal(exact.schedule.x, ref_exact.schedule.x)
        assert exact.cost == pytest.approx(ref_exact.cost, abs=1e-9)
        assert np.array_equal(approx.schedule.x, ref_approx.schedule.x)
        assert approx.cost == pytest.approx(ref_approx.cost, abs=1e-9)
        assert exact.schedule.is_feasible(instance)

    def test_slot_context_evaluation_matches_general_path(self):
        from repro import evaluate_schedule

        instance = _priced()
        context = SharedInstanceContext(instance)
        result = context.run(AlgorithmB())
        reference = evaluate_schedule(instance, result.schedule, DispatchSolver(instance))
        assert result.breakdown.total == pytest.approx(reference.total, abs=1e-9)
        assert np.allclose(result.breakdown.operating, reference.operating, atol=1e-9)
        assert np.allclose(result.breakdown.loads, reference.loads, atol=1e-7)
        assert np.allclose(result.breakdown.idle, reference.idle, atol=1e-9)

    def test_custom_factory_specs(self):
        instance = _time_invariant()
        report = run_plan(
            SweepPlan(
                instances=(instance,),
                algorithms=(
                    AlgorithmSpec(kind="custom", bound=None, factory=lambda ctx: AlgorithmA()),
                ),
            )
        )
        seq, _ = _sequential(instance, AlgorithmA())
        assert report.records[0].cost == pytest.approx(seq.cost, abs=1e-9)


class TestDispatchStatsDelta:
    def test_per_run_deltas_on_shared_solver(self):
        instance = _time_invariant()
        dispatcher = DispatchSolver(instance)
        first = run_online(instance, AlgorithmA(), dispatcher=dispatcher)
        second = run_online(instance, AlgorithmA(), dispatcher=dispatcher)
        # the second run is served almost entirely from the shared caches; a
        # cumulative snapshot would report first-run work again
        assert second.dispatch_stats["slot_queries"] < first.dispatch_stats["slot_queries"] * 2
        assert second.dispatch_stats["unique_solves"] == 0
        assert first.dispatch_stats["unique_solves"] > 0
        total = dispatcher.stats.snapshot()
        assert (
            first.dispatch_stats["slot_queries"] + second.dispatch_stats["slot_queries"]
            == total["slot_queries"]
        )

    def test_delta_since_recomputes_hit_rate(self):
        instance = _time_invariant()
        dispatcher = DispatchSolver(instance)
        run_online(instance, AlgorithmA(), dispatcher=dispatcher)
        before = dispatcher.stats.snapshot()
        delta = dispatcher.stats.delta_since(before)
        assert delta["slot_queries"] == 0
        assert delta["cache_hit_rate"] == 0.0


class TestEngineBatching:
    def test_run_instance_shares_one_context(self):
        instance = _time_invariant()
        context = SharedInstanceContext(instance)
        records = run_instance(
            instance, algorithms=(spec("A"), spec("B")), context=context
        )
        # B's record must show near-total cache reuse: the grid tensors and
        # value stream were already materialised by the optimum and A
        assert records[1].dispatch_stats["unique_solves"] == 0

    def test_parallel_jobs_match_serial(self):
        instances = (_time_invariant(), _homogeneous())
        plan = SweepPlan(instances=instances, algorithms=(spec("A"),), jobs=2)
        serial = run_plan(plan, jobs=1)
        parallel = run_plan(plan)
        assert len(serial.records) == len(parallel.records)
        for a, b in zip(serial.records, parallel.records):
            assert a.instance == b.instance
            assert a.algorithm == b.algorithm
            assert a.cost == pytest.approx(b.cost, abs=1e-12)
            assert a.optimal_cost == pytest.approx(b.optimal_cost, abs=1e-12)

    def test_report_rows_and_json_shape(self, tmp_path):
        instance = _time_invariant()
        report = run_plan(SweepPlan(instances=(instance,), algorithms=(spec("A"),)))
        rows = report.as_rows()
        assert rows[0]["instance"] == instance.name
        assert rows[0]["kind"] == "online"
        assert "dispatch" in rows[0]
        path = report.write_json(tmp_path / "sweep.json")
        import json

        payload = json.loads(path.read_text())
        assert payload["rows"][0]["algorithm"] == "algorithm-A"
        ratio_results = report.ratio_results()
        assert ratio_results[0].ratio == pytest.approx(report.records[0].ratio, abs=1e-12)


class TestAnalysisBridges:
    def test_run_algorithm_sweep_rows(self):
        from repro.analysis import run_algorithm_sweep

        result = run_algorithm_sweep([_time_invariant()], ["A", "B"])
        assert len(result) == 2
        assert set(result.column("algorithm")) == {"algorithm-A", "algorithm-B"}
        for row in result.as_rows():
            assert row["ratio"] >= 1.0 - 1e-9

    def test_ratio_table_still_reuses_one_optimum(self):
        from repro.analysis import ratio_table

        instance = _time_invariant()
        results = ratio_table([instance], [AlgorithmA, AlgorithmB], bounds=[5.0, None])
        assert len(results) == 2
        seq, opt = _sequential(instance, AlgorithmA())
        assert results[0].online_cost == pytest.approx(seq.cost, abs=1e-9)
        assert results[0].optimal_cost == pytest.approx(opt, abs=1e-9)
        assert results[0].bound == 5.0
        assert results[1].bound is None


class TestScaledRowDedup:
    def test_priced_dispatch_equals_scaled_base(self):
        base = _time_invariant()
        T = base.T
        prices = 1.0 + 0.5 * np.sin(np.arange(T) / T * 2 * np.pi)
        priced = base.with_price_profile(prices, name="eng-scaled")
        base_solver = DispatchSolver(base)
        priced_solver = DispatchSolver(priced)
        grid_configs = np.array([[0, 0], [1, 0], [2, 1], [4, 2]])
        for t in range(T):
            base_costs, base_loads = base_solver.solve_grid(t, grid_configs)
            priced_costs, priced_loads = priced_solver.solve_grid(t, grid_configs)
            finite = np.isfinite(base_costs)
            assert np.allclose(priced_costs[finite], prices[t] * base_costs[finite], rtol=1e-12)
            assert np.allclose(priced_loads, base_loads, atol=1e-9)

    def test_priced_slots_share_one_unique_solve_per_demand(self):
        instance = _priced()
        dispatcher = DispatchSolver(instance)
        grid_configs = np.array([[0, 0], [2, 1], [4, 2]])
        costs, _ = dispatcher.solve_block(range(instance.T), grid_configs)
        # all slots share one base cost row; unique solves = unique demands
        unique_demands = len({float(d) for d in instance.demand})
        assert dispatcher.stats.unique_solves == unique_demands
        assert costs.shape == (instance.T, 3)


class TestSweepBenchGate:
    def test_pinned_sweep_costs_reproduced(self):
        from repro.bench import PINNED_SWEEP_COSTS, run_sweep_bench

        payload = run_sweep_bench(include_baseline=False)
        assert payload["max_cost_deviation"] <= 1e-6
        assert len(PINNED_SWEEP_COSTS) == 26
