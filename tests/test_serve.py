"""Tests for the live replay & serving subsystem (:mod:`repro.serve`).

The anchor is the *streaming equivalence gate*: replaying a scenario through a
:class:`~repro.serve.ControllerSession` — including across a mid-stream
checkpoint/restore round-trip serialised through actual JSON text — must
reproduce the batch :func:`~repro.online.base.run_online` schedule exactly and
its total cost to 1e-9, for every registered scenario family and every serve
algorithm.  On top of that: feed sources, telemetry, multi-tenant cache
sharing (decision-neutral and measurably deduplicating), and the serve
benchmark's deterministic gates.
"""

import json

import numpy as np
import pytest

from repro import scenarios
from repro.online.base import run_online
from repro.scenarios import build
from repro.serve import (
    ArrayFeed,
    ControllerSession,
    InstanceFeed,
    JsonlFeed,
    ScenarioFeed,
    ServeCache,
    ServeEngine,
    SyntheticFeed,
    TelemetryWriter,
    build_serve_algorithm,
    fleet_signature,
    latency_percentiles,
    summarise_sessions,
    verify_replay,
)
from repro.workloads import named_trace

ALGORITHMS = ["A", "B", "C", "lcp", "reactive", "follow-demand", "all-on"]


def _smoke_instance(name):
    fam = scenarios.family(name)
    return build(scenarios.ScenarioSpec(name, dict(fam.smoke_params)))


# --------------------------------------------------------------------------- #
# The streaming equivalence gate
# --------------------------------------------------------------------------- #


class TestStreamingEquivalence:
    @pytest.mark.parametrize("family", scenarios.names())
    def test_every_family_replays_equivalently(self, family):
        """ISSUE-5 acceptance: for every registered scenario family, streamed
        replay with one mid-stream checkpoint/restore reproduces the batch
        run_online schedule and cost to 1e-9."""
        instance = _smoke_instance(family)
        row = verify_replay(instance, "A", checkpoint_at=max(1, instance.T // 2))
        assert row["ok"] and row["checkpointed"]
        assert row["cost_deviation"] <= 1e-9

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_algorithm_replays_equivalently(self, algorithm):
        instance = build("diurnal-cpu-gpu", T=12)
        row = verify_replay(instance, algorithm, checkpoint_at=5)
        assert row["ok"] and row["checkpointed"]

    @pytest.mark.parametrize("algorithm", ["B", "C"])
    def test_time_dependent_costs_replay(self, algorithm):
        instance = build("priced-cpu-gpu", T=12)
        row = verify_replay(instance, algorithm, checkpoint_at=6)
        assert row["ok"]

    def test_time_varying_counts_replay(self):
        instance = _smoke_instance("time-varying-m")
        row = verify_replay(instance, "A", checkpoint_at=5)
        assert row["ok"]

    def test_gamma_reduced_tracker_replays(self):
        instance = build("big-fleet", T=24, m_max=20)
        row = verify_replay(
            instance, {"kind": "A", "params": {"gamma": 1.5}}, checkpoint_at=11
        )
        assert row["ok"]

    def test_out_of_range_checkpoint_rejected(self):
        # checkpoint_at >= T would silently verify nothing about restore
        instance = build("homogeneous", T=6)
        with pytest.raises(ValueError, match="checkpoint_at"):
            verify_replay(instance, "A", checkpoint_at=6)
        with pytest.raises(ValueError, match="checkpoint_at"):
            verify_replay(instance, "A", checkpoint_at=0)

    def test_checkpoint_roundtrip_helper(self):
        instance = build("diurnal-cpu-gpu", T=10)
        session = ControllerSession("A", instance.server_types, track_regret=True)
        for t in range(5):
            session.observe(float(instance.demand[t]))
        fresh = session.checkpoint_roundtrip()
        assert fresh is not session
        assert fresh.cache is not session.cache  # cold cache by default
        warm = session.checkpoint_roundtrip(reuse_cache=True)
        assert warm.cache is session.cache
        for t in range(5, 10):
            a = session.observe(float(instance.demand[t]))
            b = fresh.observe(float(instance.demand[t]))
            c = warm.observe(float(instance.demand[t]))
            assert np.array_equal(a.config, b.config)
            assert np.array_equal(a.config, c.config)

    def test_divergent_stream_produces_divergent_schedule(self):
        # sanity check on the gate's power: a session fed a *different* demand
        # stream must not reproduce the batch schedule of the original
        instance = build("diurnal-cpu-gpu", T=8)
        batch = run_online(instance, build_serve_algorithm("A"))
        session = ControllerSession("A", instance.server_types)
        for value in np.roll(instance.demand, 3):
            session.observe(float(value))
        assert not np.array_equal(session.schedule.x, batch.schedule.x)


# --------------------------------------------------------------------------- #
# Sessions: checkpointing, validation, telemetry fields
# --------------------------------------------------------------------------- #


class TestControllerSession:
    def test_checkpoint_is_strict_json(self):
        instance = build("diurnal-cpu-gpu", T=10)
        session = ControllerSession("A", instance.server_types, track_regret=True)
        for t in range(5):
            session.observe(float(instance.demand[t]))
        payload = session.checkpoint()
        text = json.dumps(payload, allow_nan=False)  # raises on inf/nan leakage
        restored = ControllerSession("A", instance.server_types, track_regret=True)
        restored.restore(json.loads(text))
        for t in range(5, 10):
            a = session.observe(float(instance.demand[t]))
            b = restored.observe(float(instance.demand[t]))
            assert np.array_equal(a.config, b.config)
            assert a.cumulative_cost == pytest.approx(b.cumulative_cost, abs=1e-12)
            assert b.prefix_optimum_cost == pytest.approx(a.prefix_optimum_cost, abs=1e-12)

    def test_checkpoint_restores_regret_tracker_gamma(self):
        # the checkpoint records the regret tracker's gamma: restoring a
        # reduced-grid tensor into an exact tracker would mis-shape the grid
        instance = build("diurnal-cpu-gpu", T=10)
        session = ControllerSession(
            "A", instance.server_types, track_regret=True, regret_gamma=2.0
        )
        for t in range(4):
            session.observe(float(instance.demand[t]))
        payload = json.loads(json.dumps(session.checkpoint()))
        restored = ControllerSession("A", instance.server_types).restore(payload)
        for t in range(4, 10):
            a = session.observe(float(instance.demand[t]))
            b = restored.observe(float(instance.demand[t]))
            assert b.prefix_optimum_cost == pytest.approx(a.prefix_optimum_cost, abs=1e-12)

    def test_checkpoint_algorithm_mismatch_rejected(self):
        instance = build("homogeneous", T=6)
        session = ControllerSession("A", instance.server_types)
        session.observe(1.0)
        payload = session.checkpoint()
        other = ControllerSession("B", instance.server_types)
        with pytest.raises(ValueError, match="algorithm"):
            other.restore(payload)

    def test_checkpoint_version_checked(self):
        instance = build("homogeneous", T=6)
        session = ControllerSession("A", instance.server_types)
        payload = session.checkpoint()
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            ControllerSession("A", instance.server_types).restore(payload)

    def test_fleet_state_row_is_json_safe(self):
        instance = build("homogeneous", T=6)
        session = ControllerSession("A", instance.server_types, track_regret=True)
        state = session.observe(2.0)
        row = state.as_row()
        json.dumps(row, allow_nan=False)
        assert row["t"] == 0
        assert row["tick_cost"] == pytest.approx(row["operating_cost"] + row["switching_cost"])
        assert "regret" in row and "prefix_optimum_cost" in row
        assert state.regret == pytest.approx(0.0, abs=1e-9)  # prefix optimum at t=0

    def test_demand_validation(self):
        instance = build("homogeneous", T=6)
        session = ControllerSession("A", instance.server_types)
        with pytest.raises(ValueError, match="non-negative"):
            session.observe(-1.0)
        with pytest.raises(ValueError, match="capacity"):
            session.observe(1e9)

    def test_session_without_fleet_rejected(self):
        with pytest.raises(ValueError, match="server_types"):
            ControllerSession("A")

    def test_mismatched_cache_geometry_rejected(self):
        cpu_gpu = build("diurnal-cpu-gpu", T=4)
        single = build("homogeneous", T=4)
        cache = ServeCache(cpu_gpu.server_types)
        with pytest.raises(ValueError, match="geometry"):
            ControllerSession("A", single.server_types, cache=cache)

    def test_latency_and_summary(self):
        instance = build("homogeneous", T=8)
        session = ControllerSession("A", instance.server_types, name="t0")
        for t in range(8):
            session.observe(float(instance.demand[t]))
        assert len(session.latencies_seconds) == 8
        summary = session.summary()
        assert summary["tenant"] == "t0"
        assert summary["ticks"] == 8
        assert summary["latency"]["ticks"] == 8
        assert summary["latency"]["p99_ms"] >= summary["latency"]["p50_ms"] >= 0.0

    def test_schedule_property_matches_observations(self):
        instance = build("homogeneous", T=6)
        session = ControllerSession("all-on", instance.server_types)
        for t in range(6):
            session.observe(float(instance.demand[t]))
        assert session.schedule.x.shape == (6, 1)
        assert np.all(session.schedule.x == instance.m)


# --------------------------------------------------------------------------- #
# Feeds
# --------------------------------------------------------------------------- #


class TestFeeds:
    def test_scenario_feed_carries_spec_and_fleet(self):
        feed = ScenarioFeed("homogeneous", T=8, seed=3)
        assert feed.spec.name == "homogeneous"
        assert feed.spec.params["T"] == 8 and feed.spec.seed == 3
        assert feed.server_types is not None
        assert len(feed) == 8
        ticks = list(feed)
        assert [t.t for t in ticks] == list(range(8))
        assert all(t.cost_row is None for t in ticks)  # time-independent family

    def test_instance_feed_reveals_time_dependence(self):
        instance = build("priced-cpu-gpu", T=6)
        ticks = list(InstanceFeed(instance))
        assert all(t.cost_row is not None for t in ticks)
        varying = _smoke_instance("time-varying-m")
        counts = [t.counts for t in InstanceFeed(varying)]
        assert all(c is not None for c in counts)

    def test_jsonl_feed(self, tmp_path):
        path = tmp_path / "demand.jsonl"
        path.write_text('1.5\n{"demand": 2.5}\n\n3.0\n')
        demands = [tick.demand for tick in JsonlFeed(path)]
        assert demands == [1.5, 2.5, 3.0]

    def test_synthetic_feed_matches_named_preset(self):
        feed = SyntheticFeed("diurnal", slots=10, seed=4)
        np.testing.assert_allclose(
            [t.demand for t in feed], named_trace("diurnal", 10, rng=4)
        )

    def test_synthetic_feed_callable_source(self):
        feed = SyntheticFeed(lambda T, seed: np.full(T, 2.0), slots=5)
        assert [t.demand for t in feed] == [2.0] * 5

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError, match="unknown trace preset"):
            SyntheticFeed("nonsense", slots=4)

    def test_unpaced_play_equals_iteration(self):
        feed = ArrayFeed([1.0, 2.0, 3.0])
        assert [t.demand for t in feed.play(None)] == [t.demand for t in feed]


# --------------------------------------------------------------------------- #
# Multi-tenant engine and cache sharing
# --------------------------------------------------------------------------- #


class TestServeEngine:
    def _tenant_feeds(self, instance, n):
        return [
            InstanceFeed(
                instance.with_demand(np.roll(instance.demand, k), name=f"tenant-{k}")
            )
            for k in range(n)
        ]

    def test_sharing_is_decision_neutral_and_real(self):
        instance = build("diurnal-cpu-gpu", T=16)
        costs = {}
        solves = {}
        for share in (True, False):
            engine = ServeEngine(share_caches=share)
            for k, feed in enumerate(self._tenant_feeds(instance, 4)):
                engine.add_tenant(f"tenant-{k}", "A", feed)
            report = engine.run()
            costs[share] = [s.cumulative_cost for s in engine.sessions]
            solves[share] = sum(c["unique_solves"] for c in report["sharing"])
            assert report["caches"] == (1 if share else 4)
        np.testing.assert_allclose(costs[True], costs[False], rtol=0, atol=1e-9)
        assert solves[True] < solves[False]

    def test_shared_tensor_hits_counted(self):
        instance = build("diurnal-cpu-gpu", T=12)
        engine = ServeEngine()
        for k, feed in enumerate(self._tenant_feeds(instance, 3)):
            engine.add_tenant(f"tenant-{k}", "A", feed)
        report = engine.run()
        (counters,) = report["sharing"]
        assert counters["tensor_hits"] > 0
        assert counters["tensor_misses"] <= 12  # at most one per demand level

    def test_duplicate_tenant_rejected(self):
        instance = build("homogeneous", T=4)
        engine = ServeEngine()
        engine.add_tenant("t", "A", InstanceFeed(instance))
        with pytest.raises(ValueError, match="already registered"):
            engine.add_tenant("t", "A", InstanceFeed(instance))

    def test_demand_only_feed_needs_fleet(self):
        engine = ServeEngine()
        with pytest.raises(ValueError, match="server_types"):
            engine.add_tenant("t", "A", ArrayFeed([1.0, 2.0]))

    def test_engine_report_and_telemetry(self, tmp_path):
        instance = build("homogeneous", T=6)
        engine = ServeEngine()
        engine.add_tenant("t0", "A", InstanceFeed(instance))
        engine.add_tenant("t1", "reactive", InstanceFeed(instance))
        path = tmp_path / "telemetry.jsonl"
        with TelemetryWriter(path) as writer:
            report = engine.run(telemetry=writer)
        assert report["tenants"] == 2
        assert report["total_ticks"] == 12
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == 12
        assert {row["tenant"] for row in rows} == {"t0", "t1"}
        # interleaved round-robin: first two rows are tick 0 of both tenants
        assert [rows[0]["t"], rows[1]["t"]] == [0, 0]

    def test_max_ticks_bounds_the_run(self):
        instance = build("homogeneous", T=8)
        engine = ServeEngine()
        engine.add_tenant("t0", "A", InstanceFeed(instance))
        report = engine.run(max_ticks=3)
        assert report["total_ticks"] == 3

    def test_engine_uses_one_cache_per_geometry(self):
        a = build("diurnal-cpu-gpu", T=4)
        b = build("homogeneous", T=4)
        engine = ServeEngine()
        engine.add_tenant("t0", "A", InstanceFeed(a))
        engine.add_tenant("t1", "A", InstanceFeed(a.with_demand(a.demand, name="x")))
        engine.add_tenant("t2", "A", InstanceFeed(b))
        assert len(engine.caches) == 2
        assert fleet_signature(a.server_types) != fleet_signature(b.server_types)


# --------------------------------------------------------------------------- #
# Telemetry helpers
# --------------------------------------------------------------------------- #


class TestTelemetry:
    def test_null_writer_discards(self):
        writer = TelemetryWriter(None)
        writer.write({"t": 0})
        assert writer.rows_written == 0

    def test_latency_percentiles_shape(self):
        summary = latency_percentiles([0.001] * 10)
        assert summary["ticks"] == 10
        assert summary["p50_ms"] == pytest.approx(1.0)
        assert latency_percentiles([]) == {"ticks": 0}

    def test_summarise_sessions_throughput(self):
        instance = build("homogeneous", T=5)
        session = ControllerSession("A", instance.server_types)
        for t in range(5):
            session.observe(float(instance.demand[t]))
        summary = summarise_sessions([session], wall_seconds=0.5)
        assert summary["total_ticks"] == 5
        assert summary["ticks_per_second"] == pytest.approx(10.0)
        assert summary["tenants_per_second"] == pytest.approx(2.0)


# --------------------------------------------------------------------------- #
# The serve benchmark's deterministic gates
# --------------------------------------------------------------------------- #


class TestServeBench:
    def test_bench_gates_and_payload(self):
        from repro.bench import run_serve_bench

        payload = run_serve_bench(tenant_counts=(1, 4), ticks=12)
        assert payload["tenant_counts"] == [1, 4]
        assert len(payload["rows"]) == 4  # two modes per tenant count
        for row in payload["comparisons"]:
            assert row["max_cost_deviation"] <= 1e-9
        four = next(r for r in payload["comparisons"] if r["tenants"] == 4)
        assert four["unique_solves_shared"] < four["unique_solves_isolated"]
        assert four["tensor_hits_shared"] > four["tensor_hits_isolated"]
