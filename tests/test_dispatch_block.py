"""Tests for the batched cross-slot dispatch engine (``DispatchSolver.solve_block``)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    LinearCost,
    PowerCost,
    ProblemInstance,
    QuadraticCost,
    ServerType,
    solve_optimal,
)
from repro.bench import PINNED_OPTIMAL_COSTS, run_smoke_bench, smoke_instances
from repro.dispatch import DispatchSolver, reference_dispatch
from repro.offline.state_grid import StateGrid, grid_for_slot

from conftest import random_instance


def _full_configs(instance):
    return StateGrid.full(instance.m).configs()


def _assert_block_matches_per_slot(instance, configs, rel=1e-8):
    """``solve_block`` over all slots must equal per-slot ``solve_grid`` results."""
    block_solver = DispatchSolver(instance)
    slot_solver = DispatchSolver(instance)
    block_costs, block_loads = block_solver.solve_block(range(instance.T), configs)
    for t in range(instance.T):
        costs_t, loads_t = slot_solver.solve_grid(t, configs)
        np.testing.assert_allclose(block_costs[t], costs_t, rtol=rel, atol=1e-12)
        np.testing.assert_allclose(block_loads[t], loads_t, rtol=rel, atol=1e-9)


def _assert_block_matches_reference(instance, configs, rel=3e-4):
    """``solve_block`` must agree with the independent SLSQP reference solver."""
    solver = DispatchSolver(instance)
    costs, loads = solver.solve_block(range(instance.T), configs)
    for t in range(instance.T):
        for i, config in enumerate(configs):
            slow = reference_dispatch(instance, t, config)
            if math.isinf(slow.cost) or math.isinf(costs[t, i]):
                assert math.isinf(slow.cost) == math.isinf(costs[t, i])
            else:
                assert costs[t, i] == pytest.approx(slow.cost, rel=rel, abs=1e-6)
                assert loads[t, i].sum() == pytest.approx(
                    min(float(instance.demand[t]), loads[t, i].sum() + 1e-9), abs=1e-6
                )


class TestBlockEngine:
    def test_block_matches_per_slot_grid(self, small_instance):
        configs = _full_configs(small_instance)
        _assert_block_matches_per_slot(small_instance, configs)

    def test_block_matches_reference(self, small_instance):
        configs = np.array([[0, 0], [1, 0], [0, 1], [2, 1], [3, 2], [1, 2]])
        _assert_block_matches_reference(small_instance, configs)

    def test_zero_demand_slots(self, small_instance):
        # slot 4 of the fixture has zero demand: cost is the pure idle cost
        configs = np.array([[2, 1], [0, 0], [3, 2]])
        solver = DispatchSolver(small_instance)
        costs, loads = solver.solve_block([4, 4], configs)
        idle = small_instance.idle_costs(4)
        np.testing.assert_allclose(costs[0], configs @ idle)
        np.testing.assert_allclose(loads, 0.0)

    def test_single_type_fleet(self, homogeneous_instance):
        configs = np.arange(int(homogeneous_instance.m[0]) + 1)[:, None]
        _assert_block_matches_per_slot(homogeneous_instance, configs)
        _assert_block_matches_reference(homogeneous_instance, configs)

    def test_infinite_capacity(self):
        types = (
            ServerType("inf-cap", count=3, switching_cost=2.0, capacity=math.inf,
                       cost_function=QuadraticCost(idle=0.3, a=0.1, b=0.7)),
            ServerType("bounded", count=2, switching_cost=4.0, capacity=2.0,
                       cost_function=LinearCost(idle=0.5, slope=0.9)),
        )
        inst = ProblemInstance(types, np.array([0.0, 1.5, 6.0, 3.0]))
        configs = np.array([[0, 0], [1, 0], [3, 2], [2, 1], [0, 2]])
        _assert_block_matches_per_slot(inst, configs)
        _assert_block_matches_reference(inst, configs)

    def test_time_dependent_costs(self, time_dependent_instance):
        configs = np.array([[0, 0], [1, 1], [3, 2], [2, 0]])
        _assert_block_matches_per_slot(time_dependent_instance, configs)
        _assert_block_matches_reference(time_dependent_instance, configs)

    def test_time_varying_counts_grids_of_different_shapes(self, small_instance):
        counts = np.tile(small_instance.m, (small_instance.T, 1))
        counts[2:4, 0] = 1
        counts[5, 1] = 1
        inst = small_instance.with_counts(counts)
        # per-slot grids differ in shape; the DP must still match the per-slot path
        grids = [grid_for_slot(inst, t) for t in range(inst.T)]
        shapes = {g.shape for g in grids}
        assert len(shapes) > 1
        for t, grid in enumerate(grids):
            _assert_block_matches_per_slot(inst, grid.configs())

    def test_slot_order_irrelevant(self, small_instance):
        configs = _full_configs(small_instance)
        solver = DispatchSolver(small_instance)
        forward, _ = solver.solve_block(range(small_instance.T), configs)
        backward, _ = DispatchSolver(small_instance).solve_block(
            range(small_instance.T - 1, -1, -1), configs
        )
        np.testing.assert_allclose(forward, backward[::-1], rtol=1e-12, atol=1e-12)

    def test_repeated_slots_share_one_solve(self, small_instance):
        configs = _full_configs(small_instance)
        solver = DispatchSolver(small_instance)
        costs, _ = solver.solve_block([1, 1, 1, 1], configs)
        assert solver.stats.slot_queries == 4
        assert solver.stats.unique_solves == 1
        np.testing.assert_array_equal(costs[0], costs[3])

    def test_equal_demand_slots_deduplicate(self, two_type_fleet):
        demand = np.array([2.0, 2.0, 2.0, 5.0, 5.0, 0.0])
        inst = ProblemInstance(two_type_fleet, demand)
        solver = DispatchSolver(inst)
        solver.solve_block(range(inst.T), _full_configs(inst))
        # three unique positive demand levels (2.0, 5.0) plus the zero slot
        assert solver.stats.unique_solves == 3
        assert solver.stats.cache_hit_rate == pytest.approx(0.5)

    def test_memoisation_across_calls(self, small_instance):
        configs = _full_configs(small_instance)
        solver = DispatchSolver(small_instance)
        first, _ = solver.solve_block(range(small_instance.T), configs)
        solved = solver.stats.unique_solves
        second, _ = solver.solve_block(range(small_instance.T), configs)
        assert solver.stats.unique_solves == solved  # everything served from cache
        np.testing.assert_array_equal(first, second)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_heterogeneous_instances(self, seed):
        rng = np.random.default_rng(1000 + seed)
        inst = random_instance(rng, T=4, d=int(rng.integers(1, 4)), max_servers=3)
        grid = StateGrid.full(inst.m).configs()
        _assert_block_matches_per_slot(inst, grid)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_instances_against_reference(self, seed):
        rng = np.random.default_rng(2000 + seed)
        inst = random_instance(rng, T=3, d=2, max_servers=2)
        configs = StateGrid.full(inst.m).configs()
        _assert_block_matches_reference(inst, configs)


@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_block_engine_property(data):
    """Property: the batched engine equals the per-slot path on random inputs."""
    seed = data.draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, T=3, d=2, max_servers=3)
    configs = StateGrid.full(inst.m).configs()
    block_costs, _ = DispatchSolver(inst).solve_block(range(inst.T), configs)
    per_slot = DispatchSolver(inst)
    t = data.draw(st.integers(0, inst.T - 1))
    costs_t, _ = per_slot.solve_grid(t, configs)
    np.testing.assert_allclose(block_costs[t], costs_t, rtol=1e-8, atol=1e-12)


class TestGridMemoisation:
    def test_time_invariant_instance_builds_one_grid(self, small_instance):
        grids = [grid_for_slot(small_instance, t) for t in range(small_instance.T)]
        assert all(g is grids[0] for g in grids)
        # the cached configs enumeration is shared and read-only
        configs = grids[0].configs()
        assert grids[0].configs() is configs
        assert not configs.flags.writeable

    def test_gamma_keys_are_separate(self, small_instance):
        full = grid_for_slot(small_instance, 0)
        reduced = grid_for_slot(small_instance, 0, gamma=1.5)
        assert full is not reduced
        assert grid_for_slot(small_instance, 1, gamma=1.5) is reduced

    def test_time_varying_counts_get_distinct_grids(self, small_instance):
        counts = np.tile(small_instance.m, (small_instance.T, 1))
        counts[0, 0] = 1
        inst = small_instance.with_counts(counts)
        g0 = grid_for_slot(inst, 0)
        g1 = grid_for_slot(inst, 1)
        assert g0.shape != g1.shape
        assert grid_for_slot(inst, 2) is g1


class TestPinnedExactness:
    def test_smoke_harness_passes(self):
        rows = run_smoke_bench(tolerance=1e-6)
        assert len(rows) == len(PINNED_OPTIMAL_COSTS)
        for row in rows:
            assert row["deviation"] <= 1e-6

    def test_pinned_costs_via_solve_dp(self):
        for instance in smoke_instances():
            cost = solve_optimal(instance, return_schedule=False).cost
            assert cost == pytest.approx(PINNED_OPTIMAL_COSTS[instance.name], abs=1e-6)
