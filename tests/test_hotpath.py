"""Tests for the microsecond-tick hot path (quantised tables, warm duals, backend seam).

Three properties anchor everything here, mirroring the serve replay gates:

* **bit-identity** — the table-gather fast path, the warm-started dual
  bisection and the preallocated transition-plan kernels may only be *fast*,
  never *different*: schedules compare with ``np.array_equal`` and costs with
  1e-9, across every registered scenario family;
* **the seam is real** — the numpy and numba kernel registrations are
  selectable (and the numba one fails loudly, not deep inside a solve, when
  the wheel is absent); and
* **the counters tell the truth** — warm hits, table gathers and prewarmed
  levels move exactly when the corresponding fast path runs, so the pinned
  counter regression (``repro bench --counters``) can gate on them.
"""

import json

import numpy as np
import pytest

from repro import scenarios
from repro.bench import (
    PINNED_SERVE_COUNTERS,
    run_counter_regress,
    run_latency_smoke,
    run_serve_bench,
    trend_deltas,
    trend_report,
)
from repro.core.backend import (
    BackendUnavailableError,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.dispatch.allocation import DispatchSolver
from repro.dispatch.tables import SolutionTable
from repro.offline.state_grid import StateGrid, grid_for_slot
from repro.offline.transitions import make_transition_plan, transition
from repro.online import AlgorithmA, AlgorithmB, run_online
from repro.online.base import SlotContext
from repro.scenarios import build
from repro.serve import ControllerSession, InstanceFeed, ServeCache, ServeEngine
from repro.serve.feed import payload_checksum
from repro.workloads.scale import quantise_trace


def _smoke_instance(name):
    fam = scenarios.family(name)
    return build(scenarios.ScenarioSpec(name, dict(fam.smoke_params)))


def _random_grid(rng, d, full):
    values = []
    for _ in range(d):
        m = int(rng.integers(2, 7))
        if full:
            values.append(np.arange(m + 1))
        else:
            picks = rng.choice(np.arange(1, m + 1), size=min(m, 3), replace=False)
            values.append(np.unique(np.concatenate(([0], picks))))
    return StateGrid(values)


# --------------------------------------------------------------------------- #
# Transition plan == reference transition, bit for bit
# --------------------------------------------------------------------------- #


class TestTransitionPlanExactness:
    @pytest.mark.parametrize("d", [1, 2, 3])
    @pytest.mark.parametrize("full", [True, False])
    def test_plan_matches_transition_bitwise(self, d, full):
        rng = np.random.default_rng(17 * d + int(full))
        for trial in range(20):
            grid = _random_grid(rng, d, full)
            beta = rng.uniform(0.1, 5.0, size=d)
            plan = make_transition_plan(grid.values, grid.values, beta)
            assert plan is not None
            V = rng.uniform(0.0, 50.0, size=grid.shape)
            if trial % 3 == 0:
                V.reshape(-1)[:: max(1, V.size // 4)] = np.inf
            expected = transition(V, grid.values, grid.values, beta)
            got = plan.apply(V.copy())
            assert np.array_equal(got, expected)

    def test_plan_output_fed_back_chain(self):
        # the DP forward loop feeds plan output straight back in; the internal
        # ping-pong buffer swap must keep every step bit-identical
        rng = np.random.default_rng(5)
        for d in (1, 2, 3):
            grid = _random_grid(rng, d, full=True)
            beta = rng.uniform(0.1, 3.0, size=d)
            plan = make_transition_plan(grid.values, grid.values, beta)
            cur_plan = rng.uniform(0.0, 20.0, size=grid.shape)
            cur_ref = cur_plan.copy()
            for _ in range(5):
                cur_plan = plan.apply(cur_plan)
                cur_ref = transition(cur_ref, grid.values, grid.values, beta)
                assert np.array_equal(cur_plan, cur_ref)

    def test_cross_grid_plan(self):
        # full -> geometric (different source and destination value sets)
        rng = np.random.default_rng(11)
        src = StateGrid.full([6, 4])
        dst = StateGrid.geometric([6, 4], gamma=2.0)
        beta = np.array([1.5, 0.7])
        plan = make_transition_plan(src.values, dst.values, beta)
        assert plan is not None
        V = rng.uniform(0.0, 30.0, size=src.shape)
        assert np.array_equal(
            plan.apply(V.copy()), transition(V, src.values, dst.values, beta)
        )


# --------------------------------------------------------------------------- #
# Backend seam
# --------------------------------------------------------------------------- #


class TestBackendSeam:
    def test_registry_lists_both_backends(self):
        assert "numpy" in available_backends()
        assert "numba" in available_backends()

    def test_default_backend_is_numpy(self):
        assert get_backend().name == "numpy"

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendUnavailableError, match="unknown backend"):
            set_backend("cuda")
        assert get_backend().name == "numpy"

    def test_numba_unavailable_raises_loudly(self):
        try:
            import numba  # noqa: F401
        except ImportError:
            with pytest.raises(BackendUnavailableError, match="numba"):
                set_backend("numba")
            assert get_backend().name == "numpy"
        else:
            backend = set_backend("numba")
            assert backend.name == "numba"
            set_backend("numpy")

    def test_use_backend_restores_previous(self):
        before = get_backend().name
        with use_backend("numpy") as backend:
            assert backend.name == "numpy"
        assert get_backend().name == before

    def test_same_grid_kernel_matches_general_kernel(self):
        # the identity-gather specialisation must equal the general kernel
        # with identity up/down index vectors, bit for bit
        backend = get_backend()
        rng = np.random.default_rng(3)
        for shape in ((7,), (4, 6), (3, 4, 5)):
            V = rng.uniform(0.0, 40.0, size=shape)
            n = shape[-1]
            bsrc = rng.uniform(0.0, 5.0, size=n)
            bdst = rng.uniform(0.0, 5.0, size=n)
            identity = np.arange(n, dtype=np.intp)
            shifted = np.empty(shape)
            out_general = np.empty(shape)
            out_same = np.empty(shape)
            gather = np.empty(shape)
            backend.min_plus_axis(
                V, bsrc, bdst, identity, identity,
                shifted, shifted[..., ::-1], gather, out_general,
            )
            shifted2 = np.empty(shape)
            backend.min_plus_axis_same(
                V, bsrc, bdst, shifted2, shifted2[..., ::-1], out_same
            )
            assert np.array_equal(out_same, out_general)


# --------------------------------------------------------------------------- #
# Warm-started dual bisection == cold, on randomized instances
# --------------------------------------------------------------------------- #


WARM_FAMILIES = [
    ("priced-cpu-gpu", AlgorithmB),      # time-dependent prices
    ("time-varying-m", AlgorithmA),      # per-slot fleet counts
    ("chaos-price-shock", AlgorithmB),   # price shock mid-stream
    ("diurnal-cpu-gpu", AlgorithmA),
]


class TestWarmStartEquivalence:
    @pytest.mark.parametrize("family,algorithm_cls", WARM_FAMILIES)
    def test_warm_equals_cold_online_run(self, family, algorithm_cls):
        instance = _smoke_instance(family)
        cold = run_online(instance, algorithm_cls(), dispatcher=DispatchSolver(instance))
        warm_solver = DispatchSolver(instance, warm_start=True)
        warm = run_online(instance, algorithm_cls(), dispatcher=warm_solver)
        assert np.array_equal(warm.schedule.x, cold.schedule.x)
        assert abs(warm.cost - cold.cost) <= 1e-9

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_warm_equals_cold_randomized_grid_solves(self, seed):
        rng = np.random.default_rng(seed)
        instance = build("diurnal-cpu-gpu", T=16, seed=seed)
        grid = grid_for_slot(instance, 0)
        configs = grid.configs()
        cold = DispatchSolver(instance)
        warm = DispatchSolver(instance, warm_start=True)
        order = rng.permutation(instance.T)
        for t in order:
            c_costs, c_loads = cold.solve_grid(int(t), configs)
            w_costs, w_loads = warm.solve_grid(int(t), configs)
            # a warm-seeded bracket may land the bisection a few last bits
            # away from the cold one; the ISSUE-8 contract is <= 1e-9 on
            # costs/loads (schedule bit-identity is gated at the replay level,
            # where argmin decisions — not raw floats — are what matters)
            c_finite = np.isfinite(c_costs)
            assert np.array_equal(np.isfinite(w_costs), c_finite)
            assert np.max(np.abs(w_costs[c_finite] - c_costs[c_finite]), initial=0.0) <= 1e-9
            assert np.max(np.abs(w_loads[c_finite] - c_loads[c_finite]), initial=0.0) <= 1e-9
        assert warm.stats.warm_hits + warm.stats.cold_solves > 0
        assert cold.stats.warm_hits == 0

    def test_warm_hits_counted_and_duals_recorded(self):
        instance = build("diurnal-cpu-gpu", T=24)
        demand = quantise_trace(instance.demand, levels=6)
        instance = instance.with_demand(demand, name="warm-counter")
        grid = grid_for_slot(instance, 0)
        solver = DispatchSolver(instance, warm_start=True)
        solver.solve_grid(0, grid.configs())
        first_cold = solver.stats.cold_solves
        assert first_cold > 0 and solver.stats.warm_hits == 0
        solver2 = DispatchSolver(instance, warm_start=True)
        for t in range(instance.T):
            solver2.solve_grid(t, grid.configs())
        assert solver2.stats.warm_hits > 0
        assert solver2.last_duals is not None


# --------------------------------------------------------------------------- #
# Table path == solver path, for every registered scenario family
# --------------------------------------------------------------------------- #


class TestTablePathEquality:
    @pytest.mark.parametrize("family", scenarios.names())
    def test_prewarmed_replay_is_bit_identical(self, family):
        """ISSUE-8 acceptance: serving from a prewarmed solution-table cache
        must reproduce the plain cold-path schedule exactly (np.array_equal)
        and its cost to 1e-9, for every registered scenario family."""
        instance = _smoke_instance(family)
        demand = quantise_trace(instance.demand, levels=6)
        instance = instance.with_demand(demand, name=f"{family}-quantised")
        plain = ControllerSession("A", instance.server_types, name="plain")
        warm = ControllerSession(
            "A", cache=ServeCache(instance.server_types), name="warm"
        )
        warm.cache.prewarm(sorted({float(v) for v in demand}))
        for tick in InstanceFeed(instance).play():
            plain.observe(tick.demand, cost_row=tick.cost_row, counts=tick.counts)
            warm.observe(tick.demand, cost_row=tick.cost_row, counts=tick.counts)
        assert np.array_equal(warm.schedule.x, plain.schedule.x)
        assert abs(warm.cumulative_cost - plain.cumulative_cost) <= 1e-9

    def test_prewarm_returns_exact_solution_table(self):
        instance = build("diurnal-cpu-gpu", T=16)
        demand = quantise_trace(instance.demand, levels=5)
        levels = sorted({float(v) for v in demand})
        cache = ServeCache(instance.server_types)
        table = cache.prewarm(levels)
        assert isinstance(table, SolutionTable)
        assert len(table) == len(levels)
        assert cache.prewarmed_levels == len(levels)
        # every table entry equals a fresh single-slot solve
        fresh = ServeCache(instance.server_types)
        for level in levels:
            vt = fresh.virtual_slot(level, fresh.stream.base_cost_row)
            for c, config in enumerate(table.configs):
                result = fresh.dispatcher.solve(vt, np.asarray(config, dtype=int))
                cost, loads = table.entry(level, c)
                assert cost == result.cost
                assert np.array_equal(loads, result.loads)
        assert table.costs_for(max(levels) + 123.0) is None

    def test_table_gathers_count_fast_hits(self):
        instance = build("diurnal-cpu-gpu", T=24)
        demand = quantise_trace(instance.demand, levels=4)
        cache = ServeCache(instance.server_types)
        cache.prewarm(sorted({float(v) for v in demand}))
        session = ControllerSession("A", cache=cache)
        for value in demand:
            session.observe(float(value))
        assert cache.table_gathers > 0
        counters = cache.counters()
        for key in ("table_gathers", "prewarmed_levels", "warm_hits", "cold_solves"):
            assert key in counters

    def test_engine_prewarm_and_warm_start(self):
        instance = build("diurnal-cpu-gpu", T=12)
        demand = quantise_trace(instance.demand, levels=4)
        instance = instance.with_demand(demand, name="engine-prewarm")
        results = {}
        for warm in (False, True):
            engine = ServeEngine(share_caches=True, warm_start=warm)
            for k in range(3):
                engine.add_tenant(f"t{k}", "A", InstanceFeed(instance))
            assert engine.prewarm(sorted({float(v) for v in demand})) == 1
            engine.run()
            results[warm] = [s.cumulative_cost for s in engine.sessions]
            assert all(c.prewarmed_levels > 0 for c in engine.caches)
        assert results[False] == pytest.approx(results[True], abs=1e-9)


# --------------------------------------------------------------------------- #
# SlotContext.solution_table
# --------------------------------------------------------------------------- #


class TestSlotContextSolutionTable:
    def test_table_matches_grid_tensors_exactly(self):
        instance = build("diurnal-cpu-gpu", T=24)
        demand = quantise_trace(instance.demand, levels=6)
        instance = instance.with_demand(demand, name="ctx-table")
        ctx = SlotContext(instance)
        grid = grid_for_slot(instance, 0)
        table = ctx.solution_table(grid)
        assert len(table) == len({float(v) for v in demand})
        for t in range(instance.T):
            level = float(instance.demand[t])
            assert level in table
            costs = table.costs_for(level)
            expected = ctx.slot(t).grid_operating_cost(grid).reshape(-1)
            assert np.array_equal(costs, expected)

    def test_argmin_over_table_matches_tracker_enumeration(self):
        instance = build("diurnal-cpu-gpu", T=16)
        demand = quantise_trace(instance.demand, levels=5)
        instance = instance.with_demand(demand, name="ctx-argmin")
        ctx = SlotContext(instance)
        grid = grid_for_slot(instance, 0)
        table = ctx.solution_table(grid)
        for t in range(instance.T):
            row = table.costs_for(float(instance.demand[t]))
            # configs() row i corresponds to flat index i of the value tensor
            best = table.configs[int(row.argmin())]
            tensor = ctx.slot(t).grid_operating_cost(grid)
            assert row[int(row.argmin())] == tensor.reshape(-1).min()
            assert np.array_equal(best, grid.configs()[int(tensor.reshape(-1).argmin())])

    def test_mismatched_grid_raises(self):
        instance = build("diurnal-cpu-gpu", T=8)
        ctx = SlotContext(instance)
        off_fleet = StateGrid.full(np.asarray(instance.m) + 3)
        with pytest.raises(ValueError, match="solution table"):
            ctx.solution_table(off_fleet)


# --------------------------------------------------------------------------- #
# Nanosecond latency metering
# --------------------------------------------------------------------------- #


class TestLatencyMetering:
    def test_latencies_are_integer_nanoseconds(self):
        instance = build("diurnal-cpu-gpu", T=8)
        session = ControllerSession("A", instance.server_types)
        for t in range(8):
            state = session.observe(float(instance.demand[t]))
            assert isinstance(state.latency_ns, int)
            assert state.latency_ns > 0
            assert state.latency_seconds == state.latency_ns * 1e-9
        lat = session.latencies_ns
        assert lat.dtype == np.int64 and len(lat) == 8
        assert np.array_equal(session.latencies_seconds, lat * 1e-9)

    def test_checkpoint_roundtrips_ns_samples(self):
        instance = build("diurnal-cpu-gpu", T=8)
        session = ControllerSession("A", instance.server_types)
        for t in range(8):
            session.observe(float(instance.demand[t]))
        payload = json.loads(json.dumps(session.checkpoint()))
        assert all(isinstance(v, int) for v in payload["latencies_ns"])
        fresh = ControllerSession("A", instance.server_types)
        fresh.restore(payload)
        assert np.array_equal(fresh.latencies_ns, session.latencies_ns)

    def test_legacy_float_seconds_payload_restores(self):
        instance = build("diurnal-cpu-gpu", T=6)
        session = ControllerSession("A", instance.server_types)
        for t in range(6):
            session.observe(float(instance.demand[t]))
        payload = session.checkpoint()
        del payload["checksum"]
        seconds = [v * 1e-9 for v in payload.pop("latencies_ns")]
        payload["latencies_s"] = seconds
        payload["checksum"] = payload_checksum(payload)
        fresh = ControllerSession("A", instance.server_types)
        fresh.restore(payload)
        assert fresh.latencies_ns.dtype == np.int64
        assert np.array_equal(
            fresh.latencies_ns, [int(round(v * 1e9)) for v in seconds]
        )


# --------------------------------------------------------------------------- #
# Bench gates: counter pins, latency smoke, trend series
# --------------------------------------------------------------------------- #


class TestBenchGates:
    def test_counter_regress_reproduces_pins(self):
        payload = run_counter_regress()
        assert payload["measured"] == PINNED_SERVE_COUNTERS
        assert payload["modes"]["warm"]["warm_hits"] > 0
        assert payload["modes"]["prewarmed"]["table_gathers"] > 0

    def test_latency_smoke_gates_equality_and_budget(self, tmp_path):
        json_path = str(tmp_path / "BENCH_serve.json")
        # tiny stream, huge budget: exercises the machinery (schedule
        # equality, floor percentiles, JSON merge), not this machine's speed
        payload = run_latency_smoke(
            budget_us=50.0, budget_scale=1e6, repeats=2, ticks=32,
            json_path=json_path,
        )
        assert payload["backend"] == "numpy"
        assert payload["floor_us"]["p99_us"] > 0
        assert len(payload["per_repeat_us"]) == 2
        written = json.loads(open(json_path).read())
        assert written["latency"]["cost"] == payload["cost"]
        assert len(written["latency"]["runs"]) == 1
        run_latency_smoke(
            budget_us=50.0, budget_scale=1e6, repeats=2, ticks=32,
            json_path=json_path,
        )
        written = json.loads(open(json_path).read())
        assert len(written["latency"]["runs"]) == 2

    def test_latency_smoke_budget_violation_raises(self):
        with pytest.raises(AssertionError, match="budget"):
            run_latency_smoke(budget_us=1e-9, repeats=2, ticks=16)

    def test_serve_bench_appends_trend_series(self, tmp_path):
        json_path = str(tmp_path / "BENCH_serve.json")
        for _ in range(2):
            run_serve_bench(
                tenant_counts=(1, 2), ticks=8, json_path=json_path,
            )
        written = json.loads(open(json_path).read())
        assert len(written["runs"]) == 2
        for entry in written["runs"]:
            assert entry["environment"]["numpy"] == np.__version__
            assert entry["benchmark"] == "serve"
        report = trend_report(json_path)
        assert report["entries"] == 2
        assert "max_cost_deviation" in report["deltas_vs_previous"]

    def test_trend_preserves_latency_and_fabric_sections(self, tmp_path):
        json_path = str(tmp_path / "BENCH_serve.json")
        run_latency_smoke(
            budget_us=50.0, budget_scale=1e6, repeats=2, ticks=16,
            json_path=json_path,
        )
        with open(json_path) as handle:
            merged = json.load(handle)
        merged["fabric"] = {"sentinel": True}
        with open(json_path, "w") as handle:
            json.dump(merged, handle)
        run_serve_bench(tenant_counts=(1,), ticks=8, json_path=json_path)
        written = json.loads(open(json_path).read())
        assert written["fabric"] == {"sentinel": True}
        assert "latency" in written and written["latency"]["benchmark"] == "latency_smoke"

    def test_trend_deltas_numeric_only(self):
        runs = [
            {"recorded_at": "a", "p99": 40.0, "label": "x", "count": 3},
            {"recorded_at": "b", "p99": 35.5, "label": "y", "count": 5},
        ]
        deltas = trend_deltas(runs)
        assert deltas == {"p99": -4.5, "count": 2}
        assert trend_deltas(runs[:1]) == {}

    def test_serve_bench_warm_start_mode(self, tmp_path):
        payload = run_serve_bench(
            tenant_counts=(2,), ticks=8, warm_start=True,
        )
        assert payload["warm_start"] is True
        shared = next(r for r in payload["rows"] if r["mode"] == "shared")
        assert shared["warm_hits"] + shared["cold_solves"] > 0
