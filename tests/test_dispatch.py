"""Tests for the load-dispatch solver (evaluation of ``g_t(x)``)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConstantCost,
    LinearCost,
    PiecewiseLinearCost,
    PowerCost,
    ProblemInstance,
    QuadraticCost,
    ServerType,
)
from repro.dispatch import DispatchSolver, reference_dispatch

from conftest import random_instance


class TestBasicDispatch:
    def test_zero_demand_costs_idle_only(self, small_instance):
        solver = DispatchSolver(small_instance)
        res = solver.solve(4, [2, 1])  # slot 4 has zero demand
        assert res.cost == pytest.approx(2 * 0.5 + 1 * 1.5)
        np.testing.assert_allclose(res.loads, 0.0)

    def test_infeasible_configuration(self, small_instance):
        solver = DispatchSolver(small_instance)
        res = solver.solve(2, [1, 0])  # demand 5 > capacity 1
        assert math.isinf(res.cost)
        assert not res.feasible

    def test_all_off_with_zero_demand(self, small_instance):
        solver = DispatchSolver(small_instance)
        res = solver.solve(4, [0, 0])
        assert res.cost == 0.0
        assert res.feasible

    def test_all_off_with_positive_demand(self, small_instance):
        solver = DispatchSolver(small_instance)
        res = solver.solve(0, [0, 0])
        assert math.isinf(res.cost)

    def test_loads_sum_to_demand(self, small_instance):
        solver = DispatchSolver(small_instance)
        res = solver.solve(2, [3, 2])
        assert res.loads.sum() == pytest.approx(small_instance.demand[2], abs=1e-6)

    def test_loads_respect_capacity(self, small_instance):
        solver = DispatchSolver(small_instance)
        res = solver.solve(2, [3, 2])
        caps = np.array([3, 2]) * small_instance.zmax
        assert np.all(res.loads <= caps + 1e-6)

    def test_fractions_sum_to_one(self, small_instance):
        solver = DispatchSolver(small_instance)
        res = solver.solve(1, [1, 1])
        assert res.fractions.sum() == pytest.approx(1.0)

    def test_single_type_gets_everything(self, homogeneous_instance):
        solver = DispatchSolver(homogeneous_instance)
        res = solver.solve(3, [5])
        assert res.loads[0] == pytest.approx(homogeneous_instance.demand[3])

    def test_caching_returns_same_object(self, small_instance):
        solver = DispatchSolver(small_instance)
        a = solver.solve(1, [2, 1])
        b = solver.solve(1, [2, 1])
        assert a is b
        solver.clear_cache()
        c = solver.solve(1, [2, 1])
        assert c is not a and c.cost == pytest.approx(a.cost)

    def test_wrong_shape_rejected(self, small_instance):
        solver = DispatchSolver(small_instance)
        with pytest.raises(ValueError):
            solver.solve(0, [1, 1, 1])
        with pytest.raises(ValueError):
            solver.solve_grid(0, np.zeros((2, 3)))

    def test_grid_matches_single_solves(self, small_instance):
        solver = DispatchSolver(small_instance)
        configs = np.array([[1, 0], [0, 1], [2, 1], [3, 2]])
        costs, loads = solver.solve_grid(1, configs)
        for i, config in enumerate(configs):
            single = solver.solve(1, config)
            if math.isinf(single.cost):
                assert math.isinf(costs[i])
            else:
                assert costs[i] == pytest.approx(single.cost, rel=1e-9)


class TestAgainstReferenceSolver:
    """The dual-bisection dispatcher must agree with the SciPy SLSQP reference."""

    def _compare(self, instance, configs, rel=2e-4):
        solver = DispatchSolver(instance)
        for t in range(instance.T):
            for config in configs:
                fast = solver.solve(t, config)
                slow = reference_dispatch(instance, t, config)
                if math.isinf(slow.cost) or math.isinf(fast.cost):
                    assert math.isinf(slow.cost) == math.isinf(fast.cost)
                else:
                    # the fast solver must never be worse than the reference
                    # (both are feasible allocations of the same convex problem)
                    assert fast.cost <= slow.cost * (1 + rel) + 1e-9
                    assert fast.cost >= slow.cost * (1 - rel) - 1e-9

    def test_mixed_quadratic_linear(self, small_instance):
        self._compare(small_instance, [[1, 1], [3, 0], [0, 2], [2, 1], [3, 2], [1, 0]])

    def test_constant_costs(self, load_independent_instance):
        self._compare(load_independent_instance, [[1, 1], [3, 0], [0, 2], [2, 1], [3, 3]])

    def test_power_costs(self):
        types = (
            ServerType("p2", count=2, switching_cost=1.0, capacity=2.0,
                       cost_function=PowerCost(idle=0.5, coef=1.0, exponent=2.0)),
            ServerType("p3", count=2, switching_cost=1.0, capacity=2.0,
                       cost_function=PowerCost(idle=0.2, coef=0.5, exponent=3.0)),
        )
        inst = ProblemInstance(types, np.array([0.5, 2.0, 4.0, 7.9]))
        self._compare(inst, [[1, 1], [2, 1], [2, 2], [0, 2]])

    def test_piecewise_linear_costs(self):
        types = (
            ServerType("pw", count=2, switching_cost=1.0, capacity=3.0,
                       cost_function=PiecewiseLinearCost(idle=0.5, breaks=(0.0, 1.0), slopes=(0.2, 2.0))),
            ServerType("lin", count=2, switching_cost=1.0, capacity=2.0,
                       cost_function=LinearCost(idle=0.3, slope=0.8)),
        )
        inst = ProblemInstance(types, np.array([1.0, 3.0, 6.0]))
        self._compare(inst, [[1, 1], [2, 2], [2, 0], [0, 2]])

    def test_three_types(self):
        types = (
            ServerType("a", count=2, switching_cost=1.0, capacity=1.0,
                       cost_function=QuadraticCost(idle=0.5, a=0.0, b=1.0)),
            ServerType("b", count=2, switching_cost=1.0, capacity=2.0,
                       cost_function=LinearCost(idle=1.0, slope=0.5)),
            ServerType("c", count=1, switching_cost=1.0, capacity=4.0,
                       cost_function=PowerCost(idle=2.0, coef=0.25, exponent=2.0)),
        )
        inst = ProblemInstance(types, np.array([0.0, 1.0, 3.0, 7.0]))
        self._compare(inst, [[1, 1, 1], [2, 2, 1], [0, 2, 1], [2, 0, 1], [1, 2, 0]])

    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        inst = random_instance(rng, T=3, d=2, max_servers=3)
        grid = [[i, j] for i in range(4) for j in range(4)]
        solver = DispatchSolver(inst)
        for t in range(inst.T):
            costs, _ = solver.solve_grid(t, np.array(grid))
            for config, cost in zip(grid, costs):
                if config[0] > inst.m[0] or config[1] > inst.m[1]:
                    continue
                slow = reference_dispatch(inst, t, config)
                if math.isinf(slow.cost) or math.isinf(cost):
                    assert math.isinf(slow.cost) == math.isinf(cost)
                else:
                    assert cost == pytest.approx(slow.cost, rel=3e-4, abs=1e-6)


class TestOptimalityStructure:
    def test_equal_marginals_at_optimum(self):
        """For strictly convex costs the marginal per-server costs equalise (KKT)."""
        types = (
            ServerType("a", count=2, switching_cost=1.0, capacity=10.0,
                       cost_function=QuadraticCost(idle=0.0, a=0.0, b=1.0)),
            ServerType("b", count=3, switching_cost=1.0, capacity=10.0,
                       cost_function=QuadraticCost(idle=0.0, a=0.0, b=2.0)),
        )
        inst = ProblemInstance(types, np.array([5.0]))
        res = DispatchSolver(inst).solve(0, [2, 3])
        z_a = res.loads[0] / 2
        z_b = res.loads[1] / 3
        # marginals: 2*b*z  -> 2*1*z_a == 2*2*z_b
        assert 2 * z_a == pytest.approx(4 * z_b, rel=1e-4)

    def test_cheaper_linear_type_fills_first(self):
        types = (
            ServerType("cheap", count=2, switching_cost=1.0, capacity=1.0,
                       cost_function=LinearCost(idle=0.1, slope=0.5)),
            ServerType("dear", count=2, switching_cost=1.0, capacity=1.0,
                       cost_function=LinearCost(idle=0.1, slope=2.0)),
        )
        inst = ProblemInstance(types, np.array([1.5]))
        res = DispatchSolver(inst).solve(0, [2, 2])
        assert res.loads[0] == pytest.approx(1.5, abs=1e-6)
        assert res.loads[1] == pytest.approx(0.0, abs=1e-6)

    def test_jensen_splitting_beats_unequal_split(self, small_instance):
        """Lemma 2: equal per-server splitting is at least as good as any manual split."""
        solver = DispatchSolver(small_instance)
        t = 2  # demand 5
        res = solver.solve(t, [3, 1])
        f_cpu = small_instance.cost_function(t, 0)
        f_gpu = small_instance.cost_function(t, 1)
        # manual uneven split: push 2.0 onto one CPU (over its capacity is not allowed),
        # so compare with a valid but unequal allocation across types instead
        manual = 3 * float(f_cpu.value(1.0)) + 1 * float(f_gpu.value(2.0))
        assert res.cost <= manual + 1e-9

    def test_cost_monotone_in_demand(self, small_instance):
        """g_t(x) is non-decreasing in the demand (with the same configuration)."""
        lo = ProblemInstance(small_instance.server_types, np.array([1.0]))
        hi = ProblemInstance(small_instance.server_types, np.array([4.0]))
        c_lo = DispatchSolver(lo).solve(0, [3, 1]).cost
        c_hi = DispatchSolver(hi).solve(0, [3, 1]).cost
        assert c_hi >= c_lo - 1e-9

    def test_more_servers_never_increase_cost_for_convex_costs(self):
        """Extra active servers cannot raise the dispatch-optimal operating cost
        when idle costs are zero (pure load-dependent costs)."""
        types = (
            ServerType("a", count=4, switching_cost=1.0, capacity=2.0,
                       cost_function=QuadraticCost(idle=0.0, a=0.0, b=1.0)),
            ServerType("b", count=4, switching_cost=1.0, capacity=2.0,
                       cost_function=QuadraticCost(idle=0.0, a=0.1, b=0.5)),
        )
        inst = ProblemInstance(types, np.array([3.0]))
        solver = DispatchSolver(inst)
        smaller = solver.solve(0, [1, 1]).cost
        larger = solver.solve(0, [3, 3]).cost
        assert larger <= smaller + 1e-9


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_dispatch_never_beats_reference_by_much_nor_loses(data):
    """Property: the fast dispatcher's value matches the SLSQP reference on random inputs."""
    seed = data.draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, T=2, d=2, max_servers=2)
    t = data.draw(st.integers(0, inst.T - 1))
    x = [data.draw(st.integers(0, int(inst.m[j]))) for j in range(inst.d)]
    fast = DispatchSolver(inst).solve(t, x)
    slow = reference_dispatch(inst, t, x)
    if math.isinf(slow.cost) or math.isinf(fast.cost):
        assert math.isinf(slow.cost) == math.isinf(fast.cost)
    else:
        assert fast.cost == pytest.approx(slow.cost, rel=5e-4, abs=1e-6)
