"""End-to-end integration tests across the whole stack.

These exercise the realistic scenarios of the example scripts: a heterogeneous
CPU/GPU data center under a diurnal workload, time-of-day electricity prices,
maintenance windows (time-varying fleet sizes) and the full algorithm
comparison, asserting the relationships the paper's theory predicts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AlgorithmA,
    AlgorithmB,
    AlgorithmC,
    AllOn,
    FollowDemand,
    ProblemInstance,
    Reactive,
    run_online,
    solve_approx,
    solve_optimal,
    theoretical_bound,
    total_cost,
)
from repro.offline import convex_lower_bound, pairwise_dp_optimal
from repro.workloads import (
    bursty_trace,
    cpu_gpu_fleet,
    diurnal_trace,
    fleet_instance,
    load_independent_fleet,
    old_new_fleet,
    three_tier_fleet,
)

from conftest import random_instance


class TestHeterogeneousCloudScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        demand = diurnal_trace(36, period=12, base=1.0, peak=9.0, noise=0.1, rng=42)
        inst = fleet_instance(cpu_gpu_fleet(cpu_count=5, gpu_count=2), demand, name="cloud")
        opt = solve_optimal(inst, return_schedule=False).cost
        return inst, opt

    def test_all_online_algorithms_within_bounds(self, scenario):
        inst, opt = scenario
        for algo, key in ((AlgorithmA(), "A"), (AlgorithmB(), "B")):
            result = run_online(inst, algo)
            assert result.schedule.is_feasible(inst)
            assert result.cost <= theoretical_bound(inst, key) * opt + 1e-6

    def test_right_sizing_beats_all_on(self, scenario):
        inst, opt = scenario
        algorithm_a_cost = run_online(inst, AlgorithmA()).cost
        all_on_cost = run_online(inst, AllOn()).cost
        assert algorithm_a_cost < all_on_cost

    def test_approximation_sandwich(self, scenario):
        inst, opt = scenario
        approx = solve_approx(inst, epsilon=0.5, return_schedule=False).cost
        assert opt - 1e-6 <= approx <= 1.5 * opt + 1e-6

    def test_lower_bound_chain(self, scenario):
        """fractional LB <= OPT <= Algorithm A <= (2d+1) OPT."""
        inst, opt = scenario
        lb = convex_lower_bound(inst, n_tangents=6).value
        online = run_online(inst, AlgorithmA()).cost
        assert lb <= opt + 1e-6 <= online + 1e-6
        assert online <= (2 * inst.d + 1) * opt + 1e-6


class TestElectricityPriceScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        demand = diurnal_trace(24, period=24, base=1.0, peak=7.0, noise=0.05, rng=3)
        prices = 1.0 + 0.6 * np.sin(np.arange(24) / 24.0 * 2 * np.pi + 1.0)
        inst = fleet_instance(old_new_fleet(old_count=4, new_count=3), demand, name="prices")
        inst = inst.with_price_profile(prices)
        opt = solve_optimal(inst, return_schedule=False).cost
        return inst, opt

    def test_b_and_c_respect_bounds(self, scenario):
        inst, opt = scenario
        b_result = run_online(inst, AlgorithmB())
        c_result = run_online(inst, AlgorithmC(epsilon=0.5))
        assert b_result.cost <= theoretical_bound(inst, "B") * opt + 1e-6
        assert c_result.cost <= (2 * inst.d + 1 + 0.5) * opt + 1e-6

    def test_c_constant_is_positive(self, scenario):
        inst, _ = scenario
        assert inst.c_constant() > 0


class TestMaintenanceScenario:
    def test_time_varying_fleet(self):
        demand = bursty_trace(20, base=2.0, burst_height=6.0, rng=9)
        fleet = old_new_fleet(old_count=4, new_count=3)
        inst = fleet_instance(fleet, demand, name="maintenance")
        counts = np.tile(inst.m, (inst.T, 1))
        counts[8:12, 0] = 1  # old servers in maintenance
        inst_tv = inst.with_counts(counts)
        # demand may exceed the reduced capacity; clip it
        cap = np.array([inst_tv.total_capacity(t) for t in range(inst_tv.T)])
        inst_tv = ProblemInstance(inst_tv.server_types, np.minimum(demand, cap), counts=counts)
        opt = solve_optimal(inst_tv)
        assert opt.schedule.is_feasible(inst_tv)
        approx = solve_approx(inst_tv, epsilon=1.0)
        assert opt.cost - 1e-6 <= approx.cost <= 2.0 * opt.cost + 1e-6


class TestThreeTypeScenario:
    def test_three_types_end_to_end(self):
        demand = diurnal_trace(16, period=8, base=2.0, peak=14.0, noise=0.0)
        inst = fleet_instance(three_tier_fleet(), demand, name="three-tier")
        opt = solve_optimal(inst, return_schedule=False).cost
        result = run_online(inst, AlgorithmA())
        assert result.schedule.is_feasible(inst)
        assert result.cost <= (2 * 3 + 1) * opt + 1e-6

    def test_load_independent_matches_corollary9(self):
        demand = bursty_trace(20, base=1.0, burst_height=5.0, rng=4)
        inst = fleet_instance(load_independent_fleet(d=2), demand, name="load-indep")
        opt = solve_optimal(inst, return_schedule=False).cost
        result = run_online(inst, AlgorithmA())
        assert result.cost <= 2 * inst.d * opt + 1e-6


class TestAlgorithmOrdering:
    def test_online_algorithms_beat_naive_baselines_on_diurnal(self):
        demand = diurnal_trace(30, period=10, base=0.5, peak=6.0, noise=0.0)
        inst = fleet_instance(cpu_gpu_fleet(cpu_count=4, gpu_count=1), demand, name="order")
        costs = {
            "A": run_online(inst, AlgorithmA()).cost,
            "all-on": run_online(inst, AllOn()).cost,
            "follow": run_online(inst, FollowDemand()).cost,
        }
        opt = solve_optimal(inst, return_schedule=False).cost
        assert opt <= costs["A"] <= costs["all-on"]
        # A avoids follow-demand's thrashing on the night-time troughs
        assert costs["A"] <= costs["follow"] * 1.5


@given(seed=st.integers(0, 10_000))
@settings(max_examples=12, deadline=None)
def test_fuzz_full_stack_invariants(seed):
    """Random small instances: DP = pairwise DP, bounds hold for A, approximation sandwich."""
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, T=5, d=2, max_servers=3)
    exact = solve_optimal(inst)
    _, pairwise_cost = pairwise_dp_optimal(inst)
    assert exact.cost == pytest.approx(pairwise_cost, rel=1e-5, abs=1e-7)

    approx = solve_approx(inst, epsilon=1.0, return_schedule=False)
    assert exact.cost - 1e-6 <= approx.cost <= 2.0 * exact.cost + 1e-6

    result = run_online(inst, AlgorithmA())
    assert result.schedule.is_feasible(inst)
    if exact.cost > 1e-9:
        assert result.cost <= (2 * inst.d + 1) * exact.cost + 1e-6
