"""Tests for the convex operating-cost function library."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_functions import (
    CallableCost,
    ConstantCost,
    CostFunction,
    LinearCost,
    PiecewiseLinearCost,
    PowerCost,
    QuadraticCost,
    ScaledCost,
    ShiftedCost,
    check_valid_cost_function,
)


# --------------------------------------------------------------------------- #
# Individual families
# --------------------------------------------------------------------------- #


class TestConstantCost:
    def test_value_is_constant(self):
        f = ConstantCost(level=2.5)
        assert f.value(0.0) == 2.5
        assert f.value(7.3) == 2.5
        assert f.idle_cost() == 2.5

    def test_vectorised_value(self):
        f = ConstantCost(level=1.5)
        z = np.array([0.0, 1.0, 4.0])
        np.testing.assert_allclose(f.value(z), [1.5, 1.5, 1.5])

    def test_derivative_is_zero(self):
        f = ConstantCost(level=3.0)
        assert f.derivative(0.5) == 0.0
        np.testing.assert_allclose(f.derivative(np.array([0.0, 2.0])), [0.0, 0.0])

    def test_inverse_derivative_is_unbounded(self):
        f = ConstantCost(level=3.0)
        assert f.inverse_derivative(0.0) == math.inf
        assert f.inverse_derivative(10.0) == math.inf

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            ConstantCost(level=-1.0)

    def test_has_constant_marginal(self):
        assert ConstantCost(level=1.0).has_constant_marginal


class TestLinearCost:
    def test_value_and_idle(self):
        f = LinearCost(idle=1.0, slope=2.0)
        assert f.value(0.0) == 1.0
        assert f.value(3.0) == 7.0
        assert f.idle_cost() == 1.0

    def test_derivative(self):
        f = LinearCost(idle=1.0, slope=2.0)
        assert f.derivative(0.0) == 2.0
        assert f.derivative(5.0) == 2.0

    def test_inverse_derivative_threshold(self):
        f = LinearCost(idle=1.0, slope=2.0)
        assert f.inverse_derivative(1.9) == 0.0
        assert f.inverse_derivative(2.0) == math.inf

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinearCost(idle=-0.1, slope=1.0)
        with pytest.raises(ValueError):
            LinearCost(idle=0.1, slope=-1.0)

    def test_scaled_helper(self):
        f = LinearCost(idle=1.0, slope=2.0).scaled(0.5)
        assert f.value(2.0) == pytest.approx(0.5 * 5.0)


class TestQuadraticCost:
    def test_value(self):
        f = QuadraticCost(idle=1.0, a=2.0, b=3.0)
        assert f.value(2.0) == pytest.approx(1.0 + 4.0 + 12.0)

    def test_derivative(self):
        f = QuadraticCost(idle=1.0, a=2.0, b=3.0)
        assert f.derivative(2.0) == pytest.approx(2.0 + 12.0)

    def test_inverse_derivative_roundtrip(self):
        f = QuadraticCost(idle=0.5, a=1.0, b=2.0)
        for y in [1.0, 3.0, 9.0]:
            z = f.inverse_derivative(y)
            assert f.derivative(z) == pytest.approx(y)

    def test_inverse_derivative_below_marginal_at_zero(self):
        f = QuadraticCost(idle=0.5, a=1.0, b=2.0)
        assert f.inverse_derivative(0.5) == 0.0

    def test_degenerates_to_linear(self):
        f = QuadraticCost(idle=1.0, a=2.0, b=0.0)
        assert f.has_constant_marginal
        assert f.inverse_derivative(3.0) == math.inf


class TestPowerCost:
    def test_value(self):
        f = PowerCost(idle=1.0, coef=2.0, exponent=3.0)
        assert f.value(2.0) == pytest.approx(1.0 + 16.0)

    def test_derivative(self):
        f = PowerCost(idle=1.0, coef=2.0, exponent=3.0)
        assert f.derivative(2.0) == pytest.approx(2.0 * 3.0 * 4.0)

    def test_inverse_derivative_roundtrip(self):
        f = PowerCost(idle=0.0, coef=1.5, exponent=2.5)
        for y in [0.5, 2.0, 11.0]:
            z = f.inverse_derivative(y)
            assert f.derivative(z) == pytest.approx(y, rel=1e-9)

    def test_exponent_below_one_rejected(self):
        with pytest.raises(ValueError):
            PowerCost(idle=0.0, coef=1.0, exponent=0.5)

    def test_exponent_one_is_linear(self):
        f = PowerCost(idle=1.0, coef=2.0, exponent=1.0)
        assert f.has_constant_marginal
        assert f.derivative(5.0) == pytest.approx(2.0)


class TestPiecewiseLinearCost:
    def test_value_across_segments(self):
        f = PiecewiseLinearCost(idle=1.0, breaks=(0.0, 2.0), slopes=(1.0, 3.0))
        assert f.value(1.0) == pytest.approx(2.0)
        assert f.value(2.0) == pytest.approx(3.0)
        assert f.value(4.0) == pytest.approx(3.0 + 2.0 * 3.0)

    def test_derivative_per_segment(self):
        f = PiecewiseLinearCost(idle=0.0, breaks=(0.0, 1.0, 3.0), slopes=(0.5, 1.0, 2.0))
        assert f.derivative(0.5) == 0.5
        assert f.derivative(2.0) == 1.0
        assert f.derivative(10.0) == 2.0

    def test_inverse_derivative(self):
        f = PiecewiseLinearCost(idle=0.0, breaks=(0.0, 1.0, 3.0), slopes=(0.5, 1.0, 2.0))
        # largest z with slope <= y
        assert f.inverse_derivative(0.4) == 0.0
        assert f.inverse_derivative(0.7) == pytest.approx(1.0)
        assert f.inverse_derivative(1.5) == pytest.approx(3.0)
        assert f.inverse_derivative(2.5) == math.inf

    def test_convexity_enforced(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost(idle=0.0, breaks=(0.0, 1.0), slopes=(2.0, 1.0))

    def test_breaks_must_start_at_zero(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost(idle=0.0, breaks=(1.0, 2.0), slopes=(1.0, 2.0))

    def test_breaks_must_increase(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost(idle=0.0, breaks=(0.0, 0.0), slopes=(1.0, 2.0))


class TestWrappers:
    def test_scaled_cost(self):
        base = QuadraticCost(idle=1.0, a=1.0, b=1.0)
        f = ScaledCost(base, 0.25)
        assert f.value(2.0) == pytest.approx(0.25 * base.value(2.0))
        assert f.derivative(2.0) == pytest.approx(0.25 * base.derivative(2.0))
        assert f.idle_cost() == pytest.approx(0.25)

    def test_scaled_inverse_derivative(self):
        base = QuadraticCost(idle=0.0, a=0.0, b=1.0)
        f = ScaledCost(base, 0.5)
        # f'(z) = z, so inverse of y is y ... scaled: f'(z) = 0.5 * 2z = z ... wait
        # base f'(z) = 2z; scaled derivative = z; inverse of y is y.
        assert f.inverse_derivative(3.0) == pytest.approx(3.0)

    def test_scaled_zero_factor(self):
        f = ScaledCost(LinearCost(idle=1.0, slope=1.0), 0.0)
        assert f.value(5.0) == 0.0
        assert f.inverse_derivative(1.0) == math.inf

    def test_shifted_cost(self):
        base = LinearCost(idle=1.0, slope=2.0)
        f = ShiftedCost(base, 3.0)
        assert f.value(1.0) == pytest.approx(base.value(1.0) + 3.0)
        assert f.derivative(1.0) == base.derivative(1.0)
        assert f.idle_cost() == pytest.approx(4.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            ScaledCost(ConstantCost(1.0), -0.5)

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            ShiftedCost(ConstantCost(1.0), -0.5)


class TestCallableCost:
    def test_value_and_derivative(self):
        f = CallableCost(lambda z: 1.0 + z * z, name="quad")
        assert f.value(2.0) == pytest.approx(5.0)
        assert f.derivative(2.0) == pytest.approx(4.0, rel=1e-3)

    def test_vectorised_value(self):
        f = CallableCost(lambda z: 2.0 * z)
        np.testing.assert_allclose(f.value(np.array([0.0, 1.0, 3.0])), [0.0, 2.0, 6.0])

    def test_generic_inverse_derivative(self):
        f = CallableCost(lambda z: z**2)
        # derivative 2z; inverse of 4 is 2
        assert f.inverse_derivative(4.0) == pytest.approx(2.0, rel=1e-6)

    def test_equality_by_function_identity(self):
        fn = lambda z: z  # noqa: E731
        assert CallableCost(fn) == CallableCost(fn)
        assert CallableCost(fn) != CallableCost(lambda z: z)


class TestValidation:
    def test_valid_function_passes(self):
        check_valid_cost_function(QuadraticCost(idle=1.0, a=0.5, b=1.0), zmax=4.0)

    def test_decreasing_function_fails(self):
        f = CallableCost(lambda z: 5.0 - z)
        with pytest.raises(ValueError):
            check_valid_cost_function(f, zmax=2.0)

    def test_concave_function_fails(self):
        f = CallableCost(lambda z: math.sqrt(z + 0.01))
        with pytest.raises(ValueError):
            check_valid_cost_function(f, zmax=4.0)

    def test_negative_function_fails(self):
        f = CallableCost(lambda z: z - 1.0)
        with pytest.raises(ValueError):
            check_valid_cost_function(f, zmax=2.0)


# --------------------------------------------------------------------------- #
# Property-based tests: shared invariants of every family
# --------------------------------------------------------------------------- #

FAMILY_STRATEGY = st.one_of(
    st.builds(
        ConstantCost,
        level=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    ),
    st.builds(
        LinearCost,
        idle=st.floats(min_value=0.0, max_value=10.0),
        slope=st.floats(min_value=0.0, max_value=10.0),
    ),
    st.builds(
        QuadraticCost,
        idle=st.floats(min_value=0.0, max_value=5.0),
        a=st.floats(min_value=0.0, max_value=5.0),
        b=st.floats(min_value=0.0, max_value=5.0),
    ),
    st.builds(
        PowerCost,
        idle=st.floats(min_value=0.0, max_value=5.0),
        coef=st.floats(min_value=0.0, max_value=5.0),
        exponent=st.floats(min_value=1.0, max_value=3.0),
    ),
)


@given(f=FAMILY_STRATEGY, z=st.floats(min_value=0.0, max_value=20.0))
@settings(max_examples=200, deadline=None)
def test_values_are_non_negative_and_monotone(f: CostFunction, z: float):
    """f is non-negative and non-decreasing on [0, inf)."""
    v0 = float(f.value(z))
    v1 = float(f.value(z + 1.0))
    assert v0 >= -1e-12
    assert v1 >= v0 - 1e-9


@given(f=FAMILY_STRATEGY, z1=st.floats(0.0, 10.0), z2=st.floats(0.0, 10.0))
@settings(max_examples=200, deadline=None)
def test_midpoint_convexity(f: CostFunction, z1: float, z2: float):
    """f((z1+z2)/2) <= (f(z1)+f(z2))/2 (convexity)."""
    mid = float(f.value(0.5 * (z1 + z2)))
    avg = 0.5 * (float(f.value(z1)) + float(f.value(z2)))
    assert mid <= avg + 1e-7 * max(1.0, abs(avg))


@given(f=FAMILY_STRATEGY, y=st.floats(min_value=0.0, max_value=50.0))
@settings(max_examples=150, deadline=None)
def test_inverse_derivative_consistency(f: CostFunction, y: float):
    """z* = inverse_derivative(y) satisfies f'(z) <= y for all z <= z* (generalised inverse)."""
    z_star = float(f.inverse_derivative(y))
    if z_star == 0.0:
        return
    probe = min(z_star, 1e6) * 0.999
    assert float(f.derivative(probe)) <= y + 1e-6 * max(1.0, y)


@given(f=FAMILY_STRATEGY, z=st.floats(min_value=0.0, max_value=10.0), factor=st.floats(0.01, 5.0))
@settings(max_examples=100, deadline=None)
def test_scaling_is_linear_in_factor(f: CostFunction, z: float, factor: float):
    assert float(ScaledCost(f, factor).value(z)) == pytest.approx(factor * float(f.value(z)), rel=1e-9, abs=1e-9)
