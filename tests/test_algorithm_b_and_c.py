"""Tests for Algorithms B and C (Section 3, Theorems 13 and 15, Figure 3)."""

import numpy as np
import pytest

from repro import (
    ConstantCost,
    ProblemInstance,
    ServerType,
    run_online,
    solve_optimal,
    theoretical_bound,
)
from repro.core.cost_functions import ScaledCost
from repro.online import (
    AlgorithmA,
    AlgorithmB,
    AlgorithmC,
    FixedSequenceTracker,
    compute_retirement_sets,
    compute_runtimes,
    sub_slot_count,
)
from repro.workloads import diurnal_trace

from conftest import random_instance


# --------------------------------------------------------------------------- #
# Figure 3: the exact numbers from the paper
# --------------------------------------------------------------------------- #

FIGURE3_IDLE = np.array([3, 1, 4, 1, 2, 1, 1, 2, 3, 5, 1, 3], dtype=float)
FIGURE3_BETA = 6.0
FIGURE3_XHAT = np.array([1, 2, 1, 3, 0, 0, 1, 2, 0, 0, 0, 0])


def figure3_instance():
    """An instance whose slot-wise idle costs equal the l_{t,j} row of Figure 3.

    The demand is zero everywhere — Algorithm B's bookkeeping only depends on
    the x_hat sequence (injected through a FixedSequenceTracker) and the idle
    costs, exactly like in the figure.
    """
    base = ConstantCost(level=1.0)
    types = (ServerType("fig3", count=3, switching_cost=FIGURE3_BETA, capacity=1.0, cost_function=base),)
    cost_table = tuple((ScaledCost(base, float(l)),) for l in FIGURE3_IDLE)
    return ProblemInstance(types, np.zeros(len(FIGURE3_IDLE)), cost_functions=cost_table)


class TestFigure3:
    def test_runtimes_match_paper(self):
        """bar t_{t,j} = 3 2 4 4 3 3 2 1 2 for t = 1..9 (Figure 3)."""
        runtimes = compute_runtimes(FIGURE3_IDLE, FIGURE3_BETA)
        np.testing.assert_array_equal(runtimes[:9], [3, 2, 4, 4, 3, 3, 2, 1, 2])

    def test_retirement_sets_match_paper(self):
        """W_5={1,2}, W_8={3}, W_9={4,5}, W_10={6,7,8}, W_12={9} (1-based, Figure 3)."""
        sets = compute_retirement_sets(FIGURE3_IDLE, FIGURE3_BETA)
        one_based = {t + 1: [u + 1 for u in us] for t, us in enumerate(sets) if us}
        assert one_based == {5: [1, 2], 8: [3], 9: [4, 5], 10: [6, 7, 8], 12: [9]}

    def test_algorithm_b_schedule_matches_figure(self):
        """Replay the x_hat and idle-cost series of Figure 3 and check x^B slot by slot."""
        inst = figure3_instance()
        algo = AlgorithmB(tracker=FixedSequenceTracker(FIGURE3_XHAT))
        result = run_online(inst, algo)
        # Reconstruct the expected series: servers powered up at slot s stay
        # active through slot s + bar_t_{s}, using the runtimes above.
        runtimes = compute_runtimes(FIGURE3_IDLE, FIGURE3_BETA)
        T = len(FIGURE3_IDLE)
        active = np.zeros(T, dtype=int)
        current = 0
        ups = []
        for t in range(T):
            # retire servers first
            current = 0
            for (s, count) in ups:
                if t <= s + runtimes[s]:
                    current += count
            need = FIGURE3_XHAT[t] - current
            if need > 0:
                ups.append((t, need))
                current += need
            active[t] = current
        np.testing.assert_array_equal(result.schedule.x[:, 0], active)
        # the power-up record of the algorithm matches the reconstruction
        expected_ups = np.zeros(T, dtype=int)
        for s, count in ups:
            expected_ups[s] += count
        np.testing.assert_array_equal(algo.power_up_log[:, 0], expected_ups)

    def test_retirement_log_matches_paper_sets(self):
        inst = figure3_instance()
        algo = AlgorithmB(tracker=FixedSequenceTracker(FIGURE3_XHAT))
        run_online(inst, algo)
        log = algo.retirement_log
        # Power-ups happen at 1-based slots 1, 2, 4 and 8 (wherever x_hat exceeds the
        # currently running servers).  The paper's W_t sets list *all* candidate
        # power-up slots; the algorithm only records the ones where servers were
        # actually started, so the recorded retirements are the subset of the
        # paper's W_5, W_9 and W_10 sets corresponding to real power-ups.
        retired = {(t + 1): [s + 1 for s in entry[0]] for t, entry in enumerate(log) if entry[0]}
        assert retired == {5: [1, 2], 9: [4], 10: [8]}
        paper_sets = {5: [1, 2], 8: [3], 9: [4, 5], 10: [6, 7, 8], 12: [9]}
        for slot, ups in retired.items():
            assert set(ups) <= set(paper_sets[slot])


class TestAlgorithmBBehaviour:
    def test_invariant_x_at_least_xhat(self, time_dependent_instance):
        algo = AlgorithmB()
        result = run_online(time_dependent_instance, algo)
        assert np.all(result.schedule.x >= algo.prefix_optima)

    def test_feasibility_lemma10(self, time_dependent_instance):
        result = run_online(time_dependent_instance, AlgorithmB())
        assert result.schedule.is_feasible(time_dependent_instance)

    def test_blocks_cover_power_ups(self, time_dependent_instance):
        algo = AlgorithmB()
        run_online(time_dependent_instance, algo)
        for j in range(time_dependent_instance.d):
            blocks = algo.blocks(j)
            ups_from_blocks = len(blocks)
            events = int(np.sum(algo.power_up_log[:, j] > 0))
            assert ups_from_blocks == events

    def test_bound_theorem13(self, time_dependent_instance):
        opt = solve_optimal(time_dependent_instance, return_schedule=False).cost
        result = run_online(time_dependent_instance, AlgorithmB())
        bound = theoretical_bound(time_dependent_instance, "B")
        assert result.cost <= bound * opt + 1e-6

    @pytest.mark.parametrize("seed", range(6))
    def test_bound_on_random_time_dependent_instances(self, seed):
        rng = np.random.default_rng(11_000 + seed)
        base = random_instance(rng, T=7, d=2, max_servers=3)
        prices = rng.uniform(0.5, 2.0, size=base.T)
        inst = base.with_price_profile(prices)
        opt = solve_optimal(inst, return_schedule=False).cost
        result = run_online(inst, AlgorithmB())
        assert result.schedule.is_feasible(inst)
        if opt > 1e-9:
            assert result.cost <= theoretical_bound(inst, "B") * opt + 1e-6

    def test_matches_a_style_runtime_on_time_independent_costs(self, load_independent_instance):
        """With constant idle costs, B's adaptive runtime is within one slot of A's fixed one
        (B excludes the power-up slot from the budget, A includes it)."""
        algo_a = AlgorithmA()
        algo_b = AlgorithmB()
        result_a = run_online(load_independent_instance, algo_a)
        result_b = run_online(load_independent_instance, algo_b)
        assert result_a.schedule.is_feasible(load_independent_instance)
        assert result_b.schedule.is_feasible(load_independent_instance)
        # identical power-up decisions (same tracker state), possibly longer runtimes in B
        assert np.all(result_b.schedule.x >= result_a.schedule.x - 1)


class TestAlgorithmC:
    def test_sub_slot_count_formula(self):
        # n_t = ceil(d/eps * max_j l_{t,j}/beta_j)
        assert sub_slot_count(2, 0.5, np.array([1.0, 2.0]), np.array([4.0, 4.0])) == 2
        assert sub_slot_count(2, 0.1, np.array([1.0, 2.0]), np.array([4.0, 4.0])) == 10
        assert sub_slot_count(1, 1.0, np.array([0.0]), np.array([4.0])) == 1  # at least one

    def test_sub_slot_count_validation(self):
        with pytest.raises(ValueError):
            sub_slot_count(2, 0.0, np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            sub_slot_count(2, 0.5, np.array([1.0]), np.array([0.0]))

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            AlgorithmC(epsilon=0.0)

    def test_feasibility(self, time_dependent_instance):
        result = run_online(time_dependent_instance, AlgorithmC(epsilon=0.5))
        assert result.schedule.is_feasible(time_dependent_instance)

    def test_bound_theorem15(self, time_dependent_instance):
        opt = solve_optimal(time_dependent_instance, return_schedule=False).cost
        eps = 0.5
        result = run_online(time_dependent_instance, AlgorithmC(epsilon=eps))
        bound = 2 * time_dependent_instance.d + 1 + eps
        assert result.cost <= bound * opt + 1e-6

    def test_sub_slot_counts_recorded(self, time_dependent_instance):
        algo = AlgorithmC(epsilon=0.5)
        run_online(time_dependent_instance, algo)
        counts = algo.sub_slot_counts
        assert counts.shape == (time_dependent_instance.T,)
        assert np.all(counts >= 1)

    def test_smaller_epsilon_means_more_sub_slots(self, time_dependent_instance):
        coarse = AlgorithmC(epsilon=1.0)
        fine = AlgorithmC(epsilon=0.1)
        run_online(time_dependent_instance, coarse)
        run_online(time_dependent_instance, fine)
        assert np.all(fine.sub_slot_counts >= coarse.sub_slot_counts)

    def test_max_sub_slot_cap(self, time_dependent_instance):
        algo = AlgorithmC(epsilon=0.001, max_sub_slots=5)
        run_online(time_dependent_instance, algo)
        assert np.all(algo.sub_slot_counts <= 5)

    @pytest.mark.parametrize("seed", range(3))
    def test_bound_on_random_instances(self, seed):
        rng = np.random.default_rng(12_000 + seed)
        base = random_instance(rng, T=6, d=2, max_servers=3)
        prices = rng.uniform(0.5, 2.0, size=base.T)
        inst = base.with_price_profile(prices)
        opt = solve_optimal(inst, return_schedule=False).cost
        eps = 1.0
        result = run_online(inst, AlgorithmC(epsilon=eps))
        assert result.schedule.is_feasible(inst)
        if opt > 1e-9:
            assert result.cost <= (2 * inst.d + 1 + eps) * opt + 1e-6

    def test_diurnal_with_prices(self, two_type_fleet):
        demand = diurnal_trace(24, period=12, base=1.0, peak=8.0, noise=0.05, rng=7)
        prices = 1.0 + 0.4 * np.sin(np.arange(24) / 24 * 2 * np.pi)
        inst = ProblemInstance(two_type_fleet, demand).with_price_profile(prices)
        opt = solve_optimal(inst, return_schedule=False).cost
        for algo, bound in [
            (AlgorithmB(), theoretical_bound(inst, "B")),
            (AlgorithmC(epsilon=0.5), 2 * inst.d + 1 + 0.5),
        ]:
            result = run_online(inst, algo)
            assert result.cost <= bound * opt + 1e-6
