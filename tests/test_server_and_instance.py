"""Tests for :class:`ServerType` and :class:`ProblemInstance`."""

import math

import numpy as np
import pytest

from repro import ConstantCost, LinearCost, ProblemInstance, QuadraticCost, ServerType
from repro.core.cost_functions import ScaledCost


# --------------------------------------------------------------------------- #
# ServerType
# --------------------------------------------------------------------------- #


class TestServerType:
    def test_basic_properties(self):
        st_ = ServerType("cpu", count=4, switching_cost=5.0, capacity=2.0,
                         cost_function=LinearCost(idle=1.0, slope=0.5))
        assert st_.count == 4
        assert st_.idle_cost == 1.0
        assert st_.full_load_cost == pytest.approx(2.0)

    def test_break_even_slots(self):
        st_ = ServerType("cpu", count=1, switching_cost=5.0, capacity=1.0,
                         cost_function=ConstantCost(level=2.0))
        assert st_.break_even_slots() == 3  # ceil(5/2)

    def test_break_even_exact_division(self):
        st_ = ServerType("cpu", count=1, switching_cost=6.0, capacity=1.0,
                         cost_function=ConstantCost(level=2.0))
        assert st_.break_even_slots() == 3

    def test_break_even_with_zero_idle_cost(self):
        st_ = ServerType("cpu", count=1, switching_cost=6.0, capacity=1.0,
                         cost_function=QuadraticCost(idle=0.0, a=0.0, b=1.0))
        assert st_.break_even_slots() == math.inf

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ServerType("x", count=-1, switching_cost=1.0, capacity=1.0)

    def test_negative_switching_cost_rejected(self):
        with pytest.raises(ValueError):
            ServerType("x", count=1, switching_cost=-1.0, capacity=1.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ServerType("x", count=1, switching_cost=1.0, capacity=0.0)

    def test_non_cost_function_rejected(self):
        with pytest.raises(TypeError):
            ServerType("x", count=1, switching_cost=1.0, capacity=1.0, cost_function=lambda z: z)

    def test_with_count(self):
        st_ = ServerType("x", count=2, switching_cost=1.0, capacity=1.0)
        assert st_.with_count(7).count == 7
        assert st_.count == 2  # original untouched

    def test_with_cost_function(self):
        st_ = ServerType("x", count=2, switching_cost=1.0, capacity=1.0)
        st2 = st_.with_cost_function(ConstantCost(3.0))
        assert st2.idle_cost == 3.0

    def test_describe_mentions_name_and_count(self):
        st_ = ServerType("gpu", count=3, switching_cost=1.0, capacity=4.0)
        text = st_.describe()
        assert "gpu" in text and "m=3" in text

    def test_infinite_capacity_allowed(self):
        st_ = ServerType("big", count=1, switching_cost=1.0, capacity=float("inf"))
        assert not np.isfinite(st_.capacity) or st_.capacity > 0


# --------------------------------------------------------------------------- #
# ProblemInstance
# --------------------------------------------------------------------------- #


class TestProblemInstanceBasics:
    def test_dimensions(self, small_instance):
        assert small_instance.T == 6
        assert small_instance.d == 2
        np.testing.assert_array_equal(small_instance.m, [3, 2])
        np.testing.assert_allclose(small_instance.beta, [4.0, 9.0])
        np.testing.assert_allclose(small_instance.zmax, [1.0, 4.0])

    def test_needs_at_least_one_type(self):
        with pytest.raises(ValueError):
            ProblemInstance((), np.array([1.0]))

    def test_demand_must_be_non_negative(self, two_type_fleet):
        with pytest.raises(ValueError):
            ProblemInstance(two_type_fleet, np.array([1.0, -0.5]))

    def test_demand_must_be_finite(self, two_type_fleet):
        with pytest.raises(ValueError):
            ProblemInstance(two_type_fleet, np.array([1.0, np.inf]))

    def test_demand_must_be_1d(self, two_type_fleet):
        with pytest.raises(ValueError):
            ProblemInstance(two_type_fleet, np.array([[1.0, 2.0]]))

    def test_demand_is_read_only(self, small_instance):
        with pytest.raises(ValueError):
            small_instance.demand[0] = 99.0

    def test_cost_function_defaults_to_server_type(self, small_instance, two_type_fleet):
        assert small_instance.cost_function(0, 0) is two_type_fleet[0].cost_function
        assert small_instance.cost_function(3, 1) is two_type_fleet[1].cost_function

    def test_slot_index_bounds(self, small_instance):
        with pytest.raises(IndexError):
            small_instance.cost_function(6, 0)
        with pytest.raises(IndexError):
            small_instance.counts_at(-1)

    def test_idle_costs(self, small_instance):
        np.testing.assert_allclose(small_instance.idle_costs(0), [0.5, 1.5])

    def test_total_capacity_and_feasibility(self, small_instance):
        assert small_instance.total_capacity(0) == pytest.approx(3 * 1.0 + 2 * 4.0)
        assert small_instance.is_feasible()
        small_instance.validate()

    def test_infeasible_instance_detected(self, two_type_fleet):
        inst = ProblemInstance(two_type_fleet, np.array([100.0]))
        assert not inst.is_feasible()
        with pytest.raises(ValueError):
            inst.validate()


class TestPrefixAndVariants:
    def test_prefix_shortens_demand(self, small_instance):
        prefix = small_instance.prefix(3)
        assert prefix.T == 3
        np.testing.assert_allclose(prefix.demand, small_instance.demand[:3])

    def test_prefix_bounds(self, small_instance):
        with pytest.raises(ValueError):
            small_instance.prefix(7)
        assert small_instance.prefix(0).T == 0

    def test_prefix_keeps_time_dependent_costs(self, time_dependent_instance):
        prefix = time_dependent_instance.prefix(2)
        assert prefix.has_time_dependent_costs
        assert len(prefix.cost_functions) == 2

    def test_with_demand(self, small_instance):
        inst = small_instance.with_demand(np.array([1.0, 2.0]))
        assert inst.T == 2

    def test_with_demand_rejects_length_change_with_td_costs(self, time_dependent_instance):
        with pytest.raises(ValueError):
            time_dependent_instance.with_demand(np.array([1.0, 2.0]))

    def test_price_profile_scales_costs(self, small_instance):
        prices = np.linspace(1.0, 2.0, small_instance.T)
        inst = small_instance.with_price_profile(prices)
        assert inst.has_time_dependent_costs
        f = inst.cost_function(small_instance.T - 1, 0)
        base = small_instance.cost_function(small_instance.T - 1, 0)
        assert float(f.value(0.5)) == pytest.approx(2.0 * float(base.value(0.5)))

    def test_price_profile_validation(self, small_instance):
        with pytest.raises(ValueError):
            small_instance.with_price_profile(np.ones(small_instance.T - 1))
        with pytest.raises(ValueError):
            small_instance.with_price_profile(-np.ones(small_instance.T))

    def test_with_counts(self, small_instance):
        counts = np.tile(small_instance.m, (small_instance.T, 1))
        counts[2] = [1, 1]
        inst = small_instance.with_counts(counts)
        assert inst.has_time_dependent_counts
        np.testing.assert_array_equal(inst.counts_at(2), [1, 1])
        np.testing.assert_array_equal(inst.counts_at(0), small_instance.m)

    def test_with_counts_shape_validation(self, small_instance):
        with pytest.raises(ValueError):
            small_instance.with_counts(np.ones((2, 2), dtype=int))


class TestInstanceStructure:
    def test_homogeneous_flag(self, small_instance, homogeneous_instance):
        assert not small_instance.is_homogeneous
        assert homogeneous_instance.is_homogeneous

    def test_load_independence_detection(self, load_independent_instance, small_instance):
        assert load_independent_instance.is_load_independent()
        assert not small_instance.is_load_independent()

    def test_c_constant_time_independent(self, small_instance):
        # c(I) = sum_j f_j(0) / beta_j for time-independent costs
        expected = 0.5 / 4.0 + 1.5 / 9.0
        assert small_instance.c_constant() == pytest.approx(expected)

    def test_c_constant_with_prices(self, small_instance):
        prices = np.full(small_instance.T, 2.0)
        inst = small_instance.with_price_profile(prices)
        assert inst.c_constant() == pytest.approx(2.0 * small_instance.c_constant())

    def test_c_constant_infinite_for_zero_switching_cost(self):
        types = (ServerType("free", count=1, switching_cost=0.0, capacity=1.0,
                            cost_function=ConstantCost(1.0)),)
        inst = ProblemInstance(types, np.array([0.5]))
        assert inst.c_constant() == math.inf

    def test_describe_contains_key_facts(self, small_instance):
        text = small_instance.describe()
        assert "T=6" in text and "d=2" in text and "cpu" in text

    def test_cost_table_shape_validation(self, two_type_fleet):
        demand = np.array([1.0, 2.0])
        bad_rows = ((LinearCost(1, 1),),)  # only one row for T=2
        with pytest.raises(ValueError):
            ProblemInstance(two_type_fleet, demand, cost_functions=bad_rows)

    def test_cost_table_entry_type_validation(self, two_type_fleet):
        demand = np.array([1.0])
        with pytest.raises(TypeError):
            ProblemInstance(two_type_fleet, demand, cost_functions=(("not-a-cost", "x"),))

    def test_counts_negative_rejected(self, two_type_fleet):
        demand = np.array([1.0])
        with pytest.raises(ValueError):
            ProblemInstance(two_type_fleet, demand, counts=np.array([[-1, 2]]))
