"""Tests for the fault-tolerant sharded serve fabric (:mod:`repro.serve.fabric`).

The anchor is the *crash-recovery gate*: SIGKILL a worker process at an
arbitrary round — including mid-window of a ChaosFeed capacity drop with
Algorithm B power-up records open, in both strict and shed degradation modes
— and the recovered schedules must be bit-identical to an uninterrupted run,
costs within 1e-9, SLA counters exact (:func:`verify_crash_recovery`).
Around it: the supervisor primitives (restart policy, heartbeat staleness,
circuit breaker), deterministic sharding, atomic checkpoint rotation with
``.prev`` fallback, bounded ``ServeCache`` memory, ``history=False`` compact
checkpoints, and checkpoint-based live migration.
"""

import json
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import scenarios
from repro.exp.sharding import assign_shards, chunked
from repro.scenarios import build
from repro.serve import (
    BreakerConfig,
    CheckpointCorruptError,
    CircuitBreaker,
    ControllerSession,
    FabricError,
    InstanceFeed,
    RestartPolicy,
    ServeCache,
    ServeEngine,
    ServeFabric,
    TenantSpec,
    build_feed,
    load_checkpoint,
    previous_checkpoint_path,
    save_checkpoint,
    verify_crash_recovery,
)
from repro.serve.fabric import _materialise
from repro.serve.feed import FeedError, ScenarioFeed, TraceFeed, write_jsonl_trace
from repro.serve.supervisor import (
    Supervisor,
    WorkerHandle,
    read_json,
    write_json_atomic,
)

SCENARIO = "diurnal-cpu-gpu"


def _smoke_instance(name=SCENARIO):
    fam = scenarios.family(name)
    return build(scenarios.ScenarioSpec(name, dict(fam.smoke_params)))


def _replay_baseline(spec: TenantSpec) -> dict:
    """Uninterrupted in-process replay of one tenant spec."""
    feed, server_types = _materialise(spec)
    session = ControllerSession(
        spec.algorithm,
        server_types,
        degradation=spec.degradation,
        history=spec.history,
        name=spec.name,
    )
    for tick in feed.play(None):
        session.observe(tick.demand, cost_row=tick.cost_row, counts=tick.counts)
    session.finish()
    return {
        "ticks": session.ticks,
        "cost": session.cumulative_cost,
        "sla_violations": session.sla_violations,
    }


# --------------------------------------------------------------------------- #
# Sharding helpers (shared with the sweep engine)
# --------------------------------------------------------------------------- #


class TestSharding:
    def test_affinity_equal_keys_share_a_shard(self):
        keys = ["a", "b", "a", "c", "b", "a"]
        assignment = assign_shards(keys, 3)
        by_key = {}
        for key, shard in zip(keys, assignment):
            by_key.setdefault(key, set()).add(shard)
        assert all(len(shards) == 1 for shards in by_key.values())

    def test_deterministic_and_balanced(self):
        keys = [f"k{i}" for i in range(10)]
        first = assign_shards(keys, 3)
        assert first == assign_shards(keys, 3)
        loads = [first.count(s) for s in range(3)]
        assert max(loads) - min(loads) <= 1

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="n_shards"):
            assign_shards(["a"], 0)

    def test_chunked(self):
        assert list(chunked([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]


# --------------------------------------------------------------------------- #
# Supervisor primitives
# --------------------------------------------------------------------------- #


class TestRestartPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RestartPolicy(backoff_seconds=0.1, backoff_factor=2.0, max_backoff_seconds=0.5)
        assert policy.backoff_for(0) == pytest.approx(0.1)
        assert policy.backoff_for(1) == pytest.approx(0.2)
        assert policy.backoff_for(2) == pytest.approx(0.4)
        assert policy.backoff_for(3) == pytest.approx(0.5)  # capped
        assert policy.backoff_for(10) == pytest.approx(0.5)


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=3))
        assert breaker.allow(0)
        breaker.record_failure(0)
        breaker.record_failure(1)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow(2)

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=2))
        breaker.record_failure(0)
        breaker.record_success()
        breaker.record_failure(1)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_opens_quarantines_then_half_open_probe(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=2, cooldown_rounds=4))
        breaker.record_failure(0)
        breaker.record_failure(1)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(2)  # quarantined
        assert not breaker.allow(4)
        assert breaker.allow(5)  # round >= 1 + 4: half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.probes == 1
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_failed_probe_reopens_with_longer_cooldown(self):
        config = BreakerConfig(
            failure_threshold=1, cooldown_rounds=2, backoff_factor=2.0,
            max_cooldown_rounds=8, max_opens=10,
        )
        breaker = CircuitBreaker(config)
        breaker.record_failure(0)  # open #1 until round 2, cooldown -> 4
        assert breaker.allow(2)
        breaker.record_failure(2)  # failed probe: open #2 until round 6
        assert breaker.opens == 2
        assert not breaker.allow(5)
        assert breaker.allow(6)
        breaker.record_failure(6)  # open #3 until 6 + 8 (capped cooldown)
        assert not breaker.allow(13)
        assert breaker.allow(14)

    def test_exhausted_after_max_opens(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=1, cooldown_rounds=1, max_opens=2))
        breaker.record_failure(0)
        assert not breaker.exhausted
        breaker.allow(1)
        breaker.record_failure(1)
        assert breaker.exhausted
        counters = breaker.counters()
        assert counters["opens"] == 2 and counters["failures"] == 2

    def test_config_round_trips(self):
        config = BreakerConfig(failure_threshold=7, max_opens=1)
        assert BreakerConfig.from_dict(config.to_dict()) == config
        assert BreakerConfig.from_dict(None) == BreakerConfig()


class TestAtomicJson:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "state.json"
        write_json_atomic(path, {"round": 3})
        assert read_json(path) == {"round": 3}
        assert not list(tmp_path.glob("*.tmp*"))

    def test_read_missing_or_garbled_returns_default(self, tmp_path):
        assert read_json(tmp_path / "absent.json", default={"x": 1}) == {"x": 1}
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert read_json(bad) is None


class TestSupervisorRestartBudget:
    def test_crash_loop_exhausts_budget_and_fails(self, tmp_path):
        """A deterministically crashing worker restarts through its budget,
        then is marked failed permanently — the fabric must not spin."""
        import multiprocessing

        ctx = multiprocessing.get_context("fork")

        def spawn(worker_id, incarnation):
            process = ctx.Process(target=os._exit, args=(3,), daemon=True)
            process.start()
            return process

        handle = WorkerHandle(id=0, directory=tmp_path)
        policy = RestartPolicy(
            max_restarts=2, window_seconds=60.0,
            backoff_seconds=0.01, max_backoff_seconds=0.02,
        )
        supervisor = Supervisor([handle], spawn, policy, poll_interval=0.005)
        supervisor.start()
        supervisor.run(timeout=30.0)
        assert handle.status == "failed"
        assert handle.restarts == 2
        assert handle.exit_reason
        kinds = [e["event"] for e in supervisor.events]
        assert kinds.count("worker_restart") == 2
        assert "worker_failed" in kinds


# --------------------------------------------------------------------------- #
# Atomic checkpoints with rotation (satellite: torn-write safety)
# --------------------------------------------------------------------------- #


class TestCheckpointRotation:
    def _payloads(self):
        instance = _smoke_instance()
        session = ControllerSession("A", instance.server_types)
        ticks = list(InstanceFeed(instance))
        for tick in ticks[:4]:
            session.observe(tick.demand, cost_row=tick.cost_row, counts=tick.counts)
        first = session.checkpoint()
        for tick in ticks[4:8]:
            session.observe(tick.demand, cost_row=tick.cost_row, counts=tick.counts)
        return first, session.checkpoint()

    def test_save_rotates_previous_intact_checkpoint(self, tmp_path):
        first, second = self._payloads()
        path = tmp_path / "t.ckpt.json"
        save_checkpoint(path, first)
        assert not previous_checkpoint_path(path).exists()
        save_checkpoint(path, second)
        assert load_checkpoint(path)["tick"] == second["tick"]
        prev = json.loads(previous_checkpoint_path(path).read_text())
        assert prev["tick"] == first["tick"]
        assert not list(tmp_path.glob("*.tmp*"))  # no torn/temp leftovers

    def test_corrupt_main_falls_back_to_previous(self, tmp_path):
        first, second = self._payloads()
        path = tmp_path / "t.ckpt.json"
        save_checkpoint(path, first)
        save_checkpoint(path, second)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])  # torn write
        recovered = load_checkpoint(path)
        assert recovered["tick"] == first["tick"]

    def test_both_corrupt_fails_loudly(self, tmp_path):
        first, second = self._payloads()
        path = tmp_path / "t.ckpt.json"
        save_checkpoint(path, first)
        save_checkpoint(path, second)
        path.write_text("{torn")
        previous_checkpoint_path(path).write_text("also torn")
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_tampered_payload_fails_checksum_on_restore(self):
        first, _ = self._payloads()
        instance = _smoke_instance()
        fresh = ControllerSession("A", instance.server_types)
        tampered = dict(first)
        tampered["tick"] = int(tampered["tick"]) + 1
        with pytest.raises(CheckpointCorruptError, match="integrity"):
            fresh.restore(tampered)


# --------------------------------------------------------------------------- #
# Bounded ServeCache memory (satellite: LRU ledger / tensor budgets)
# --------------------------------------------------------------------------- #


class TestServeCacheBudgets:
    def _run(self, instance, algorithm, **cache_kwargs):
        cache = ServeCache(instance.server_types, **cache_kwargs)
        session = ControllerSession(algorithm, cache=cache)
        for tick in InstanceFeed(instance):
            session.observe(tick.demand, cost_row=tick.cost_row, counts=tick.counts)
        session.finish()
        return session, cache

    def test_ledger_budget_caps_slots_and_changes_nothing_numerically(self):
        instance = _smoke_instance()
        free_session, free_cache = self._run(instance, "A")
        assert free_cache.ledger_evictions == 0
        budget = max(2, free_cache.virtual_slots // 3)
        capped_session, capped_cache = self._run(instance, "A", ledger_budget=budget)
        assert capped_cache.virtual_slots <= budget
        assert capped_cache.ledger_evictions > 0
        assert np.array_equal(capped_session.schedule.x, free_session.schedule.x)
        assert capped_session.cumulative_cost == free_session.cumulative_cost
        counters = capped_cache.counters()
        assert counters["ledger_evictions"] == capped_cache.ledger_evictions

    def test_tensor_budget_evicts_and_changes_nothing_numerically(self):
        instance = _smoke_instance()
        free_session, free_cache = self._run(instance, "B")
        assert free_cache.tensor_misses > 0, "algorithm B must exercise grid tensors"
        budget = max(free_cache.counters()["tensor_bytes"] // 4, 1)
        capped_session, capped_cache = self._run(instance, "B", tensor_budget_bytes=budget)
        assert capped_cache.tensor_evictions > 0
        assert capped_cache.counters()["tensor_bytes"] <= budget or len(capped_cache._tensors) == 1
        assert np.array_equal(capped_session.schedule.x, free_session.schedule.x)
        assert capped_session.cumulative_cost == free_session.cumulative_cost

    def test_budget_validation(self):
        instance = _smoke_instance()
        with pytest.raises(ValueError, match="ledger_budget"):
            ServeCache(instance.server_types, ledger_budget=0)
        with pytest.raises(ValueError, match="tensor_budget_bytes"):
            ServeCache(instance.server_types, tensor_budget_bytes=-1)


# --------------------------------------------------------------------------- #
# Compact (history=False) checkpoints (satellite: month-scale controllers)
# --------------------------------------------------------------------------- #


class TestCompactHistory:
    def test_compact_checkpoint_drops_per_tick_rows_and_still_restores(self):
        instance = _smoke_instance()
        ticks = list(InstanceFeed(instance))
        half = len(ticks) // 2

        full = ControllerSession("A", instance.server_types)
        for tick in ticks:
            full.observe(tick.demand, cost_row=tick.cost_row, counts=tick.counts)
        full.finish()

        compact = ControllerSession("A", instance.server_types, history=False)
        for tick in ticks[:half]:
            compact.observe(tick.demand, cost_row=tick.cost_row, counts=tick.counts)
        payload = compact.checkpoint()
        assert "configs" not in payload and "latencies_s" not in payload

        resumed = ControllerSession("A", instance.server_types, history=False)
        resumed.restore(payload)
        for tick in ticks[half:]:
            resumed.observe(tick.demand, cost_row=tick.cost_row, counts=tick.counts)
        resumed.finish()
        assert resumed.ticks == full.ticks
        assert resumed.cumulative_cost == pytest.approx(full.cumulative_cost, abs=1e-9)

    def test_compact_schedule_access_raises(self):
        instance = _smoke_instance()
        session = ControllerSession("A", instance.server_types, history=False)
        session.observe(float(instance.demand[0]))
        with pytest.raises(ValueError, match="history=False"):
            session.schedule

    def test_compact_payload_is_constant_size_in_stream_length(self):
        from repro.workloads import named_trace

        instance = _smoke_instance()
        demands = named_trace("diurnal", 160, np.random.default_rng(0))

        def payload_bytes(history, upto):
            session = ControllerSession("A", instance.server_types, history=history)
            for demand in demands[:upto]:
                session.observe(float(demand))
            return len(json.dumps(session.checkpoint()).encode())

        full = payload_bytes(True, 160)
        compact = payload_bytes(False, 160)
        assert compact < full / 2, (compact, full)
        # compact payloads do not grow with the tick count (O(1) vs O(T))
        growth = payload_bytes(False, 160) - payload_bytes(False, 80)
        assert abs(growth) < 64, growth
        assert payload_bytes(True, 160) - payload_bytes(True, 80) > 500


# --------------------------------------------------------------------------- #
# Engine checkpoint cadence
# --------------------------------------------------------------------------- #


class TestEngineCheckpointCadence:
    def test_engine_writes_periodic_and_final_checkpoints(self, tmp_path):
        instance = _smoke_instance()
        engine = ServeEngine()
        engine.add_tenant("t0", "A", InstanceFeed(instance))
        engine.run(checkpoint_dir=tmp_path, checkpoint_every=4)
        path = tmp_path / "t0.ckpt.json"
        payload = load_checkpoint(path)
        assert payload["tick"] == engine.session("t0").ticks
        # the cadence rotated at least one earlier checkpoint into .prev
        assert previous_checkpoint_path(path).exists()
        restored = ControllerSession("A", instance.server_types).restore(payload)
        assert restored.cumulative_cost == pytest.approx(
            engine.session("t0").cumulative_cost, abs=1e-12
        )


# --------------------------------------------------------------------------- #
# TenantSpec and fabric registration
# --------------------------------------------------------------------------- #


class TestTenantSpec:
    def test_round_trip(self):
        spec = TenantSpec(
            name="t",
            algorithm={"kind": "B", "params": {}},
            feed={"kind": "scenario", "scenario": SCENARIO, "seed": 3},
            fleet=None,
            chaos={"events": [{"kind": "price_shock", "t": 2, "duration": 1, "magnitude": 2.0}]},
            degradation="shed",
            history=False,
            track_regret=False,
            shard_key="g",
        )
        assert TenantSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_add_tenant_normalises_and_validates(self):
        fabric = ServeFabric(workers=2)
        spec = fabric.add_tenant(
            "a", algorithm="B", feed={"scenario": SCENARIO, "seed": 0}, fleet=SCENARIO
        )
        assert spec.algorithm == {"kind": "B", "params": {}}
        assert spec.fleet == {"scenario": SCENARIO}
        with pytest.raises(ValueError, match="already registered"):
            fabric.add_tenant("a", feed={"scenario": SCENARIO})
        with pytest.raises(TypeError, match="declarative feed"):
            fabric.add_tenant("live", feed=ScenarioFeed(SCENARIO, seed=0))
        with pytest.raises(ValueError, match="feed spec is required"):
            fabric.add_tenant("nofeed")

    def test_default_shard_keys_split_by_seed_group_opts_into_sharing(self):
        fabric = ServeFabric(workers=2)
        a = fabric.add_tenant("a", feed={"scenario": SCENARIO, "seed": 0})
        b = fabric.add_tenant("b", feed={"scenario": SCENARIO, "seed": 1})
        assert a.shard_key != b.shard_key  # sharing is opt-in, never accidental
        c = fabric.add_tenant("c", feed={"scenario": SCENARIO, "seed": 2}, group="g")
        d = fabric.add_tenant("d", feed={"scenario": SCENARIO, "seed": 3}, group="g")
        assert c.shard_key == d.shard_key == "g"

    def test_materialise_requires_fleet_for_demand_only_feeds(self):
        spec = TenantSpec(
            name="t", algorithm={"kind": "A", "params": {}},
            feed={"kind": "array", "demands": [1.0, 2.0]},
        )
        with pytest.raises(FeedError, match="fleet"):
            _materialise(spec)

    def test_build_feed_kinds(self, tmp_path):
        assert isinstance(build_feed({"scenario": SCENARIO, "seed": 0}), TraceFeed)
        assert list(build_feed({"kind": "array", "demands": [1.0, 2.0]}))
        trace = tmp_path / "demands.jsonl"
        write_jsonl_trace(trace, [1.0, 2.0, 3.0])
        assert len(list(build_feed({"kind": "jsonl", "path": str(trace)}))) == 3
        with pytest.raises(ValueError, match="unknown feed kind"):
            build_feed({"kind": "nope"})


# --------------------------------------------------------------------------- #
# Fabric integration: healthy path, crashes, chaos, migration, bad feeds
# --------------------------------------------------------------------------- #


class TestFabricRuns:
    def test_healthy_run_matches_in_process_replay(self, tmp_path):
        fabric = ServeFabric(workers=2, run_dir=tmp_path, checkpoint_every=4)
        for i in range(2):
            fabric.add_tenant(f"t{i}", algorithm="A", feed={"scenario": SCENARIO, "seed": i})
        report = fabric.run()
        assert report["totals"]["restarts"] == 0
        for name, spec in fabric.tenants.items():
            row = report["tenants"][name]
            baseline = _replay_baseline(spec)
            assert row["status"] == "completed"
            assert row["ticks"] == baseline["ticks"]
            assert row["cost"] == pytest.approx(baseline["cost"], abs=1e-9)
        assert {report["tenants"][n]["worker"] for n in fabric.tenants} == {0, 1}

    def test_grouped_tenants_are_colocated(self, tmp_path):
        fabric = ServeFabric(workers=2, run_dir=tmp_path)
        fabric.add_tenant("a", feed={"scenario": SCENARIO, "seed": 0}, group="g")
        fabric.add_tenant("b", feed={"scenario": SCENARIO, "seed": 1}, group="g")
        fabric.add_tenant("c", feed={"scenario": SCENARIO, "seed": 2})
        report = fabric.run()
        assert report["tenants"]["a"]["worker"] == report["tenants"]["b"]["worker"]
        assert all(report["tenants"][n]["status"] == "completed" for n in "abc")

    def test_crash_recovery_gate(self, tmp_path):
        out = verify_crash_recovery(
            n_tenants=2, workers=2, kill_worker=0, checkpoint_every=4,
            run_dir=tmp_path,
        )
        assert out["verified"]
        assert out["restarts"] >= 1
        assert out["max_cost_delta"] == 0.0
        assert out["recovery_latency_s"], "recovery latency must be measured"

    def test_migration_completes_and_preserves_costs(self, tmp_path):
        fabric = ServeFabric(workers=2, run_dir=tmp_path, checkpoint_every=4)
        fabric.add_tenant("t0", algorithm="A", feed={"scenario": SCENARIO, "seed": 0})
        fabric.add_tenant("t1", algorithm="A", feed={"scenario": SCENARIO, "seed": 1})
        fabric.migrate("t0", 1, after_round=6)
        report = fabric.run()
        migration = report["migrations"][0]
        assert migration["state"] == "done"
        assert report["totals"]["migrations_completed"] == 1
        row = report["tenants"]["t0"]
        assert row["status"] == "completed"
        baseline = _replay_baseline(fabric.tenants["t0"])
        assert row["ticks"] == baseline["ticks"]
        assert row["cost"] == pytest.approx(baseline["cost"], abs=1e-9)

    def test_broken_feed_is_quarantined_not_fatal(self, tmp_path):
        """A feed that keeps raising trips the breaker, exhausts its opens and
        abandons only that tenant — the co-resident tenant still completes."""
        trace = tmp_path / "bad.jsonl"
        write_jsonl_trace(trace, np.linspace(1.0, 3.0, 12))
        with trace.open("a") as fh:
            fh.write("{torn line\n")  # permanently malformed tail
        def build_fabric(run_dir):
            fabric = ServeFabric(
                workers=1, run_dir=run_dir,
                breaker=BreakerConfig(failure_threshold=2, cooldown_rounds=2,
                                      max_cooldown_rounds=8, max_opens=2),
            )
            fabric.add_tenant("good", feed={"scenario": SCENARIO, "seed": 0})
            fabric.add_tenant(
                "bad", feed={"kind": "jsonl", "path": str(trace)}, fleet=SCENARIO
            )
            return fabric

        with pytest.raises(FabricError):
            build_fabric(tmp_path / "run-raise").run()
        report = build_fabric(tmp_path / "run").run(raise_on_failure=False)
        good, bad = report["tenants"]["good"], report["tenants"]["bad"]
        assert good["status"] == "completed"
        assert bad["status"] == "failed"
        assert bad["breaker"]["opens"] == 2
        assert bad["quarantined_rounds"] > 0
        assert bad["feed_rebuilds"] >= 1
        assert "malformed" in bad["last_error"]
        assert bad["ticks"] == 12  # every intact tick was served and checkpointed

    def test_stale_heartbeat_worker_is_killed_and_recovered(self, tmp_path):
        """A hung (SIGSTOPped) worker misses its heartbeat deadline: the
        supervisor SIGKILLs it and recovery completes the stream."""
        fabric = ServeFabric(
            workers=1, run_dir=tmp_path, checkpoint_every=8,
            heartbeat_timeout=0.5, poll_interval=0.01,
        )
        fabric.add_tenant(
            "t0",
            feed={"kind": "synthetic", "source": "diurnal", "slots": 600, "seed": 0},
            fleet=SCENARIO,
        )
        heartbeat = tmp_path / "worker-0" / "heartbeat.json"

        def hang_worker():
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                row = read_json(heartbeat)
                if row and row.get("pid"):
                    try:
                        os.kill(int(row["pid"]), signal.SIGSTOP)
                    except ProcessLookupError:
                        pass
                    return
                time.sleep(0.005)

        hanger = threading.Thread(target=hang_worker, daemon=True)
        hanger.start()
        report = fabric.run(timeout=60.0)
        hanger.join()
        assert report["workers"]["0"]["restarts"] >= 1
        assert report["tenants"]["t0"]["status"] == "completed"
        assert report["tenants"]["t0"]["ticks"] == 600
        assert any(e["event"] == "worker_crash" for e in report["events"])


# --------------------------------------------------------------------------- #
# The ISSUE satellite: SIGKILL mid-chaos-window with Algorithm B records open
# --------------------------------------------------------------------------- #


class TestCrashRecoveryUnderChaos:
    """SIGKILL + restore while a ChaosFeed capacity drop is mid-window and
    Algorithm B has open power-up records — strict and shed modes."""

    def test_shed_mode_mid_capacity_drop(self, tmp_path):
        chaos = {
            "events": [
                {"kind": "capacity_drop", "t": 18, "duration": 14, "magnitude": 0.5},
                {"kind": "flash_crowd", "t": 20, "duration": 10, "magnitude": 2.5},
            ]
        }
        out = verify_crash_recovery(
            n_tenants=2, workers=2, kill_worker=0, kill_round=24,  # inside [18, 32)
            algorithm="B", degradation="shed", chaos=chaos,
            checkpoint_every=4, run_dir=tmp_path,
        )
        assert out["verified"]
        assert out["restarts"] >= 1
        assert out["max_cost_delta"] == 0.0
        assert out["sla_violations"] > 0  # the drop+crowd actually bit

    def test_strict_mode_mid_capacity_drop(self, tmp_path):
        # a mild drop keeps B's configurations feasible, so strict mode never
        # sheds — yet the kill still lands while the fleet is shrunken and
        # B's power-up records are open
        chaos = {
            "events": [
                {"kind": "capacity_drop", "t": 18, "duration": 14, "magnitude": 0.2},
            ]
        }
        out = verify_crash_recovery(
            n_tenants=2, workers=2, kill_worker=0, kill_round=24,
            algorithm="B", degradation="strict", chaos=chaos,
            checkpoint_every=4, run_dir=tmp_path,
        )
        assert out["verified"]
        assert out["restarts"] >= 1
        assert out["max_cost_delta"] == 0.0
        assert out["sla_violations"] == 0
