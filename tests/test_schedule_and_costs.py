"""Tests for :class:`Schedule` and the exact cost evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConstantCost,
    ProblemInstance,
    Schedule,
    ServerType,
    evaluate_schedule,
    operating_cost,
    switching_cost,
    total_cost,
)
from repro.dispatch import DispatchSolver


# --------------------------------------------------------------------------- #
# Schedule container
# --------------------------------------------------------------------------- #


class TestScheduleConstruction:
    def test_from_rows(self):
        s = Schedule.from_rows([[1, 0], [2, 1], [0, 0]])
        assert s.T == 3 and s.d == 2
        np.testing.assert_array_equal(s[1], [2, 1])

    def test_empty_and_constant(self):
        assert Schedule.empty(4, 3).x.shape == (4, 3)
        s = Schedule.constant(3, [2, 1])
        assert np.all(s.x == [[2, 1]] * 3)

    def test_boundary_configurations_are_zero(self):
        s = Schedule.from_rows([[1, 1]])
        np.testing.assert_array_equal(s[-1], [0, 0])
        np.testing.assert_array_equal(s[s.T], [0, 0])

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            Schedule(np.array([[1, -1]]))

    def test_rejects_fractional_entries(self):
        with pytest.raises(ValueError):
            Schedule(np.array([[1.5, 0.0]]))

    def test_accepts_float_integers(self):
        s = Schedule(np.array([[1.0, 2.0]]))
        assert s.x.dtype.kind == "i"

    def test_rejects_wrong_dim(self):
        with pytest.raises(ValueError):
            Schedule(np.array([1, 2, 3]))

    def test_array_is_read_only(self):
        s = Schedule.from_rows([[1, 0]])
        with pytest.raises(ValueError):
            s.x[0, 0] = 5

    def test_prefix_and_same_as(self):
        s = Schedule.from_rows([[1, 0], [2, 1], [0, 0]])
        assert s.prefix(2).same_as(Schedule.from_rows([[1, 0], [2, 1]]))
        assert not s.same_as(s.prefix(2))


class TestSwitchingBookkeeping:
    def test_power_ups_include_initial_ramp(self):
        s = Schedule.from_rows([[2, 1], [3, 0], [1, 2]])
        ups = s.power_ups()
        np.testing.assert_array_equal(ups, [[2, 1], [1, 0], [0, 2]])

    def test_power_downs_include_final_shutdown(self):
        s = Schedule.from_rows([[2, 1], [1, 0]])
        downs = s.power_downs()
        np.testing.assert_array_equal(downs, [[0, 0], [1, 1], [1, 0]])

    def test_total_ups_equal_total_downs(self):
        s = Schedule.from_rows([[2, 1], [3, 0], [1, 2], [0, 1]])
        np.testing.assert_array_equal(s.power_ups().sum(axis=0), s.power_downs().sum(axis=0))

    def test_switching_cost(self, small_instance):
        s = Schedule.from_rows([[1, 0], [2, 1], [0, 1], [0, 0], [0, 0], [1, 1]])
        expected = 4.0 * (1 + 1 + 0 + 0 + 0 + 1) + 9.0 * (0 + 1 + 0 + 0 + 0 + 1)
        assert s.switching_cost(small_instance) == pytest.approx(expected)
        assert switching_cost(small_instance, s) == pytest.approx(expected)

    def test_switching_cost_shape_mismatch(self, small_instance):
        with pytest.raises(ValueError):
            Schedule.empty(3, 2).switching_cost(small_instance)


class TestFeasibility:
    def test_feasible_schedule(self, small_instance):
        s = Schedule.from_rows([[1, 0], [2, 0], [1, 1], [1, 0], [0, 0], [3, 0]])
        assert s.is_feasible(small_instance)
        s.check_feasible(small_instance)

    def test_capacity_violation_detected(self, small_instance):
        s = Schedule.from_rows([[0, 0], [2, 0], [1, 0], [1, 0], [0, 0], [3, 0]])
        # slot 2 has demand 5 but capacity 1
        problems = s.violations(small_instance)
        assert any("slot 2" in p for p in problems)
        assert not s.is_feasible(small_instance)

    def test_count_violation_detected(self, small_instance):
        s = Schedule.from_rows([[4, 0], [2, 1], [1, 1], [1, 0], [0, 0], [3, 0]])
        problems = s.violations(small_instance)
        assert any("type 0" in p for p in problems)

    def test_check_feasible_raises(self, small_instance):
        s = Schedule.empty(6, 2)
        with pytest.raises(ValueError):
            s.check_feasible(small_instance)

    def test_time_varying_counts_respected(self, small_instance):
        counts = np.tile(small_instance.m, (small_instance.T, 1))
        counts[1] = [1, 0]
        inst = small_instance.with_counts(counts)
        s = Schedule.from_rows([[1, 0], [2, 0], [1, 1], [1, 0], [0, 0], [3, 0]])
        assert not s.is_feasible(inst)

    def test_utilisation(self, small_instance):
        s = Schedule.from_rows([[1, 0], [2, 0], [1, 1], [1, 0], [0, 0], [3, 0]])
        util = s.utilisation(small_instance)
        assert util[0] == pytest.approx(0.5)
        assert util[4] == 0.0
        assert np.all(util <= 1.0 + 1e-9)

    def test_max_active(self):
        s = Schedule.from_rows([[1, 0], [2, 1], [0, 2]])
        np.testing.assert_array_equal(s.max_active(), [2, 2])


# --------------------------------------------------------------------------- #
# Cost evaluation
# --------------------------------------------------------------------------- #


class TestCostEvaluation:
    def test_breakdown_identity(self, small_instance):
        s = Schedule.from_rows([[1, 0], [2, 0], [1, 1], [1, 0], [0, 0], [3, 0]])
        b = evaluate_schedule(small_instance, s)
        assert b.total == pytest.approx(b.total_operating + b.total_switching)
        assert b.total_operating == pytest.approx(b.total_idle + b.total_load_dependent)
        assert b.feasible

    def test_total_cost_matches_breakdown(self, small_instance):
        s = Schedule.from_rows([[1, 0], [2, 0], [1, 1], [1, 0], [0, 0], [3, 0]])
        b = evaluate_schedule(small_instance, s)
        assert total_cost(small_instance, s) == pytest.approx(b.total)
        assert operating_cost(small_instance, s) == pytest.approx(b.total_operating)

    def test_infeasible_slot_gives_infinite_cost(self, small_instance):
        s = Schedule.empty(6, 2)
        b = evaluate_schedule(small_instance, s)
        assert not b.feasible
        assert np.isinf(b.total)

    def test_loads_cover_demand(self, small_instance):
        s = Schedule.from_rows([[1, 0], [2, 0], [1, 1], [1, 0], [0, 0], [3, 0]])
        b = evaluate_schedule(small_instance, s)
        np.testing.assert_allclose(b.loads.sum(axis=1), small_instance.demand, atol=1e-6)

    def test_idle_cost_formula(self, small_instance):
        s = Schedule.from_rows([[1, 0], [2, 0], [1, 1], [1, 0], [0, 0], [3, 0]])
        b = evaluate_schedule(small_instance, s)
        idle = small_instance.idle_costs(0)
        np.testing.assert_allclose(b.idle[0], s.x[0] * idle)

    def test_load_dependent_non_negative(self, small_instance):
        s = Schedule.from_rows([[1, 0], [2, 0], [1, 1], [1, 0], [0, 0], [3, 0]])
        b = evaluate_schedule(small_instance, s)
        assert np.all(b.load_dependent >= -1e-9)

    def test_shape_mismatch_rejected(self, small_instance):
        with pytest.raises(ValueError):
            evaluate_schedule(small_instance, Schedule.empty(3, 2))

    def test_exceeding_counts_is_infeasible(self, small_instance):
        s = Schedule.from_rows([[4, 2], [2, 0], [1, 1], [1, 0], [0, 0], [3, 0]])
        b = evaluate_schedule(small_instance, s)
        assert not b.feasible

    def test_constant_cost_instance_cost_is_linear_in_servers(self, load_independent_instance):
        inst = load_independent_instance
        s = Schedule.constant(inst.T, [2, 1])
        b = evaluate_schedule(inst, s)
        levels = np.array([inst.cost_function(0, j).idle_cost() for j in range(inst.d)])
        expected_operating = inst.T * float(np.sum(np.array([2, 1]) * levels))
        assert b.total_operating == pytest.approx(expected_operating)
        assert b.total_load_dependent == pytest.approx(0.0, abs=1e-9)

    def test_summary_keys(self, small_instance):
        s = Schedule.from_rows([[1, 0], [2, 0], [1, 1], [1, 0], [0, 0], [3, 0]])
        summary = evaluate_schedule(small_instance, s).summary()
        assert set(summary) == {"total", "operating", "switching", "idle", "load_dependent", "feasible"}


# --------------------------------------------------------------------------- #
# Property-based invariants
# --------------------------------------------------------------------------- #


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_switching_cost_is_translation_bounded(data):
    """Keeping one extra server on from slot t onwards adds at most beta_j switching cost,
    and exactly beta_j when no power-down is absorbed at slot t."""
    T = data.draw(st.integers(2, 6))
    x = np.array(data.draw(st.lists(st.integers(0, 3), min_size=T, max_size=T)))
    t = data.draw(st.integers(1, T - 1))
    types = (ServerType("a", count=5, switching_cost=2.5, capacity=1.0, cost_function=ConstantCost(1.0)),)
    inst = ProblemInstance(types, np.zeros(T))
    base = Schedule(x[:, None]).switching_cost(inst)
    bumped = x.copy()
    bumped[t:] += 1
    increase = Schedule(bumped[:, None]).switching_cost(inst) - base
    assert 0.0 - 1e-9 <= increase <= 2.5 + 1e-9
    if x[t] >= x[t - 1]:
        assert increase == pytest.approx(2.5)


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_more_servers_never_reduce_capacity_feasibility(data):
    """If a schedule is feasible, any pointwise-larger schedule is feasible too."""
    T = data.draw(st.integers(1, 5))
    types = (
        ServerType("a", count=3, switching_cost=1.0, capacity=1.0, cost_function=ConstantCost(1.0)),
        ServerType("b", count=2, switching_cost=1.0, capacity=2.0, cost_function=ConstantCost(1.0)),
    )
    inst = ProblemInstance(types, np.array(data.draw(
        st.lists(st.floats(0.0, 7.0), min_size=T, max_size=T))))
    rows = data.draw(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 2)), min_size=T, max_size=T))
    base = Schedule.from_rows(rows)
    if not base.is_feasible(inst):
        return
    bigger = Schedule(np.minimum(base.x + 1, inst.m[None, :]))
    assert bigger.is_feasible(inst)
