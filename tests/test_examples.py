"""Smoke tests: every bundled example script runs end to end.

The examples double as integration tests of the public API; they are executed
here with their default (small) parameters and their stdout is checked for the
key facts each one promises to report.
"""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    return module


def _run_main(name: str, *args):
    module = _load(name)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main(*args)
    return buffer.getvalue()


def test_examples_directory_contents():
    names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart", "heterogeneous_cloud", "time_varying_prices",
            "datacenter_maintenance", "approximation_tradeoff", "adversarial_analysis"} <= names


def test_quickstart_runs():
    out = _run_main("quickstart")
    assert "optimal offline cost" in out
    assert "Algorithm A online cost" in out
    assert "cost breakdown" in out


def test_heterogeneous_cloud_runs():
    out = _run_main("heterogeneous_cloud", 24)
    assert "algorithm comparison" in out
    assert "algorithm-A" in out
    assert "right-sizing saves" in out


def test_time_varying_prices_runs():
    out = _run_main("time_varying_prices", 18)
    assert "c(I)" in out
    assert "time-dependent costs" in out


def test_datacenter_maintenance_runs():
    out = _run_main("datacenter_maintenance", 20)
    assert "time-varying availability" in out
    assert "approximation" in out


def test_approximation_tradeoff_runs():
    out = _run_main("approximation_tradeoff")
    assert "exact vs. (1+eps)-approximate" in out
    assert "reduced-grid DP" in out


def test_adversarial_analysis_runs():
    out = _run_main("adversarial_analysis")
    assert "exponential lower bound" in out
    assert "ski-rental adversarial traces" in out
    assert "blow-up" in out
