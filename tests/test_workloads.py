"""Tests for the synthetic workload generators and fleet presets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ProblemInstance
from repro.workloads import (
    bursty_trace,
    constant_trace,
    cpu_gpu_fleet,
    diurnal_trace,
    fleet_instance,
    load_independent_fleet,
    mmpp_trace,
    old_new_fleet,
    poisson_trace,
    ramp_trace,
    random_walk_trace,
    single_type_fleet,
    spike_trace,
    three_tier_fleet,
)


ALL_TRACES = [
    lambda T, rng: constant_trace(T, 2.0),
    lambda T, rng: diurnal_trace(T, rng=rng),
    lambda T, rng: bursty_trace(T, rng=rng),
    lambda T, rng: mmpp_trace(T, rng=rng),
    lambda T, rng: random_walk_trace(T, rng=rng),
    lambda T, rng: ramp_trace(T),
    lambda T, rng: spike_trace(T, rng=rng),
    lambda T, rng: poisson_trace(T, rng=rng),
]


class TestTraceGenerators:
    @pytest.mark.parametrize("factory", ALL_TRACES)
    def test_shape_and_non_negativity(self, factory):
        trace = factory(50, np.random.default_rng(0))
        assert trace.shape == (50,)
        assert np.all(trace >= 0.0)
        assert np.all(np.isfinite(trace))

    @pytest.mark.parametrize("factory", ALL_TRACES)
    def test_reproducibility_with_seed(self, factory):
        a = factory(40, np.random.default_rng(7))
        b = factory(40, np.random.default_rng(7))
        np.testing.assert_allclose(a, b)

    def test_diurnal_has_day_night_swing(self):
        trace = diurnal_trace(48, period=24, base=2.0, peak=10.0, noise=0.0)
        assert trace.min() == pytest.approx(2.0, abs=0.2)
        assert trace.max() == pytest.approx(10.0, abs=0.2)
        # one full period apart the values repeat
        np.testing.assert_allclose(trace[:24], trace[24:48], atol=1e-9)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            diurnal_trace(10, base=5.0, peak=2.0)

    def test_bursty_has_bursts_and_base(self):
        trace = bursty_trace(300, base=1.0, burst_height=9.0, burst_probability=0.2, rng=3)
        assert np.any(trace == 9.0)
        assert np.any(trace == 1.0)

    def test_spike_trace_spacing(self):
        trace = spike_trace(30, base=0.0, spike_height=5.0, spike_every=10)
        assert np.count_nonzero(trace) == 3

    def test_ramp_trace_monotone(self):
        trace = ramp_trace(20, start=1.0, end=5.0)
        assert np.all(np.diff(trace) >= -1e-12)

    def test_mmpp_switches_regimes(self):
        trace = mmpp_trace(500, low=1.0, high=10.0, noise=0.0, rng=11)
        assert np.any(trace == 1.0) and np.any(trace == 10.0)

    def test_random_walk_respects_bounds(self):
        trace = random_walk_trace(200, start=5.0, step=2.0, minimum=1.0, maximum=8.0, rng=5)
        assert np.all(trace >= 1.0 - 1e-12) and np.all(trace <= 8.0 + 1e-12)

    def test_poisson_trace_is_integral(self):
        trace = poisson_trace(100, mean=3.0, rng=2)
        np.testing.assert_allclose(trace, np.rint(trace))

    def test_constant_trace_validation(self):
        with pytest.raises(ValueError):
            constant_trace(5, level=-1.0)

    @given(T=st.integers(1, 200), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_diurnal_property(self, T, seed):
        trace = diurnal_trace(T, rng=seed)
        assert trace.shape == (T,) and np.all(trace >= 0)


class TestFleets:
    @pytest.mark.parametrize(
        "factory", [single_type_fleet, cpu_gpu_fleet, old_new_fleet, three_tier_fleet, load_independent_fleet]
    )
    def test_presets_are_valid(self, factory):
        fleet = factory()
        assert len(fleet) >= 1
        for st_ in fleet:
            assert st_.count >= 1
            assert st_.switching_cost > 0
            assert st_.capacity > 0
            assert st_.idle_cost >= 0

    def test_single_type_is_homogeneous(self):
        assert len(single_type_fleet()) == 1

    def test_three_tier_has_three_types(self):
        assert len(three_tier_fleet()) == 3

    def test_load_independent_fleet_is_constant_cost(self):
        fleet = load_independent_fleet(d=3)
        demand = np.zeros(4)
        inst = ProblemInstance(tuple(fleet), demand)
        assert inst.is_load_independent()

    def test_gpu_has_higher_capacity_and_switching_cost(self):
        cpu, gpu = cpu_gpu_fleet()
        assert gpu.capacity > cpu.capacity
        assert gpu.switching_cost > cpu.switching_cost

    def test_fleet_instance_clips_to_capacity(self):
        fleet = single_type_fleet(count=2)  # capacity 2
        inst = fleet_instance(fleet, np.array([1.0, 50.0, 0.5]), name="clipped")
        assert inst.is_feasible()
        assert inst.demand[1] <= 2.0 + 1e-9

    def test_fleet_instance_name(self):
        inst = fleet_instance(single_type_fleet(), np.ones(3), name="hello")
        assert inst.name == "hello"
