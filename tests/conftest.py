"""Shared fixtures for the test suite.

All fixtures build *small* instances: the reference solvers (exhaustive
enumeration, pairwise DP, SLSQP dispatch) that the fast implementations are
validated against only scale to a handful of servers and slots.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConstantCost,
    LinearCost,
    PowerCost,
    ProblemInstance,
    QuadraticCost,
    ServerType,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def two_type_fleet():
    """A small heterogeneous fleet: slow CPU-like and fast GPU-like servers."""
    return (
        ServerType(
            name="cpu",
            count=3,
            switching_cost=4.0,
            capacity=1.0,
            cost_function=QuadraticCost(idle=0.5, a=0.2, b=1.0),
        ),
        ServerType(
            name="gpu",
            count=2,
            switching_cost=9.0,
            capacity=4.0,
            cost_function=LinearCost(idle=1.5, slope=0.4),
        ),
    )


@pytest.fixture
def small_instance(two_type_fleet):
    """Six slots, d=2; small enough for brute-force cross-checks."""
    demand = np.array([0.5, 2.0, 5.0, 1.0, 0.0, 3.0])
    return ProblemInstance(two_type_fleet, demand, name="small")


@pytest.fixture
def linear_instance():
    """All-linear operating costs so the MILP formulation applies exactly."""
    types = (
        ServerType("a", count=3, switching_cost=4.0, capacity=1.0, cost_function=LinearCost(idle=0.5, slope=0.7)),
        ServerType("b", count=2, switching_cost=9.0, capacity=4.0, cost_function=LinearCost(idle=1.5, slope=0.4)),
    )
    demand = np.array([0.5, 2.0, 5.0, 1.0, 0.0, 3.0])
    return ProblemInstance(types, demand, name="linear")


@pytest.fixture
def homogeneous_instance():
    """Single-type instance (d = 1) used by the LCP and homogeneous comparisons."""
    types = (
        ServerType("std", count=5, switching_cost=6.0, capacity=1.0, cost_function=QuadraticCost(idle=1.0, a=0.5, b=1.0)),
    )
    demand = np.array([0.0, 1.0, 3.0, 4.5, 2.0, 0.5, 0.0, 2.5])
    return ProblemInstance(types, demand, name="homogeneous")


@pytest.fixture
def load_independent_instance():
    """Load- and time-independent operating costs — the regime of Corollary 9."""
    types = (
        ServerType("cheap-run", count=3, switching_cost=8.0, capacity=1.0, cost_function=ConstantCost(level=1.0)),
        ServerType("cheap-start", count=3, switching_cost=2.0, capacity=1.0, cost_function=ConstantCost(level=2.5)),
    )
    demand = np.array([1.0, 2.0, 0.0, 0.0, 3.0, 1.0, 0.0, 2.0])
    return ProblemInstance(types, demand, name="load-independent")


@pytest.fixture
def time_dependent_instance(two_type_fleet):
    """Time-dependent operating costs via a price profile (Section 3 setting)."""
    demand = np.array([0.5, 2.0, 5.0, 1.0, 0.0, 3.0])
    base = ProblemInstance(two_type_fleet, demand, name="time-dependent")
    prices = 1.0 + 0.5 * np.sin(np.linspace(0.0, 2.0 * np.pi, len(demand)))
    return base.with_price_profile(prices)


def random_instance(rng: np.random.Generator, T: int = 5, d: int = 2, max_servers: int = 3) -> ProblemInstance:
    """A random small instance used by the property-based / fuzz tests."""
    families = [
        lambda r: LinearCost(idle=float(r.uniform(0.1, 2.0)), slope=float(r.uniform(0.0, 2.0))),
        lambda r: QuadraticCost(idle=float(r.uniform(0.1, 2.0)), a=float(r.uniform(0.0, 1.0)), b=float(r.uniform(0.1, 1.5))),
        lambda r: ConstantCost(level=float(r.uniform(0.2, 2.0))),
        lambda r: PowerCost(idle=float(r.uniform(0.1, 1.5)), coef=float(r.uniform(0.1, 1.0)), exponent=float(r.uniform(1.0, 3.0))),
    ]
    types = []
    for j in range(d):
        family = families[int(rng.integers(0, len(families)))]
        types.append(
            ServerType(
                name=f"t{j}",
                count=int(rng.integers(1, max_servers + 1)),
                switching_cost=float(rng.uniform(0.5, 10.0)),
                capacity=float(rng.choice([1.0, 2.0, 4.0])),
                cost_function=family(rng),
            )
        )
    capacity = sum(st.count * st.capacity for st in types)
    demand = rng.uniform(0.0, capacity, size=T)
    # sprinkle idle slots so power-down decisions matter
    idle_slots = rng.random(T) < 0.3
    demand[idle_slots] = 0.0
    return ProblemInstance(tuple(types), demand, name=f"random-{rng.integers(1_000_000)}")
