"""Tests for the MILP cross-check and the fractional/tangent lower bounds."""

import numpy as np
import pytest

from repro import (
    ConstantCost,
    LinearCost,
    PowerCost,
    ProblemInstance,
    QuadraticCost,
    ServerType,
    solve_milp,
    solve_optimal,
)
from repro.core.cost_functions import ScaledCost, ShiftedCost
from repro.offline import convex_lower_bound, is_linear_instance, solve_lp_relaxation
from repro.offline.milp import linear_coefficients

from conftest import random_instance


class TestLinearCoefficients:
    def test_constant(self):
        assert linear_coefficients(ConstantCost(2.0)) == (2.0, 0.0)

    def test_linear(self):
        assert linear_coefficients(LinearCost(idle=1.0, slope=3.0)) == (1.0, 3.0)

    def test_degenerate_quadratic(self):
        assert linear_coefficients(QuadraticCost(idle=1.0, a=2.0, b=0.0)) == (1.0, 2.0)

    def test_genuine_quadratic_is_not_linear(self):
        assert linear_coefficients(QuadraticCost(idle=1.0, a=2.0, b=1.0)) is None

    def test_power_is_not_linear(self):
        assert linear_coefficients(PowerCost(idle=1.0, coef=1.0, exponent=2.0)) is None

    def test_scaled_and_shifted(self):
        f = ShiftedCost(ScaledCost(LinearCost(idle=1.0, slope=2.0), 0.5), 3.0)
        assert linear_coefficients(f) == (3.5, 1.0)

    def test_is_linear_instance(self, linear_instance, small_instance):
        assert is_linear_instance(linear_instance)
        assert not is_linear_instance(small_instance)


class TestMilp:
    def test_matches_dp_on_linear_instance(self, linear_instance):
        milp = solve_milp(linear_instance)
        dp = solve_optimal(linear_instance)
        assert milp.status == "optimal"
        assert milp.cost == pytest.approx(dp.cost, rel=1e-6)
        assert milp.schedule.is_feasible(linear_instance)

    def test_matches_dp_on_load_independent_instance(self, load_independent_instance):
        milp = solve_milp(load_independent_instance)
        dp = solve_optimal(load_independent_instance)
        assert milp.cost == pytest.approx(dp.cost, rel=1e-6)

    def test_rejects_nonlinear_costs(self, small_instance):
        with pytest.raises(ValueError):
            solve_milp(small_instance)

    def test_lp_relaxation_is_lower_bound(self, linear_instance):
        lp = solve_lp_relaxation(linear_instance)
        milp = solve_milp(linear_instance)
        assert lp.cost <= milp.cost + 1e-6
        assert lp.schedule is None  # fractional solution carries no integral schedule

    def test_time_dependent_linear_costs(self, linear_instance):
        prices = np.linspace(1.0, 2.0, linear_instance.T)
        inst = linear_instance.with_price_profile(prices)
        milp = solve_milp(inst)
        dp = solve_optimal(inst)
        assert milp.cost == pytest.approx(dp.cost, rel=1e-6)

    def test_time_varying_counts(self, linear_instance):
        counts = np.tile(linear_instance.m, (linear_instance.T, 1))
        counts[2] = [3, 1]
        inst = linear_instance.with_counts(counts)
        milp = solve_milp(inst)
        dp = solve_optimal(inst)
        assert milp.cost == pytest.approx(dp.cost, rel=1e-6)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_linear_instances(self, seed):
        rng = np.random.default_rng(5000 + seed)
        types = tuple(
            ServerType(
                name=f"t{j}",
                count=int(rng.integers(1, 4)),
                switching_cost=float(rng.uniform(0.5, 8.0)),
                capacity=float(rng.choice([1.0, 2.0])),
                cost_function=LinearCost(idle=float(rng.uniform(0.1, 2.0)), slope=float(rng.uniform(0.0, 2.0))),
            )
            for j in range(2)
        )
        capacity = sum(st.count * st.capacity for st in types)
        demand = rng.uniform(0.0, capacity, size=5)
        inst = ProblemInstance(types, demand)
        assert solve_milp(inst).cost == pytest.approx(solve_optimal(inst).cost, rel=1e-5, abs=1e-6)


class TestConvexLowerBound:
    def test_lower_bound_below_optimum(self, small_instance):
        bound = convex_lower_bound(small_instance, n_tangents=8)
        opt = solve_optimal(small_instance, return_schedule=False).cost
        assert bound.is_valid
        assert bound.value <= opt + 1e-6

    def test_equals_lp_relaxation_for_linear_costs(self, linear_instance):
        bound = convex_lower_bound(linear_instance, n_tangents=4)
        lp = solve_lp_relaxation(linear_instance)
        assert bound.value == pytest.approx(lp.cost, rel=1e-5)

    def test_more_tangents_tighten_the_bound(self, small_instance):
        loose = convex_lower_bound(small_instance, n_tangents=2).value
        tight = convex_lower_bound(small_instance, n_tangents=12).value
        assert tight >= loose - 1e-7

    def test_empty_instance(self, two_type_fleet):
        inst = ProblemInstance(two_type_fleet, np.zeros(0))
        assert convex_lower_bound(inst).value == 0.0

    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances_lower_bound(self, seed):
        rng = np.random.default_rng(6000 + seed)
        inst = random_instance(rng, T=4, d=2, max_servers=3)
        bound = convex_lower_bound(inst, n_tangents=6)
        opt = solve_optimal(inst, return_schedule=False).cost
        assert bound.value <= opt + 1e-5

    def test_fractional_servers_cover_demand(self, small_instance):
        bound = convex_lower_bound(small_instance, n_tangents=6)
        np.testing.assert_allclose(bound.loads.sum(axis=1), small_instance.demand, atol=1e-5)
