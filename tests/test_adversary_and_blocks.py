"""Tests for the adversarial constructions and the block decomposition helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConstantCost, ServerType, run_online, solve_optimal
from repro.online import AlgorithmA
from repro.online.adversary import (
    convex_chasing_game,
    greedy_cube_strategy,
    rounding_pathology,
    ski_rental_instance,
    ski_rental_trace,
)
from repro.online.blocks import (
    Block,
    block_index_sets,
    blocks_from_power_ups,
    special_slots,
    verify_partition,
)


class TestBlocks:
    def test_block_basics(self):
        b = Block(2, 5)
        assert b.length == 4
        assert 2 in b and 5 in b and 6 not in b
        with pytest.raises(ValueError):
            Block(3, 2)

    def test_blocks_from_power_ups(self):
        blocks = blocks_from_power_ups([0, 3, 3], [2, 4, 4], horizon=6)
        assert blocks == [Block(0, 1), Block(3, 5), Block(3, 5)]

    def test_horizon_clipping(self):
        blocks = blocks_from_power_ups([4], [10], horizon=6)
        assert blocks == [Block(4, 5)]

    def test_validation(self):
        with pytest.raises(ValueError):
            blocks_from_power_ups([0, 1], [2])
        with pytest.raises(ValueError):
            blocks_from_power_ups([0], [0])

    def test_special_slots_figure2_structure(self):
        """Figure 2: seven blocks whose index sets are {1,2}, {3,4}, {5,6,7} (1-based)."""
        # Construct equal-length blocks (bar_t = 4) at power-up slots chosen so the
        # reverse construction groups them as in the figure.
        starts = [0, 1, 5, 6, 10, 11, 12]
        blocks = blocks_from_power_ups(starts, [4] * len(starts))
        taus = special_slots(blocks)
        assert len(taus) == 3
        sets = block_index_sets(blocks)
        assert [sorted(s) for s in sets] == [[0, 1], [2, 3], [4, 5, 6]]
        assert verify_partition(blocks)

    def test_special_slots_spacing_for_equal_length_blocks(self):
        blocks = blocks_from_power_ups([0, 2, 3, 9, 15, 16], [5] * 6)
        taus = special_slots(blocks)
        assert all(b - a >= 5 for a, b in zip(taus, taus[1:]))

    def test_empty_blocks(self):
        assert special_slots([]) == []
        assert block_index_sets([]) == []

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_every_block_contains_at_least_one_special_slot(self, data):
        """Every block contains >= 1 special slot; with monotone ends, exactly one."""
        n = data.draw(st.integers(1, 10))
        starts = sorted(data.draw(st.lists(st.integers(0, 30), min_size=n, max_size=n)))
        length = data.draw(st.integers(1, 8))
        blocks = blocks_from_power_ups(starts, [length] * n)
        taus = special_slots(blocks)
        for b in blocks:
            assert any(tau in b for tau in taus)
        assert verify_partition(blocks)  # equal lengths -> monotone ends -> exactly one


class TestConvexChasingLowerBound:
    def test_game_structure(self):
        g = convex_chasing_game(3)
        assert g.penalised_positions.shape == (7, 3)
        assert g.online_positions.shape == (8, 3)
        # the online algorithm never sits on the penalised position
        for pos, forbidden in zip(g.online_positions[1:], g.penalised_positions):
            assert not np.array_equal(pos, forbidden)

    def test_offline_cost_at_most_d(self):
        for d in (2, 3, 4, 5):
            g = convex_chasing_game(d)
            assert g.offline_cost <= d + 1e-9

    def test_ratio_grows_with_dimension(self):
        ratios = [convex_chasing_game(d).ratio for d in (2, 3, 4, 5)]
        assert ratios == sorted(ratios)
        assert ratios[-1] >= 2 ** 5 / (2 * 5)  # Omega(2^d / d)

    def test_custom_steps(self):
        g = convex_chasing_game(3, steps=3)
        assert g.penalised_positions.shape == (3, 3)

    def test_greedy_strategy_always_escapes(self):
        current = (1, 0, 1)
        nxt = greedy_cube_strategy(current, current)
        assert nxt != current

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            convex_chasing_game(0)


class TestSkiRental:
    def test_trace_structure(self):
        trace = ski_rental_trace(break_even_slots=4, n_cycles=3, burst_height=2.0)
        assert len(trace) == 3 * 5
        assert trace[0] == 2.0
        assert np.all(trace[1:5] == 0.0)

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            ski_rental_trace(0, 3)
        with pytest.raises(ValueError):
            ski_rental_trace(3, 0)

    def test_instance_targets_break_even(self):
        st_ = ServerType("victim", count=2, switching_cost=6.0, capacity=1.0,
                         cost_function=ConstantCost(level=2.0))
        inst = ski_rental_instance(st_, n_cycles=5)
        assert inst.T == 5 * (1 + 3)  # break-even = 3
        assert inst.is_feasible()

    def test_instance_requires_positive_idle_cost(self):
        st_ = ServerType("never-off", count=1, switching_cost=6.0, capacity=1.0,
                         cost_function=ConstantCost(level=0.0))
        with pytest.raises(ValueError):
            ski_rental_instance(st_)

    def test_adversarial_trace_stresses_algorithm_a(self):
        """On the ski-rental trace Algorithm A's ratio is noticeably above 1
        (the adversarial gap forces it to waste either idle energy or switching cost),
        while still respecting the 2d+1 guarantee."""
        st_ = ServerType("victim", count=1, switching_cost=6.0, capacity=1.0,
                         cost_function=ConstantCost(level=2.0))
        inst = ski_rental_instance(st_, n_cycles=8)
        opt = solve_optimal(inst, return_schedule=False).cost
        result = run_online(inst, AlgorithmA())
        ratio = result.cost / opt
        assert 1.1 <= ratio <= 2 * inst.d + 1 + 1e-9


class TestRoundingPathology:
    def test_blowup_scales_inversely_with_delta(self):
        mild = rounding_pathology(T=100, delta=0.5)
        severe = rounding_pathology(T=100, delta=0.01)
        assert severe["blowup"] > mild["blowup"]
        assert severe["blowup"] > 10

    def test_fractional_and_rounded_schedules(self):
        out = rounding_pathology(T=10, delta=0.25)
        assert np.all(out["rounded_schedule"] >= out["fractional_schedule"] - 1e-12)
        assert out["rounded_switching_cost"] >= out["fractional_switching_cost"]

    def test_validation(self):
        with pytest.raises(ValueError):
            rounding_pathology(T=1)
        with pytest.raises(ValueError):
            rounding_pathology(T=10, delta=1.5)
