"""Tests for the command-line interface (``python -m repro ...``)."""

import io
from contextlib import redirect_stdout

import numpy as np
import pytest

from repro.cli import FLEETS, ONLINE_ALGORITHMS, TRACES, build_parser, main


def run_cli(*argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(list(argv))
    return code, buffer.getvalue()


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_fleets_and_traces(self):
        assert {"single", "cpu-gpu", "old-new", "three-tier", "load-independent"} == set(FLEETS)
        assert {"diurnal", "bursty", "mmpp", "spikes", "constant", "random-walk"} == set(TRACES)
        assert {"A", "B", "C", "reactive", "follow-demand", "all-on", "lcp"} == set(ONLINE_ALGORITHMS)

    def test_invalid_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--fleet", "nonsense"])


class TestErgonomics:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out

    def test_unknown_command_lists_available_commands(self, capsys):
        from repro.cli import COMMANDS

        code = main(["frobnicate"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown command 'frobnicate'" in err
        for command in COMMANDS:
            assert command in err

    def test_commands_tuple_matches_parser(self):
        from repro.cli import COMMANDS

        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, type(parser._subparsers._group_actions[0]))
        )
        assert set(COMMANDS) == set(subparsers.choices)

    def test_known_command_still_parses(self):
        code, out = run_cli("trace", "--trace", "constant", "--slots", "3")
        assert code == 0
        assert len(out.split()) == 3


class TestTraceCommand:
    def test_prints_requested_number_of_values(self):
        code, out = run_cli("trace", "--trace", "diurnal", "--slots", "12", "--seed", "3")
        assert code == 0
        values = [float(v) for v in out.split()]
        assert len(values) == 12
        assert all(v >= 0 for v in values)

    def test_writes_to_file(self, tmp_path):
        target = tmp_path / "trace.csv"
        code, out = run_cli("trace", "--trace", "constant", "--slots", "5", "--out", str(target))
        assert code == 0
        assert target.exists()
        assert len(target.read_text().split()) == 5
        assert "wrote 5 slots" in out


class TestSolveCommand:
    def test_exact_solve(self):
        code, out = run_cli("solve", "--fleet", "cpu-gpu", "--trace", "diurnal", "--slots", "12")
        assert code == 0
        assert "offline solution" in out
        assert "exact optimum" in out

    def test_approximate_solve(self):
        code, out = run_cli(
            "solve", "--fleet", "cpu-gpu", "--trace", "diurnal", "--slots", "12", "--epsilon", "0.5"
        )
        assert code == 0
        assert "approximation" in out
        assert "1.5" in out  # the printed guarantee

    def test_schedule_csv_output(self):
        code, out = run_cli(
            "solve", "--fleet", "single", "--trace", "constant", "--slots", "6", "--schedule-csv"
        )
        assert code == 0
        assert "slot,demand" in out

    def test_demand_file(self, tmp_path):
        demand_file = tmp_path / "demand.csv"
        demand_file.write_text("1.0\n2.0\n0.0\n3.0\n")
        code, out = run_cli("solve", "--fleet", "single", "--demand-file", str(demand_file))
        assert code == 0
        assert "T=4" in out

    def test_empty_demand_file_rejected(self, tmp_path):
        demand_file = tmp_path / "demand.csv"
        demand_file.write_text("\n")
        with pytest.raises(SystemExit):
            run_cli("solve", "--fleet", "single", "--demand-file", str(demand_file))


class TestOnlineCommand:
    @pytest.mark.parametrize("algorithm", ["A", "B", "reactive", "all-on"])
    def test_algorithms_run(self, algorithm):
        code, out = run_cli(
            "online", "--fleet", "cpu-gpu", "--trace", "bursty", "--slots", "10",
            "--algorithm", algorithm, "--seed", "1",
        )
        assert code == 0
        assert "online run" in out
        assert "ratio" in out

    def test_algorithm_c_with_prices(self):
        code, out = run_cli(
            "online", "--fleet", "old-new", "--trace", "diurnal", "--slots", "10",
            "--algorithm", "C", "--epsilon", "0.5", "--price-amplitude", "0.4",
        )
        assert code == 0
        assert "algorithm-C" in out
        assert "proven_bound" in out

    def test_bound_column_only_for_paper_algorithms(self):
        code, out = run_cli(
            "online", "--fleet", "cpu-gpu", "--trace", "constant", "--slots", "6",
            "--algorithm", "reactive",
        )
        assert code == 0
        assert "proven_bound" not in out


class TestCompareCommand:
    def test_heterogeneous_comparison(self):
        code, out = run_cli("compare", "--fleet", "cpu-gpu", "--trace", "diurnal", "--slots", "10")
        assert code == 0
        assert "algorithm comparison" in out
        assert "algorithm-A" in out and "all-on" in out
        assert "offline optimum" in out

    def test_homogeneous_comparison_includes_lcp(self):
        code, out = run_cli("compare", "--fleet", "single", "--trace", "diurnal", "--slots", "10")
        assert code == 0
        assert "LCP" in out


class TestSweepCommand:
    def test_single_scenario_sweep(self):
        code, out = run_cli(
            "sweep", "--fleet", "cpu-gpu", "--trace", "diurnal", "--slots", "10",
            "--algorithms", "A,B",
        )
        assert code == 0
        assert "shared-context sweep" in out
        assert "algorithm-A" in out and "algorithm-B" in out

    def test_multi_seed_sweep_writes_json(self, tmp_path):
        import json

        target = tmp_path / "sweep.json"
        code, out = run_cli(
            "sweep", "--fleet", "cpu-gpu", "--trace", "diurnal", "--slots", "8",
            "--seeds", "0,1", "--algorithms", "A", "--json", str(target),
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert len(payload["rows"]) == 2
        assert {row["instance"] for row in payload["rows"]} == {
            "cpu-gpu/diurnal/seed0", "cpu-gpu/diurnal/seed1",
        }

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("sweep", "--slots", "8", "--algorithms", "nonsense")


class TestServeCommand:
    def test_replay_with_checkpoint_and_verify(self, tmp_path):
        import json

        telemetry = tmp_path / "telemetry.jsonl"
        code, out = run_cli(
            "serve", "replay", "--scenario", "homogeneous", "--param", "T=10",
            "--checkpoint-at", "5", "--verify", "--telemetry", str(telemetry),
        )
        assert code == 0
        assert "checkpoint/restore round-trip at tick 5" in out
        assert "verified: streamed schedule == batch run_online" in out
        rows = [json.loads(line) for line in telemetry.read_text().splitlines()]
        assert len(rows) == 10
        assert rows[-1]["t"] == 9 and rows[-1]["cumulative_cost"] > 0

    def test_replay_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            run_cli("serve", "replay", "--scenario", "nonsense")

    def test_bench_writes_json(self, tmp_path):
        import json

        target = tmp_path / "BENCH_serve.json"
        code, out = run_cli(
            "serve", "bench", "--tenants", "1,3", "--ticks", "8", "--json", str(target),
        )
        assert code == 0
        assert "serve bench" in out
        payload = json.loads(target.read_text())
        assert payload["tenant_counts"] == [1, 3]
        three = next(r for r in payload["comparisons"] if r["tenants"] == 3)
        assert three["unique_solves_shared"] < three["unique_solves_isolated"]

    def test_smoke_gate_runs_every_family(self):
        from repro import scenarios

        code, out = run_cli("serve", "smoke")
        assert code == 0
        assert "serve smoke" in out
        for name in scenarios.names():
            assert name in out
        assert "replay equivalently" in out
