"""Tests for the command-line interface (``python -m repro ...``)."""

import io
from contextlib import redirect_stdout

import numpy as np
import pytest

from repro.cli import FLEETS, ONLINE_ALGORITHMS, TRACES, build_parser, main


def run_cli(*argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(list(argv))
    return code, buffer.getvalue()


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_fleets_and_traces(self):
        assert {"single", "cpu-gpu", "old-new", "three-tier", "load-independent"} == set(FLEETS)
        assert {"diurnal", "bursty", "mmpp", "spikes", "constant", "random-walk"} == set(TRACES)
        assert {"A", "B", "C", "reactive", "follow-demand", "all-on", "lcp"} == set(ONLINE_ALGORITHMS)

    def test_invalid_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--fleet", "nonsense"])


class TestTraceCommand:
    def test_prints_requested_number_of_values(self):
        code, out = run_cli("trace", "--trace", "diurnal", "--slots", "12", "--seed", "3")
        assert code == 0
        values = [float(v) for v in out.split()]
        assert len(values) == 12
        assert all(v >= 0 for v in values)

    def test_writes_to_file(self, tmp_path):
        target = tmp_path / "trace.csv"
        code, out = run_cli("trace", "--trace", "constant", "--slots", "5", "--out", str(target))
        assert code == 0
        assert target.exists()
        assert len(target.read_text().split()) == 5
        assert "wrote 5 slots" in out


class TestSolveCommand:
    def test_exact_solve(self):
        code, out = run_cli("solve", "--fleet", "cpu-gpu", "--trace", "diurnal", "--slots", "12")
        assert code == 0
        assert "offline solution" in out
        assert "exact optimum" in out

    def test_approximate_solve(self):
        code, out = run_cli(
            "solve", "--fleet", "cpu-gpu", "--trace", "diurnal", "--slots", "12", "--epsilon", "0.5"
        )
        assert code == 0
        assert "approximation" in out
        assert "1.5" in out  # the printed guarantee

    def test_schedule_csv_output(self):
        code, out = run_cli(
            "solve", "--fleet", "single", "--trace", "constant", "--slots", "6", "--schedule-csv"
        )
        assert code == 0
        assert "slot,demand" in out

    def test_demand_file(self, tmp_path):
        demand_file = tmp_path / "demand.csv"
        demand_file.write_text("1.0\n2.0\n0.0\n3.0\n")
        code, out = run_cli("solve", "--fleet", "single", "--demand-file", str(demand_file))
        assert code == 0
        assert "T=4" in out

    def test_empty_demand_file_rejected(self, tmp_path):
        demand_file = tmp_path / "demand.csv"
        demand_file.write_text("\n")
        with pytest.raises(SystemExit):
            run_cli("solve", "--fleet", "single", "--demand-file", str(demand_file))


class TestOnlineCommand:
    @pytest.mark.parametrize("algorithm", ["A", "B", "reactive", "all-on"])
    def test_algorithms_run(self, algorithm):
        code, out = run_cli(
            "online", "--fleet", "cpu-gpu", "--trace", "bursty", "--slots", "10",
            "--algorithm", algorithm, "--seed", "1",
        )
        assert code == 0
        assert "online run" in out
        assert "ratio" in out

    def test_algorithm_c_with_prices(self):
        code, out = run_cli(
            "online", "--fleet", "old-new", "--trace", "diurnal", "--slots", "10",
            "--algorithm", "C", "--epsilon", "0.5", "--price-amplitude", "0.4",
        )
        assert code == 0
        assert "algorithm-C" in out
        assert "proven_bound" in out

    def test_bound_column_only_for_paper_algorithms(self):
        code, out = run_cli(
            "online", "--fleet", "cpu-gpu", "--trace", "constant", "--slots", "6",
            "--algorithm", "reactive",
        )
        assert code == 0
        assert "proven_bound" not in out


class TestCompareCommand:
    def test_heterogeneous_comparison(self):
        code, out = run_cli("compare", "--fleet", "cpu-gpu", "--trace", "diurnal", "--slots", "10")
        assert code == 0
        assert "algorithm comparison" in out
        assert "algorithm-A" in out and "all-on" in out
        assert "offline optimum" in out

    def test_homogeneous_comparison_includes_lcp(self):
        code, out = run_cli("compare", "--fleet", "single", "--trace", "diurnal", "--slots", "10")
        assert code == 0
        assert "LCP" in out


class TestSweepCommand:
    def test_single_scenario_sweep(self):
        code, out = run_cli(
            "sweep", "--fleet", "cpu-gpu", "--trace", "diurnal", "--slots", "10",
            "--algorithms", "A,B",
        )
        assert code == 0
        assert "shared-context sweep" in out
        assert "algorithm-A" in out and "algorithm-B" in out

    def test_multi_seed_sweep_writes_json(self, tmp_path):
        import json

        target = tmp_path / "sweep.json"
        code, out = run_cli(
            "sweep", "--fleet", "cpu-gpu", "--trace", "diurnal", "--slots", "8",
            "--seeds", "0,1", "--algorithms", "A", "--json", str(target),
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert len(payload["rows"]) == 2
        assert {row["instance"] for row in payload["rows"]} == {
            "cpu-gpu/diurnal/seed0", "cpu-gpu/diurnal/seed1",
        }

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("sweep", "--slots", "8", "--algorithms", "nonsense")
