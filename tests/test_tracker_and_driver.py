"""Tests for the prefix-optimum trackers and the online driver."""

import numpy as np
import pytest

from repro import ProblemInstance, Schedule, ServerType, ConstantCost, run_online, solve_optimal
from repro.dispatch import DispatchSolver
from repro.online import (
    DPPrefixTracker,
    FixedSequenceTracker,
    OnlineAlgorithm,
    OnlineContext,
    SlotInfo,
)
from repro.online.base import OnlineRunResult

from conftest import random_instance


def drive_tracker(instance, tracker):
    """Feed an instance slot-by-slot into a tracker and collect the prefix optima."""
    dispatcher = DispatchSolver(instance)
    tracker.reset()
    outputs = []
    costs = []
    for t in range(instance.T):
        def evaluator(batch, _t=t):
            c, _ = dispatcher.solve_grid(_t, batch)
            return c

        slot = SlotInfo(
            t=t,
            demand=float(instance.demand[t]),
            cost_functions=instance.cost_row(t),
            counts=instance.counts_at(t),
            beta=instance.beta,
            zmax=instance.zmax,
            _evaluator=evaluator,
        )
        outputs.append(np.array(tracker.observe(slot)))
        costs.append(tracker.prefix_optimum_cost())
    return np.array(outputs), np.array(costs)


class TestDPPrefixTracker:
    def test_prefix_costs_match_offline_solver(self, small_instance):
        _, costs = drive_tracker(small_instance, DPPrefixTracker())
        for t in range(small_instance.T):
            expected = solve_optimal(small_instance.prefix(t + 1), return_schedule=False).cost
            assert costs[t] == pytest.approx(expected, rel=1e-6)

    def test_last_configuration_is_optimal_end_state(self, small_instance):
        """The reported x_hat must be the final configuration of *some* optimal prefix schedule."""
        outputs, costs = drive_tracker(small_instance, DPPrefixTracker())
        for t in range(small_instance.T):
            prefix = small_instance.prefix(t + 1)
            res = solve_optimal(prefix, keep_tables=True)
            table = res.value_tables[-1]
            grid = res.grids[-1]
            idx = grid.index_of(outputs[t])
            assert table[idx] == pytest.approx(costs[t], rel=1e-6)

    def test_tie_break_smallest_vs_largest(self, load_independent_instance):
        small_out, small_costs = drive_tracker(
            load_independent_instance, DPPrefixTracker(tie_break="smallest")
        )
        large_out, large_costs = drive_tracker(
            load_independent_instance, DPPrefixTracker(tie_break="largest")
        )
        # both report the same optimal prefix costs; the reported end states are
        # lexicographically ordered (they may be incomparable componentwise)
        np.testing.assert_allclose(small_costs, large_costs, rtol=1e-9)
        for s, l in zip(small_out, large_out):
            assert tuple(s) <= tuple(l)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DPPrefixTracker(gamma=1.0)
        with pytest.raises(ValueError):
            DPPrefixTracker(tie_break="middle")

    def test_reduced_grid_tracker_costs_are_upper_bounds(self, small_instance):
        _, exact_costs = drive_tracker(small_instance, DPPrefixTracker())
        _, approx_costs = drive_tracker(small_instance, DPPrefixTracker(gamma=2.0))
        assert np.all(approx_costs >= exact_costs - 1e-6)
        assert np.all(approx_costs <= 3.0 * exact_costs + 1e-6)  # 2*gamma - 1

    def test_reset_forgets_history(self, small_instance):
        tracker = DPPrefixTracker()
        first, _ = drive_tracker(small_instance, tracker)
        second, _ = drive_tracker(small_instance, tracker)  # drive_tracker resets
        np.testing.assert_array_equal(first, second)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances_prefix_costs(self, seed):
        rng = np.random.default_rng(7000 + seed)
        inst = random_instance(rng, T=5, d=2, max_servers=3)
        _, costs = drive_tracker(inst, DPPrefixTracker())
        for t in range(inst.T):
            expected = solve_optimal(inst.prefix(t + 1), return_schedule=False).cost
            assert costs[t] == pytest.approx(expected, rel=1e-6)

    def test_time_dependent_costs(self, time_dependent_instance):
        _, costs = drive_tracker(time_dependent_instance, DPPrefixTracker())
        for t in (0, time_dependent_instance.T - 1):
            expected = solve_optimal(time_dependent_instance.prefix(t + 1), return_schedule=False).cost
            assert costs[t] == pytest.approx(expected, rel=1e-6)


class TestFixedSequenceTracker:
    def test_replays_sequence(self, small_instance):
        seq = np.array([[1, 0], [2, 1], [3, 1], [1, 0], [0, 0], [2, 1]])
        outputs, _ = drive_tracker(small_instance, FixedSequenceTracker(seq))
        np.testing.assert_array_equal(outputs, seq)

    def test_runs_out_of_values(self, small_instance):
        tracker = FixedSequenceTracker(np.zeros((2, 2), dtype=int))
        with pytest.raises(IndexError):
            drive_tracker(small_instance, tracker)

    def test_dimension_mismatch(self, small_instance):
        tracker = FixedSequenceTracker(np.zeros((6, 3), dtype=int))
        with pytest.raises(ValueError):
            drive_tracker(small_instance, tracker)

    def test_one_dimensional_shorthand(self, homogeneous_instance):
        tracker = FixedSequenceTracker([0, 1, 2, 3, 2, 1, 0, 1])
        outputs, _ = drive_tracker(homogeneous_instance, tracker)
        assert outputs.shape == (8, 1)

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            FixedSequenceTracker([[-1, 0]])


# --------------------------------------------------------------------------- #
# Online driver
# --------------------------------------------------------------------------- #


class _FixedAlgorithm(OnlineAlgorithm):
    """Test helper returning a pre-defined schedule row by row."""

    name = "fixed"

    def __init__(self, rows):
        self.rows = np.asarray(rows)
        self._cursor = 0

    def start(self, context):
        self._cursor = 0

    def step(self, slot):
        row = self.rows[self._cursor]
        self._cursor += 1
        return row


class TestOnlineDriver:
    def test_runs_and_evaluates(self, small_instance):
        rows = [[1, 0], [2, 0], [1, 1], [1, 0], [0, 0], [3, 0]]
        result = run_online(small_instance, _FixedAlgorithm(rows))
        assert isinstance(result, OnlineRunResult)
        assert result.schedule.same_as(Schedule.from_rows(rows))
        assert result.cost == pytest.approx(result.breakdown.total)
        assert result.summary()["algorithm"] == "fixed"

    def test_rejects_overscaled_configuration(self, small_instance):
        rows = [[4, 0]] + [[0, 0]] * 5
        with pytest.raises(ValueError):
            run_online(small_instance, _FixedAlgorithm(rows))

    def test_rejects_fractional_configuration(self, small_instance):
        rows = [[0.5, 0]] + [[0, 0]] * 5
        with pytest.raises(ValueError):
            run_online(small_instance, _FixedAlgorithm(rows))

    def test_rejects_wrong_shape(self, small_instance):
        rows = [[1, 0, 0]] + [[0, 0, 0]] * 5
        with pytest.raises(ValueError):
            run_online(small_instance, _FixedAlgorithm(rows))

    def test_slot_info_exposes_current_slot_only(self, small_instance):
        seen = []

        class Recorder(OnlineAlgorithm):
            name = "recorder"

            def step(self, slot):
                seen.append((slot.t, slot.demand, len(slot.cost_functions)))
                return np.array(slot.counts)

        run_online(small_instance, Recorder())
        assert [s[0] for s in seen] == list(range(small_instance.T))
        np.testing.assert_allclose([s[1] for s in seen], small_instance.demand)
        assert all(s[2] == small_instance.d for s in seen)

    def test_slot_operating_cost_single_and_batch(self, small_instance):
        captured = {}

        class Prober(OnlineAlgorithm):
            name = "prober"

            def step(self, slot):
                captured.setdefault("single", slot.operating_cost(np.array(slot.counts)))
                captured.setdefault("batch", slot.operating_cost(np.array([slot.counts, slot.counts])))
                return np.array(slot.counts)

        run_online(small_instance, Prober())
        assert isinstance(captured["single"], float)
        assert captured["batch"].shape == (2,)
        assert captured["batch"][0] == pytest.approx(captured["single"])

    def test_scaled_slot_info(self, small_instance):
        class ScaleProbe(OnlineAlgorithm):
            name = "scale"
            observed = None

            def step(self, slot):
                scaled = slot.with_scaled_costs(0.5)
                ScaleProbe.observed = (
                    slot.operating_cost(np.array(slot.counts)),
                    scaled.operating_cost(np.array(slot.counts)),
                    scaled.idle_costs(),
                    slot.idle_costs(),
                )
                return np.array(slot.counts)

        run_online(small_instance.prefix(1), ScaleProbe())
        full, half, idle_half, idle_full = ScaleProbe.observed
        assert half == pytest.approx(0.5 * full)
        np.testing.assert_allclose(idle_half, 0.5 * idle_full)
