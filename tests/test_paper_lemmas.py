"""Empirical checks of the paper's analysis lemmas.

The competitive proofs of Sections 2 and 3 rest on a handful of per-slot and
per-block inequalities.  These tests verify each of them *as stated* on
concrete instances (small enough that the exact prefix optima can be recomputed
from scratch), which both validates the implementation and documents how the
analysis maps onto code:

* Lemma 1 / Lemma 10 — feasibility of X^A and X^B (also covered in the
  algorithm test modules; repeated here against freshly solved prefixes).
* Lemma 2 — Jensen: splitting a type's volume equally over its servers is optimal.
* Lemma 4 — the load-dependent operating cost of the online schedule is at most
  that of the prefix-optimal schedule, slot by slot and type by type.
* Lemma 5 — the total load-dependent cost of the online schedule is at most
  C(X̂^T), the optimal cost of the full instance.
* Lemma 6 / Lemma 11 — the switching + idle cost of a single block is at most
  2·min(β_j + f_j(0), ¯t_j·f_j(0)) resp. 2β_j + max_t l_{t,j}.
* Lemma 7 / Lemma 12 — summed over all blocks of one type, the switching + idle
  cost is at most 2·C(X̂^T) resp. (2 + max_t l_{t,j}/β_j)·C(X̂^T).
"""

import numpy as np
import pytest

from repro import evaluate_schedule, run_online, solve_optimal
from repro.dispatch import DispatchSolver
from repro.online import AlgorithmA, AlgorithmB

from conftest import random_instance


def _prefix_optimal_schedules(instance, dispatcher):
    """The optimal schedule X̂^t of every prefix instance I_t (recomputed exactly)."""
    schedules = []
    for t in range(instance.T):
        schedules.append(solve_optimal(instance.prefix(t + 1), dispatcher=None).schedule)
    return schedules


def _load_dependent(instance, schedule, dispatcher=None):
    return evaluate_schedule(instance, schedule, dispatcher).load_dependent


class TestLemma4And5:
    """Per-slot load-dependent cost of X^A vs. the prefix optimum, and the total vs. C(X̂^T).

    Lemma 4 is applied in the paper slot-wise (summed over types) inside the
    proof of Lemma 5; that aggregated form is what we verify here — with every
    schedule dispatched optimally, ``sum_j L_{t,j}(X^A) <= sum_j L_{t,j}(X̂^t)``
    follows because X^A dominates x̂^t component-wise, so X̂^t's dispatch is a
    feasible (idle-padding) dispatch for X^A.
    """

    @pytest.mark.parametrize("seed", range(3))
    def test_lemma4_per_slot_aggregate(self, seed):
        rng = np.random.default_rng(20_000 + seed)
        instance = random_instance(rng, T=6, d=2, max_servers=3)
        dispatcher = DispatchSolver(instance)
        algo = AlgorithmA()
        online = run_online(instance, algo, dispatcher=dispatcher)
        online_load = _load_dependent(instance, online.schedule, dispatcher)
        prefixes = _prefix_optimal_schedules(instance, dispatcher)
        for t in range(instance.T):
            prefix_instance = instance.prefix(t + 1)
            prefix_load = _load_dependent(prefix_instance, prefixes[t])
            assert float(np.sum(online_load[t])) <= float(np.sum(prefix_load[t])) + 1e-6

    @pytest.mark.parametrize("seed", range(3))
    def test_lemma5_total_load_dependent_cost(self, seed):
        rng = np.random.default_rng(21_000 + seed)
        instance = random_instance(rng, T=6, d=2, max_servers=3)
        dispatcher = DispatchSolver(instance)
        online = run_online(instance, AlgorithmA(), dispatcher=dispatcher)
        online_load = _load_dependent(instance, online.schedule, dispatcher)
        optimal_cost = solve_optimal(instance, dispatcher=dispatcher, return_schedule=False).cost
        assert float(np.sum(online_load)) <= optimal_cost + 1e-6

    def test_lemma5_for_algorithm_b(self, time_dependent_instance):
        dispatcher = DispatchSolver(time_dependent_instance)
        online = run_online(time_dependent_instance, AlgorithmB(), dispatcher=dispatcher)
        online_load = _load_dependent(time_dependent_instance, online.schedule, dispatcher)
        optimal_cost = solve_optimal(
            time_dependent_instance, dispatcher=dispatcher, return_schedule=False
        ).cost
        assert float(np.sum(online_load)) <= optimal_cost + 1e-6


class TestLemma6And7:
    """Per-block and per-type charges of Algorithm A's switching + idle cost."""

    def _run(self, instance):
        dispatcher = DispatchSolver(instance)
        algo = AlgorithmA()
        run_online(instance, algo, dispatcher=dispatcher)
        optimal_cost = solve_optimal(instance, dispatcher=dispatcher, return_schedule=False).cost
        return algo, optimal_cost

    @pytest.mark.parametrize("seed", range(3))
    def test_lemma6_per_block_charge(self, seed):
        rng = np.random.default_rng(22_000 + seed)
        instance = random_instance(rng, T=8, d=2, max_servers=3)
        algo, _ = self._run(instance)
        idle = instance.idle_costs(0)
        for j in range(instance.d):
            runtime = algo.runtimes[j]
            if not np.isfinite(runtime):
                continue
            # H_{j,i} = beta_j + bar_t_j * f_j(0)  <=  2 min(beta_j + f_j(0), bar_t_j f_j(0))
            h = instance.beta[j] + runtime * idle[j]
            bound = 2.0 * min(instance.beta[j] + idle[j], runtime * idle[j])
            assert h <= bound + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_lemma7_per_type_charge(self, seed):
        """sum_i H_{j,i} <= 2 C(X̂^T) for every type j (the heart of Theorem 8)."""
        rng = np.random.default_rng(23_000 + seed)
        instance = random_instance(rng, T=8, d=2, max_servers=3)
        algo, optimal_cost = self._run(instance)
        idle = instance.idle_costs(0)
        for j in range(instance.d):
            runtime = algo.runtimes[j]
            blocks = algo.blocks(j, horizon=instance.T)
            if not blocks or not np.isfinite(runtime):
                continue
            total_h = sum(instance.beta[j] + runtime * idle[j] for _ in blocks)
            assert total_h <= 2.0 * optimal_cost + 1e-6

    def test_lemma12_per_type_charge_for_b(self, time_dependent_instance):
        """sum_i H_{j,i} <= (2 + max_t l_{t,j}/beta_j) C(X̂^T) for Algorithm B."""
        instance = time_dependent_instance
        dispatcher = DispatchSolver(instance)
        algo = AlgorithmB()
        run_online(instance, algo, dispatcher=dispatcher)
        optimal_cost = solve_optimal(instance, dispatcher=dispatcher, return_schedule=False).cost
        idle_by_slot = np.array([instance.idle_costs(t) for t in range(instance.T)])
        for j in range(instance.d):
            blocks = algo.blocks(j)
            if not blocks:
                continue
            total_h = 0.0
            for block in blocks:
                total_h += instance.beta[j] + float(
                    np.sum(idle_by_slot[block.start : block.end + 1, j])
                )
            c_j = float(np.max(idle_by_slot[:, j])) / instance.beta[j]
            assert total_h <= (2.0 + c_j) * optimal_cost + 1e-6

    def test_lemma11_per_block_charge_for_b(self, time_dependent_instance):
        """H_{j,i} <= 2 beta_j + max_t l_{t,j} for every block of Algorithm B."""
        instance = time_dependent_instance
        dispatcher = DispatchSolver(instance)
        algo = AlgorithmB()
        run_online(instance, algo, dispatcher=dispatcher)
        idle_by_slot = np.array([instance.idle_costs(t) for t in range(instance.T)])
        for j in range(instance.d):
            for block in algo.blocks(j):
                h = instance.beta[j] + float(np.sum(idle_by_slot[block.start : block.end + 1, j]))
                bound = 2.0 * instance.beta[j] + float(np.max(idle_by_slot[:, j]))
                assert h <= bound + 1e-9


class TestLemma2Jensen:
    """Equal splitting over a type's active servers is never worse than an arbitrary split."""

    @pytest.mark.parametrize("seed", range(5))
    def test_equal_split_optimal(self, seed):
        rng = np.random.default_rng(24_000 + seed)
        instance = random_instance(rng, T=2, d=1, max_servers=4)
        dispatcher = DispatchSolver(instance)
        t = 0
        lam = float(instance.demand[t])
        x = int(instance.m[0])
        if x == 0 or lam == 0:
            return
        f = instance.cost_function(t, 0)
        equal = x * float(f.value(min(lam / x, instance.zmax[0])))
        # random valid split of the volume across the x servers
        weights = rng.dirichlet(np.ones(x))
        loads = np.minimum(weights * lam, instance.zmax[0])
        if loads.sum() < lam - 1e-9:
            return  # the random split violates capacity; skip
        uneven = float(np.sum([f.value(l) for l in loads]))
        assert equal <= uneven + 1e-6


class TestFeasibilityLemmas:
    """Lemma 1 and Lemma 10 on instances with freshly recomputed prefix optima."""

    @pytest.mark.parametrize("seed", range(3))
    def test_lemma1_feasibility_and_dominance(self, seed):
        rng = np.random.default_rng(25_000 + seed)
        instance = random_instance(rng, T=6, d=2, max_servers=3)
        dispatcher = DispatchSolver(instance)
        algo = AlgorithmA()
        result = run_online(instance, algo, dispatcher=dispatcher)
        assert result.schedule.is_feasible(instance)
        prefixes = _prefix_optimal_schedules(instance, dispatcher)
        for t in range(instance.T):
            # x^A_t dominates the final configuration of *some* optimal prefix schedule;
            # its capacity therefore covers the demand of slot t
            capacity = float(np.sum(result.schedule.x[t] * instance.zmax))
            assert capacity >= instance.demand[t] - 1e-9
            # and the tracker's reported prefix optimum is dominated entry-wise
            assert np.all(result.schedule.x[t] >= algo.prefix_optima[t])
