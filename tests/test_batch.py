"""Tests for the fleet-batched tick engine (:mod:`repro.serve.batch`).

The anchor is the *batched equivalence gate*: a
:class:`~repro.serve.BatchedServeEngine` run — cohort tables, vectorised
argmins, overlapped feeds, chaos tenants, a mid-stream checkpoint/restore
round-trip — must be **bit-identical** to the sequential
:class:`~repro.serve.ServeEngine` (``np.array_equal`` schedules, exact SLA
counters, cost within 1e-9) for every registered scenario family.  On top of
that: the ``observe`` → ``prepare_tick``/``decide_tick``/``commit_tick``
split, table saturation fallback, the feed pump, the new report counters, and
budgeted-cache eviction under tenant churn.
"""

import json

import numpy as np
import pytest

from repro import scenarios
from repro.scenarios import build
from repro.scenarios.events import EventPlan
from repro.serve import (
    BatchedServeEngine,
    ControllerSession,
    FeedPump,
    InstanceFeed,
    ServeCache,
    ServeEngine,
    verify_batched,
)
from repro.serve.batch import DEFAULT_TABLE_BUDGET, _decider_kind
from repro.workloads.scale import quantise_trace

BATCHED_ALGORITHMS = ["reactive", "follow-demand", "all-on"]
FALLBACK_ALGORITHMS = ["A", "lcp"]


def _smoke_instance(name):
    fam = scenarios.family(name)
    return build(scenarios.ScenarioSpec(name, dict(fam.smoke_params)))


def _quantised(name="diurnal-cpu-gpu", T=32, levels=8):
    inst = build(name, T=T)
    return inst.with_demand(quantise_trace(inst.demand, levels=levels))


def _register_fleet(instance, n, algorithms, chaos_every=None, **tenant_kwargs):
    """A build_tenants callback: n tenants over rotated copies of one trace."""

    def build_tenants(engine):
        for k in range(n):
            rolled = np.roll(instance.demand, k % max(instance.T, 1))
            feed = InstanceFeed(instance.with_demand(rolled, name=f"t{k}"))
            chaos = None
            if chaos_every and k % chaos_every == chaos_every - 1:
                chaos = EventPlan.generate(
                    instance.T, instance.d, seed=11 + k, n_events=3
                )
            engine.add_tenant(
                f"tenant-{k}",
                algorithms[k % len(algorithms)],
                feed,
                chaos=chaos,
                **tenant_kwargs,
            )

    return build_tenants


# --------------------------------------------------------------------------- #
# The batched equivalence gate
# --------------------------------------------------------------------------- #


class TestBatchedEquivalence:
    def test_pure_cohort_is_fully_batched_and_identical(self):
        """A homogeneous reactive fleet takes the vectorised path for every
        tick and still reproduces the sequential engine bit-identically."""
        instance = _quantised()
        report = verify_batched(_register_fleet(instance, 12, ["reactive"]))
        assert report["schedules_identical"]
        assert report["max_cost_deviation"] <= 1e-9
        assert report["batch"]["fallback_ticks"] == 0
        assert report["batch"]["batched_ticks"] == report["ticks_total"] > 0
        assert report["batch"]["batch_hit_rate"] == 1.0

    @pytest.mark.parametrize("algorithm", BATCHED_ALGORITHMS)
    def test_each_vectorised_decider_is_identical(self, algorithm):
        instance = _quantised(T=24)
        report = verify_batched(_register_fleet(instance, 6, [algorithm]))
        assert report["schedules_identical"]
        assert report["batch"]["batched_ticks"] == report["ticks_total"]

    @pytest.mark.parametrize("family", scenarios.names())
    def test_every_family_batches_identically(self, family):
        """The tentpole acceptance gate: for every registered scenario family
        (chaos families included), a batched run with a mid-stream
        checkpoint/restore matches the sequential engine exactly."""
        instance = _smoke_instance(family)
        # full-grid table deciders are intractable on huge fleets either way;
        # all-on exercises the batched commit path there instead
        grid_size = int(np.prod(np.asarray(instance.m) + 1))
        algorithms = ["all-on"] if grid_size > 50_000 else ["reactive", "all-on"]
        report = verify_batched(
            _register_fleet(instance, 4, algorithms, chaos_every=4,
                            degradation="shed"),
            checkpoint_at=max(1, instance.T // 2),
        )
        assert report["schedules_identical"]
        assert report["max_cost_deviation"] <= 1e-9
        assert report["batch"]["batched_ticks"] > 0

    def test_mixed_fleet_with_chaos_and_checkpoint(self):
        """DP tenants (fallback) interleaved with table tenants (vectorised),
        chaos on every fourth tenant, checkpoint mid-stream: both paths run
        and the whole fleet stays identical."""
        instance = _quantised(T=24)
        report = verify_batched(
            _register_fleet(
                instance, 10, BATCHED_ALGORITHMS + FALLBACK_ALGORITHMS,
                chaos_every=4, degradation="shed",
            ),
            checkpoint_at=12,
        )
        assert report["schedules_identical"]
        assert report["batch"]["batched_ticks"] > 0
        assert report["batch"]["fallback_ticks"] > 0
        batched_flags = {row["algorithm"]: row["batched"] for row in report["tenants"]}
        assert batched_flags["reactive"] and batched_flags["all-on"]
        assert not batched_flags["algorithm-A"] and not batched_flags["LCP"]

    def test_overlapped_pump_is_identical(self):
        instance = _quantised(T=24)
        report = verify_batched(
            _register_fleet(instance, 8, ["reactive", "follow-demand"]),
            overlap=True,
        )
        assert report["schedules_identical"]
        pump = report["batch"]["feed_pump"]
        assert pump["prefetched"] == report["ticks_total"]
        assert pump["max_buffered"] <= pump["prefetch_bound"]

    def test_counts_varying_fleets_form_distinct_cohorts(self):
        instance = _smoke_instance("time-varying-m")
        report = verify_batched(
            _register_fleet(instance, 6, ["reactive"], degradation="shed"),
            checkpoint_at=max(1, instance.T // 2),
        )
        assert report["schedules_identical"]
        assert report["batch"]["batched_ticks"] > 0

    def test_regret_tracked_sessions_fall_back(self):
        instance = _quantised(T=12)
        report = verify_batched(
            _register_fleet(instance, 3, ["reactive"], track_regret=True)
        )
        assert report["schedules_identical"]
        assert report["batch"]["batched_ticks"] == 0
        assert report["batch"]["fallback_ticks"] == report["ticks_total"]


# --------------------------------------------------------------------------- #
# The observe() split
# --------------------------------------------------------------------------- #


class TestObserveSplit:
    def test_split_phases_compose_to_observe(self):
        """prepare/decide/commit driven by hand must reproduce observe()
        exactly — same schedule, same cost, same emitted rows."""
        instance = _quantised(T=16)
        cache = ServeCache(instance.server_types)
        whole = ControllerSession("reactive", instance.server_types, cache=cache)
        split = ControllerSession(
            "reactive", instance.server_types, cache=ServeCache(instance.server_types)
        )
        for demand in instance.demand:
            state = whole.observe(demand)
            d, served, shed, counts_t, vt, slot = split.prepare_tick(demand)
            rounded, r_list, forced = split.decide_tick(slot, counts_t)
            split_state = split.commit_tick(d, served, shed, vt, rounded, r_list, forced)
            a, b = state.as_row(), split_state.as_row()
            a.pop("latency_ms"), b.pop("latency_ms")
            assert a == b
        assert np.array_equal(whole.schedule.x, split.schedule.x)
        assert whole.cumulative_cost == split.cumulative_cost

    def test_observe_batch_commits_external_decisions(self):
        """observe_batch with the sequential engine's own decision is the
        identity: state advances exactly as observe would."""
        instance = _quantised(T=12)
        reference = ControllerSession("all-on", instance.server_types)
        replayed = ControllerSession("all-on", instance.server_types)
        for demand in instance.demand:
            state = reference.observe(demand)
            d, served, shed, counts_t, vt, _ = replayed.prepare_tick(
                demand, build_slot=False
            )
            rounded = np.asarray(state.config, dtype=int)
            replayed.observe_batch(d, served, shed, vt, rounded, emit=False)
        assert np.array_equal(reference.schedule.x, replayed.schedule.x)
        assert reference.cumulative_cost == replayed.cumulative_cost
        assert reference.ticks == replayed.ticks

    def test_observe_batch_refuses_regret_tracking_without_slot(self):
        instance = _quantised(T=4)
        session = ControllerSession(
            "reactive", instance.server_types, track_regret=True
        )
        d, served, shed, counts_t, vt, _ = session.prepare_tick(
            float(instance.demand[0]), build_slot=False
        )
        with pytest.raises(ValueError, match="regret"):
            session.observe_batch(d, served, shed, vt, np.zeros(instance.d, dtype=int))


# --------------------------------------------------------------------------- #
# Cohort tables: saturation fallback
# --------------------------------------------------------------------------- #


class TestTableSaturation:
    def test_saturated_table_falls_back_per_tenant(self):
        """With a tiny table budget most demand levels miss the table; those
        ticks take the per-tenant path and results stay identical."""
        instance = _quantised(T=24, levels=16)
        report = verify_batched(
            _register_fleet(instance, 6, ["reactive"]),
            engine_kwargs={"table_budget": 2},
        )
        assert report["schedules_identical"]
        assert report["batch"]["table_fallbacks"] > 0
        assert report["batch"]["fallback_ticks"] > 0
        assert report["batch"]["batched_ticks"] > 0
        assert report["batch"]["table_levels"] <= 2 * report["batch"]["decision_tables"]

    def test_default_budget_is_generous(self):
        assert DEFAULT_TABLE_BUDGET >= 1024


# --------------------------------------------------------------------------- #
# Feed pump
# --------------------------------------------------------------------------- #


class _PumpTenant:
    def __init__(self, feed):
        self.iterator = iter(feed)


class TestFeedPump:
    def test_pump_preserves_tick_order_and_bounds_buffering(self):
        instance = _quantised(T=20)
        names = [f"t{k}" for k in range(5)]
        direct = {
            name: list(InstanceFeed(instance)) for name in names
        }
        pump = FeedPump(
            {name: _PumpTenant(InstanceFeed(instance)) for name in names},
            prefetch=3,
            workers=2,
        ).start()
        try:
            for name in names:
                got = []
                while True:
                    tick = pump.next_tick(name)
                    if tick is None:
                        break
                    got.append(tick)
                assert [t.demand for t in got] == [t.demand for t in direct[name]]
            counters = pump.counters()
            assert counters["prefetched"] == 5 * instance.T
            assert counters["max_buffered"] <= counters["prefetch_bound"]
        finally:
            pump.stop()

    def test_stop_returns_unconsumed_ticks(self):
        instance = _quantised(T=16)
        pump = FeedPump(
            {"a": _PumpTenant(InstanceFeed(instance))}, prefetch=4, workers=1
        ).start()
        first = pump.next_tick("a")
        leftovers = pump.stop()
        buffered = leftovers.get("a", [])
        assert first.demand == float(instance.demand[0])
        assert 1 <= len(buffered) <= 4
        assert [t.demand for t in buffered] == [
            float(v) for v in instance.demand[1 : 1 + len(buffered)]
        ]


# --------------------------------------------------------------------------- #
# Report counters (satellite: eviction + cohort hit-rate observability)
# --------------------------------------------------------------------------- #


class TestReportCounters:
    def test_engine_report_carries_cache_totals(self):
        instance = _quantised(T=12)
        engine = ServeEngine(share_caches=True, ledger_budget=4)
        for k in range(3):
            engine.add_tenant(f"t{k}", "reactive", InstanceFeed(instance))
        engine.run()
        totals = engine.report()["cache_totals"]
        for key in ("virtual_slots", "ledger_evictions", "tensor_evictions",
                    "tensor_bytes", "unique_solves"):
            assert key in totals
        assert totals["virtual_slots"] <= 4
        assert "cache_hit_rate" not in totals  # a ratio; summing it is meaningless

    def test_batched_report_carries_batch_section(self):
        instance = _quantised(T=12)
        engine = BatchedServeEngine(share_caches=True)
        for k in range(4):
            engine.add_tenant(f"t{k}", "reactive", InstanceFeed(instance))
        engine.run()
        batch = engine.report()["batch"]
        assert batch["batched_ticks"] == 4 * instance.T
        assert batch["fallback_ticks"] == 0
        assert batch["batch_hit_rate"] == 1.0
        assert batch["decision_tables"] >= 1
        assert batch["table_installs"] == batch["table_levels"] > 0
        assert batch["avg_cohort_size"] > 1

    def test_decider_kind_classification(self):
        instance = _quantised(T=4)
        for algorithm, kind in [("reactive", "reactive"),
                                ("follow-demand", "follow-demand"),
                                ("all-on", "all-on"),
                                ("A", None), ("lcp", None)]:
            session = ControllerSession(algorithm, instance.server_types)
            assert _decider_kind(session) == kind


# --------------------------------------------------------------------------- #
# Budgeted-cache churn (satellite: 1k+ short-lived tenants, flat memory)
# --------------------------------------------------------------------------- #


class TestBudgetedChurn:
    def test_ledger_budget_keeps_memo_flat_over_1k_tenants(self):
        """1k+ short-lived tenants over one budgeted shared cache: the ledger
        stays at its budget (evictions, not growth) and every tenant's cost
        is identical to an unbudgeted replay — eviction is numerically
        neutral."""
        instance = _quantised(T=32, levels=32)
        budgeted = ServeCache(instance.server_types, ledger_budget=6)
        unbudgeted = ServeCache(instance.server_types)
        n_tenants, ticks = 1100, 3
        slots_seen = []
        for k in range(n_tenants):
            demands = np.roll(instance.demand, k % instance.T)[:ticks]
            costs = []
            for cache in (budgeted, unbudgeted):
                session = ControllerSession(
                    "reactive", instance.server_types, cache=cache, history=False
                )
                for demand in demands:
                    session.observe(float(demand))
                costs.append(session.cumulative_cost)
            assert costs[0] == costs[1]
            slots_seen.append(budgeted.counters()["virtual_slots"])
        counters = budgeted.counters()
        assert counters["virtual_slots"] <= 6
        assert max(slots_seen) <= 6  # flat throughout, not just at the end
        assert counters["ledger_evictions"] > 0

    def test_tensor_budget_evicts_and_stays_neutral(self):
        """Grid tensors (the DP algorithms' per-slot memo) respect
        tensor_budget_bytes under churn: bytes stay bounded, evictions fire,
        schedules match an unbudgeted cache exactly."""
        instance = _quantised(T=8, levels=24)
        probe = ControllerSession("A", instance.server_types)
        probe.observe(float(instance.demand[0]))
        tensor_cache = probe.cache.counters()
        if tensor_cache["tensor_bytes"] == 0:
            pytest.skip("algorithm A does not populate the tensor memo here")
        budget = tensor_cache["tensor_bytes"] * 3  # room for ~3 slots' tensors
        budgeted = ServeCache(instance.server_types, tensor_budget_bytes=budget)
        unbudgeted = ServeCache(instance.server_types)
        for k in range(40):
            demands = np.roll(instance.demand, k % instance.T)[:4]
            schedules = []
            for cache in (budgeted, unbudgeted):
                session = ControllerSession(
                    "A", instance.server_types, cache=cache, history=True
                )
                for demand in demands:
                    session.observe(float(demand))
                schedules.append(session.schedule.x)
            assert np.array_equal(schedules[0], schedules[1])
            assert budgeted.counters()["tensor_bytes"] <= budget
        assert budgeted.counters()["tensor_evictions"] > 0

    def test_batched_engine_forwards_budgets_and_stays_identical(self):
        """ledger_budget on the engines: eviction churn underneath the cohort
        tables must not perturb batched results."""
        instance = _quantised(T=16, levels=16)
        report = verify_batched(
            _register_fleet(instance, 8, ["reactive", "follow-demand"]),
            engine_kwargs={"ledger_budget": 3},
        )
        assert report["schedules_identical"]
        assert report["max_cost_deviation"] <= 1e-9


# --------------------------------------------------------------------------- #
# Bench harness plumbing
# --------------------------------------------------------------------------- #


class TestBenchHarness:
    def test_batch_smoke_merges_section_preserving_others(self, tmp_path):
        from repro.bench import run_batch_smoke

        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps({"latency": {"keep": True}}))
        section = run_batch_smoke(tenants=8, ticks=12, json_path=str(path))
        assert section["schedules_identical"]
        assert section["max_cost_deviation"] <= 1e-9
        assert section["batched_ticks"] > 0 and section["fallback_ticks"] > 0
        payload = json.loads(path.read_text())
        assert payload["latency"] == {"keep": True}
        assert payload["batch_smoke"]["ticks_total"] == section["ticks_total"]

    def test_batch_scale_bench_gates_and_records_memory(self, tmp_path):
        from repro.bench import run_batch_scale_bench

        path = tmp_path / "BENCH_serve.json"
        section = run_batch_scale_bench(
            tenant_counts=(3, 9),
            ticks=12,
            seq_limit=4,
            sample_check=2,
            assert_speedup=False,
            json_path=str(path),
        )
        assert [row["tenants"] for row in section["rows"]] == [3, 9]
        full, sampled = section["rows"]
        assert full["equality"] == "full"
        assert sampled["equality"] == "sampled-2"
        for row in section["rows"]:
            assert row["max_cost_deviation"] <= 1e-9
            assert row["tracemalloc_peak_mb"] >= 0
            assert row["rss_delta_mb"] >= 0
            assert row["batch_hit_rate"] == 1.0
        # the flat-memory gate: identical cache footprint across counts
        assert full["virtual_slots"] == sampled["virtual_slots"]
        payload = json.loads(path.read_text())
        assert payload["batch_scale"]["rows"] == section["rows"]
        assert any(
            entry.get("benchmark") == "serve-batch-scale"
            for entry in payload.get("runs", [])
        )
