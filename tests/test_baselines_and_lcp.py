"""Tests for the comparison baselines (LCP, OBD, greedy heuristics, static, receding horizon)."""

import numpy as np
import pytest

from repro import (
    LazyCapacityProvisioning,
    ProblemInstance,
    Reactive,
    AllOn,
    FollowDemand,
    run_online,
    solve_optimal,
    total_cost,
)
from repro.online import (
    optimal_static_schedule,
    receding_horizon_schedule,
    round_up,
    run_obd,
)
from repro.workloads import diurnal_trace

from conftest import random_instance


class TestSimpleBaselines:
    def test_all_on_uses_full_fleet(self, small_instance):
        result = run_online(small_instance, AllOn())
        assert np.all(result.schedule.x == small_instance.m[None, :])
        assert result.schedule.is_feasible(small_instance)

    def test_all_on_cost_at_least_optimal(self, small_instance):
        opt = solve_optimal(small_instance, return_schedule=False).cost
        assert run_online(small_instance, AllOn()).cost >= opt - 1e-9

    def test_follow_demand_is_feasible_and_myopic(self, small_instance):
        result = run_online(small_instance, FollowDemand())
        assert result.schedule.is_feasible(small_instance)
        # on the zero-demand slot it powers everything down
        assert np.all(result.schedule.x[4] == 0)

    def test_reactive_is_feasible(self, small_instance):
        result = run_online(small_instance, Reactive())
        assert result.schedule.is_feasible(small_instance)

    def test_reactive_no_worse_than_follow_demand_on_bursty_demand(self, two_type_fleet):
        demand = np.array([2.0, 0.0, 2.0, 0.0, 2.0, 0.0, 2.0, 0.0])
        inst = ProblemInstance(two_type_fleet, demand)
        reactive = run_online(inst, Reactive()).cost
        follow = run_online(inst, FollowDemand()).cost
        # follow-demand pays a power-up for every burst; reactive may keep servers on
        assert reactive <= follow + 1e-6

    def test_reduced_grid_variants(self, small_instance):
        for algo in (Reactive(gamma=2.0), FollowDemand(gamma=2.0)):
            result = run_online(small_instance, algo)
            assert result.schedule.is_feasible(small_instance)

    def test_all_baselines_at_least_optimal(self, small_instance):
        opt = solve_optimal(small_instance, return_schedule=False).cost
        for algo in (AllOn(), FollowDemand(), Reactive()):
            assert run_online(small_instance, algo).cost >= opt - 1e-6


class TestOptimalStatic:
    def test_static_schedule_is_constant_and_feasible(self, small_instance):
        sched = optimal_static_schedule(small_instance)
        assert sched.is_feasible(small_instance)
        assert np.all(sched.x == sched.x[0][None, :])

    def test_static_at_least_optimal(self, small_instance):
        opt = solve_optimal(small_instance, return_schedule=False).cost
        assert total_cost(small_instance, optimal_static_schedule(small_instance)) >= opt - 1e-6

    def test_static_beats_all_on(self, small_instance):
        static = total_cost(small_instance, optimal_static_schedule(small_instance))
        all_on = run_online(small_instance, AllOn()).cost
        assert static <= all_on + 1e-6


class TestRecedingHorizon:
    def test_zero_lookahead_matches_reactive(self, small_instance):
        rh = receding_horizon_schedule(small_instance, lookahead=0)
        reactive = run_online(small_instance, Reactive()).schedule
        assert rh.same_as(reactive)

    def test_full_lookahead_matches_optimal(self, small_instance):
        rh = receding_horizon_schedule(small_instance, lookahead=small_instance.T)
        opt = solve_optimal(small_instance)
        assert total_cost(small_instance, rh) == pytest.approx(opt.cost, rel=1e-6)

    def test_feasibility_for_intermediate_lookahead(self, small_instance):
        for w in (1, 2, 3):
            assert receding_horizon_schedule(small_instance, w).is_feasible(small_instance)

    def test_longer_lookahead_does_not_hurt_much(self, two_type_fleet):
        demand = diurnal_trace(20, period=10, base=1.0, peak=6.0, noise=0.0)
        inst = ProblemInstance(two_type_fleet, demand)
        opt = solve_optimal(inst, return_schedule=False).cost
        short = total_cost(inst, receding_horizon_schedule(inst, 1))
        long = total_cost(inst, receding_horizon_schedule(inst, 8))
        assert long <= short + 1e-6 or long <= 1.05 * opt

    def test_negative_lookahead_rejected(self, small_instance):
        with pytest.raises(ValueError):
            receding_horizon_schedule(small_instance, -1)


class TestLCP:
    def test_requires_homogeneous_by_default(self, small_instance):
        with pytest.raises(ValueError):
            run_online(small_instance, LazyCapacityProvisioning())

    def test_heterogeneous_opt_in(self, small_instance):
        result = run_online(small_instance, LazyCapacityProvisioning(allow_heterogeneous=True))
        assert result.schedule.is_feasible(small_instance)

    def test_homogeneous_feasible_and_bounded(self, homogeneous_instance):
        opt = solve_optimal(homogeneous_instance, return_schedule=False).cost
        result = run_online(homogeneous_instance, LazyCapacityProvisioning())
        assert result.schedule.is_feasible(homogeneous_instance)
        assert result.cost >= opt - 1e-6
        # LCP is 3-competitive in the discrete homogeneous setting
        assert result.cost <= 3.0 * opt + 1e-6

    def test_moves_lazily(self, homogeneous_instance):
        algo = LazyCapacityProvisioning()
        result = run_online(homogeneous_instance, algo)
        bounds = algo.bounds_history
        for t in range(homogeneous_instance.T):
            lo, hi = bounds[t]
            assert np.all(result.schedule.x[t] >= lo)
            assert np.all(result.schedule.x[t] <= hi)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_homogeneous_instances(self, seed):
        rng = np.random.default_rng(13_000 + seed)
        inst = random_instance(rng, T=8, d=1, max_servers=4)
        opt = solve_optimal(inst, return_schedule=False).cost
        result = run_online(inst, LazyCapacityProvisioning())
        assert result.schedule.is_feasible(inst)
        if opt > 1e-9:
            assert result.cost <= 3.0 * opt + 1e-6


class TestOBD:
    @pytest.fixture
    def tiny_instance(self):
        from repro import QuadraticCost, LinearCost, ServerType

        types = (
            ServerType("a", count=2, switching_cost=3.0, capacity=1.0,
                       cost_function=QuadraticCost(idle=0.5, a=0.2, b=1.0)),
            ServerType("b", count=1, switching_cost=6.0, capacity=3.0,
                       cost_function=LinearCost(idle=1.0, slope=0.5)),
        )
        return ProblemInstance(types, np.array([0.5, 2.0, 3.5, 1.0, 0.0, 2.0]), name="tiny")

    def test_fractional_trajectory_is_feasible(self, tiny_instance):
        res = run_obd(tiny_instance)
        zmax = tiny_instance.zmax
        caps = np.sum(res.xs * zmax[None, :], axis=1)
        assert np.all(caps >= tiny_instance.demand - 1e-6)
        assert np.all(res.xs >= -1e-9)
        assert np.all(res.xs <= tiny_instance.m[None, :] + 1e-9)

    def test_cost_decomposition(self, tiny_instance):
        res = run_obd(tiny_instance)
        assert res.cost == pytest.approx(res.total_operating + res.total_switching)
        assert np.all(np.isfinite(res.operating))

    def test_round_up_is_feasible_integral_schedule(self, tiny_instance):
        res = run_obd(tiny_instance)
        sched = round_up(res, tiny_instance)
        assert sched.is_feasible(tiny_instance)

    def test_rounded_cost_at_least_fractional_operating(self, tiny_instance):
        """Rounding up only adds servers, so feasibility holds; the integral cost is
        at least the discrete optimum."""
        res = run_obd(tiny_instance)
        opt = solve_optimal(tiny_instance, return_schedule=False).cost
        assert total_cost(tiny_instance, round_up(res, tiny_instance)) >= opt - 1e-6
