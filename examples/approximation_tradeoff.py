"""Accuracy/runtime trade-off of the (1+eps)-approximation (Theorems 16 and 21).

For fleets with many servers the exact shortest-path algorithm explores
``prod_j (m_j + 1)`` configurations per slot; the approximation only explores
``prod_j |M^gamma_j| = O(prod_j log m_j)`` of them while guaranteeing a cost
within ``1 + eps`` of optimal.  This example sweeps ``eps`` on a mid-sized
fleet and prints, per setting, the number of explored states, the measured
runtime and the realised approximation ratio — the practical picture behind
Theorem 21's asymptotic statement.

Run with:  python examples/approximation_tradeoff.py
"""

import time

from repro import ProblemInstance, QuadraticCost, ServerType, solve_approx, solve_optimal
from repro.analysis import format_table
from repro.dispatch import DispatchSolver
from repro.workloads import diurnal_trace


def main() -> None:
    types = (
        ServerType("web", count=60, switching_cost=5.0, capacity=1.0,
                   cost_function=QuadraticCost(idle=0.5, a=0.2, b=0.8)),
        ServerType("batch", count=15, switching_cost=12.0, capacity=3.0,
                   cost_function=QuadraticCost(idle=1.2, a=0.3, b=0.2)),
    )
    demand = diurnal_trace(24, period=12, base=4.0, peak=90.0, noise=0.05, rng=17)
    instance = ProblemInstance(types, demand, name="approximation-tradeoff")
    print(instance.describe())
    print()

    dispatcher = DispatchSolver(instance)
    start = time.perf_counter()
    exact = solve_optimal(instance, dispatcher=dispatcher, return_schedule=False)
    exact_seconds = time.perf_counter() - start

    rows = [
        {
            "solver": "exact DP",
            "eps": "-",
            "states/slot": exact.grids[0].size,
            "seconds": round(exact_seconds, 3),
            "cost": round(exact.cost, 2),
            "ratio": 1.0,
            "guarantee": 1.0,
        }
    ]
    for eps in (2.0, 1.0, 0.5, 0.25, 0.1):
        start = time.perf_counter()
        approx = solve_approx(instance, epsilon=eps, dispatcher=dispatcher, return_schedule=False)
        seconds = time.perf_counter() - start
        rows.append(
            {
                "solver": "reduced-grid DP",
                "eps": eps,
                "states/slot": approx.grids[0].size,
                "seconds": round(seconds, 3),
                "cost": round(approx.cost, 2),
                "ratio": round(approx.cost / exact.cost, 4),
                "guarantee": round(1.0 + eps, 2),
            }
        )
    print(format_table(rows, title="exact vs. (1+eps)-approximate offline solver"))
    print()
    print("The measured ratio is typically far below the 1+eps guarantee; the state count "
          "is what shrinks from Theta(prod m_j) to O(prod log m_j) (Theorem 21).")


if __name__ == "__main__":
    main()
