"""Quickstart: define a heterogeneous data center, solve it offline, run it online.

This walks through the core API:

1. describe the server types (counts, switching costs, capacities, power curves),
2. bundle them with a demand trace into a :class:`ProblemInstance`,
3. compute the optimal offline schedule (Section 4.1 of the paper),
4. run the online Algorithm A (Section 2) and compare against the optimum and
   its proven ``(2d+1)`` competitive bound.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AlgorithmA,
    LinearCost,
    ProblemInstance,
    QuadraticCost,
    ServerType,
    evaluate_schedule,
    run_online,
    solve_optimal,
    theoretical_bound,
)
from repro.analysis import compare_plot, format_table


def main() -> None:
    # 1. The fleet: a few CPU nodes (cheap to cycle, superlinear power curve)
    #    and two big GPU nodes (high switching cost, large capacity).
    cpu = ServerType(
        name="cpu",
        count=4,
        switching_cost=4.0,
        capacity=1.0,
        cost_function=QuadraticCost(idle=1.0, a=0.4, b=0.8),
    )
    gpu = ServerType(
        name="gpu",
        count=2,
        switching_cost=15.0,
        capacity=4.0,
        cost_function=LinearCost(idle=2.5, slope=0.5),
    )

    # 2. A tiny day/night demand trace (12 slots).
    demand = np.array([1.0, 2.0, 4.0, 7.0, 9.0, 8.0, 5.0, 3.0, 1.0, 0.0, 0.0, 2.0])
    instance = ProblemInstance((cpu, gpu), demand, name="quickstart")
    print(instance.describe())
    print()

    # 3. Optimal offline schedule (shortest path / dynamic program).
    optimal = solve_optimal(instance)
    optimal_breakdown = evaluate_schedule(instance, optimal.schedule)
    print(f"optimal offline cost: {optimal.cost:.2f}")

    # 4. Online Algorithm A, fed one slot at a time by the driver.
    online = run_online(instance, AlgorithmA())
    bound = theoretical_bound(instance, "A")
    print(
        f"Algorithm A online cost: {online.cost:.2f} "
        f"(ratio {online.cost / optimal.cost:.3f}, proven bound {bound:.0f})"
    )
    print()

    def as_row(name, summary):
        return {"schedule": name, **{k: (round(v, 2) if isinstance(v, float) else v) for k, v in summary.items()}}

    rows = [
        as_row("offline optimum", optimal_breakdown.summary()),
        as_row("Algorithm A", online.breakdown.summary()),
    ]
    print(format_table(rows, title="cost breakdown"))
    print()
    print(
        compare_plot(
            demand,
            {"optimal": optimal.schedule.x, "Algorithm A": online.schedule.x},
            type_index=0,
            title="demand and active CPU servers",
        )
    )


if __name__ == "__main__":
    main()
