"""Time-of-day electricity prices: the setting of Section 3 (Algorithms B and C).

When the energy price changes over the day, the operating-cost functions
``f_{t,j}`` become time-dependent.  Algorithm A's fixed ski-rental horizon no
longer applies; Algorithm B adapts the power-down rule to the accumulated idle
cost and is ``(2d + 1 + c(I))``-competitive, and Algorithm C shrinks the
additive constant to any ``eps`` by sub-slot refinement.

This example builds a workload with a day/night price profile, reports

* the constant ``c(I) = sum_j max_t l_{t,j}/beta_j`` and the resulting bounds,
* the measured costs and ratios of Algorithms B and C (for several eps), and
* how many sub-slots Algorithm C used per original slot.

Run with:  python examples/time_varying_prices.py [T]
"""

import sys

import numpy as np

from repro import AlgorithmB, AlgorithmC, run_online, solve_optimal, theoretical_bound
from repro.analysis import format_table, step_plot
from repro.dispatch import DispatchSolver
from repro.workloads import diurnal_trace, fleet_instance, old_new_fleet


def main(T: int = 36) -> None:
    demand = diurnal_trace(T, period=T // 3, base=1.5, peak=9.0, noise=0.05, rng=7)
    prices = 1.0 + 0.6 * np.sin(np.arange(T) / T * 6 * np.pi + 0.4)
    instance = fleet_instance(old_new_fleet(old_count=5, new_count=3), demand, name="priced")
    instance = instance.with_price_profile(prices)

    print(instance.describe())
    print(f"c(I) = {instance.c_constant():.3f}")
    print()
    print(step_plot(prices, title="electricity price multiplier per slot"))
    print()

    dispatcher = DispatchSolver(instance)
    optimal_cost = solve_optimal(instance, dispatcher=dispatcher, return_schedule=False).cost

    rows = []
    b_result = run_online(instance, AlgorithmB(), dispatcher=dispatcher)
    rows.append(
        {
            "algorithm": "B",
            "eps": "-",
            "cost": round(b_result.cost, 2),
            "ratio": round(b_result.cost / optimal_cost, 3),
            "bound": round(theoretical_bound(instance, "B"), 3),
            "mean_sub_slots": 1.0,
        }
    )
    for eps in (1.0, 0.5, 0.25):
        algo = AlgorithmC(epsilon=eps)
        result = run_online(instance, algo, dispatcher=dispatcher)
        rows.append(
            {
                "algorithm": "C",
                "eps": eps,
                "cost": round(result.cost, 2),
                "ratio": round(result.cost / optimal_cost, 3),
                "bound": round(2 * instance.d + 1 + eps, 3),
                "mean_sub_slots": round(float(np.mean(algo.sub_slot_counts)), 2),
            }
        )
    print(format_table(rows, title=f"time-dependent costs (OPT = {optimal_cost:.2f})"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 36)
