"""Time-varying fleet sizes: maintenance windows and hardware roll-outs (Section 4.3).

Real data centers change size: racks go offline for maintenance, and new
hardware generations are added while old ones stay in service.  Section 4.3 of
the paper extends the offline algorithms to per-slot server counts ``m_{t,j}``;
this example builds such a scenario —

* slots 10-14: most old-generation servers are down for maintenance,
* from slot 20: two additional new-generation servers come online —

solves it exactly and with the (1+eps)-approximation, and prints the resulting
schedules next to the per-slot availability.

Run with:  python examples/datacenter_maintenance.py
"""

import numpy as np

from repro import ProblemInstance, solve_approx, solve_optimal
from repro.analysis import format_table, step_plot
from repro.workloads import diurnal_trace, old_new_fleet


def main(T: int = 30) -> None:
    fleet = tuple(old_new_fleet(old_count=6, new_count=4))
    demand = diurnal_trace(T, period=10, base=2.0, peak=10.0, noise=0.05, rng=99)

    counts = np.tile([6, 4], (T, 1))
    counts[10:15, 0] = 2   # maintenance window for the old generation
    counts[20:, 1] = 6     # expansion: new servers delivered
    instance = ProblemInstance(fleet, demand, counts=counts, name="maintenance")
    capacity = np.array([instance.total_capacity(t) for t in range(T)])
    instance = ProblemInstance(fleet, np.minimum(demand, 0.95 * capacity), counts=counts,
                               name="maintenance")

    print(instance.describe())
    print()
    print(step_plot(instance.demand, title="demand"))
    print(step_plot(counts[:, 0], title="available old-generation servers m_{t,1}"))
    print(step_plot(counts[:, 1], title="available new-generation servers m_{t,2}"))

    exact = solve_optimal(instance)
    approx = solve_approx(instance, epsilon=0.5)

    rows = [
        {
            "slot": t,
            "demand": round(float(instance.demand[t]), 1),
            "avail old/new": f"{counts[t, 0]}/{counts[t, 1]}",
            "optimal old/new": f"{exact.schedule.x[t, 0]}/{exact.schedule.x[t, 1]}",
            "approx old/new": f"{approx.schedule.x[t, 0]}/{approx.schedule.x[t, 1]}",
        }
        for t in range(T)
    ]
    print(format_table(rows, title="schedules under time-varying availability"))
    print()
    print(f"optimal cost: {exact.cost:.2f}")
    print(f"(1+eps)-approximation (eps=0.5): {approx.cost:.2f} "
          f"(ratio {approx.cost / exact.cost:.3f} <= 1.5)")


if __name__ == "__main__":
    main()
