"""Adversarial analysis: why the competitive ratios look the way they do.

Three constructions from the paper's discussion:

1. the hypercube chasing game showing that *general* convex functions admit no
   competitive algorithm (ratio Omega(2^d / d), Section 1) — the reason the
   paper restricts to load-dispatch operating costs,
2. ski-rental style traces that push Algorithm A towards its worst case
   (the mechanism behind the 2d lower bound of the companion paper), and
3. the rounding pathology: a fractional schedule whose naive rounding has a
   switching cost larger by an unbounded factor.

Run with:  python examples/adversarial_analysis.py
"""

from repro import AlgorithmA, ConstantCost, ServerType, run_online, solve_optimal
from repro.analysis import format_table
from repro.online import convex_chasing_game, rounding_pathology, ski_rental_instance


def main() -> None:
    # 1. The hypercube chasing game.
    rows = []
    for d in (2, 3, 4, 5, 6):
        game = convex_chasing_game(d)
        rows.append(
            {
                "d": d,
                "online cost": game.online_cost,
                "offline cost": game.offline_cost,
                "ratio": round(game.ratio, 2),
                "2^d/(2d)": round(2**d / (2 * d), 2),
            }
        )
    print(format_table(rows, title="general convex function chasing: exponential lower bound"))
    print()

    # 2. Ski-rental adversarial traces for Algorithm A.
    rows = []
    for gap_factor in (0.5, 1.0, 2.0):
        victim = ServerType("victim", count=1, switching_cost=8.0, capacity=1.0,
                            cost_function=ConstantCost(level=2.0))
        instance = ski_rental_instance(victim, n_cycles=10, gap_factor=gap_factor)
        optimal_cost = solve_optimal(instance, return_schedule=False).cost
        online = run_online(instance, AlgorithmA())
        rows.append(
            {
                "gap (x break-even)": gap_factor,
                "optimal": round(optimal_cost, 1),
                "Algorithm A": round(online.cost, 1),
                "ratio": round(online.cost / optimal_cost, 3),
                "bound (2d)": 2,
            }
        )
    print(format_table(rows, title="ski-rental adversarial traces (load-independent costs, d=1)"))
    print()

    # 3. Rounding pathology.
    rows = []
    for delta in (0.5, 0.1, 0.01):
        out = rounding_pathology(T=200, delta=delta)
        rows.append(
            {
                "delta": delta,
                "fractional switching": round(out["fractional_switching_cost"], 2),
                "rounded-up switching": round(out["rounded_switching_cost"], 2),
                "blow-up": round(out["blowup"], 1),
            }
        )
    print(format_table(rows, title="naive rounding of a fractional schedule (T=200)"))
    print()
    print("The blow-up grows like 1/delta — rounding fractional solutions without a dedicated "
          "scheme is not viable, which is why the paper works directly in the discrete setting.")


if __name__ == "__main__":
    main()
