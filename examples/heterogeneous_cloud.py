"""Heterogeneous cloud scenario: CPU + GPU fleet under a diurnal workload.

The paper's motivating scenario (Section 1): a data center mixes architectures
— CPU nodes for branchy work and GPU nodes that process four times the volume,
but cost much more to power-cycle.  Over a day/night demand curve the right
decision changes: at night most of the fleet should sleep, during the peak the
GPUs carry the bulk of the load.

This example runs the whole algorithm zoo on one such scenario and prints

* the cost/ratio table (online Algorithms A and B, the greedy baselines, the
  offline optimum and the best static configuration), and
* an ASCII rendering of how the optimal and the online schedules track demand.

Run with:  python examples/heterogeneous_cloud.py [T]
"""

import sys

from repro import (
    AlgorithmA,
    AlgorithmB,
    AllOn,
    FollowDemand,
    Reactive,
    run_online,
    solve_optimal,
    theoretical_bound,
    total_cost,
)
from repro.analysis import compare_plot, compute_metrics, format_table
from repro.dispatch import DispatchSolver
from repro.online import optimal_static_schedule
from repro.workloads import cpu_gpu_fleet, diurnal_trace, fleet_instance


def main(T: int = 48) -> None:
    demand = diurnal_trace(T, period=T // 2, base=1.0, peak=11.0, noise=0.08, rng=2024)
    instance = fleet_instance(cpu_gpu_fleet(cpu_count=6, gpu_count=2), demand, name="cpu-gpu-cloud")
    print(instance.describe())
    print()

    dispatcher = DispatchSolver(instance)
    optimal = solve_optimal(instance, dispatcher=dispatcher)

    rows = []

    def add_row(name, schedule, bound=None):
        metrics = compute_metrics(instance, schedule, name=name, dispatcher=dispatcher)
        row = metrics.as_row()
        row["ratio"] = round(metrics.total_cost / optimal.cost, 3)
        if bound is not None:
            row["proven_bound"] = bound
        rows.append(row)
        return metrics

    add_row("offline optimum", optimal.schedule)
    add_row("optimal static", optimal_static_schedule(instance, dispatcher=dispatcher))

    schedules = {}
    for algo, bound_key in ((AlgorithmA(), "A"), (AlgorithmB(), "B")):
        result = run_online(instance, algo, dispatcher=dispatcher)
        bound = round(theoretical_bound(instance, bound_key), 2)
        add_row(result.algorithm, result.schedule, bound=bound)
        schedules[result.algorithm] = result.schedule.x
    for algo in (Reactive(), FollowDemand(), AllOn()):
        result = run_online(instance, algo, dispatcher=dispatcher)
        add_row(result.algorithm, result.schedule)

    print(format_table(rows, title=f"algorithm comparison (T={T}, d={instance.d})"))
    print()
    print(
        compare_plot(
            demand,
            {"optimal": optimal.schedule.x, **{k: v for k, v in list(schedules.items())[:1]}},
            type_index=0,
            title="demand vs. active CPU servers",
        )
    )
    print(
        compare_plot(
            demand,
            {"optimal": optimal.schedule.x},
            type_index=1,
            title="demand vs. active GPU servers (offline optimum)",
        )
    )
    savings = 1.0 - optimal.cost / total_cost(instance, optimal_static_schedule(instance, dispatcher=dispatcher), dispatcher)
    print(f"right-sizing saves {100 * savings:.1f}% compared with the best static provisioning.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 48)
