"""Command-line interface.

The CLI wraps the most common workflows so the library can be exercised
without writing Python:

``python -m repro trace``
    Generate a synthetic demand trace (CSV on stdout or to a file).

``python -m repro solve``
    Solve a scenario offline — exactly or with the (1+eps)-approximation — and
    print the schedule summary (optionally the full schedule as CSV).

``python -m repro online``
    Run one of the online algorithms over a scenario and report its cost and
    empirical competitive ratio against the offline optimum.

``python -m repro compare``
    Run the whole algorithm suite on one scenario and print the comparison
    table (the same table the COMP benchmark regenerates).

``python -m repro sweep``
    Batch several online algorithms (times several seeds) through the
    shared-context sweep engine: one dispatch solver, one set of grid
    operating-cost tensors and one memoised prefix-DP value stream per
    instance, with optional process sharding (``--jobs``) and machine-readable
    output (``--json``).

``python -m repro bench --smoke``
    Run the <30s benchmark regression harness: solve three pinned instances
    and assert the DP still returns seed-identical optimal costs (guards the
    batched dispatch engine against accuracy drift).

``python -m repro bench --sweep``
    Run the combined THM8+13+15+22 ratio workload through the sweep engine,
    assert every cost matches the pinned PR-1 values (1e-6) and the sequential
    orchestration (1e-9), and report the measured speedup (wall times are
    advisory).

``python -m repro bench --scale``
    Run the streaming-DP scale suite: long-horizon / big-fleet instances
    solved with checkpointed O(sqrt(T))-memory backtracking, gated on cost and
    schedule equality (1e-9) against the classic all-tables pass, with
    wall-time and peak-memory columns (``--full`` for the headline T=5*10^4 /
    d=4 sizes, written to ``BENCH_scale.json``).

Scenarios are described by a fleet preset (``--fleet``) and a trace generator
(``--trace``) with ``--slots`` and ``--seed``; a custom demand trace can be
supplied from a CSV file with ``--demand-file`` (one value per line).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .analysis import compute_metrics, format_table, rows_to_csv
from .core import ProblemInstance
from .dispatch import DispatchSolver
from .offline import approximation_guarantee, solve_approx, solve_optimal
from .online import (
    AlgorithmA,
    AlgorithmB,
    AlgorithmC,
    AllOn,
    FollowDemand,
    LazyCapacityProvisioning,
    Reactive,
    optimal_static_schedule,
    run_online,
)
from .analysis.competitive import theoretical_bound
from .workloads import (
    bursty_trace,
    constant_trace,
    cpu_gpu_fleet,
    diurnal_trace,
    fleet_instance,
    load_independent_fleet,
    mmpp_trace,
    old_new_fleet,
    random_walk_trace,
    single_type_fleet,
    spike_trace,
    three_tier_fleet,
)

__all__ = ["main", "build_parser"]


FLEETS: Dict[str, Callable[[], list]] = {
    "single": lambda: single_type_fleet(),
    "cpu-gpu": lambda: cpu_gpu_fleet(),
    "old-new": lambda: old_new_fleet(),
    "three-tier": lambda: three_tier_fleet(),
    "load-independent": lambda: load_independent_fleet(),
}

TRACES: Dict[str, Callable[[int, Optional[int]], np.ndarray]] = {
    "diurnal": lambda T, seed: diurnal_trace(T, period=max(4, T // 2), base=1.0, peak=10.0, rng=seed),
    "bursty": lambda T, seed: bursty_trace(T, rng=seed),
    "mmpp": lambda T, seed: mmpp_trace(T, rng=seed),
    "spikes": lambda T, seed: spike_trace(T, spike_height=6.0, spike_every=max(2, T // 6), rng=seed),
    "constant": lambda T, seed: constant_trace(T, level=4.0),
    "random-walk": lambda T, seed: random_walk_trace(T, rng=seed),
}

ONLINE_ALGORITHMS: Dict[str, Callable[[argparse.Namespace], object]] = {
    "A": lambda args: AlgorithmA(),
    "B": lambda args: AlgorithmB(),
    "C": lambda args: AlgorithmC(epsilon=args.epsilon or 0.25),
    "reactive": lambda args: Reactive(),
    "follow-demand": lambda args: FollowDemand(),
    "all-on": lambda args: AllOn(),
    "lcp": lambda args: LazyCapacityProvisioning(allow_heterogeneous=True),
}


# --------------------------------------------------------------------------- #
# Scenario construction
# --------------------------------------------------------------------------- #


def _load_demand_file(path: str) -> np.ndarray:
    values = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip().split(",")[0]
            if line:
                values.append(float(line))
    if not values:
        raise SystemExit(f"demand file {path!r} contains no values")
    return np.asarray(values, dtype=float)


def _build_instance(args: argparse.Namespace) -> ProblemInstance:
    fleet = FLEETS[args.fleet]()
    if getattr(args, "demand_file", None):
        demand = _load_demand_file(args.demand_file)
    else:
        demand = TRACES[args.trace](args.slots, args.seed)
    instance = fleet_instance(fleet, demand, name=f"{args.fleet}/{args.trace}")
    if getattr(args, "price_amplitude", 0.0):
        T = instance.T
        prices = 1.0 + args.price_amplitude * np.sin(np.arange(T) / max(T, 1) * 2 * np.pi)
        instance = instance.with_price_profile(prices)
    return instance


def _schedule_csv(instance: ProblemInstance, schedule) -> str:
    rows = []
    for t in range(instance.T):
        row = {"slot": t, "demand": float(instance.demand[t])}
        for j, st in enumerate(instance.server_types):
            row[f"x_{st.name}"] = int(schedule.x[t, j])
        rows.append(row)
    return rows_to_csv(rows)


# --------------------------------------------------------------------------- #
# Sub-commands
# --------------------------------------------------------------------------- #


def _cmd_trace(args: argparse.Namespace) -> int:
    demand = TRACES[args.trace](args.slots, args.seed)
    text = "\n".join(f"{value:.6g}" for value in demand)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(demand)} slots to {args.out}")
    else:
        print(text)
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = _build_instance(args)
    print(instance.describe())
    dispatcher = DispatchSolver(instance)
    streaming = dict(
        checkpoint_every=args.checkpoint_every,
        value_dtype="float32" if args.float32 else None,
    )
    if args.epsilon is None:
        result = solve_optimal(instance, dispatcher=dispatcher, **streaming)
        label = "exact optimum"
        guarantee = 1.0
    else:
        result = solve_approx(instance, epsilon=args.epsilon, dispatcher=dispatcher, **streaming)
        label = f"(1+eps)-approximation, eps={args.epsilon}"
        guarantee = approximation_guarantee(result.gamma)
    metrics = compute_metrics(instance, result.schedule, name=label, dispatcher=dispatcher)
    rows = [dict(metrics.as_row(), guarantee=round(guarantee, 3), states_explored=result.num_states_explored)]
    print()
    print(format_table(rows, title="offline solution"))
    if args.schedule_csv:
        print()
        print(_schedule_csv(instance, result.schedule), end="")
    return 0


def _cmd_online(args: argparse.Namespace) -> int:
    instance = _build_instance(args)
    print(instance.describe())
    dispatcher = DispatchSolver(instance)
    algorithm = ONLINE_ALGORITHMS[args.algorithm](args)
    result = run_online(instance, algorithm, dispatcher=dispatcher)
    optimum = solve_optimal(instance, dispatcher=dispatcher, return_schedule=False).cost
    row = {
        "algorithm": result.algorithm,
        "cost": round(result.cost, 3),
        "optimal": round(optimum, 3),
        "ratio": round(result.cost / optimum, 4) if optimum > 0 else float("inf"),
    }
    if args.algorithm in ("A", "B", "C"):
        row["proven_bound"] = round(
            theoretical_bound(instance, args.algorithm, epsilon=args.epsilon or 0.25), 3
        )
    print()
    print(format_table([row], title="online run"))
    if args.schedule_csv:
        print()
        print(_schedule_csv(instance, result.schedule), end="")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    instance = _build_instance(args)
    print(instance.describe())
    dispatcher = DispatchSolver(instance)
    optimum = solve_optimal(instance, dispatcher=dispatcher)
    rows = [
        dict(compute_metrics(instance, optimum.schedule, name="offline optimum", dispatcher=dispatcher).as_row(),
             ratio=1.0)
    ]
    try:
        static = optimal_static_schedule(instance, dispatcher=dispatcher)
        metrics = compute_metrics(instance, static, name="optimal static", dispatcher=dispatcher)
        rows.append(dict(metrics.as_row(), ratio=round(metrics.total_cost / optimum.cost, 3)))
    except ValueError:
        pass
    algorithms: List[str] = ["A", "B", "reactive", "follow-demand", "all-on"]
    if instance.d == 1:
        algorithms.insert(2, "lcp")
    for key in algorithms:
        result = run_online(instance, ONLINE_ALGORITHMS[key](args), dispatcher=dispatcher)
        metrics = compute_metrics(instance, result.schedule, name=result.algorithm, dispatcher=dispatcher)
        rows.append(dict(metrics.as_row(), ratio=round(metrics.total_cost / optimum.cost, 3)))
    print()
    print(format_table(rows, title=f"algorithm comparison on {instance.name} (T={instance.T}, d={instance.d})"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .exp import SweepPlan, run_plan
    from .exp.engine import ALGORITHM_BUILDERS, spec as algo_spec

    seeds = [int(s) for s in str(args.seeds).split(",") if s.strip()] if args.seeds else [args.seed]
    instances = []
    for seed in seeds:
        ns = argparse.Namespace(**vars(args))
        ns.seed = seed
        instance = _build_instance(ns)
        if len(seeds) > 1:
            instance = instance.with_demand(instance.demand, name=f"{instance.name}/seed{seed}")
        instances.append(instance)

    specs = []
    for key in args.algorithms.split(","):
        key = key.strip()
        if not key:
            continue
        if key not in ALGORITHM_BUILDERS:
            raise SystemExit(f"unknown algorithm {key!r} (choose from {', '.join(sorted(ALGORITHM_BUILDERS))})")
        if key == "C":
            specs.append(algo_spec("C", epsilon=args.epsilon or 0.25))
        elif key == "lcp":
            specs.append(algo_spec("lcp", bound=None, allow_heterogeneous=True))
        else:
            specs.append(algo_spec(key))
    if not specs:
        raise SystemExit("no algorithms selected")

    report = run_plan(SweepPlan(
        instances=tuple(instances),
        algorithms=tuple(specs),
        jobs=args.jobs,
        checkpoint_every=args.checkpoint_every,
    ))
    rows = []
    for record in report:
        row = {
            "instance": record.instance,
            "algorithm": record.algorithm,
            "cost": round(record.cost, 3),
            "optimal": round(record.optimal_cost, 3),
            "ratio": round(record.ratio, 4),
            "seconds": round(record.elapsed_seconds, 4),
        }
        if record.bound is not None:
            row["bound"] = round(record.bound, 3)
            row["within_bound"] = bool(record.within_bound)
        rows.append(row)
    print(format_table(
        rows,
        title=f"shared-context sweep — {len(instances)} instance(s) x {len(specs)} algorithm(s), "
              f"jobs={report.meta.get('jobs', 1)}, {report.total_seconds:.3f}s total",
    ))
    if args.json:
        report.write_json(args.json)
        print(f"\nwrote {args.json}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import PINNED_SWEEP_COSTS, run_scale_bench, run_smoke_bench, run_sweep_bench

    selected = [flag for flag in ("smoke", "sweep", "scale") if getattr(args, flag)]
    if len(selected) > 1:
        print(f"choose one of --smoke/--sweep/--scale per invocation (got {', '.join('--' + f for f in selected)}); "
              "run them as separate commands — `make bench-smoke` chains all three gates",
              file=sys.stderr)
        return 2
    if args.full and not args.scale:
        print("--full only applies to --scale", file=sys.stderr)
        return 2

    tolerance = args.tolerance

    if args.scale:
        try:
            payload = run_scale_bench(
                full=args.full, json_path=args.json,
                tolerance=1e-9 if tolerance is None else tolerance,
            )
        except AssertionError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        table_rows = [
            {
                "instance": row["instance"],
                "mode": row["mode"],
                "T": row["T"],
                "states": row["grid_states"],
                "k": row.get("checkpoint_every"),
                "seconds": row["wall_seconds"],
                "peak_mb": row["tracemalloc_peak_mb"],
                "cost": None if row.get("cost") is None else round(row["cost"], 2),
            }
            for row in payload["rows"]
        ]
        print(format_table(table_rows, title="bench scale — streaming DP vs all-tables history"))
        for cmp_row in payload["comparisons"]:
            print(
                f"\n{cmp_row['instance']}: streaming == keep-tables "
                f"(cost deviation {cmp_row['cost_deviation']:.2e}, schedules identical), "
                f"peak memory {cmp_row['memory_ratio']}x smaller, "
                f"end-to-end {cmp_row['stream_wall_vs_forward']}x the forward-pass wall time"
            )
        if args.json:
            print(f"\nwrote {args.json}")
        return 0

    if tolerance is None:
        tolerance = 1e-6

    if args.sweep:
        try:
            payload = run_sweep_bench(tolerance=tolerance, json_path=args.json, jobs=args.jobs)
        except AssertionError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        table_rows = [
            {
                "experiment": name,
                "instance": row["instance"],
                "algorithm": row["algorithm"],
                "cost": round(row["cost"], 4),
                "ratio": round(row["ratio"], 4),
                "seconds": row["elapsed_seconds"],
            }
            for name, experiment in payload["experiments"].items()
            for row in experiment["rows"]
        ]
        print(format_table(table_rows, title="bench sweep — combined THM8+13+15+22 via the shared-context engine"))
        print(f"\nall {len(PINNED_SWEEP_COSTS)} pinned PR-1 costs reproduced within "
              f"{tolerance:g} (max deviation {payload['max_cost_deviation']:.2e})")
        print(f"wall time: engine {payload['engine_wall_seconds']:.3f}s, "
              f"sequential orchestration {payload['sequential_wall_seconds']:.3f}s "
              f"({payload['speedup_vs_sequential']}x), "
              f"PR-1 reference {payload['pr1_reference']['wall_seconds']:.3f}s "
              f"({payload['speedup_vs_pr1']}x, advisory)")
        if args.json:
            print(f"wrote {args.json}")
        return 0

    if not args.smoke:
        print("the full benchmark harness lives in benchmarks/ (run `make bench`); "
              "use `repro bench --smoke` for the pinned exactness subset or "
              "`repro bench --sweep` for the sweep-engine regression", file=sys.stderr)
        return 2
    try:
        rows = run_smoke_bench(tolerance=tolerance, json_path=args.json)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    table_rows = [
        {
            "instance": row["instance"],
            "T": row["T"],
            "d": row["d"],
            "cost": round(row["optimal_cost"], 6),
            "deviation": f"{row['deviation']:.2e}",
            "seconds": row["seconds"],
            "states": row["states_explored"],
            "cache_hit_rate": row["dispatch"]["cache_hit_rate"],
        }
        for row in rows
    ]
    print(format_table(table_rows, title="bench smoke — pinned exactness regression"))
    print(f"\nall {len(rows)} pinned optimal costs reproduced within {tolerance:g}")
    if args.json:
        print(f"wrote {args.json}")
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fleet", choices=sorted(FLEETS), default="cpu-gpu",
                        help="fleet preset (default: cpu-gpu)")
    parser.add_argument("--trace", choices=sorted(TRACES), default="diurnal",
                        help="synthetic demand trace (default: diurnal)")
    parser.add_argument("--slots", type=int, default=48, help="number of time slots (default: 48)")
    parser.add_argument("--seed", type=int, default=0, help="random seed for the trace generator")
    parser.add_argument("--demand-file", help="CSV file with one demand value per line (overrides --trace)")
    parser.add_argument("--price-amplitude", type=float, default=0.0,
                        help="add a sinusoidal electricity-price profile with this amplitude "
                             "(makes the operating costs time-dependent)")
    parser.add_argument("--schedule-csv", action="store_true",
                        help="also print the computed schedule as CSV")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Right-sizing heterogeneous data centers (Albers & Quedenfeld, SPAA 2021) — "
                    "offline and online solvers on synthetic scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_trace = sub.add_parser("trace", help="generate a synthetic demand trace")
    p_trace.add_argument("--trace", choices=sorted(TRACES), default="diurnal")
    p_trace.add_argument("--slots", type=int, default=48)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", help="write the trace to this file instead of stdout")
    p_trace.set_defaults(func=_cmd_trace)

    p_solve = sub.add_parser(
        "solve",
        help="solve a scenario offline (exact or approximate)",
        epilog="Scaling limits: the classic DP keeps one value tensor per slot "
               "(O(T * |M|) memory); long horizons stream the value pass with "
               "checkpointed backtracking instead (O(sqrt(T) * |M|), auto-enabled "
               "above ~32 MB of table history). --checkpoint-every forces a window, "
               "--float32 halves the stream; for fleets with thousands of servers "
               "per type combine with --epsilon (geometric grids). "
               "See `repro bench --scale` and docs/PERFORMANCE.md.",
    )
    _add_scenario_arguments(p_solve)
    p_solve.add_argument("--epsilon", type=float, default=None,
                         help="use the (1+eps)-approximation instead of the exact solver")
    p_solve.add_argument("--checkpoint-every", type=_positive_int, default=None,
                         help="streaming-DP checkpoint window (default: auto — full history "
                              "on small instances, sqrt(T) on long horizons)")
    p_solve.add_argument("--float32", action="store_true",
                         help="run the DP value stream in float32 (half the memory; the "
                              "reported cost is re-evaluated in float64)")
    p_solve.set_defaults(func=_cmd_solve)

    p_online = sub.add_parser("online", help="run an online algorithm on a scenario")
    _add_scenario_arguments(p_online)
    p_online.add_argument("--algorithm", choices=sorted(ONLINE_ALGORITHMS), default="A")
    p_online.add_argument("--epsilon", type=float, default=None,
                          help="eps parameter for Algorithm C (default 0.25)")
    p_online.set_defaults(func=_cmd_online)

    p_compare = sub.add_parser("compare", help="compare the algorithm suite on one scenario")
    _add_scenario_arguments(p_compare)
    p_compare.add_argument("--epsilon", type=float, default=None)
    p_compare.set_defaults(func=_cmd_compare)

    p_sweep = sub.add_parser("sweep", help="batch algorithms x instances through the shared-context engine")
    _add_scenario_arguments(p_sweep)
    p_sweep.add_argument("--algorithms", default="A,B,C",
                         help="comma-separated algorithm keys (default: A,B,C); "
                              "also: lcp, reactive, follow-demand, all-on")
    p_sweep.add_argument("--epsilon", type=float, default=None,
                         help="eps parameter for Algorithm C (default 0.25)")
    p_sweep.add_argument("--seeds", default=None,
                         help="comma-separated trace seeds — one instance per seed (overrides --seed)")
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="shard instances across this many worker processes")
    p_sweep.add_argument("--checkpoint-every", type=_positive_int, default=None,
                         help="checkpoint window of the shared prefix-DP value streams "
                              "(O(sqrt(T)) memory for long-horizon sweeps; default: full history)")
    p_sweep.add_argument("--json", default=None, help="write the full report to this JSON file")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_bench = sub.add_parser("bench", help="run the benchmark regression harness")
    p_bench.add_argument("--smoke", action="store_true",
                         help="run the <30s pinned-instance exactness subset "
                              "(the full harness lives in benchmarks/)")
    p_bench.add_argument("--sweep", action="store_true",
                         help="run the combined THM8+13+15+22 sweep-engine regression "
                              "(pinned costs gate at --tolerance; wall times advisory)")
    p_bench.add_argument("--scale", action="store_true",
                         help="run the streaming-DP scale suite: checkpointed O(sqrt(T))-memory "
                              "backtracking vs the all-tables pass, gated on cost/schedule "
                              "equality (1e-9), with peak-memory columns")
    p_bench.add_argument("--full", action="store_true",
                         help="with --scale: the headline sizes (T up to 50000, d=4 geometric "
                              "fleets) instead of the quick regression subset")
    p_bench.add_argument("--tolerance", type=float, default=None,
                         help="maximum allowed cost deviation (default: 1e-6 for --smoke/--sweep "
                              "against the pinned seed costs, 1e-9 for --scale streaming equality)")
    p_bench.add_argument("--jobs", type=int, default=1,
                         help="process sharding for --sweep (default: 1)")
    p_bench.add_argument("--json", default=None, help="also write the measurements to this JSON file")
    p_bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
