"""Command-line interface.

The CLI wraps the most common workflows so the library can be exercised
without writing Python:

``python -m repro trace``
    Generate a synthetic demand trace (CSV on stdout or to a file).

``python -m repro solve``
    Solve a scenario offline — exactly or with the (1+eps)-approximation — and
    print the schedule summary (optionally the full schedule as CSV).

``python -m repro online``
    Run one of the online algorithms over a scenario and report its cost and
    empirical competitive ratio against the offline optimum.

``python -m repro compare``
    Run the whole algorithm suite on one scenario and print the comparison
    table (the same table the COMP benchmark regenerates).

``python -m repro scenarios list|describe|build|smoke``
    Inspect and exercise the declarative scenario registry: list the
    registered families, show one family's parameters and defaults, build an
    instance from ``NAME --param k=v --seed N``, or run the smoke suite (every
    family at a tiny size, one algorithm through each — the ``make
    scenarios-smoke`` gate).

``python -m repro sweep``
    Batch several online algorithms (times several seeds) through the
    shared-context sweep engine: one dispatch solver, one set of grid
    operating-cost tensors and one memoised prefix-DP value stream per
    instance, with optional process sharding (``--jobs``) and machine-readable
    output (``--json``).  Instances come from ``--fleet``/``--trace`` as
    before, or declaratively: ``--scenario NAME[,NAME...] --param k=v`` builds
    registry specs, ``--plan plan.json`` compiles a whole selection file; both
    materialise instances lazily inside worker shards and stamp the spec
    (name + params + seed) into every record.

``python -m repro serve replay|bench|latency|smoke``
    The live replay & serving subsystem: stream a scenario tick by tick
    through a :class:`~repro.serve.ControllerSession` (``replay`` — with
    optional time-warp pacing, per-tick JSONL telemetry, a mid-stream
    checkpoint/restore round-trip and batch-equivalence verification), run
    the multi-tenant serving benchmark (``bench`` — latency percentiles and
    shared-vs-isolated cache counters for 1/8/64 concurrent sessions), gate
    the microsecond tick hot path (``latency`` — p99 of the per-tick floor
    over repeated prewarmed replays against ``--budget-us``, the ``make
    bench-latency-smoke`` CI gate), or run the streaming-equivalence gate
    over every registered scenario family (``smoke`` — the ``make
    serve-smoke`` CI gate).  ``--backend numpy|numba`` selects the compiled
    kernel backend for any serve action.

``python -m repro bench --smoke``
    Run the <30s benchmark regression harness: solve three pinned instances
    and assert the DP still returns seed-identical optimal costs (guards the
    batched dispatch engine against accuracy drift).

``python -m repro bench --sweep``
    Run the combined THM8+13+15+22 ratio workload through the sweep engine,
    assert every cost matches the pinned PR-1 values (1e-6) and the sequential
    orchestration (1e-9), and report the measured speedup (wall times are
    advisory).

``python -m repro bench --scale``
    Run the streaming-DP scale suite: long-horizon / big-fleet instances
    solved with checkpointed O(sqrt(T))-memory backtracking, gated on cost and
    schedule equality (1e-9) against the classic all-tables pass, with
    wall-time and peak-memory columns (``--full`` for the headline T=5*10^4 /
    d=4 sizes, written to ``BENCH_scale.json``).

``python -m repro bench --counters``
    Re-run the pinned multi-tenant serve workload three ways (cold,
    warm-started bisection, prewarmed solution tables) and assert every
    hot-path work counter — unique solves, slot queries, tensor hits/misses,
    grid hit rate, warm hits, table gathers — matches its pinned value
    exactly (part of ``make perf-regress``).

``python -m repro bench --latest``
    Print the newest entry of every ``BENCH_*.json`` trend series (the
    rolling env-stamped ``"runs"`` history the gated benches append to) plus
    its numeric deltas against the previous run.

Scenarios are described by a fleet preset (``--fleet``) and a trace generator
(``--trace``) with ``--slots`` and ``--seed``; a custom demand trace can be
supplied from a CSV file with ``--demand-file`` (one value per line).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .analysis import compute_metrics, format_table, rows_to_csv
from .core import ProblemInstance
from .dispatch import DispatchSolver
from .offline import approximation_guarantee, solve_approx, solve_optimal
from .online import (
    AlgorithmA,
    AlgorithmB,
    AlgorithmC,
    AllOn,
    FollowDemand,
    LazyCapacityProvisioning,
    Reactive,
    optimal_static_schedule,
    run_online,
)
from .analysis.competitive import theoretical_bound
from .workloads import (
    cpu_gpu_fleet,
    fleet_instance,
    load_independent_fleet,
    named_trace,
    old_new_fleet,
    single_type_fleet,
    three_tier_fleet,
    trace_preset_names,
)

__all__ = ["main", "build_parser"]


FLEETS: Dict[str, Callable[[], list]] = {
    "single": lambda: single_type_fleet(),
    "cpu-gpu": lambda: cpu_gpu_fleet(),
    "old-new": lambda: old_new_fleet(),
    "three-tier": lambda: three_tier_fleet(),
    "load-independent": lambda: load_independent_fleet(),
}

# The named presets live in workloads.traces so the serve feeds resolve the
# exact same parameterisations (`SyntheticFeed("diurnal")` == `--trace diurnal`).
TRACES: Dict[str, Callable[[int, Optional[int]], np.ndarray]] = {
    name: (lambda T, seed, _name=name: named_trace(_name, T, rng=seed))
    for name in trace_preset_names()
}

ONLINE_ALGORITHMS: Dict[str, Callable[[argparse.Namespace], object]] = {
    "A": lambda args: AlgorithmA(),
    "B": lambda args: AlgorithmB(),
    "C": lambda args: AlgorithmC(epsilon=args.epsilon or 0.25),
    "reactive": lambda args: Reactive(),
    "follow-demand": lambda args: FollowDemand(),
    "all-on": lambda args: AllOn(),
    "lcp": lambda args: LazyCapacityProvisioning(allow_heterogeneous=True),
}


# --------------------------------------------------------------------------- #
# Scenario construction
# --------------------------------------------------------------------------- #


def _load_demand_file(path: str) -> np.ndarray:
    values = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip().split(",")[0]
            if line:
                values.append(float(line))
    if not values:
        raise SystemExit(f"demand file {path!r} contains no values")
    return np.asarray(values, dtype=float)


def _build_instance(args: argparse.Namespace) -> ProblemInstance:
    fleet = FLEETS[args.fleet]()
    if getattr(args, "demand_file", None):
        demand = _load_demand_file(args.demand_file)
    else:
        demand = TRACES[args.trace](args.slots, args.seed)
    instance = fleet_instance(fleet, demand, name=f"{args.fleet}/{args.trace}")
    if getattr(args, "price_amplitude", 0.0):
        T = instance.T
        prices = 1.0 + args.price_amplitude * np.sin(np.arange(T) / max(T, 1) * 2 * np.pi)
        instance = instance.with_price_profile(prices)
    return instance


def _schedule_csv(instance: ProblemInstance, schedule) -> str:
    rows = []
    for t in range(instance.T):
        row = {"slot": t, "demand": float(instance.demand[t])}
        for j, st in enumerate(instance.server_types):
            row[f"x_{st.name}"] = int(schedule.x[t, j])
        rows.append(row)
    return rows_to_csv(rows)


# --------------------------------------------------------------------------- #
# Sub-commands
# --------------------------------------------------------------------------- #


def _cmd_trace(args: argparse.Namespace) -> int:
    demand = TRACES[args.trace](args.slots, args.seed)
    text = "\n".join(f"{value:.6g}" for value in demand)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(demand)} slots to {args.out}")
    else:
        print(text)
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = _build_instance(args)
    print(instance.describe())
    dispatcher = DispatchSolver(instance)
    streaming = dict(
        checkpoint_every=args.checkpoint_every,
        value_dtype="float32" if args.float32 else None,
    )
    if args.epsilon is None:
        result = solve_optimal(instance, dispatcher=dispatcher, **streaming)
        label = "exact optimum"
        guarantee = 1.0
    else:
        result = solve_approx(instance, epsilon=args.epsilon, dispatcher=dispatcher, **streaming)
        label = f"(1+eps)-approximation, eps={args.epsilon}"
        guarantee = approximation_guarantee(result.gamma)
    metrics = compute_metrics(instance, result.schedule, name=label, dispatcher=dispatcher)
    rows = [dict(metrics.as_row(), guarantee=round(guarantee, 3), states_explored=result.num_states_explored)]
    print()
    print(format_table(rows, title="offline solution"))
    if args.schedule_csv:
        print()
        print(_schedule_csv(instance, result.schedule), end="")
    return 0


def _cmd_online(args: argparse.Namespace) -> int:
    instance = _build_instance(args)
    print(instance.describe())
    dispatcher = DispatchSolver(instance)
    algorithm = ONLINE_ALGORITHMS[args.algorithm](args)
    result = run_online(instance, algorithm, dispatcher=dispatcher)
    optimum = solve_optimal(instance, dispatcher=dispatcher, return_schedule=False).cost
    row = {
        "algorithm": result.algorithm,
        "cost": round(result.cost, 3),
        "optimal": round(optimum, 3),
        "ratio": round(result.cost / optimum, 4) if optimum > 0 else float("inf"),
    }
    if args.algorithm in ("A", "B", "C"):
        row["proven_bound"] = round(
            theoretical_bound(instance, args.algorithm, epsilon=args.epsilon or 0.25), 3
        )
    print()
    print(format_table([row], title="online run"))
    if args.schedule_csv:
        print()
        print(_schedule_csv(instance, result.schedule), end="")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    instance = _build_instance(args)
    print(instance.describe())
    dispatcher = DispatchSolver(instance)
    optimum = solve_optimal(instance, dispatcher=dispatcher)
    rows = [
        dict(compute_metrics(instance, optimum.schedule, name="offline optimum", dispatcher=dispatcher).as_row(),
             ratio=1.0)
    ]
    try:
        static = optimal_static_schedule(instance, dispatcher=dispatcher)
        metrics = compute_metrics(instance, static, name="optimal static", dispatcher=dispatcher)
        rows.append(dict(metrics.as_row(), ratio=round(metrics.total_cost / optimum.cost, 3)))
    except ValueError:
        pass
    algorithms: List[str] = ["A", "B", "reactive", "follow-demand", "all-on"]
    if instance.d == 1:
        algorithms.insert(2, "lcp")
    for key in algorithms:
        result = run_online(instance, ONLINE_ALGORITHMS[key](args), dispatcher=dispatcher)
        metrics = compute_metrics(instance, result.schedule, name=result.algorithm, dispatcher=dispatcher)
        rows.append(dict(metrics.as_row(), ratio=round(metrics.total_cost / optimum.cost, 3)))
    print()
    print(format_table(rows, title=f"algorithm comparison on {instance.name} (T={instance.T}, d={instance.d})"))
    return 0


def _parse_param_overrides(pairs: Sequence[str]) -> dict:
    """Parse repeated ``--param k=v`` flags; values go through JSON first."""
    params = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        key = key.strip()
        if not sep or not key:
            raise SystemExit(f"--param expects K=V, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _algorithm_specs(args: argparse.Namespace) -> tuple:
    from .exp.engine import ALGORITHM_BUILDERS, spec as algo_spec

    selected = args.algorithms if args.algorithms is not None else "A,B,C"
    specs = []
    for key in selected.split(","):
        key = key.strip()
        if not key:
            continue
        if key not in ALGORITHM_BUILDERS:
            raise SystemExit(f"unknown algorithm {key!r} (choose from {', '.join(sorted(ALGORITHM_BUILDERS))})")
        if key == "C":
            specs.append(algo_spec("C", epsilon=args.epsilon or 0.25))
        elif key == "lcp":
            specs.append(algo_spec("lcp", bound=None, allow_heterogeneous=True))
        else:
            specs.append(algo_spec(key))
    return tuple(specs)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .exp import SweepPlan, run_plan

    if args.plan and args.scenario:
        raise SystemExit("--plan and --scenario are mutually exclusive")

    if args.plan:
        from dataclasses import replace

        from .scenarios import ScenarioError, load_plan

        # the plan file is the single source of truth for what runs — flags
        # that would silently lose to it are rejected instead of ignored
        # (--jobs/--checkpoint-every/--json tune *how*, so they compose)
        for flag, value in (("--param", args.param or None), ("--seeds", args.seeds),
                            ("--seed", args.seed), ("--epsilon", args.epsilon)):
            if value is not None:
                raise SystemExit(f"{flag} does not apply with --plan — put it in the plan file")
        try:
            plan = load_plan(args.plan, jobs=args.jobs, checkpoint_every=args.checkpoint_every)
        except (ScenarioError, ValueError, OSError) as exc:
            raise SystemExit(str(exc))
        if plan.algorithms or plan.offline:
            if args.algorithms:
                raise SystemExit("--algorithms does not apply with --plan — "
                                 "the plan file already selects its algorithms")
        else:
            plan = replace(plan, algorithms=_algorithm_specs(args))
        if not plan.algorithms and not plan.offline:
            raise SystemExit("no algorithms selected")
    elif args.scenario:
        from .scenarios import ScenarioError, compile_plan

        if args.seeds:
            seeds = [int(s) for s in str(args.seeds).split(",") if s.strip()]
        elif args.seed is not None:
            seeds = [args.seed]
        else:
            seeds = None  # keep each family's default seed
        specs = _algorithm_specs(args)
        if not specs:
            raise SystemExit("no algorithms selected")
        selection = {
            "scenarios": [name.strip() for name in args.scenario.split(",") if name.strip()],
            "params": _parse_param_overrides(args.param),
            "seeds": seeds,
            "algorithms": list(specs),
            "jobs": args.jobs or 1,
            "checkpoint_every": args.checkpoint_every,
        }
        try:
            plan = compile_plan(selection)
        except (ScenarioError, ValueError) as exc:
            raise SystemExit(str(exc))
    else:
        if args.seeds:
            seeds = [int(s) for s in str(args.seeds).split(",") if s.strip()]
        else:
            seeds = [0 if args.seed is None else args.seed]
        instances = []
        for seed in seeds:
            ns = argparse.Namespace(**vars(args))
            ns.seed = seed
            instance = _build_instance(ns)
            if len(seeds) > 1:
                instance = instance.with_demand(instance.demand, name=f"{instance.name}/seed{seed}")
            instances.append(instance)
        specs = _algorithm_specs(args)
        if not specs:
            raise SystemExit("no algorithms selected")
        plan = SweepPlan(
            instances=tuple(instances),
            algorithms=specs,
            jobs=args.jobs or 1,
            checkpoint_every=args.checkpoint_every,
        )

    report = run_plan(plan)
    rows = []
    for record in report:
        row = {
            "instance": record.instance,
            "algorithm": record.algorithm,
            "cost": round(record.cost, 3),
            "optimal": round(record.optimal_cost, 3),
            "ratio": round(record.ratio, 4),
            "seconds": round(record.elapsed_seconds, 4),
        }
        if record.scenario is not None and record.scenario.get("seed") is not None:
            row["seed"] = record.scenario["seed"]
        if record.bound is not None:
            row["bound"] = round(record.bound, 3)
            row["within_bound"] = bool(record.within_bound)
        rows.append(row)
    n_algorithms = len(plan.algorithms) + len(plan.offline)
    print(format_table(
        rows,
        title=f"shared-context sweep — {report.meta.get('instances', 0)} instance(s) x "
              f"{n_algorithms} run(s) each, "
              f"jobs={report.meta.get('jobs', 1)}, {report.total_seconds:.3f}s total",
    ))
    if args.json:
        report.write_json(args.json)
        print(f"\nwrote {args.json}")
    return 0


# --------------------------------------------------------------------------- #
# Scenario registry sub-commands
# --------------------------------------------------------------------------- #


def _scenarios_smoke(json_path: Optional[str] = None) -> int:
    """Build every registered family at its smoke size, run one algorithm each."""
    from . import scenarios
    from .exp import run_instance
    from .exp.engine import spec as algo_spec

    rows = []
    failures = []
    for name in scenarios.names():
        fam = scenarios.family(name)
        spec_obj = scenarios.ScenarioSpec(name, dict(fam.smoke_params))
        start = time.perf_counter()
        try:
            instance = scenarios.build(spec_obj)
            records = run_instance(
                instance, algorithms=(algo_spec("A", bound=None),), scenario=spec_obj
            )
            record = records[0]
            elapsed = time.perf_counter() - start
            ok = np.isfinite(record.cost) and record.ratio >= 1.0 - 1e-9
            if not ok:
                failures.append(f"{name}: cost {record.cost!r} vs optimum {record.optimal_cost!r}")
            rows.append(
                {
                    "scenario": name,
                    "instance": instance.name,
                    "T": instance.T,
                    "d": instance.d,
                    "optimal": round(record.optimal_cost, 3),
                    "algorithm_A": round(record.cost, 3),
                    "ratio": round(record.ratio, 4),
                    "seconds": round(elapsed, 4),
                    "ok": ok,
                }
            )
        except Exception as exc:  # a broken family must fail the gate, not crash it
            failures.append(f"{name}: {exc!r}")
            rows.append({"scenario": name, "instance": "-", "T": "-", "d": "-",
                         "optimal": "-", "algorithm_A": "-", "ratio": "-",
                         "seconds": round(time.perf_counter() - start, 4), "ok": False})
    print(format_table(rows, title=f"scenarios smoke — {len(scenarios.names())} registered families"))
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump({"scenarios_smoke": rows}, handle, indent=2, default=str)
        print(f"\nwrote {json_path}")
    if failures:
        print("\nFAIL:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print(f"\nall {len(rows)} families built and ran cleanly")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from . import scenarios

    if args.action == "smoke":
        return _scenarios_smoke(json_path=args.json)

    if args.action == "list":
        rows = []
        for name in scenarios.names():
            fam = scenarios.family(name)
            defaults = fam.defaults
            rows.append(
                {
                    "scenario": name,
                    "T": defaults.get("T", "-"),
                    "seed": defaults.get("seed", "-"),
                    "params": len(defaults),
                    "tags": ",".join(fam.tags) or "-",
                    "description": (fam.description[:58] + "…") if len(fam.description) > 59 else fam.description,
                }
            )
        print(format_table(rows, title=f"{len(rows)} registered scenario families "
                                       "(`repro scenarios describe NAME` for parameters)"))
        return 0

    if not args.name:
        raise SystemExit(f"`repro scenarios {args.action}` needs a scenario name "
                         f"(see `repro scenarios list`)")
    try:
        fam = scenarios.family(args.name)
    except scenarios.UnknownScenarioError as exc:
        raise SystemExit(str(exc))

    if args.action == "describe":
        info = fam.describe()
        print(f"scenario family {info['name']!r}")
        print(f"  {info['description']}")
        if info["tags"]:
            print(f"  tags: {', '.join(info['tags'])}")
        print()
        print(format_table(
            [{"param": k, "default": repr(v)} for k, v in info["params"].items()],
            title="parameters (override with --param K=V; 'seed' drives the unified seed streams)",
        ))
        if info["smoke_params"]:
            smoke = ", ".join(f"{k}={v}" for k, v in info["smoke_params"].items())
            print(f"\nsmoke configuration: {smoke}")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(info, handle, indent=2, default=repr)
            print(f"\nwrote {args.json}")
        return 0

    # action == "build"
    try:
        spec_obj = scenarios.validate(
            scenarios.ScenarioSpec(args.name, _parse_param_overrides(args.param), args.seed)
        )
        instance = scenarios.build(spec_obj)
    except scenarios.ScenarioError as exc:
        raise SystemExit(str(exc))
    print(f"spec: {spec_obj.to_json()}")
    print()
    print(instance.describe())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(spec_obj.to_dict(), handle, indent=2)
        print(f"\nwrote {args.json}")
    return 0


# --------------------------------------------------------------------------- #
# Serve sub-commands
# --------------------------------------------------------------------------- #


def _serve_algorithm(args: argparse.Namespace) -> dict:
    """The algorithm selection of a serve command, as a build_serve_algorithm dict."""
    params = {}
    if args.algorithm == "C" and args.epsilon is not None:
        params["epsilon"] = args.epsilon
    return {"kind": args.algorithm, "params": params}


def _serve_smoke(json_path: Optional[str] = None, tolerance: float = 1e-9) -> int:
    """The streaming-equivalence gate: every registered scenario family must
    replay through a ControllerSession — including one mid-stream
    checkpoint/restore round-trip — and reproduce the batch ``run_online``
    schedule exactly and its cost within ``tolerance``."""
    from . import scenarios
    from .serve import verify_replay

    rows = []
    failures = []
    for name in scenarios.names():
        fam = scenarios.family(name)
        spec_obj = scenarios.ScenarioSpec(name, dict(fam.smoke_params))
        start = time.perf_counter()
        try:
            instance = scenarios.build(spec_obj)
            row = verify_replay(
                instance,
                "A",
                # a one-slot family has no interior tick to checkpoint at
                checkpoint_at=max(1, instance.T // 2) if instance.T >= 2 else None,
                tolerance=tolerance,
            )
            rows.append(
                {
                    "scenario": name,
                    "ticks": row["ticks"],
                    "checkpoint_at": row["checkpoint_at"],
                    "cost": round(row["cost"], 3),
                    "cost_deviation": f"{row['cost_deviation']:.2e}",
                    "p50_ms": row["latency"].get("p50_ms"),
                    "seconds": round(time.perf_counter() - start, 4),
                    "ok": True,
                }
            )
        except Exception as exc:  # a broken family must fail the gate, not crash it
            failures.append(f"{name}: {exc}")
            rows.append({"scenario": name, "ticks": "-", "checkpoint_at": "-",
                         "cost": "-", "cost_deviation": "-", "p50_ms": "-",
                         "seconds": round(time.perf_counter() - start, 4), "ok": False})
    print(format_table(
        rows,
        title=f"serve smoke — streaming replay == batch run_online "
              f"(checkpoint/restore mid-stream, {len(rows)} families)",
    ))
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump({"serve_smoke": rows}, handle, indent=2, default=str)
        print(f"\nwrote {json_path}")
    if failures:
        print("\nFAIL:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print(f"\nall {len(rows)} families replay equivalently (schedule exact, cost <= 1e-9)")
    return 0


def _parse_chaos_spec(spec: str, T: int, d: int, n_events: int):
    """Resolve a ``--chaos`` argument into an EventPlan.

    An integer is a generation seed (``EventPlan.generate`` over the
    scenario's horizon), inline JSON is parsed directly, anything else is
    read as a JSON plan file.
    """
    from .scenarios.events import EventPlan

    spec = spec.strip()
    try:
        seed = int(spec)
    except ValueError:
        pass
    else:
        return EventPlan.generate(T, d, seed=seed, n_events=n_events)
    if spec.startswith("[") or spec.startswith("{"):
        return EventPlan.parse(spec)
    try:
        text = open(spec, "r", encoding="utf-8").read()
    except OSError as exc:
        raise SystemExit(f"--chaos {spec!r}: not a seed, inline JSON, or readable plan file ({exc})")
    return EventPlan.parse(text)


def _serve_chaos_smoke(json_path: Optional[str] = None, tolerance: float = 1e-9) -> int:
    """The chaos gate (``make chaos-smoke``): every chaos-* family must
    replay deterministically under an injected event plan — bit-identical
    schedules and SLA counters across a mid-stream checkpoint/restore
    round-trip — and targeted single-kind injections must actually shed and
    account (a fault layer that never fires would gate nothing)."""
    from . import scenarios
    from .scenarios.events import ChaosEvent, EventPlan
    from .serve import verify_chaos_replay

    rows = []
    failures = []

    def run_case(label, instance, plan, algorithm="A", must_violate=False):
        start = time.perf_counter()
        try:
            row = verify_chaos_replay(instance, plan, algorithm=algorithm, tolerance=tolerance)
            if must_violate and row["sla_violations"] == 0:
                raise AssertionError(
                    "the injected fault produced no SLA violations — injection is not firing"
                )
            rows.append(
                {
                    "case": label,
                    "ticks": row["ticks"],
                    "events": row["events"],
                    "sla_violations": row["sla_violations"],
                    "shed": round(row["shed_demand"], 3),
                    "forced_down": row["forced_downs"],
                    "cost": round(row["cost"], 3),
                    "seconds": round(time.perf_counter() - start, 4),
                    "ok": True,
                }
            )
        except Exception as exc:  # a broken case must fail the gate, not crash it
            failures.append(f"{label}: {exc}")
            rows.append({"case": label, "ticks": "-", "events": "-", "sla_violations": "-",
                         "shed": "-", "forced_down": "-", "cost": "-",
                         "seconds": round(time.perf_counter() - start, 4), "ok": False})

    # every chaos-* family replays deterministically under a generated plan
    chaos_families = [n for n in scenarios.names() if n.startswith("chaos-")]
    for name in chaos_families:
        fam = scenarios.family(name)
        instance = scenarios.build(scenarios.ScenarioSpec(name, dict(fam.smoke_params)))
        plan = EventPlan.generate(instance.T, instance.d, seed=7, n_events=3)
        run_case(name, instance, plan)

    # targeted single-kind injections that must fire (overload / forced downs)
    base = scenarios.build("diurnal-cpu-gpu", T=12)
    targeted = [
        ("inject:flash_crowd", EventPlan(events=(ChaosEvent("flash_crowd", t=3, duration=3, magnitude=50.0),)), "A"),
        ("inject:capacity_drop", EventPlan(events=(ChaosEvent("capacity_drop", t=5, duration=4, magnitude=0.9),)), "B"),
        ("inject:price_shock", EventPlan(events=(ChaosEvent("price_shock", t=2, duration=5, magnitude=3.0),
                                                 ChaosEvent("flash_crowd", t=8, duration=2, magnitude=20.0),)), "A"),
    ]
    for label, plan, algorithm in targeted:
        run_case(label, base, plan, algorithm=algorithm, must_violate=True)

    # the telemetry contract: SLA accounting must reach the per-tick rows
    try:
        from .serve import ChaosFeed, ControllerSession, InstanceFeed

        feed = ChaosFeed(InstanceFeed(base), targeted[0][1])
        session = ControllerSession("A", base.server_types, degradation="shed")
        saw_violation = False
        for tick in feed:
            row = session.observe(tick.demand, cost_row=tick.cost_row, counts=tick.counts).as_row()
            if "sla_violation" not in row or "feasible" not in row:
                raise AssertionError(f"telemetry row lacks SLA/feasibility keys: {sorted(row)}")
            saw_violation = saw_violation or row["sla_violation"]
        if not saw_violation:
            raise AssertionError("no telemetry row carried sla_violation=True under overload")
    except Exception as exc:
        failures.append(f"telemetry-contract: {exc}")

    print(format_table(
        rows,
        title=f"chaos smoke — deterministic fault injection + graceful degradation "
              f"({len(chaos_families)} chaos families, {len(targeted)} targeted injections)",
    ))
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump({"chaos_smoke": rows}, handle, indent=2, default=str)
        print(f"\nwrote {json_path}")
    if failures:
        print("\nFAIL:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print(f"\nall {len(rows)} chaos cases replay deterministically "
          "(bit-identical schedules + SLA counters across checkpoint/restore)")
    return 0


def _serve_fabric_smoke(json_path: Optional[str] = None, tolerance: float = 1e-9) -> int:
    """The crash-recovery gate (``make fabric-smoke``): a small sharded fabric
    with one injected worker SIGKILL must recover every tenant from its
    rotated checkpoints bit-identically — schedules exact, costs within 1e-9,
    SLA counters exact — in both clean and chaos-under-fire conditions."""
    from .serve import verify_crash_recovery

    cases = [
        ("kill+recover", dict(n_tenants=3, workers=2, kill_worker=0,
                              checkpoint_every=4, algorithm="A")),
        # the hard case: the kill lands while a capacity drop is open and
        # Algorithm B holds live power-up records, in shed mode
        ("kill+recover:chaos", dict(
            n_tenants=2, workers=2, kill_worker=0, kill_round=24,
            checkpoint_every=4, algorithm="B", degradation="shed",
            chaos={"events": [
                {"kind": "capacity_drop", "t": 18, "duration": 14, "magnitude": 0.5},
                {"kind": "flash_crowd", "t": 20, "duration": 10, "magnitude": 2.5},
            ]},
        )),
    ]
    rows = []
    failures = []
    for label, kwargs in cases:
        start = time.perf_counter()
        try:
            row = verify_crash_recovery(tolerance=tolerance, **kwargs)
            rows.append(
                {
                    "case": label,
                    "tenants": row["tenants"],
                    "workers": row["workers"],
                    "kill": f"w{row['kill']['worker']}@r{row['kill']['round']}",
                    "restarts": row["restarts"],
                    "recovery_ms": round(1e3 * max(row["recovery_latency_s"] or [0.0]), 1),
                    "ticks": row["ticks"],
                    "cost_delta": f"{row['max_cost_delta']:.2e}",
                    "sla_violations": row["sla_violations"],
                    "seconds": round(time.perf_counter() - start, 4),
                    "ok": True,
                }
            )
        except Exception as exc:  # a broken case must fail the gate, not crash it
            failures.append(f"{label}: {exc}")
            rows.append({"case": label, "tenants": "-", "workers": "-", "kill": "-",
                         "restarts": "-", "recovery_ms": "-", "ticks": "-",
                         "cost_delta": "-", "sla_violations": "-",
                         "seconds": round(time.perf_counter() - start, 4), "ok": False})
    print(format_table(
        rows,
        title="fabric smoke — SIGKILL a worker mid-stream, recover bit-identically "
              "from rotated checkpoints",
    ))
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump({"fabric_smoke": rows}, handle, indent=2, default=str)
        print(f"\nwrote {json_path}")
    if failures:
        print("\nFAIL:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print(f"\nall {len(rows)} crash-recovery cases verified (schedules bit-identical, "
          "costs <= 1e-9, SLA counters exact)")
    return 0


def _serve_fabric(args: argparse.Namespace) -> int:
    """``repro serve fabric``: run a sharded fabric (or its CI smoke gate)."""
    if args.n_tenants is None:
        args.n_tenants = 4
    if args.smoke:
        return _serve_fabric_smoke(json_path=args.json)

    if args.bench:
        from .bench import run_fabric_bench

        try:
            payload = run_fabric_bench(
                n_tenants=args.n_tenants,
                workers=args.workers,
                scenario=args.scenario or "diurnal-cpu-gpu",
                algorithm=args.algorithm,
                checkpoint_every=args.checkpoint_every,
                json_path=args.json,
            )
        except AssertionError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        latency = payload["tick_latency"]
        recovery = payload["crash_recovery"]
        print(format_table(
            [{
                "tenants": payload["tenants"],
                "workers": payload["workers"],
                "ticks": payload["ticks"],
                "p99_ms_worst": latency["p99_ms_worst_tenant"],
                "p99_ms_mean": latency["p99_ms_mean"],
                "recovery_ms": round(1e3 * max(recovery["recovery_latency_s"] or [0.0]), 1),
                "restarts": recovery["restarts"],
                "verified": recovery["verified"],
            }],
            title="fabric bench — healthy-path tick latency + crash recovery",
        ))
        if args.json:
            print(f"\nmerged fabric section into {args.json}")
        return 0

    from .serve import FabricError, ServeFabric

    fabric = ServeFabric(
        workers=args.workers,
        checkpoint_every=args.checkpoint_every,
    )
    scenario = args.scenario or "diurnal-cpu-gpu"
    overrides = _parse_param_overrides(args.param)
    base_seed = 0 if args.seed is None else args.seed
    algorithm = _serve_algorithm(args)
    for i in range(args.n_tenants):
        feed = {"kind": "scenario", "scenario": scenario, "seed": base_seed + i}
        if overrides:
            feed["params"] = dict(overrides)
        fabric.add_tenant(f"tenant-{i}", algorithm=algorithm, feed=feed,
                          degradation=args.degradation or "strict")
    for entry in args.migrate:
        try:
            tenant, _, worker = entry.partition(":")
            fabric.migrate(tenant, int(worker))
        except (KeyError, ValueError) as exc:
            raise SystemExit(f"--migrate {entry!r}: {exc}")
    kill = None
    if args.kill_worker is not None:
        kill = {args.kill_worker: args.kill_round if args.kill_round is not None else 8}
    print(f"fabric: {args.n_tenants} tenant(s) of {scenario} across "
          f"{args.workers} worker process(es), algorithm {args.algorithm}, "
          f"checkpoint every {args.checkpoint_every} ticks"
          + (f", SIGKILL worker {args.kill_worker} at round {kill[args.kill_worker]}"
             if kill else ""))
    try:
        report = fabric.run(kill=kill, telemetry=args.telemetry)
    except FabricError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    table_rows = [
        {
            "tenant": name,
            "worker": row["worker"],
            "status": row["status"],
            "ticks": row.get("ticks", "-"),
            "cost": round(row["cost"], 3) if "cost" in row else "-",
            "sla_violations": row.get("sla_violations", "-"),
            "p99_ms": row.get("latency", {}).get("p99_ms", "-"),
        }
        for name, row in report["tenants"].items()
    ]
    print()
    print(format_table(table_rows, title="serve fabric — sharded supervised replay"))
    totals = report["totals"]
    print(f"\n{totals['ticks']} ticks, cost {totals['cost']:.3f}, "
          f"{totals['restarts']} restart(s), "
          f"{totals['migrations_completed']} migration(s) completed, "
          f"wall {report['wall_seconds']:.2f}s")
    if report["recovery_latency_s"]:
        print("recovery latency: "
              + ", ".join(f"{v * 1e3:.1f}ms" for v in report["recovery_latency_s"]))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, default=str)
        print(f"wrote {args.json}")
    return 0


def _apply_backend(args: argparse.Namespace) -> Optional[int]:
    """Activate ``--backend`` before any solve runs; returns an exit code on error."""
    name = getattr(args, "backend", None)
    if name:
        from .core.backend import BackendUnavailableError, set_backend

        try:
            set_backend(name)
        except BackendUnavailableError as exc:
            print(f"backend error: {exc}", file=sys.stderr)
            return 2
    return None


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.action == "watch":
        from .serve.watch import watch_command

        if args.path is None:
            print("serve watch needs a PATH: a telemetry JSONL file or a "
                  "fabric run directory", file=sys.stderr)
            return 2
        return watch_command(
            args.path,
            once=args.once,
            refresh=args.refresh,
            json_out=args.json,
            html_out=args.html,
            expect=args.expect,
        )

    failed = _apply_backend(args)
    if failed is not None:
        return failed

    if args.action == "smoke":
        return _serve_smoke(json_path=args.json)

    if args.action == "chaos":
        return _serve_chaos_smoke(json_path=args.json)

    if args.action == "fabric":
        return _serve_fabric(args)

    if args.action == "batch":
        from .bench import run_batch_smoke

        try:
            payload = run_batch_smoke(
                budget_us=args.budget_us if args.budget_us is not None else 5000.0,
                budget_scale=args.budget_scale,
                tenants=args.n_tenants or 64,
                ticks=args.ticks or 48,
                json_path=args.json,
            )
        except AssertionError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print(format_table(
            [payload],
            title="serve batch smoke — batched == sequential on a mixed-family fleet",
        ))
        print(f"\n{payload['tenants']} tenants over {payload['families']}: "
              f"{payload['batched_ticks']} vectorised + {payload['fallback_ticks']} fallback "
              f"ticks, schedules bit-identical (max cost deviation "
              f"{payload['max_cost_deviation']:.1e}), batched p99 "
              f"{payload['p99_us_batched']:g}us < "
              f"{payload['budget_us'] * payload['budget_scale']:g}us budget")
        if args.json:
            print(f"wrote {args.json}")
        return 0

    if args.action == "latency":
        from .bench import run_latency_smoke

        try:
            payload = run_latency_smoke(
                budget_us=args.budget_us if args.budget_us is not None else 50.0,
                budget_scale=args.budget_scale,
                repeats=args.repeats,
                ticks=args.ticks or 256,
                scenario=args.scenario or "diurnal-cpu-gpu",
                algorithm=args.algorithm,
                json_path=args.json,
            )
        except AssertionError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print(format_table(
            payload["per_repeat_us"],
            title="serve latency — raw per-repeat percentiles (advisory, OS noise included)",
        ))
        floor = payload["floor_us"]
        budget = payload["budget_us"] * payload["budget_scale"]
        print(f"\nsteady-state floor (per-tick min across {payload['repeats']} repeats): "
              f"p50 {floor['p50_us']}us, p90 {floor['p90_us']}us, "
              f"p99 {floor['p99_us']}us < {budget:g}us budget "
              f"[backend={payload['backend']}]")
        print(f"schedules bit-identical to the cold path on every repeat; "
              f"stream cost {payload['cost']:.6f} reproduced to 1e-9")
        if args.json:
            print(f"wrote {args.json}")
        return 0

    if args.action == "bench" and args.batched:
        from .bench import run_batch_scale_bench

        tenants_arg = "64,1000,10000" if args.tenants == "1,8,64" else str(args.tenants)
        tenant_counts = tuple(int(v) for v in tenants_arg.split(",") if v.strip())
        algorithm = (
            args.algorithm
            if args.algorithm in ("reactive", "follow-demand", "all-on")
            else "reactive"
        )
        try:
            payload = run_batch_scale_bench(
                tenant_counts=tenant_counts,
                ticks=args.ticks,
                scenario=args.scenario or "diurnal-cpu-gpu",
                algorithm=algorithm,
                budget_us=args.budget_us if args.budget_us is not None else 50.0,
                budget_scale=args.budget_scale,
                overlap=args.overlap,
                json_path=args.json,
            )
        except AssertionError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        table_rows = [
            {
                "tenants": row["tenants"],
                "ticks": row["total_ticks"],
                "wall_s": row["wall_seconds"],
                "speedup": row["speedup_vs_sequential"] or "-",
                "p99_us": row["p99_us"],
                "equality": row["equality"],
                "hit_rate": row["batch_hit_rate"],
                "tracemalloc_mb": row["tracemalloc_peak_mb"],
                "rss_delta_mb": row["rss_delta_mb"],
            }
            for row in payload["rows"]
        ]
        print(format_table(
            table_rows,
            title=f"serve bench --batched — fleet-batched ticks, {algorithm} on "
                  f"{payload['scenario']}",
        ))
        print("\nschedules bit-identical to the sequential engine at every count; "
              "cache footprint flat across tenant counts "
              f"(virtual_slots={payload['rows'][-1]['virtual_slots']}, "
              f"tensor_bytes={payload['rows'][-1]['tensor_bytes']})")
        if args.json:
            print(f"wrote {args.json}")
        return 0

    if args.action == "bench":
        from .bench import run_serve_bench

        tenant_counts = tuple(
            int(v) for v in str(args.tenants).split(",") if v.strip()
        )
        try:
            payload = run_serve_bench(
                tenant_counts=tenant_counts,
                ticks=args.ticks,
                scenario=args.scenario or "diurnal-cpu-gpu",
                algorithm=_serve_algorithm(args),
                json_path=args.json,
                warm_start=args.warm,
            )
        except AssertionError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        table_rows = [
            {
                "tenants": row["tenants"],
                "mode": row["mode"],
                "ticks": row["total_ticks"],
                "p50_ms": row["latency"]["p50_ms"],
                "p95_ms": row["latency"]["p95_ms"],
                "p99_ms": row["latency"]["p99_ms"],
                "ticks_per_s": row["ticks_per_second"],
                "unique_solves": row["unique_solves"],
                "grid_hit_rate": row["grid_hit_rate"],
            }
            for row in payload["rows"]
        ]
        print(format_table(table_rows, title="serve bench — shared vs isolated multi-tenant replay"))
        for cmp_row in payload["comparisons"]:
            print(
                f"\n{cmp_row['tenants']} tenants: shared caches run "
                f"{cmp_row['speedup_vs_isolated']}x faster than isolated "
                f"({cmp_row['unique_solves_shared']} vs {cmp_row['unique_solves_isolated']} "
                "unique dispatch solves)"
            )
        if args.json:
            print(f"\nwrote {args.json}")
        return 0

    # action == "replay"
    from .serve import ChaosFeed, ControllerSession, ScenarioFeed, TelemetryWriter, build_serve_algorithm

    try:
        feed = ScenarioFeed(
            args.scenario or "diurnal-cpu-gpu",
            seed=args.seed,
            tick_seconds=args.tick_seconds,
            **_parse_param_overrides(args.param),
        )
    except Exception as exc:
        raise SystemExit(str(exc))
    algorithm = _serve_algorithm(args)
    instance = feed.instance
    if args.checkpoint_at is not None and not 1 <= args.checkpoint_at < instance.T:
        raise SystemExit(
            f"--checkpoint-at must be in [1, T) = [1, {instance.T}) — "
            f"{args.checkpoint_at} would never fire"
        )
    spec_key = feed.spec.key()
    chaos_plan = None
    if args.chaos is not None:
        if args.verify:
            raise SystemExit(
                "--verify asserts batch equivalence, which injected faults break by design; "
                "determinism under chaos is gated by `repro serve chaos` instead"
            )
        chaos_plan = _parse_chaos_spec(args.chaos, instance.T, instance.d, args.chaos_events)
        feed = ChaosFeed(feed, chaos_plan)
    degradation = args.degradation
    if degradation is None:
        degradation = "shed" if chaos_plan is not None else "strict"
    print(f"replaying {spec_key} (T={instance.T}, d={instance.d}) "
          f"with algorithm {args.algorithm}"
          + (f", {len(chaos_plan.events)} injected chaos event(s), "
             f"degradation={degradation}" if chaos_plan is not None else "")
          + (f" at {args.speed:g}x time-warp" if args.speed else " (unpaced)"))

    tracer = None
    if args.trace is not None or args.trace_every is not None:
        from .serve.trace import TickTracer

        tracer = TickTracer(trace_every=args.trace_every or 1)
    session = ControllerSession(
        algorithm, instance.server_types, track_regret=args.regret,
        degradation=degradation, name="replay", tracer=tracer
    )
    perf_ns = time.perf_counter_ns
    with TelemetryWriter(
        args.telemetry, flush_every=args.flush_every, rotate_bytes=args.rotate_bytes
    ) as writer:
        ticks_iter = iter(feed.play(args.speed))
        while True:
            # peek (non-consuming): observe() itself consumes the sample slot
            sampled = tracer is not None and tracer.peek()
            t0 = perf_ns() if sampled else 0
            try:
                tick = next(ticks_iter)
            except StopIteration:
                break
            if sampled:
                tracer.record("feed_wait", session.name, session.ticks, t0, perf_ns())
            if args.checkpoint_at is not None and tick.t == args.checkpoint_at:
                payload_bytes = len(json.dumps(session.checkpoint()))
                session = session.checkpoint_roundtrip()
                print(f"  checkpoint/restore round-trip at tick {tick.t} "
                      f"({payload_bytes} bytes)")
            state = session.observe(tick.demand, cost_row=tick.cost_row, counts=tick.counts)
            t1 = perf_ns() if sampled else 0
            writer.write(state.as_row(), tenant=session.name)
            if sampled:
                tracer.record("telemetry", session.name, state.t, t1, perf_ns())
    session.finish()

    summary = session.summary()
    row = {
        "ticks": summary["ticks"],
        "cost": round(summary["cumulative_cost"], 3),
        "p50_ms": summary["latency"].get("p50_ms"),
        "p95_ms": summary["latency"].get("p95_ms"),
        "p99_ms": summary["latency"].get("p99_ms"),
        "feasible": summary["feasible"],
    }
    if chaos_plan is not None or summary["sla_violations"]:
        row["sla_violations"] = summary["sla_violations"]
        row["shed"] = round(summary["shed_demand"], 3)
        row["forced_down"] = summary["forced_downs"]
    print()
    print(format_table([row], title=f"live replay — {session.algorithm.name}"))
    if chaos_plan is not None:
        print(f"\nchaos: {summary['sla_violations']} SLA-violating tick(s), "
              f"{summary['shed_demand']:.3f} demand shed, "
              f"{summary['forced_downs']} forced power-down(s) "
              f"(degradation={degradation}, stream completed without raising)")
    if args.telemetry:
        rotated = f" ({writer.rotations} rotation(s))" if writer.rotations else ""
        print(f"\nwrote {writer.rows_written} telemetry rows to {args.telemetry}{rotated}")
    if tracer is not None:
        phases = tracer.summary()["phases"]
        traced_ns = sum(p["total_ns"] for p in phases.values())
        print(f"\ntraced {tracer.sampled_ticks} tick(s) (every {tracer.trace_every}): "
              + ", ".join(f"{name} {p['total_ns'] / 1e3:.1f}us"
                          for name, p in sorted(phases.items()))
              + f" — {traced_ns / 1e3:.1f}us total in spans")
        if args.trace is not None:
            tracer.dump(args.trace)
            print(f"wrote Chrome trace_event JSON to {args.trace} "
                  f"(open in chrome://tracing or Perfetto)")
    if args.json:
        from .serve import summarise_sessions

        payload = {
            "schema": 1,
            "summary": summarise_sessions([session]),
            "session": session.summary(),
        }
        if tracer is not None:
            payload["trace"] = tracer.summary()
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if args.verify:
        # the live session (including any checkpoint round-trip above) already
        # holds the streamed schedule — one batch run is all the check needs
        from .online import run_online as _run_online

        batch = _run_online(instance, build_serve_algorithm(algorithm))
        deviation = abs(session.cumulative_cost - batch.cost)
        if not np.array_equal(session.schedule.x, batch.schedule.x) or deviation > 1e-9:
            print(f"\nVERIFY FAIL: streamed replay deviates from batch run_online "
                  f"(cost deviation {deviation:.3e})", file=sys.stderr)
            return 1
        print(f"\nverified: streamed schedule == batch run_online, "
              f"cost deviation {deviation:.2e}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import PINNED_SWEEP_COSTS, run_scale_bench, run_smoke_bench, run_sweep_bench

    failed = _apply_backend(args)
    if failed is not None:
        return failed

    selected = [flag for flag in ("smoke", "sweep", "scale", "counters", "latest")
                if getattr(args, flag)]
    if len(selected) > 1:
        print(f"choose one of --smoke/--sweep/--scale/--counters/--latest per invocation "
              f"(got {', '.join('--' + f for f in selected)}); "
              "run them as separate commands — `make bench-smoke` chains the gates",
              file=sys.stderr)
        return 2
    if args.full and not args.scale:
        print("--full only applies to --scale", file=sys.stderr)
        return 2

    if args.latest:
        import glob
        import os as _os

        from .bench import trend_report

        paths = [args.json] if args.json else sorted(
            glob.glob(_os.path.join("benchmarks", "output", "BENCH_*.json"))
        )
        shown = 0
        for path in paths:
            report = trend_report(path)
            if report is None:
                continue
            shown += 1
            latest = report["latest"]
            deltas = report["deltas_vs_previous"]
            print(f"{path}: {report['entries']} recorded run(s)")
            print("  latest: " + ", ".join(
                f"{key}={value}" for key, value in latest.items()
                if key != "environment"
            ))
            if deltas:
                print("  vs previous: " + ", ".join(
                    f"{key} {value:+g}" for key, value in deltas.items()
                ))
            else:
                print("  no previous run to compare")
        if not shown:
            print("no BENCH_*.json with a recorded trend series found "
                  "(gated benches append one entry per run)", file=sys.stderr)
            return 1
        return 0

    if args.counters:
        from .bench import PINNED_SERVE_COUNTERS, run_counter_regress

        try:
            payload = run_counter_regress(json_path=args.json)
        except AssertionError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        table_rows = [
            {
                "counter": key,
                "pinned": PINNED_SERVE_COUNTERS[key],
                "measured": payload["measured"][key],
            }
            for key in sorted(PINNED_SERVE_COUNTERS)
        ]
        print(format_table(table_rows, title="bench counters — hot-path work-counter pins"))
        print(f"\nall {len(table_rows)} pinned counters reproduced exactly "
              "(cold / warm-start / prewarmed replays, per-tenant costs equal to 1e-9)")
        if args.json:
            print(f"wrote {args.json}")
        return 0

    tolerance = args.tolerance

    if args.scale:
        try:
            payload = run_scale_bench(
                full=args.full, json_path=args.json,
                tolerance=1e-9 if tolerance is None else tolerance,
            )
        except AssertionError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        table_rows = [
            {
                "instance": row["instance"],
                "mode": row["mode"],
                "T": row["T"],
                "states": row["grid_states"],
                "k": row.get("checkpoint_every"),
                "seconds": row["wall_seconds"],
                "peak_mb": row["tracemalloc_peak_mb"],
                "cost": None if row.get("cost") is None else round(row["cost"], 2),
            }
            for row in payload["rows"]
        ]
        print(format_table(table_rows, title="bench scale — streaming DP vs all-tables history"))
        for cmp_row in payload["comparisons"]:
            print(
                f"\n{cmp_row['instance']}: streaming == keep-tables "
                f"(cost deviation {cmp_row['cost_deviation']:.2e}, schedules identical), "
                f"peak memory {cmp_row['memory_ratio']}x smaller, "
                f"end-to-end {cmp_row['stream_wall_vs_forward']}x the forward-pass wall time"
            )
        if args.json:
            print(f"\nwrote {args.json}")
        return 0

    if tolerance is None:
        tolerance = 1e-6

    if args.sweep:
        try:
            payload = run_sweep_bench(tolerance=tolerance, json_path=args.json, jobs=args.jobs)
        except AssertionError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        table_rows = [
            {
                "experiment": name,
                "instance": row["instance"],
                "algorithm": row["algorithm"],
                "cost": round(row["cost"], 4),
                "ratio": round(row["ratio"], 4),
                "seconds": row["elapsed_seconds"],
            }
            for name, experiment in payload["experiments"].items()
            for row in experiment["rows"]
        ]
        print(format_table(table_rows, title="bench sweep — combined THM8+13+15+22 via the shared-context engine"))
        print(f"\nall {len(PINNED_SWEEP_COSTS)} pinned PR-1 costs reproduced within "
              f"{tolerance:g} (max deviation {payload['max_cost_deviation']:.2e})")
        print(f"wall time: engine {payload['engine_wall_seconds']:.3f}s, "
              f"sequential orchestration {payload['sequential_wall_seconds']:.3f}s "
              f"({payload['speedup_vs_sequential']}x), "
              f"PR-1 reference {payload['pr1_reference']['wall_seconds']:.3f}s "
              f"({payload['speedup_vs_pr1']}x, advisory)")
        if args.json:
            print(f"wrote {args.json}")
        return 0

    if not args.smoke:
        print("the full benchmark harness lives in benchmarks/ (run `make bench`); "
              "use `repro bench --smoke` for the pinned exactness subset or "
              "`repro bench --sweep` for the sweep-engine regression", file=sys.stderr)
        return 2
    try:
        rows = run_smoke_bench(tolerance=tolerance, json_path=args.json)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    table_rows = [
        {
            "instance": row["instance"],
            "T": row["T"],
            "d": row["d"],
            "cost": round(row["optimal_cost"], 6),
            "deviation": f"{row['deviation']:.2e}",
            "seconds": row["seconds"],
            "states": row["states_explored"],
            "cache_hit_rate": row["dispatch"]["cache_hit_rate"],
        }
        for row in rows
    ]
    print(format_table(table_rows, title="bench smoke — pinned exactness regression"))
    print(f"\nall {len(rows)} pinned optimal costs reproduced within {tolerance:g}")
    if args.json:
        print(f"wrote {args.json}")
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fleet", choices=sorted(FLEETS), default="cpu-gpu",
                        help="fleet preset (default: cpu-gpu)")
    parser.add_argument("--trace", choices=sorted(TRACES), default="diurnal",
                        help="synthetic demand trace (default: diurnal)")
    parser.add_argument("--slots", type=int, default=48, help="number of time slots (default: 48)")
    parser.add_argument("--seed", type=int, default=0, help="random seed for the trace generator")
    parser.add_argument("--demand-file", help="CSV file with one demand value per line (overrides --trace)")
    parser.add_argument("--price-amplitude", type=float, default=0.0,
                        help="add a sinusoidal electricity-price profile with this amplitude "
                             "(makes the operating costs time-dependent)")
    parser.add_argument("--schedule-csv", action="store_true",
                        help="also print the computed schedule as CSV")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Right-sizing heterogeneous data centers (Albers & Quedenfeld, SPAA 2021) — "
                    "offline and online solvers on synthetic scenarios.",
    )
    from . import __version__

    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_trace = sub.add_parser("trace", help="generate a synthetic demand trace")
    p_trace.add_argument("--trace", choices=sorted(TRACES), default="diurnal")
    p_trace.add_argument("--slots", type=int, default=48)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", help="write the trace to this file instead of stdout")
    p_trace.set_defaults(func=_cmd_trace)

    p_solve = sub.add_parser(
        "solve",
        help="solve a scenario offline (exact or approximate)",
        epilog="Scaling limits: the classic DP keeps one value tensor per slot "
               "(O(T * |M|) memory); long horizons stream the value pass with "
               "checkpointed backtracking instead (O(sqrt(T) * |M|), auto-enabled "
               "above ~32 MB of table history). --checkpoint-every forces a window, "
               "--float32 halves the stream; for fleets with thousands of servers "
               "per type combine with --epsilon (geometric grids). "
               "See `repro bench --scale` and docs/PERFORMANCE.md.",
    )
    _add_scenario_arguments(p_solve)
    p_solve.add_argument("--epsilon", type=float, default=None,
                         help="use the (1+eps)-approximation instead of the exact solver")
    p_solve.add_argument("--checkpoint-every", type=_positive_int, default=None,
                         help="streaming-DP checkpoint window (default: auto — full history "
                              "on small instances, sqrt(T) on long horizons)")
    p_solve.add_argument("--float32", action="store_true",
                         help="run the DP value stream in float32 (half the memory; the "
                              "reported cost is re-evaluated in float64)")
    p_solve.set_defaults(func=_cmd_solve)

    p_online = sub.add_parser("online", help="run an online algorithm on a scenario")
    _add_scenario_arguments(p_online)
    p_online.add_argument("--algorithm", choices=sorted(ONLINE_ALGORITHMS), default="A")
    p_online.add_argument("--epsilon", type=float, default=None,
                          help="eps parameter for Algorithm C (default 0.25)")
    p_online.set_defaults(func=_cmd_online)

    p_compare = sub.add_parser("compare", help="compare the algorithm suite on one scenario")
    _add_scenario_arguments(p_compare)
    p_compare.add_argument("--epsilon", type=float, default=None)
    p_compare.set_defaults(func=_cmd_compare)

    p_scenarios = sub.add_parser(
        "scenarios",
        help="inspect and exercise the declarative scenario registry",
        epilog="Scenarios are named, parameterised instance families "
               "(trace x fleet x horizon x seed) materialised lazily through "
               "the registry; `repro sweep --scenario NAME` and plan.json "
               "files address them by name.  `smoke` builds every family at "
               "a tiny size and runs Algorithm A through each (the "
               "`make scenarios-smoke` CI gate).",
    )
    p_scenarios.add_argument("action", choices=["list", "describe", "build", "smoke"],
                             help="list families / describe one / build an instance / run the smoke gate")
    p_scenarios.add_argument("name", nargs="?", default=None,
                             help="scenario family name (describe/build)")
    p_scenarios.add_argument("--param", action="append", default=[], metavar="K=V",
                             help="parameter override for build (repeatable; values JSON-parsed)")
    p_scenarios.add_argument("--seed", type=int, default=None,
                             help="scenario seed for build (one seed derives all random streams)")
    p_scenarios.add_argument("--json", default=None,
                             help="also write the spec/description/smoke rows to this JSON file")
    p_scenarios.set_defaults(func=_cmd_scenarios)

    p_sweep = sub.add_parser("sweep", help="batch algorithms x instances through the shared-context engine")
    _add_scenario_arguments(p_sweep)
    # distinguish "user passed --seed" from the default: --fleet/--trace sweeps
    # fall back to seed 0, --scenario sweeps to each family's registered seed
    p_sweep.set_defaults(seed=None)
    p_sweep.add_argument("--scenario", default=None,
                         help="comma-separated registered scenario names (see `repro scenarios list`); "
                              "instances are materialised lazily inside worker shards and the spec "
                              "is stamped into every record (overrides --fleet/--trace)")
    p_sweep.add_argument("--param", action="append", default=[], metavar="K=V",
                         help="scenario parameter override applied to every --scenario entry "
                              "(repeatable; values JSON-parsed)")
    p_sweep.add_argument("--plan", default=None,
                         help="compile a plan.json selection file "
                              "({scenarios, params, seeds, algorithms, offline, jobs}) "
                              "instead of command-line flags")
    p_sweep.add_argument("--algorithms", default=None,
                         help="comma-separated algorithm keys (default: A,B,C); "
                              "also: lcp, reactive, follow-demand, all-on "
                              "(not with --plan when the plan selects algorithms)")
    p_sweep.add_argument("--epsilon", type=float, default=None,
                         help="eps parameter for Algorithm C (default 0.25)")
    p_sweep.add_argument("--seeds", default=None,
                         help="comma-separated scenario seeds — one instance per (scenario, seed) "
                              "pair (overrides --seed)")
    p_sweep.add_argument("--jobs", type=int, default=None,
                         help="shard instance sources across this many worker processes")
    p_sweep.add_argument("--checkpoint-every", type=_positive_int, default=None,
                         help="checkpoint window of the shared prefix-DP value streams "
                              "(O(sqrt(T)) memory for long-horizon sweeps; default: full history)")
    p_sweep.add_argument("--json", default=None, help="write the full report to this JSON file")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_serve = sub.add_parser(
        "serve",
        help="live replay & serving: stream scenarios through controller sessions",
        epilog="`replay` streams one scenario tick by tick through a "
               "ControllerSession (optional time-warp pacing, per-tick JSONL "
               "telemetry, mid-stream checkpoint/restore, --verify asserts "
               "batch equivalence); `bench` measures multi-tenant serving "
               "(latency percentiles + shared-vs-isolated cache counters, "
               "writes BENCH_serve.json); `smoke` is the `make serve-smoke` "
               "CI gate (every registered family must replay equivalently); "
               "`chaos` is the `make chaos-smoke` gate (chaos-* families and "
               "targeted fault injections must replay deterministically and "
               "degrade gracefully — see also `replay --chaos`); `fabric` "
               "shards tenants across supervised worker processes with crash "
               "recovery and live migration (`--smoke` is the `make "
               "fabric-smoke` gate: one injected worker SIGKILL, bit-identical "
               "recovery); `latency` is the `make bench-latency-smoke` gate "
               "(p99 of the per-tick floor over repeated prewarmed replays "
               "must beat --budget-us, schedules bit-identical to the cold "
               "path); `batch` is the `make bench-batch-smoke` gate "
               "(64-tenant mixed-family fleet: fleet-batched rounds must "
               "reproduce the sequential engine bit-identically across a "
               "mid-stream checkpoint, batched p99 within budget); `bench "
               "--batched` runs the 1k/10k-tenant fleet-batched scale sweep "
               "(>=5x vs sequential at 1k+, flat cache footprint, "
               "RSS+tracemalloc columns); `watch` tails a telemetry JSONL "
               "file or fabric run directory as a live dashboard (--once for "
               "one frame, --html for a static page, --expect is the `make "
               "watch-smoke` exactness gate).",
    )
    p_serve.add_argument("action", choices=["replay", "bench", "latency", "batch",
                                            "smoke", "chaos", "fabric", "watch"],
                         help="stream one scenario / run the multi-tenant benchmark "
                              "(--batched: the fleet-batched 1k/10k scale gate) / "
                              "gate the microsecond tick hot path / "
                              "run the CI gates (smoke: batch equivalence, batch: "
                              "the `make bench-batch-smoke` bit-identity gate, chaos: fault "
                              "injection, fabric --smoke: crash recovery) / run a "
                              "sharded multi-process fabric / watch: live dashboard "
                              "over a telemetry JSONL file or fabric run directory")
    p_serve.add_argument("path", nargs="?", default=None,
                         help="watch: telemetry JSONL file or fabric run directory to tail")
    p_serve.add_argument("--scenario", default=None,
                         help="registered scenario family to replay (default: diurnal-cpu-gpu)")
    p_serve.add_argument("--param", action="append", default=[], metavar="K=V",
                         help="scenario parameter override (repeatable; values JSON-parsed)")
    p_serve.add_argument("--seed", type=int, default=None, help="scenario seed")
    p_serve.add_argument("--algorithm", choices=sorted(ONLINE_ALGORITHMS), default="A",
                         help="controller algorithm (default: A)")
    p_serve.add_argument("--epsilon", type=float, default=None,
                         help="eps parameter for Algorithm C (default 0.25)")
    p_serve.add_argument("--speed", type=float, default=None,
                         help="time-warp factor: release one tick every tick_seconds/speed "
                              "wall seconds (default: replay as fast as possible)")
    p_serve.add_argument("--tick-seconds", type=float, default=1.0,
                         help="simulated duration of one tick, for pacing (default: 1.0)")
    p_serve.add_argument("--telemetry", default=None, metavar="FILE",
                         help="append per-tick telemetry rows to this JSONL file")
    p_serve.add_argument("--flush-every", type=_positive_int, default=1, metavar="N",
                         help="telemetry: flush the OS buffer every N rows (default: 1 — "
                              "per-row durability; raise to amortise syscalls)")
    p_serve.add_argument("--rotate-bytes", type=_positive_int, default=None, metavar="B",
                         help="telemetry: rotate the JSONL file to .1/.2 when it reaches "
                              "B bytes (default: unbounded)")
    p_serve.add_argument("--trace", default=None, metavar="FILE",
                         help="replay: dump a tick-phase span trace (feed wait / prepare / "
                              "decide / commit / telemetry) as Chrome trace_event JSON")
    p_serve.add_argument("--trace-every", type=_positive_int, default=None, metavar="N",
                         help="replay: sample every Nth tick into the trace (default: 1 "
                              "when --trace is given, tracing off otherwise)")
    p_serve.add_argument("--once", action="store_true",
                         help="watch: render a single frame and exit (CI-friendly)")
    p_serve.add_argument("--refresh", type=float, default=1.0, metavar="S",
                         help="watch: seconds between live-frame refreshes (default: 1.0)")
    p_serve.add_argument("--html", default=None, metavar="FILE",
                         help="watch: write a self-contained HTML snapshot instead of the "
                              "ANSI frame ('-' for stdout)")
    p_serve.add_argument("--expect", default=None, metavar="FILE",
                         help="watch: compare the rendered summary against a recorded "
                              "replay --json payload exactly; non-zero exit on mismatch "
                              "(the `make watch-smoke` gate)")
    p_serve.add_argument("--checkpoint-at", type=_positive_int, default=None, metavar="K",
                         help="serialise the session to JSON after K ticks and restore it "
                              "into a fresh session (exercises checkpoint/restore mid-stream)")
    p_serve.add_argument("--verify", action="store_true",
                         help="assert the streamed schedule and cost reproduce batch run_online")
    p_serve.add_argument("--regret", action="store_true",
                         help="track the offline prefix optimum per tick and report regret "
                              "in the telemetry (one extra DP transition per tick)")
    p_serve.add_argument("--chaos", default=None, metavar="SPEC",
                         help="inject mid-stream faults into the replay: an integer seed "
                              "(generates an event plan over the scenario's horizon), inline "
                              "JSON, or a plan file (incompatible with --verify)")
    p_serve.add_argument("--chaos-events", type=_positive_int, default=4, metavar="N",
                         help="events to generate when --chaos is a seed (default: 4)")
    p_serve.add_argument("--degradation", choices=["strict", "shed"], default=None,
                         help="infeasible-tick policy: raise (strict) or shed load with SLA "
                              "accounting (default: shed when --chaos is given, else strict)")
    p_serve.add_argument("--tenants", default="1,8,64",
                         help="comma-separated concurrent-session counts for bench (default: 1,8,64)")
    p_serve.add_argument("--ticks", type=_positive_int, default=None,
                         help="ticks per tenant for bench (default: 64) / stream length for "
                              "latency (default: 256)")
    p_serve.add_argument("--batched", action=argparse.BooleanOptionalAction, default=False,
                         help="with bench: run the fleet-batched scale sweep instead "
                              "(BatchedServeEngine vs sequential; gates schedule "
                              "bit-identity, >=5x throughput at 1k+ tenants, p99 tick "
                              "budget and a flat cache footprint; default tenant "
                              "counts 64,1000,10000)")
    p_serve.add_argument("--overlap", action="store_true",
                         help="with bench --batched: pump feeds through the overlapped "
                              "thread-pool front end instead of inline iteration")
    p_serve.add_argument("--warm", action="store_true",
                         help="with bench: warm-start the dual bisection (previous solve's "
                              "multiplier seeds the next bracket); the cost-equality gate "
                              "then doubles as a warm-vs-cold consistency check")
    p_serve.add_argument("--budget-us", type=float, default=None, metavar="US",
                         help="latency: steady-state p99 tick budget in microseconds "
                              "(default: 50) / batch: batched-tenant p99 budget including "
                              "cold cohort-table installs (default: 5000)")
    p_serve.add_argument("--budget-scale", type=float, default=1.0, metavar="X",
                         help="latency: budget multiplier for noisy shared runners "
                              "(CI uses a generous factor; default: 1.0)")
    p_serve.add_argument("--repeats", type=_positive_int, default=6, metavar="R",
                         help="latency: fresh sessions to replay over one prewarmed cache; "
                              "the gate takes the per-tick minimum across them (default: 6)")
    p_serve.add_argument("--backend", default=None, metavar="NAME",
                         help="kernel backend for the hot path (numpy, or numba when the "
                              "wheel is importable; default: numpy / $REPRO_BACKEND)")
    p_serve.add_argument("--smoke", action="store_true",
                         help="with fabric: run the `make fabric-smoke` crash-recovery gate "
                              "(injected worker SIGKILL, verify_crash_recovery must pass)")
    p_serve.add_argument("--bench", action="store_true",
                         help="with fabric: measure healthy-path tick latency and crash-recovery "
                              "latency, merging a 'fabric' section into --json (BENCH_serve.json)")
    p_serve.add_argument("--workers", type=_positive_int, default=2,
                         help="fabric worker processes (default: 2)")
    p_serve.add_argument("--n-tenants", type=_positive_int, default=None, metavar="N",
                         help="fabric tenants to register over --scenario with consecutive "
                              "seeds (default: 4) / batch smoke fleet size (default: 64)")
    p_serve.add_argument("--checkpoint-every", type=_positive_int, default=8, metavar="K",
                         help="fabric checkpoint cadence in ticks (default: 8)")
    p_serve.add_argument("--kill-worker", type=int, default=None, metavar="W",
                         help="fabric: SIGKILL worker W's first incarnation (crash-recovery demo)")
    p_serve.add_argument("--kill-round", type=_positive_int, default=None, metavar="R",
                         help="fabric: round at which --kill-worker fires (default: 8)")
    p_serve.add_argument("--migrate", action="append", default=[], metavar="TENANT:WORKER",
                         help="fabric: live-migrate a tenant to a worker mid-run (repeatable)")
    p_serve.add_argument("--json", default=None,
                         help="write the bench/smoke/fabric measurements (or the replay/"
                              "watch summary; watch accepts '-' for stdout) to this JSON file")
    p_serve.set_defaults(func=_cmd_serve)

    p_bench = sub.add_parser("bench", help="run the benchmark regression harness")
    p_bench.add_argument("--smoke", action="store_true",
                         help="run the <30s pinned-instance exactness subset "
                              "(the full harness lives in benchmarks/)")
    p_bench.add_argument("--sweep", action="store_true",
                         help="run the combined THM8+13+15+22 sweep-engine regression "
                              "(pinned costs gate at --tolerance; wall times advisory)")
    p_bench.add_argument("--scale", action="store_true",
                         help="run the streaming-DP scale suite: checkpointed O(sqrt(T))-memory "
                              "backtracking vs the all-tables pass, gated on cost/schedule "
                              "equality (1e-9), with peak-memory columns")
    p_bench.add_argument("--full", action="store_true",
                         help="with --scale: the headline sizes (T up to 50000, d=4 geometric "
                              "fleets) instead of the quick regression subset")
    p_bench.add_argument("--tolerance", type=float, default=None,
                         help="maximum allowed cost deviation (default: 1e-6 for --smoke/--sweep "
                              "against the pinned seed costs, 1e-9 for --scale streaming equality)")
    p_bench.add_argument("--counters", action="store_true",
                         help="run the hot-path work-counter regression: the pinned serve "
                              "workload replayed cold / warm-started / prewarmed, every "
                              "counter gated by exact equality (part of `make perf-regress`)")
    p_bench.add_argument("--latest", action="store_true",
                         help="print the newest BENCH_*.json trend entries with deltas vs "
                              "the previous recorded run (no solves; reads benchmarks/output/ "
                              "or the file given via --json)")
    p_bench.add_argument("--jobs", type=int, default=1,
                         help="process sharding for --sweep (default: 1)")
    p_bench.add_argument("--backend", default=None, metavar="NAME",
                         help="kernel backend for the hot path (numpy, or numba when the "
                              "wheel is importable; default: numpy / $REPRO_BACKEND)")
    p_bench.add_argument("--json", default=None, help="also write the measurements to this JSON file")
    p_bench.set_defaults(func=_cmd_bench)

    return parser


#: Registered sub-commands (kept in sync with build_parser; the friendly
#: unknown-command error below lists them without re-parsing).
COMMANDS = ("trace", "solve", "online", "compare", "scenarios", "sweep", "serve", "bench")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    first = next((arg for arg in argv if not arg.startswith("-")), None)
    if first is not None and first not in COMMANDS:
        print(f"repro: unknown command {first!r}", file=sys.stderr)
        print(f"available commands: {', '.join(COMMANDS)}", file=sys.stderr)
        print("run `repro <command> --help` for usage", file=sys.stderr)
        return 2
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
