"""Benchmark regression harness: pinned smoke instances and exactness checks.

The batched dispatch engine (:mod:`repro.dispatch.allocation`) is a pure
hot-path optimisation — it must not change any computed optimum.  This module
pins three small instances together with their optimal costs as computed by
the original (pre-engine) implementation; ``python -m repro bench --smoke``
(or ``make bench-smoke``) re-solves them and fails loudly if any cost drifts
by more than ``1e-6``.

The three instances deliberately exercise the engine's three code paths:

* ``smoke-diurnal`` — time-independent costs, so slot deduplication by
  ``(demand, cost-row)`` signature applies,
* ``smoke-priced`` — time-dependent operating costs (Section 3), one cost row
  per slot, grouped-by-row vectorised bisection,
* ``smoke-counts`` — time-dependent fleet sizes (Section 4.3), several grids
  per horizon, per-grid dispatch blocks.

``run_sweep_bench`` (``python -m repro bench --sweep`` / ``make perf-regress``)
is the analogous gate for the shared-context *sweep engine*: it runs the
combined THM8+13+15+22 competitive-ratio workload twice — once with the PR-1
style sequential orchestration (private solver and trackers per run) and once
through :func:`repro.exp.run_plan` — asserts both agree with each other
(1e-9) and with the pinned PR-1 costs (1e-6), and records the wall times in
``BENCH_sweep.json``.  Wall times are advisory; only cost fields gate.

The harness also reports wall times, states explored and the engine's
cache-hit rate, and can emit the numbers as JSON for trend tracking.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Optional

import numpy as np

from .core.instance import ProblemInstance
from .dispatch.allocation import DispatchSolver
from .offline.graph_approx import solve_approx
from .offline.graph_optimal import solve_optimal
from .online.algorithm_a import AlgorithmA
from .online.algorithm_b import AlgorithmB
from .online.algorithm_c import AlgorithmC
from .online.base import run_online
from .scenarios import ScenarioSpec, build as build_scenario
from .workloads import bursty_trace, cpu_gpu_fleet, diurnal_trace, fleet_instance, old_new_fleet

__all__ = [
    "PINNED_OPTIMAL_COSTS",
    "PINNED_SERVE_COUNTERS",
    "PINNED_SWEEP_COSTS",
    "PR1_BASELINE_WALL_SECONDS",
    "run_counter_regress",
    "run_latency_smoke",
    "run_scale_bench",
    "run_serve_bench",
    "run_smoke_bench",
    "run_sweep_bench",
    "trend_report",
    "smoke_instances",
    "sweep_suite",
    "thm8_scenarios",
    "thm8_specs",
    "thm13_scenarios",
    "thm13_specs",
    "thm15_instance",
    "thm15_spec",
    "thm22_instance",
    "thm22_spec",
]

#: Optimal costs of the pinned instances, computed with the seed (pre-engine)
#: implementation.  The DP must keep reproducing these exactly (tol 1e-6).
PINNED_OPTIMAL_COSTS: Dict[str, float] = {
    "smoke-diurnal": 269.9391201523013,
    "smoke-priced": 166.75819719190875,
    "smoke-counts": 187.90000000000003,
}


def smoke_instances() -> List[ProblemInstance]:
    """The three pinned regression instances (deterministic by construction)."""
    diurnal = fleet_instance(
        cpu_gpu_fleet(cpu_count=5, gpu_count=2),
        diurnal_trace(24, period=12, base=1.0, peak=10.0, noise=0.05, rng=1),
        name="smoke-diurnal",
    )

    priced_base = fleet_instance(
        cpu_gpu_fleet(cpu_count=5, gpu_count=2),
        diurnal_trace(16, period=8, base=1.0, peak=9.0, noise=0.0, rng=3),
    )
    prices = 1.0 + 0.5 * np.sin(np.arange(16) / 16 * 4 * np.pi + 0.7)
    priced = priced_base.with_price_profile(prices, name="smoke-priced")

    counts_base = fleet_instance(
        old_new_fleet(old_count=4, new_count=2),
        bursty_trace(16, base=1.0, burst_height=6.0, burst_probability=0.2, rng=2),
    )
    counts = np.tile([4, 2], (16, 1)).astype(int)
    counts[4:8, 0] = 2
    counts[10:13, 1] = 1
    varying = counts_base.with_counts(counts, name="smoke-counts")

    return [diurnal, priced, varying]


def run_smoke_bench(tolerance: float = 1e-6, json_path: Optional[str] = None) -> List[dict]:
    """Solve the pinned instances and assert seed-identical optimal costs.

    Returns one row per instance with the measured wall time, explored states
    and dispatch-engine counters.  Raises :class:`AssertionError` when a cost
    deviates from its pinned value by more than ``tolerance``.
    """
    rows: List[dict] = []
    for instance in smoke_instances():
        dispatcher = DispatchSolver(instance)
        start = time.perf_counter()
        result = solve_optimal(instance, dispatcher=dispatcher, return_schedule=False)
        elapsed = time.perf_counter() - start
        expected = PINNED_OPTIMAL_COSTS[instance.name]
        deviation = abs(result.cost - expected)
        rows.append(
            {
                "instance": instance.name,
                "T": instance.T,
                "d": instance.d,
                "optimal_cost": result.cost,
                "pinned_cost": expected,
                "deviation": deviation,
                "seconds": round(elapsed, 6),
                "states_explored": result.num_states_explored,
                "dispatch": dispatcher.stats.snapshot(),
            }
        )
        if deviation > tolerance:
            raise AssertionError(
                f"{instance.name}: optimal cost {result.cost!r} deviates from the "
                f"pinned seed value {expected!r} by {deviation:g} (> {tolerance:g}) — "
                "the dispatch/DP hot path is no longer exact"
            )
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump({"smoke": rows}, handle, indent=2)
    return rows


# --------------------------------------------------------------------------- #
# Sweep regression suite: the combined THM8+13+15+22 ratio workload
# --------------------------------------------------------------------------- #

#: Wall time of the combined THM8+13+15+22 workload measured at the PR-1
#: commit on the reference machine (best of 3).  Advisory only — recorded so
#: that ``BENCH_sweep.json`` can report the end-to-end speedup of the sweep
#: engine against the state it replaced; never gated (machines differ).
PR1_BASELINE_WALL_SECONDS = 1.046

#: Costs of every run of the combined sweep workload, computed at the PR-1
#: commit.  Keyed by ``(experiment, instance, algorithm)`` where algorithm
#: ``"optimal"`` is the shared offline optimum.  The sweep engine (and the
#: sequential baseline it is compared against) must keep reproducing these
#: within 1e-6 — the engine's entire point is bit-identical orchestration.
PINNED_SWEEP_COSTS: Dict[tuple, float] = {
    ("thm8", "homogeneous-T48", "optimal"): 457.7955467914764,
    ("thm8", "homogeneous-T48", "algorithm-A"): 462.510945523983,
    ("thm8", "diurnal-cpu-gpu-T48", "optimal"): 490.14819054513424,
    ("thm8", "diurnal-cpu-gpu-T48", "algorithm-A"): 537.0508316855593,
    ("thm8", "bursty-old-new-T40", "optimal"): 324.0,
    ("thm8", "bursty-old-new-T40", "algorithm-A"): 346.46666666666664,
    ("thm8", "load-independent-T40", "optimal"): 119.0,
    ("thm8", "load-independent-T40", "algorithm-A"): 127.5,
    ("thm8", "spiky-three-tier-T32", "optimal"): 167.05000000000007,
    ("thm8", "spiky-three-tier-T32", "algorithm-A"): 196.14999999999998,
    ("thm13", "diurnal-cpu-gpu-T36-amp0.0", "optimal"): 382.7085828837085,
    ("thm13", "diurnal-cpu-gpu-T36-amp0.0", "algorithm-B"): 429.12546409862074,
    ("thm13", "diurnal-cpu-gpu-T36-amp0.3", "optimal"): 367.6656740144223,
    ("thm13", "diurnal-cpu-gpu-T36-amp0.3", "algorithm-B"): 409.27272149829344,
    ("thm13", "diurnal-cpu-gpu-T36-amp0.6", "optimal"): 351.07321520748866,
    ("thm13", "diurnal-cpu-gpu-T36-amp0.6", "algorithm-B"): 402.3399501476715,
    ("thm13", "diurnal-cpu-gpu-T36-amp0.9", "optimal"): 334.4281800254081,
    ("thm13", "diurnal-cpu-gpu-T36-amp0.9", "algorithm-B"): 392.8770834403654,
    ("thm15", "priced-cpu-gpu-T30", "optimal"): 304.7209596263647,
    ("thm15", "priced-cpu-gpu-T30", "algorithm-B"): 343.55428004574236,
    ("thm15", "priced-cpu-gpu-T30", "algorithm-C(eps=1)"): 343.55428004574236,
    ("thm15", "priced-cpu-gpu-T30", "algorithm-C(eps=0.5)"): 361.56845083685425,
    ("thm15", "priced-cpu-gpu-T30", "algorithm-C(eps=0.25)"): 361.9366010047067,
    ("thm22", "time-varying-m", "optimal"): 404.0157648710129,
    ("thm22", "time-varying-m", "offline-optimal"): 404.0157648710129,
    ("thm22", "time-varying-m", "approx(eps=0.5)"): 404.0157648710129,
}


def thm8_specs() -> List[tuple]:
    """The five THM8 scenarios as ``(label, ScenarioSpec)`` pairs.

    Single source of truth shared by ``benchmarks/bench_thm8_algorithm_a_ratio.py``
    and the perf-regress gate — the pinned costs below gate exactly these.
    The specs address the scenario registry (:mod:`repro.scenarios`); the
    family defaults were chosen so these specs rebuild the original pinned
    instances byte-for-byte.
    """
    return [
        ("homogeneous d=1 (diurnal)", ScenarioSpec("homogeneous", {"T": 48}, seed=5)),
        ("cpu+gpu d=2 (diurnal)", ScenarioSpec("diurnal-cpu-gpu", {"T": 48}, seed=1)),
        ("old+new d=2 (bursty)", ScenarioSpec("bursty-old-new", {"T": 40}, seed=2)),
        ("load-independent d=2 (Corollary 9)", ScenarioSpec("load-independent", {"T": 40}, seed=7)),
        ("three-tier d=3 (spiky)", ScenarioSpec("spiky-three-tier", {"T": 32})),
    ]


def thm8_scenarios() -> List[tuple]:
    """The five THM8 scenarios as materialised ``(label, instance)`` pairs."""
    return [(label, build_scenario(spec)) for label, spec in thm8_specs()]


def thm13_specs() -> List[tuple]:
    """The four THM13 price-amplitude scenarios as ``(label, ScenarioSpec)`` pairs."""
    specs = []
    for amplitude in (0.0, 0.3, 0.6, 0.9):
        specs.append(
            (
                f"price amplitude {amplitude:.1f}",
                ScenarioSpec(
                    "priced-cpu-gpu",
                    {
                        "T": 36,
                        "amplitude": amplitude,
                        "phase": 0.5,
                        "name": f"diurnal-cpu-gpu-T36-amp{amplitude}",
                    },
                    seed=1,
                ),
            )
        )
    return specs


def thm13_scenarios() -> List[tuple]:
    """The four THM13 scenarios as materialised ``(label, instance)`` pairs."""
    return [(label, build_scenario(spec)) for label, spec in thm13_specs()]


def thm15_spec() -> ScenarioSpec:
    """The THM15 priced scenario (CPU+GPU diurnal under a tariff, T=30)."""
    return ScenarioSpec("priced-cpu-gpu", {"T": 30}, seed=11)


def thm15_instance() -> ProblemInstance:
    """The THM15 priced instance, materialised from :func:`thm15_spec`."""
    return build_scenario(thm15_spec())


def thm22_spec() -> ScenarioSpec:
    """The THM22 time-varying-fleet scenario (maintenance window + expansion)."""
    return ScenarioSpec("time-varying-m")


def thm22_instance() -> ProblemInstance:
    """The THM22 time-varying-fleet instance, materialised from :func:`thm22_spec`."""
    return build_scenario(thm22_spec())


def sweep_suite() -> List[tuple]:
    """The combined ratio workload as named engine sweep plans.

    The plans are *scenario-addressed*: they carry specs, not instances, so
    every ``perf-regress`` run also exercises the registry's lazy
    materialisation path against the pinned costs.
    """
    from .exp.engine import OfflineSpec, SweepPlan, spec

    return [
        (
            "thm8",
            SweepPlan(
                scenarios=tuple(s for _, s in thm8_specs()),
                algorithms=(spec("A"),),
            ),
        ),
        (
            "thm13",
            SweepPlan(
                scenarios=tuple(s for _, s in thm13_specs()),
                algorithms=(spec("B"),),
            ),
        ),
        (
            "thm15",
            SweepPlan(
                scenarios=(thm15_spec(),),
                algorithms=(
                    spec("B"),
                    spec("C", label="algorithm-C(eps=1)", epsilon=1.0),
                    spec("C", label="algorithm-C(eps=0.5)", epsilon=0.5),
                    spec("C", label="algorithm-C(eps=0.25)", epsilon=0.25),
                ),
            ),
        ),
        (
            "thm22",
            SweepPlan(
                scenarios=(thm22_spec(),),
                algorithms=(),
                offline=(
                    OfflineSpec(solver="optimal"),
                    OfflineSpec(solver="approx", epsilon=0.5),
                ),
            ),
        ),
    ]


# --------------------------------------------------------------------------- #
# Scale regression suite: the streaming DP core on long-horizon workloads
# --------------------------------------------------------------------------- #


def _rss_mb() -> float:
    """Current resident-set size in MB (``VmRSS``; peak ``ru_maxrss`` fallback)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _memory_metered(fn):
    """``(result, tracemalloc_peak_mb, rss_delta_mb)`` of one ``fn()`` call.

    The RSS delta is measured around the call from ``/proc/self/status``
    (current residency, not the monotonic peak), so back-to-back metered runs
    each report their own growth — the number the flat-memory gates record.
    """
    import tracemalloc

    rss_before = _rss_mb()
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    rss_delta = max(0.0, _rss_mb() - rss_before)
    return result, round(peak / 1e6, 3), round(rss_delta, 2)


def _measured(fn):
    """``(result, wall_seconds, tracemalloc_peak_bytes, rss_peak_mb)`` of ``fn``.

    ``fn`` is executed twice clean — the wall time is the best of the two
    (single-run walls on shared machines are noisy enough to distort the
    streaming-vs-forward ratios, and tracemalloc roughly doubles
    allocation-heavy passes, so it must not time them) — then once more under
    ``tracemalloc`` for the comparable per-row peak-memory column.
    ``rss_peak_mb`` is the process high-water mark — monotonic across rows, so
    only its *first* large run is attributable; tracemalloc is the per-row
    signal.
    """
    import resource
    import tracemalloc

    wall = float("inf")
    result = None
    for _ in range(2):
        start = time.perf_counter()
        result = fn()
        wall = min(wall, time.perf_counter() - start)
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return result, wall, peak, rss_mb


def run_scale_bench(
    full: bool = False,
    json_path: Optional[str] = None,
    tolerance: float = 1e-9,
) -> dict:
    """Benchmark the streaming DP core on the large-scale scenario suite.

    For every scenario the streaming pass (``checkpoint_every = ceil(sqrt(T))``)
    is measured forward-only and end-to-end; ``compare`` scenarios additionally
    run the classic all-tables pass and **gate** on it — the streaming schedule
    must be identical and its cost equal within ``tolerance`` (1e-9), the
    regression guard wired into ``make bench-smoke``.  Scenarios marked
    streaming-only instead document the all-tables footprint as *projected*
    bytes (``T * |M| * 8`` of value-table history alone — OOM territory on
    typical runners long before the seed code's additional ``O(T * |M| * d)``
    dispatch blocks).  A float32 value-stream row is recorded for the first
    scenario of the suite.

    Returns the ``BENCH_scale.json`` payload; wall times and memory are
    recorded, only cost/schedule equality gates.
    """
    import math

    from .offline.dp import solve_dp
    from .offline.state_grid import grid_for_slot
    from .workloads.scale import scale_scenarios

    rows: List[dict] = []
    comparisons: List[dict] = []
    scenarios = scale_scenarios(full=full)
    for index, scenario in enumerate(scenarios):
        instance = scenario["instance"]
        gamma = scenario["gamma"]
        T = instance.T
        k = max(1, int(math.ceil(math.sqrt(T))))
        grid = grid_for_slot(instance, 0, gamma)
        table_mb = T * grid.size * 8 / 1e6
        base = {
            "instance": instance.name,
            "label": scenario["label"],
            "T": T,
            "d": instance.d,
            "grid_states": grid.size,
            "gamma": gamma,
            "table_history_projected_mb": round(table_mb, 2),
        }

        _, fwd_wall, fwd_peak, fwd_rss = _measured(
            lambda: solve_dp(instance, gamma=gamma, checkpoint_every=k, return_schedule=False)
        )
        rows.append(
            dict(
                base,
                mode="streaming-forward",
                checkpoint_every=k,
                wall_seconds=round(fwd_wall, 4),
                tracemalloc_peak_mb=round(fwd_peak / 1e6, 3),
                rss_peak_mb=round(fwd_rss, 1),
            )
        )

        stream, stream_wall, stream_peak, stream_rss = _measured(
            lambda: solve_dp(instance, gamma=gamma, checkpoint_every=k)
        )
        rows.append(
            dict(
                base,
                mode="streaming",
                checkpoint_every=k,
                wall_seconds=round(stream_wall, 4),
                tracemalloc_peak_mb=round(stream_peak / 1e6, 3),
                rss_peak_mb=round(stream_rss, 1),
                cost=stream.cost,
            )
        )

        if index == 0:
            f32, f32_wall, f32_peak, f32_rss = _measured(
                lambda: solve_dp(instance, gamma=gamma, checkpoint_every=k, value_dtype="float32")
            )
            deviation = abs(f32.cost - stream.cost) / max(abs(stream.cost), 1.0)
            rows.append(
                dict(
                    base,
                    mode="streaming-float32",
                    checkpoint_every=k,
                    wall_seconds=round(f32_wall, 4),
                    tracemalloc_peak_mb=round(f32_peak / 1e6, 3),
                    rss_peak_mb=round(f32_rss, 1),
                    cost=f32.cost,
                    relative_cost_deviation=deviation,
                )
            )
            if deviation > 1e-5:
                raise AssertionError(
                    f"{instance.name}: float32 streaming cost deviates by {deviation:g} "
                    "(> 1e-5) despite the float64 re-evaluation"
                )

        if scenario["compare"]:
            tables, tables_wall, tables_peak, tables_rss = _measured(
                lambda: solve_dp(instance, gamma=gamma, keep_tables=True)
            )
            rows.append(
                dict(
                    base,
                    mode="keep-tables",
                    checkpoint_every=None,
                    wall_seconds=round(tables_wall, 4),
                    tracemalloc_peak_mb=round(tables_peak / 1e6, 3),
                    rss_peak_mb=round(tables_rss, 1),
                    cost=tables.cost,
                )
            )
            deviation = abs(stream.cost - tables.cost)
            identical = bool(np.array_equal(stream.schedule.x, tables.schedule.x))
            comparisons.append(
                {
                    "instance": instance.name,
                    "cost_deviation": deviation,
                    "schedules_identical": identical,
                    "memory_ratio": round(tables_peak / max(stream_peak, 1), 2),
                    "stream_wall_vs_forward": round(stream_wall / max(fwd_wall, 1e-9), 2),
                    "stream_wall_vs_tables": round(stream_wall / max(tables_wall, 1e-9), 2),
                }
            )
            if deviation > tolerance or not identical:
                raise AssertionError(
                    f"{instance.name}: streaming backtracking deviates from keep_tables=True "
                    f"(cost deviation {deviation:g}, schedules identical: {identical}) — "
                    "the checkpointed backward pass is no longer exact"
                )
        else:
            rows.append(
                dict(
                    base,
                    mode="keep-tables-projected",
                    checkpoint_every=None,
                    wall_seconds=None,
                    # measured column stays empty — the projection lives in
                    # table_history_projected_mb so consumers never mistake
                    # an estimate for a tracemalloc measurement
                    tracemalloc_peak_mb=None,
                    rss_peak_mb=None,
                    note=(
                        "not executed: value-table history alone needs "
                        f"{table_mb:.0f} MB (plus O(T*|M|*d) dispatch blocks in the "
                        "seed code) — OOM-or-worse on typical 4-8 GB runners"
                    ),
                )
            )

    payload = {
        "benchmark": "scale_streaming",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "suite": "full" if full else "quick",
        "tolerance": tolerance,
        "rows": rows,
        "comparisons": comparisons,
    }
    if json_path:
        directory = os.path.dirname(json_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        _with_trend(
            payload,
            json_path,
            {
                "benchmark": "scale_streaming",
                "suite": payload["suite"],
                "streaming_wall_seconds": round(
                    sum(
                        r["wall_seconds"]
                        for r in rows
                        if r["mode"] == "streaming" and r["wall_seconds"] is not None
                    ),
                    4,
                ),
                "max_cost_deviation": max(
                    (c["cost_deviation"] for c in comparisons), default=0.0
                ),
            },
        )
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
    return payload


def _sequential_baseline() -> Dict[tuple, float]:
    """Re-run the suite with PR-1 style orchestration: nothing shared per run.

    One fresh :class:`DispatchSolver` per instance (shared only between the
    offline optimum and the runs of that one benchmark scenario, exactly as
    the PR-1 benchmark files did), private trackers per algorithm, a separate
    ``solve_optimal`` per instance.
    """
    costs: Dict[tuple, float] = {}
    for _, instance in thm8_scenarios():
        dispatcher = DispatchSolver(instance)
        costs[("thm8", instance.name, "optimal")] = solve_optimal(
            instance, dispatcher=dispatcher, return_schedule=False
        ).cost
        result = run_online(instance, AlgorithmA(), dispatcher=dispatcher)
        costs[("thm8", instance.name, "algorithm-A")] = result.cost
    for _, instance in thm13_scenarios():
        dispatcher = DispatchSolver(instance)
        costs[("thm13", instance.name, "optimal")] = solve_optimal(
            instance, dispatcher=dispatcher, return_schedule=False
        ).cost
        result = run_online(instance, AlgorithmB(), dispatcher=dispatcher)
        costs[("thm13", instance.name, "algorithm-B")] = result.cost
    instance = thm15_instance()
    dispatcher = DispatchSolver(instance)
    costs[("thm15", instance.name, "optimal")] = solve_optimal(
        instance, dispatcher=dispatcher, return_schedule=False
    ).cost
    costs[("thm15", instance.name, "algorithm-B")] = run_online(
        instance, AlgorithmB(), dispatcher=dispatcher
    ).cost
    for eps, label in ((1.0, "algorithm-C(eps=1)"), (0.5, "algorithm-C(eps=0.5)"), (0.25, "algorithm-C(eps=0.25)")):
        costs[("thm15", instance.name, label)] = run_online(
            instance, AlgorithmC(epsilon=eps), dispatcher=dispatcher
        ).cost
    instance = thm22_instance()
    dispatcher = DispatchSolver(instance)
    exact = solve_optimal(instance, dispatcher=dispatcher)
    approx = solve_approx(instance, epsilon=0.5, dispatcher=dispatcher)
    costs[("thm22", instance.name, "optimal")] = exact.cost
    costs[("thm22", instance.name, "offline-optimal")] = exact.cost
    costs[("thm22", instance.name, "approx(eps=0.5)")] = approx.cost
    return costs


def run_sweep_bench(
    tolerance: float = 1e-6,
    json_path: Optional[str] = None,
    jobs: int = 1,
    include_baseline: bool = True,
) -> dict:
    """Run the combined THM8+13+15+22 workload through the sweep engine.

    Asserts that every cost matches the pinned PR-1 value within ``tolerance``
    and (when ``include_baseline``) that the engine agrees with the sequential
    PR-1 orchestration to 1e-9.  Returns the ``BENCH_sweep.json`` payload;
    wall times and speedups are recorded but never gated.
    """
    from .exp.engine import run_plan

    experiments = {}
    engine_costs: Dict[tuple, float] = {}
    engine_start = time.perf_counter()
    for name, plan in sweep_suite():
        report = run_plan(plan, jobs=jobs)
        experiments[name] = {
            "engine_seconds": round(report.total_seconds, 6),
            "rows": report.as_rows(),
        }
        for instance_name in report.instances():
            first = next(r for r in report.records if r.instance == instance_name)
            engine_costs[(name, instance_name, "optimal")] = first.optimal_cost
        for record in report.records:
            engine_costs[(name, record.instance, record.algorithm)] = record.cost
    engine_wall = time.perf_counter() - engine_start

    deviations = []
    for key, pinned in PINNED_SWEEP_COSTS.items():
        if key not in engine_costs:
            raise AssertionError(f"sweep engine produced no cost for pinned run {key!r}")
        deviations.append((key, abs(engine_costs[key] - pinned)))
    worst_key, worst = max(deviations, key=lambda kv: kv[1])
    if worst > tolerance:
        raise AssertionError(
            f"{worst_key!r}: sweep-engine cost deviates from the pinned PR-1 value "
            f"by {worst:g} (> {tolerance:g}) — shared-context orchestration is no longer exact"
        )

    baseline_wall = None
    if include_baseline:
        baseline_start = time.perf_counter()
        baseline_costs = _sequential_baseline()
        baseline_wall = time.perf_counter() - baseline_start
        for key, cost in baseline_costs.items():
            if abs(engine_costs[key] - cost) > 1e-9:
                raise AssertionError(
                    f"{key!r}: engine cost {engine_costs[key]!r} differs from the sequential "
                    f"baseline {cost!r} by more than 1e-9"
                )

    payload = {
        "benchmark": "sweep",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "tolerance": tolerance,
        "max_cost_deviation": worst,
        "engine_wall_seconds": round(engine_wall, 4),
        "sequential_wall_seconds": None if baseline_wall is None else round(baseline_wall, 4),
        "speedup_vs_sequential": None
        if baseline_wall is None
        else round(baseline_wall / engine_wall, 2),
        "pr1_reference": {
            "wall_seconds": PR1_BASELINE_WALL_SECONDS,
            "note": "combined THM8+13+15+22 wall time measured at the PR-1 commit "
                    "on the reference machine (advisory only)",
        },
        "speedup_vs_pr1": round(PR1_BASELINE_WALL_SECONDS / engine_wall, 2),
        "jobs": jobs,
        "experiments": experiments,
    }
    if json_path:
        directory = os.path.dirname(json_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        _with_trend(
            payload,
            json_path,
            {
                "benchmark": "sweep",
                "engine_wall_seconds": payload["engine_wall_seconds"],
                "speedup_vs_pr1": payload["speedup_vs_pr1"],
                "max_cost_deviation": worst,
            },
        )
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
    return payload


# --------------------------------------------------------------------------- #
# SERVE: multi-tenant streaming replay benchmark
# --------------------------------------------------------------------------- #


def _registry_totals(metrics) -> dict:
    """Non-zero deterministic counter totals, summed across labelled series.

    The compact registry column recorded in ``BENCH_serve.json`` rows:
    equality-comparable across runs (wall-clock metrics are excluded by
    :meth:`~repro.serve.metrics.MetricsRegistry.deterministic_snapshot`).
    """
    snap = metrics.deterministic_snapshot()
    totals: Dict[str, float] = {}
    for series, value in snap["values"].items():
        name = series.split("{", 1)[0]
        totals[name] = totals.get(name, 0) + value
    return {
        name: round(value, 9) for name, value in sorted(totals.items()) if value
    }


def run_serve_bench(
    tenant_counts=(1, 8, 64),
    ticks: Optional[int] = None,
    scenario: str = "diurnal-cpu-gpu",
    algorithm="A",
    demand_levels: int = 12,
    json_path: Optional[str] = None,
    assert_sharing: bool = True,
    warm_start: bool = False,
) -> dict:
    """Benchmark the serve layer: N concurrent sessions, shared vs isolated caches.

    One fleet geometry, ``n`` tenants, each replaying a rotated copy of the
    same quantised demand trace (rotation keeps the streams distinct while the
    level *set* overlaps — the realistic many-tenants-one-hardware-pool shape).
    Every tenant count runs twice: with one shared :class:`~repro.serve.ServeCache`
    and with per-tenant isolated caches.  Records per-tick latency percentiles,
    tenants/sec and the sharing counters in ``BENCH_serve.json``.

    Gates (deterministic, machine-independent):

    * per tenant, the shared-cache replay must cost exactly what the isolated
      replay costs (sharing must not change a single decision), and
    * with more than one tenant, the shared mode must run strictly fewer
      unique dispatch solves than the isolated mode — the sharing is real,
      not a label.  Wall times are recorded but advisory.

    ``warm_start=True`` runs both modes with warm-started dual bisection
    (previous solve's multiplier seeds the next bracket) — the cost-equality
    gate then doubles as a warm-vs-cold consistency check.
    """
    from .serve import InstanceFeed, ServeEngine
    from .workloads.scale import quantise_trace

    ticks = 64 if ticks is None else int(ticks)
    base = build_scenario(scenario, T=ticks)
    demand = quantise_trace(base.demand, levels=demand_levels)
    instance = base.with_demand(demand, name=f"serve-{scenario}-T{ticks}")

    rows: List[dict] = []
    comparisons: List[dict] = []
    for n in tenant_counts:
        n = int(n)
        mode_costs: Dict[str, list] = {}
        for mode in ("shared", "isolated"):
            def build_engine(mode=mode):
                engine = ServeEngine(
                    share_caches=(mode == "shared"), warm_start=warm_start
                )
                for k in range(n):
                    tenant_demand = np.roll(demand, k % max(ticks, 1))
                    feed = InstanceFeed(
                        instance.with_demand(tenant_demand, name=f"tenant-{k}")
                    )
                    engine.add_tenant(f"tenant-{k}", algorithm, feed)
                return engine

            engine = build_engine()
            report = engine.run()
            # the memory columns ride a second, fresh, tracemalloc-instrumented
            # replay so instrumentation never distorts the recorded wall times
            _, peak_mb, rss_delta_mb = _memory_metered(lambda: build_engine().run())
            mode_costs[mode] = [s.cumulative_cost for s in engine.sessions]
            sharing = report["sharing"]
            rows.append(
                {
                    "tenants": n,
                    "mode": mode,
                    "ticks_per_tenant": ticks,
                    "total_ticks": report["total_ticks"],
                    "wall_seconds": report["wall_seconds"],
                    "ticks_per_second": report.get("ticks_per_second"),
                    "tenants_per_second": report.get("tenants_per_second"),
                    "latency": report["latency"],
                    "caches": report["caches"],
                    "unique_solves": sum(c["unique_solves"] for c in sharing),
                    "slot_queries": sum(c["slot_queries"] for c in sharing),
                    # the serve-layer tensor memo absorbs repeated whole-grid
                    # queries before they ever reach the dispatcher, so the
                    # meaningful hit rate is measured there, not at the
                    # solver's block cache (which only ever sees misses)
                    "grid_hit_rate": round(
                        sum(c["tensor_hits"] for c in sharing)
                        / max(
                            sum(c["tensor_hits"] + c["tensor_misses"] for c in sharing), 1
                        ),
                        6,
                    ),
                    "tensor_hits": sum(c["tensor_hits"] for c in sharing),
                    "tensor_misses": sum(c["tensor_misses"] for c in sharing),
                    "table_gathers": sum(c["table_gathers"] for c in sharing),
                    "warm_hits": sum(c["warm_hits"] for c in sharing),
                    "cold_solves": sum(c["cold_solves"] for c in sharing),
                    "registry": _registry_totals(engine.metrics),
                    "tracemalloc_peak_mb": peak_mb,
                    "rss_delta_mb": rss_delta_mb,
                }
            )
        deviations = [
            abs(a - b) for a, b in zip(mode_costs["shared"], mode_costs["isolated"])
        ]
        max_dev = max(deviations) if deviations else 0.0
        if not max_dev <= 1e-9:
            raise AssertionError(
                f"{n} tenants: shared-cache replay changed a tenant's cost "
                f"(max deviation {max_dev:.3e}) — sharing must be decision-neutral"
            )
        shared_row = rows[-2]
        isolated_row = rows[-1]
        if assert_sharing and n > 1:
            if not shared_row["unique_solves"] < isolated_row["unique_solves"]:
                raise AssertionError(
                    f"{n} tenants: shared caches ran {shared_row['unique_solves']} unique "
                    f"dispatch solves vs {isolated_row['unique_solves']} isolated — "
                    "multi-tenant sharing is not deduplicating work"
                )
        shared_wall = shared_row["wall_seconds"]
        isolated_wall = isolated_row["wall_seconds"]
        comparisons.append(
            {
                "tenants": n,
                "max_cost_deviation": max_dev,
                "unique_solves_shared": shared_row["unique_solves"],
                "unique_solves_isolated": isolated_row["unique_solves"],
                "tensor_hits_shared": shared_row["tensor_hits"],
                "tensor_hits_isolated": isolated_row["tensor_hits"],
                "speedup_vs_isolated": (
                    None if not shared_wall else round(isolated_wall / shared_wall, 2)
                ),
                "per_tick_us_shared": round(1e6 * shared_wall / max(shared_row["total_ticks"], 1), 1),
                "per_tick_us_isolated": round(1e6 * isolated_wall / max(isolated_row["total_ticks"], 1), 1),
            }
        )

    payload = {
        "scenario": scenario,
        "instance": instance.name,
        "algorithm": algorithm if isinstance(algorithm, str) else dict(algorithm),
        "ticks_per_tenant": ticks,
        "demand_levels": demand_levels,
        "tenant_counts": [int(n) for n in tenant_counts],
        "warm_start": bool(warm_start),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "rows": rows,
        "comparisons": comparisons,
        "note": "cost equality and unique-solve counters gate; wall times are advisory",
    }
    if json_path:
        directory = os.path.dirname(json_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        existing = _read_bench_json(json_path)
        if existing is not None:
            # keep the sections recorded by run_fabric_bench / run_latency_smoke
            # / run_batch_scale_bench / run_batch_smoke alive across
            # serve-bench regenerations of the same file
            for section in ("fabric", "latency", "batch_scale", "batch_smoke"):
                if section in existing:
                    payload[section] = existing[section]
        shared_last = next(
            (r for r in reversed(rows) if r["mode"] == "shared"), None
        )
        _with_trend(
            payload,
            json_path,
            {
                "benchmark": "serve",
                "tenants": None if shared_last is None else shared_last["tenants"],
                "warm_start": bool(warm_start),
                "max_cost_deviation": max(
                    (c["max_cost_deviation"] for c in comparisons), default=0.0
                ),
                "unique_solves_shared": None
                if shared_last is None
                else shared_last["unique_solves"],
                "grid_hit_rate_shared": None
                if shared_last is None
                else shared_last["grid_hit_rate"],
                "p99_ms_shared": None
                if shared_last is None
                else shared_last["latency"].get("p99_ms"),
                "tracemalloc_peak_mb_shared": None
                if shared_last is None
                else shared_last["tracemalloc_peak_mb"],
                "rss_delta_mb_shared": None
                if shared_last is None
                else shared_last["rss_delta_mb"],
            },
        )
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
    return payload


def run_batch_scale_bench(
    tenant_counts=(64, 1000, 10000),
    ticks: Optional[int] = None,
    scenario: str = "diurnal-cpu-gpu",
    algorithm: str = "reactive",
    demand_levels: int = 12,
    seq_limit: int = 2000,
    sample_check: int = 8,
    min_speedup: float = 5.0,
    assert_speedup: bool = True,
    budget_us: float = 50.0,
    budget_scale: float = 1.0,
    p99_gate_tenants: int = 256,
    overlap: bool = False,
    json_path: Optional[str] = None,
) -> dict:
    """The 10k-tenant scale gate: batched rounds vs the sequential engine.

    One fleet geometry, ``n`` tenants replaying rotated copies of a quantised
    demand trace, for each ``n`` in ``tenant_counts``.  Every count runs
    through :class:`~repro.serve.batch.BatchedServeEngine`; counts up to
    ``seq_limit`` also run the sequential :class:`~repro.serve.ServeEngine`
    as the reference.  Gates:

    * **bit-identity** — sequential and batched schedules are
      ``np.array_equal`` per tenant and costs agree to 1e-9 (full comparison
      up to ``seq_limit``; above it, ``sample_check`` tenants are replayed
      sequentially as a spot check and the batch hit-rate must be 1.0),
    * **throughput** — at 1000+ tenants the batched engine must be at least
      ``min_speedup``× the sequential engine (``assert_speedup=False`` to
      record without gating on shared noisy runners),
    * **p99 per-tenant tick** — pooled batched p99 must beat
      ``budget_us * budget_scale`` at ``p99_gate_tenants``+ tenants (below
      that the one-time cohort-table installs amortise over too few members
      to gate on; smaller rows record p99 without enforcing it),
    * **flat memory** — the shared cache footprint (resident ledger slots and
      grid-tensor bytes) must be *identical* across tenant counts: cache
      state scales with the demand alphabet, never with the tenant count.
      Peak tracemalloc and the RSS delta of each batched run are recorded
      (measured on a second instrumented replay so the throughput gate stays
      undistorted).

    Above ``seq_limit`` tenants run ``history=False`` (compact sessions)
    except the spot-check sample — the 10k-tenant row measures the serving
    footprint, not telemetry retention.  Merges a ``"batch_scale"`` section
    and a trend entry into ``BENCH_serve.json``.
    """
    from .serve import BatchedServeEngine, InstanceFeed, ServeEngine
    from .workloads.scale import quantise_trace

    ticks = 32 if ticks is None else int(ticks)
    base = build_scenario(scenario, T=ticks)
    demand = quantise_trace(base.demand, levels=demand_levels)
    instance = base.with_demand(demand, name=f"batch-{scenario}-T{ticks}")

    def tenant_feed(k: int) -> "InstanceFeed":
        rolled = np.roll(demand, k % max(ticks, 1))
        return InstanceFeed(instance.with_demand(rolled, name=f"tenant-{k}"))

    rows: List[dict] = []
    footprints: List[tuple] = []
    for n in tenant_counts:
        n = int(n)
        full_compare = n <= seq_limit
        sample = (
            set(range(n))
            if full_compare
            else set(range(0, n, max(1, n // max(sample_check, 1)))[:sample_check])
        )

        seq_report = None
        seq_engine = None
        if full_compare:
            seq_engine = ServeEngine(share_caches=True)
            for k in range(n):
                seq_engine.add_tenant(f"tenant-{k}", algorithm, tenant_feed(k))
            seq_report = seq_engine.run()

        def make_batched(n=n, sample=sample, full_compare=full_compare):
            engine = BatchedServeEngine(share_caches=True, overlap=overlap)
            for k in range(n):
                engine.add_tenant(
                    f"tenant-{k}",
                    algorithm,
                    tenant_feed(k),
                    history=full_compare or k in sample,
                )
            return engine

        batched = make_batched()
        batch_report = batched.run()
        _, peak_mb, rss_delta_mb = _memory_metered(lambda: make_batched().run())

        # --- bit-identity gate
        if full_compare:
            reference = seq_engine
        else:
            reference = ServeEngine(share_caches=True)
            for k in sorted(sample):
                reference.add_tenant(f"tenant-{k}", algorithm, tenant_feed(k))
            reference.run()
        max_dev = 0.0
        for k in sorted(sample):
            name = f"tenant-{k}"
            seq_session = reference.session(name)
            bat_session = batched.session(name)
            if not np.array_equal(seq_session.schedule.x, bat_session.schedule.x):
                raise AssertionError(
                    f"{n} tenants: batched schedule of {name} diverges from sequential"
                )
            max_dev = max(
                max_dev, abs(seq_session.cumulative_cost - bat_session.cumulative_cost)
            )
        if not max_dev <= 1e-9:
            raise AssertionError(
                f"{n} tenants: batched cost deviates by {max_dev:.3e} (> 1e-9)"
            )
        hit_rate = batch_report["batch"]["batch_hit_rate"]
        if not full_compare and hit_rate < 0.999:
            raise AssertionError(
                f"{n} tenants: only sampled equality was checked but the batch hit "
                f"rate is {hit_rate} — unsampled tenants took an unverified path"
            )

        # --- p99 per-tenant tick gate (amortisation only holds at scale)
        p99_us = batch_report["latency"]["p99_ms"] * 1000.0
        budget = budget_us * budget_scale
        if n >= p99_gate_tenants and not p99_us <= budget:
            raise AssertionError(
                f"{n} tenants: batched per-tenant tick p99 {p99_us:.1f}us exceeds "
                f"the {budget:g}us budget (budget_us={budget_us:g} x scale={budget_scale:g})"
            )

        # --- throughput gate
        speedup = None
        if seq_report is not None and batch_report["wall_seconds"]:
            speedup = seq_report["wall_seconds"] / batch_report["wall_seconds"]
            if assert_speedup and n >= 1000 and not speedup >= min_speedup:
                raise AssertionError(
                    f"{n} tenants: batched engine is only {speedup:.2f}x the "
                    f"sequential engine (gate: >= {min_speedup:g}x)"
                )

        totals = batch_report["cache_totals"]
        footprints.append((n, totals["virtual_slots"], totals["tensor_bytes"]))
        rows.append(
            {
                "tenants": n,
                "total_ticks": batch_report["total_ticks"],
                "wall_seconds": batch_report["wall_seconds"],
                "ticks_per_second": batch_report.get("ticks_per_second"),
                "sequential_wall_seconds": (
                    None if seq_report is None else seq_report["wall_seconds"]
                ),
                "speedup_vs_sequential": (
                    None if speedup is None else round(speedup, 2)
                ),
                "p99_us": round(p99_us, 2),
                "batch_hit_rate": hit_rate,
                "avg_cohort_size": batch_report["batch"]["avg_cohort_size"],
                "equality": "full" if full_compare else f"sampled-{len(sample)}",
                "max_cost_deviation": max_dev,
                "virtual_slots": totals["virtual_slots"],
                "tensor_bytes": totals["tensor_bytes"],
                "ledger_evictions": totals["ledger_evictions"],
                "tensor_evictions": totals["tensor_evictions"],
                "tracemalloc_peak_mb": peak_mb,
                "rss_delta_mb": rss_delta_mb,
            }
        )

    # --- flat-memory gate: cache state is a function of the demand alphabet
    slots = {fp[1] for fp in footprints}
    tensor_bytes = {fp[2] for fp in footprints}
    if len(slots) > 1 or len(tensor_bytes) > 1:
        raise AssertionError(
            f"cache footprint varies with tenant count: virtual_slots={sorted(slots)}, "
            f"tensor_bytes={sorted(tensor_bytes)} — memory is not flat"
        )

    section = {
        "scenario": scenario,
        "instance": instance.name,
        "algorithm": algorithm,
        "ticks_per_tenant": ticks,
        "demand_levels": demand_levels,
        "tenant_counts": [int(n) for n in tenant_counts],
        "seq_limit": seq_limit,
        "min_speedup": min_speedup,
        "budget_us": budget_us,
        "budget_scale": budget_scale,
        "overlap": bool(overlap),
        "rows": rows,
        "note": (
            "schedule bit-identity, p99 budget, >=min_speedup at 1k+ tenants and "
            "flat cache footprint gate; wall times advisory"
        ),
    }
    payload = {"recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S")}
    if json_path:
        directory = os.path.dirname(json_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        existing = _read_bench_json(json_path)
        if isinstance(existing, dict):
            payload = existing
        payload["batch_scale"] = section
        payload["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
        payload["environment"] = {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        }
        last = rows[-1]
        _with_trend(
            payload,
            json_path,
            {
                "benchmark": "serve-batch-scale",
                "tenants": last["tenants"],
                "speedup_vs_sequential": next(
                    (
                        r["speedup_vs_sequential"]
                        for r in reversed(rows)
                        if r["speedup_vs_sequential"] is not None
                    ),
                    None,
                ),
                "p99_us": last["p99_us"],
                "max_cost_deviation": max(r["max_cost_deviation"] for r in rows),
                "tracemalloc_peak_mb": last["tracemalloc_peak_mb"],
                "rss_delta_mb": last["rss_delta_mb"],
            },
        )
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
    section["json_path"] = json_path
    return section


def run_batch_smoke(
    tenants: int = 64,
    ticks: int = 48,
    budget_us: float = 5000.0,
    budget_scale: float = 1.0,
    demand_levels: int = 12,
    json_path: Optional[str] = None,
) -> dict:
    """The ``make bench-batch-smoke`` gate: mixed-family batched bit-identity.

    64 tenants spread over four scenario families and five algorithms —
    table-driven baselines that batch (``reactive``, ``follow-demand``,
    ``all-on``) interleaved with DP algorithms that take the per-tenant
    fallback (``A``, ``lcp``) and every eighth tenant under correlated chaos
    injection — run through :func:`~repro.serve.batch.verify_batched` with a
    mid-stream checkpoint/restore round-trip.  Gates:

    * batched schedules/SLA counters bit-identical to the sequential engine
      and costs within 1e-9 for **every** tenant (``verify_batched`` raises),
    * both the vectorised and the fallback path actually executed (a smoke
      that silently batches nothing proves nothing),
    * p99 per-tenant tick latency of the *batched* tenants beats
      ``budget_us * budget_scale`` (the amortised cohort share; fallback
      tenants pay the sequential path and are exempt — the latency smoke
      budgets those).  With only ~3 members per (family, algorithm) cohort
      the one-time table installs barely amortise, so the default budget is
      milliseconds, not the microsecond steady-state the scale bench gates;
      this gate catches order-of-magnitude regressions, the 1k/10k scale
      rows gate the steady state.

    Merges a ``"batch_smoke"`` section into ``--json`` (``BENCH_serve.json``).
    """
    from . import scenarios
    from .scenarios.events import EventPlan
    from .serve import InstanceFeed, verify_batched
    from .workloads.scale import quantise_trace

    families = (
        "diurnal-cpu-gpu",
        "priced-cpu-gpu",
        "time-varying-m",
        "spiky-three-tier",
    )
    algorithms = ("reactive", "follow-demand", "A", "all-on", "lcp")
    instances = []
    for name in families:
        try:
            inst = build_scenario(name, T=ticks)
        except TypeError:
            fam = scenarios.family(name)
            inst = scenarios.build(scenarios.ScenarioSpec(name, dict(fam.smoke_params)))
        quantised = quantise_trace(inst.demand, levels=demand_levels)
        instances.append(inst.with_demand(quantised, name=f"batch-smoke-{name}"))
    plans = [
        EventPlan.generate(inst.T, inst.d, seed=101 + i, n_events=3)
        for i, inst in enumerate(instances)
    ]

    def build(engine):
        for k in range(int(tenants)):
            inst = instances[k % len(instances)]
            rolled = np.roll(inst.demand, k % max(inst.T, 1))
            feed = InstanceFeed(inst.with_demand(rolled, name=f"tenant-{k}"))
            engine.add_tenant(
                f"tenant-{k}",
                algorithms[k % len(algorithms)],
                feed,
                chaos=plans[k % len(instances)] if k % 8 == 7 else None,
                # rolled demands on time-varying fleets can legitimately
                # exceed a shrunk tick's capacity: shed + account, don't raise
                degradation="shed",
            )

    checkpoint_at = max(1, min(inst.T for inst in instances) // 2)
    report = verify_batched(build, checkpoint_at=checkpoint_at)

    batch = report["batch"]
    if not batch["batched_ticks"] > 0:
        raise AssertionError("batch smoke ran zero vectorised ticks — nothing was gated")
    if not batch["fallback_ticks"] > 0:
        raise AssertionError(
            "batch smoke ran zero fallback ticks — the mixed workload lost its DP tenants"
        )
    batched_p99s = [
        row["p99_ms"] * 1000.0
        for row in report["tenants"]
        if row["batched"] and row["p99_ms"] is not None
    ]
    p99_us = max(batched_p99s) if batched_p99s else 0.0
    budget = budget_us * budget_scale
    if not p99_us <= budget:
        raise AssertionError(
            f"batched per-tenant tick p99 {p99_us:.1f}us exceeds the {budget:g}us "
            f"budget (budget_us={budget_us:g} x scale={budget_scale:g})"
        )

    section = {
        "tenants": int(tenants),
        "families": list(families),
        "algorithms": list(algorithms),
        "ticks_total": report["ticks_total"],
        "checkpoint_at": checkpoint_at,
        "max_cost_deviation": report["max_cost_deviation"],
        "schedules_identical": report["schedules_identical"],
        "batched_ticks": batch["batched_ticks"],
        "fallback_ticks": batch["fallback_ticks"],
        "batch_hit_rate": batch["batch_hit_rate"],
        "p99_us_batched": round(p99_us, 2),
        "budget_us": budget_us,
        "budget_scale": budget_scale,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    if json_path:
        directory = os.path.dirname(json_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        payload = _read_bench_json(json_path)
        payload = payload if isinstance(payload, dict) else {}
        payload["batch_smoke"] = section
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
    return section


def _read_bench_json(json_path) -> Optional[dict]:
    try:
        with open(json_path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


#: Rolling-history cap for the per-file ``"runs"`` trend series.  Old entries
#: fall off the front so committed BENCH_*.json artifacts stay reviewable.
TREND_MAX_RUNS = 40


def _with_trend(payload: dict, json_path, headline: dict) -> dict:
    """Attach the rolling ``"runs"`` trend series to a bench payload.

    The top-level keys of every ``BENCH_*.json`` always describe the *latest*
    run; ``"runs"`` is the history — one compact env-stamped entry per gated
    bench invocation (headline metrics only, full payloads would balloon the
    committed artifacts), carried forward from the existing file instead of
    being overwritten, capped at :data:`TREND_MAX_RUNS`.
    """
    existing = _read_bench_json(json_path) if json_path else None
    runs = list(existing.get("runs", [])) if isinstance(existing, dict) else []
    entry = {
        "recorded_at": payload.get("recorded_at")
        or time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": payload.get("environment"),
    }
    entry.update(headline)
    runs.append(entry)
    payload["runs"] = runs[-TREND_MAX_RUNS:]
    return payload


def trend_deltas(runs) -> dict:
    """Numeric headline deltas between the last two trend entries.

    Empty when fewer than two runs are recorded or no numeric field is shared
    between them — the caller prints "no previous run to compare" instead.
    """
    if not runs or len(runs) < 2:
        return {}
    prev, last = runs[-2], runs[-1]
    deltas = {}
    for key, value in last.items():
        before = prev.get(key)
        if (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and isinstance(before, (int, float))
            and not isinstance(before, bool)
        ):
            deltas[key] = round(value - before, 9)
    return deltas


def trend_report(json_path) -> Optional[dict]:
    """The ``repro bench --latest`` view of one ``BENCH_*.json`` file.

    Returns the newest trend entry plus its deltas against the previous run,
    or ``None`` when the file is missing or predates the trend series.
    """
    data = _read_bench_json(json_path)
    if not isinstance(data, dict) or not data.get("runs"):
        return None
    runs = data["runs"]
    return {
        "path": str(json_path),
        "entries": len(runs),
        "latest": runs[-1],
        "deltas_vs_previous": trend_deltas(runs),
    }


def run_fabric_bench(
    n_tenants: int = 6,
    workers: int = 2,
    scenario: str = "diurnal-cpu-gpu",
    algorithm: str = "A",
    checkpoint_every: int = 4,
    json_path: Optional[str] = None,
) -> dict:
    """Benchmark the serve fabric: healthy-path tick latency + crash recovery.

    Two runs of an ``n_tenants``-over-``workers`` fabric:

    * a **healthy** run recording per-tenant tick-latency percentiles (the
      headline number is the worst tenant p99 — process sharding must not
      cost tail latency), and
    * a **crash** run through :func:`~repro.serve.verify_crash_recovery` —
      worker 0 SIGKILLed mid-stream — recording the crash-to-recovered
      latency, *gated* on bit-identical recovery.

    Results are merged under the ``"fabric"`` key of ``BENCH_serve.json``
    (the rest of the file is ``run_serve_bench``'s); wall/latency numbers are
    advisory, the recovery-equivalence gate is not.
    """
    from .serve import ServeFabric, verify_crash_recovery

    fabric = ServeFabric(workers=workers, checkpoint_every=checkpoint_every)
    for i in range(int(n_tenants)):
        fabric.add_tenant(
            f"tenant-{i}",
            algorithm=algorithm,
            feed={"kind": "scenario", "scenario": scenario, "seed": i},
        )
    healthy = fabric.run()
    p99s = {
        name: row["latency"]["p99_ms"]
        for name, row in healthy["tenants"].items()
        if isinstance(row.get("latency"), dict) and "p99_ms" in row["latency"]
    }
    if not p99s:
        raise AssertionError("fabric bench: no tenant reported tick-latency percentiles")

    verification = verify_crash_recovery(
        scenario,
        n_tenants=n_tenants,
        workers=workers,
        algorithm=algorithm,
        checkpoint_every=checkpoint_every,
    )

    payload = {
        "scenario": scenario,
        "algorithm": algorithm,
        "tenants": int(n_tenants),
        "workers": int(workers),
        "checkpoint_every": int(checkpoint_every),
        "ticks": healthy["totals"]["ticks"],
        "wall_seconds": healthy["wall_seconds"],
        "tick_latency": {
            "p99_ms_worst_tenant": max(p99s.values()),
            "p99_ms_mean": round(sum(p99s.values()) / len(p99s), 6),
            "per_tenant_p99_ms": p99s,
        },
        "crash_recovery": {
            "kill": verification["kill"],
            "restarts": verification["restarts"],
            "recovery_latency_s": verification["recovery_latency_s"],
            "max_cost_delta": verification["max_cost_delta"],
            "verified": verification["verified"],
        },
        "note": "recovery equivalence gates; latency and wall numbers are advisory",
    }
    if json_path:
        directory = os.path.dirname(json_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        merged = _read_bench_json(json_path) or {}
        merged["fabric"] = payload
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=2)
    return payload


# --------------------------------------------------------------------------- #
# SERVE: counter pins and microsecond-tick latency gate
# --------------------------------------------------------------------------- #

#: Exact work counters of the pinned counter-regression workload (8 tenants,
#: 64 quantised ticks of diurnal-cpu-gpu, algorithm A, shared caches) — all
#: integers are deterministic functions of the instance, independent of the
#: machine, so the gate is exact equality.  ``grid_hit_rate`` is the serve
#: cache's rounded hit ratio; ``*_warm``/``*_prewarmed`` rows pin the
#: warm-started bisection and the table-gather fast path respectively.
PINNED_SERVE_COUNTERS: Dict[str, float] = {
    "unique_solves": 57,
    "slot_queries": 57,
    "tensor_hits": 500,
    "tensor_misses": 12,
    "grid_hit_rate": 0.976562,
    "warm_hits_warm": 41,
    "cold_solves_warm": 16,
    "table_gathers_prewarmed": 928,
    "prewarmed_levels": 12,
    "unique_solves_prewarmed": 228,
}


def run_counter_regress(json_path: Optional[str] = None) -> dict:
    """Pin the hot-path work counters on a fixed multi-tenant workload.

    Three replays of the same deterministic workload (8 tenants, rotated
    copies of a 64-tick quantised ``diurnal-cpu-gpu`` trace, algorithm A,
    shared caches):

    * **cold** — the default path; pins ``unique_solves``, ``slot_queries``,
      ``tensor_hits``/``tensor_misses`` and the serve-level ``grid_hit_rate``,
    * **warm** — ``warm_start=True``; additionally pins the
      ``warm_hits``/``cold_solves`` split of the dual bisection, and
    * **prewarmed** — the demand alphabet prewarmed into the solution-table
      fast maps; pins ``table_gathers`` and ``prewarmed_levels``.

    Every run must also reproduce the cold run's per-tenant costs to 1e-9
    (the counters may only change when the *work routing* changes, never the
    decisions).  All counters gate by exact equality against
    :data:`PINNED_SERVE_COUNTERS` — they are integer-valued functions of the
    instance, so any drift means the routing changed and the pins (plus
    PERFORMANCE.md) must be re-derived deliberately.
    """
    from .serve import InstanceFeed, ServeEngine
    from .workloads.scale import quantise_trace

    ticks, levels, tenants = 64, 12, 8
    base = build_scenario("diurnal-cpu-gpu", T=ticks)
    demand = quantise_trace(base.demand, levels=levels)
    instance = base.with_demand(demand, name="counter-regress")

    def replay(warm_start: bool, prewarm: bool):
        engine = ServeEngine(share_caches=True, warm_start=warm_start)
        for k in range(tenants):
            feed = InstanceFeed(
                instance.with_demand(np.roll(demand, k), name=f"tenant-{k}")
            )
            engine.add_tenant(f"tenant-{k}", "A", feed)
        if prewarm:
            engine.prewarm(sorted({float(v) for v in demand}))
        engine.run()
        counters = [cache.counters() for cache in engine.caches]
        summed = {
            key: sum(c[key] for c in counters)
            for key in (
                "unique_solves",
                "slot_queries",
                "tensor_hits",
                "tensor_misses",
                "table_gathers",
                "prewarmed_levels",
                "warm_hits",
                "cold_solves",
            )
        }
        summed["grid_hit_rate"] = round(
            sum(c["tensor_hits"] for c in counters)
            / max(sum(c["tensor_hits"] + c["tensor_misses"] for c in counters), 1),
            6,
        )
        # second path to the same numbers: the engine's metrics registry
        # (deterministic_snapshot runs the collectors), summed across the
        # per-cache labelled series — must agree with the dict path exactly
        engine.metrics.deterministic_snapshot()
        registry = {key: engine.metrics.sum_metric(key) for key in summed if key != "grid_hit_rate"}
        registry["grid_hit_rate"] = round(
            registry["tensor_hits"]
            / max(registry["tensor_hits"] + registry["tensor_misses"], 1),
            6,
        )
        return summed, [s.cumulative_cost for s in engine.sessions], registry

    cold, cold_costs, cold_reg = replay(warm_start=False, prewarm=False)
    warm, warm_costs, warm_reg = replay(warm_start=True, prewarm=False)
    pre, pre_costs, pre_reg = replay(warm_start=False, prewarm=True)

    for label, counters_path, registry_path in (
        ("cold", cold, cold_reg), ("warm", warm, warm_reg), ("prewarmed", pre, pre_reg)
    ):
        if counters_path != registry_path:
            diff = {
                k: (counters_path.get(k), registry_path.get(k))
                for k in set(counters_path) | set(registry_path)
                if counters_path.get(k) != registry_path.get(k)
            }
            raise AssertionError(
                f"counter regress: {label} registry snapshot disagrees with the "
                f"counters() dict path ({diff}) — the registry threading dropped "
                "or double-counted an increment site"
            )

    for label, costs in (("warm", warm_costs), ("prewarmed", pre_costs)):
        worst = max(abs(a - b) for a, b in zip(costs, cold_costs))
        if not worst <= 1e-9:
            raise AssertionError(
                f"counter regress: {label} replay changed a tenant's cost by "
                f"{worst:.3e} — counter routing must be decision-neutral"
            )

    measured = {
        "unique_solves": cold["unique_solves"],
        "slot_queries": cold["slot_queries"],
        "tensor_hits": cold["tensor_hits"],
        "tensor_misses": cold["tensor_misses"],
        "grid_hit_rate": cold["grid_hit_rate"],
        "warm_hits_warm": warm["warm_hits"],
        "cold_solves_warm": warm["cold_solves"],
        "table_gathers_prewarmed": pre["table_gathers"],
        "prewarmed_levels": pre["prewarmed_levels"],
        "unique_solves_prewarmed": pre["unique_solves"],
    }
    measured_registry = {
        "unique_solves": cold_reg["unique_solves"],
        "slot_queries": cold_reg["slot_queries"],
        "tensor_hits": cold_reg["tensor_hits"],
        "tensor_misses": cold_reg["tensor_misses"],
        "grid_hit_rate": cold_reg["grid_hit_rate"],
        "warm_hits_warm": warm_reg["warm_hits"],
        "cold_solves_warm": warm_reg["cold_solves"],
        "table_gathers_prewarmed": pre_reg["table_gathers"],
        "prewarmed_levels": pre_reg["prewarmed_levels"],
        "unique_solves_prewarmed": pre_reg["unique_solves"],
    }
    deviations = {}
    for key, pinned in PINNED_SERVE_COUNTERS.items():
        if key not in measured:
            raise AssertionError(f"counter regress measured no value for pin {key!r}")
        if measured[key] != pinned:
            deviations[key] = (pinned, measured[key])
        if measured_registry[key] != pinned:
            deviations[f"{key} (registry path)"] = (pinned, measured_registry[key])
    if deviations:
        drifted = ", ".join(
            f"{key}: pinned {pinned!r} vs measured {got!r}"
            for key, (pinned, got) in sorted(deviations.items())
        )
        raise AssertionError(
            f"counter regress: hot-path work counters drifted ({drifted}) — "
            "the solve routing changed; re-derive the pins only if the change "
            "is intentional"
        )
    if warm["warm_hits"] <= 0:
        raise AssertionError(
            "counter regress: warm_start=True replay recorded no warm bisection "
            "hits — the bracket seeding is dead code"
        )
    if pre["table_gathers"] <= 0:
        raise AssertionError(
            "counter regress: prewarmed replay recorded no table gathers — "
            "the quantised fast path is dead code"
        )

    payload = {
        "benchmark": "counter_regress",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "workload": {
            "scenario": "diurnal-cpu-gpu",
            "ticks": ticks,
            "demand_levels": levels,
            "tenants": tenants,
            "algorithm": "A",
        },
        "measured": measured,
        "registry": measured_registry,
        "pinned": dict(PINNED_SERVE_COUNTERS),
        "modes": {"cold": cold, "warm": warm, "prewarmed": pre},
        "note": "all counters gate by exact equality — through both the "
                "counters() dict path and the metrics-registry snapshot path; "
                "costs gate at 1e-9",
    }
    if json_path:
        directory = os.path.dirname(json_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
    return payload


#: Total stream cost of the latency-smoke replay (256 quantised ticks of
#: diurnal-cpu-gpu, 12 levels, algorithm A) — machine-independent; the gate
#: reproduces it to 1e-9 on every path (plain, prewarmed, every repeat).
PINNED_LATENCY_SMOKE_COST: Optional[float] = 2424.533801552966


def run_latency_smoke(
    budget_us: float = 50.0,
    budget_scale: float = 1.0,
    repeats: int = 6,
    ticks: int = 256,
    demand_levels: int = 12,
    scenario: str = "diurnal-cpu-gpu",
    algorithm: str = "A",
    json_path: Optional[str] = None,
) -> dict:
    """Gate the steady-state tick latency of the quantised serve hot path.

    Replays a ``ticks``-slot quantised trace through ``repeats`` fresh
    sessions over one *prewarmed* shared :class:`~repro.serve.ServeCache`
    (the table-gather fast path) and gates the **p99 of the per-tick floor**
    against ``budget_us * budget_scale`` microseconds.

    Measurement methodology — why the floor and not a single run's p99: on a
    shared machine the raw per-run p99 is dominated by OS preemption (a
    handful of 100-400µs spikes at *random* tick indices, plus the
    intrinsically cold ticks 0-1 that build the startup tensor and the
    transition plan).  Taking the elementwise **minimum latency per tick
    index across repeats** (best-of-N) cancels the additive scheduler noise
    while preserving every cost the algorithm itself pays — a tick can never
    run faster than its intrinsic work.  Raw per-repeat percentiles are
    recorded alongside as advisory context; CI runs the same gate with a
    generous ``budget_scale`` because shared runners are noisier still.

    Correctness rides along: every repeat's schedule must be bit-identical
    (``np.array_equal``) to a plain cold-path session's, with total cost equal
    to 1e-9 (and to :data:`PINNED_LATENCY_SMOKE_COST` at the default
    parameters) — the fast path may only be fast, never different.

    GC is disabled around the timed loops; latencies are the sessions' own
    ``perf_counter_ns`` integers.
    """
    import gc

    from .core.backend import get_backend
    from .serve import ControllerSession, ServeCache
    from .workloads.scale import quantise_trace

    ticks = int(ticks)
    repeats = max(2, int(repeats))
    base = build_scenario(scenario, T=ticks)
    demand = quantise_trace(base.demand, levels=demand_levels)
    demand_list = [float(v) for v in demand]
    levels = sorted(set(demand_list))
    server_types = base.server_types

    # reference: plain cold-path session, no shared cache, no fast maps
    plain = ControllerSession(algorithm, server_types, name="plain")
    for value in demand_list:
        plain.observe(value)
    plain.finish()
    reference_schedule = plain.schedule.x
    reference_cost = plain.cumulative_cost

    cache = ServeCache(server_types)
    cache.prewarm(levels)

    per_tick = np.empty((repeats, ticks), dtype=np.int64)
    per_rep_rows = []
    for rep in range(repeats):
        session = ControllerSession(algorithm, cache=cache, name=f"rep-{rep}")
        gc.disable()
        try:
            for value in demand_list:
                session.observe(value)
        finally:
            gc.enable()
        session.finish()
        if not np.array_equal(session.schedule.x, reference_schedule):
            raise AssertionError(
                f"latency smoke: repeat {rep} over the prewarmed cache produced "
                "a different schedule than the plain cold-path session — the "
                "fast path changed a decision"
            )
        deviation = abs(session.cumulative_cost - reference_cost)
        if not deviation <= 1e-9:
            raise AssertionError(
                f"latency smoke: repeat {rep} cost deviates from the plain "
                f"session by {deviation:.3e} (> 1e-9)"
            )
        lat = session.latencies_ns
        per_tick[rep] = lat
        us = lat / 1000.0
        per_rep_rows.append(
            {
                "repeat": rep,
                "p50_us": round(float(np.percentile(us, 50)), 2),
                "p90_us": round(float(np.percentile(us, 90)), 2),
                "p99_us": round(float(np.percentile(us, 99)), 2),
                "max_us": round(float(us.max()), 2),
            }
        )

    defaults = (
        scenario == "diurnal-cpu-gpu"
        and ticks == 256
        and demand_levels == 12
        and algorithm == "A"
    )
    if defaults and PINNED_LATENCY_SMOKE_COST is not None:
        pin_deviation = abs(reference_cost - PINNED_LATENCY_SMOKE_COST)
        if not pin_deviation <= 1e-9:
            raise AssertionError(
                f"latency smoke: stream cost {reference_cost!r} deviates from the "
                f"pinned value {PINNED_LATENCY_SMOKE_COST!r} by {pin_deviation:.3e}"
            )

    floor_us = per_tick.min(axis=0) / 1000.0
    floor = {
        "p50_us": round(float(np.percentile(floor_us, 50)), 2),
        "p90_us": round(float(np.percentile(floor_us, 90)), 2),
        "p99_us": round(float(np.percentile(floor_us, 99)), 2),
        "max_us": round(float(floor_us.max()), 2),
    }
    budget = float(budget_us) * float(budget_scale)
    if not floor["p99_us"] < budget:
        raise AssertionError(
            f"latency smoke: steady-state p99 tick latency {floor['p99_us']}µs "
            f"(per-tick floor over {repeats} repeats) exceeds the "
            f"{budget:g}µs budget ({budget_us:g}µs x {budget_scale:g})"
        )

    # tracing-overhead rider: the same workload fully traced (trace_every=1,
    # the sampling knob's worst case — three perf_counter_ns pairs per tick)
    # must keep its floor p99 under 2x the untraced budget, and must remain
    # decision-neutral.  Same floor-of-repeats methodology as above.
    from .serve.trace import TickTracer

    tracer = TickTracer(trace_every=1)
    traced_tick = np.empty((repeats, ticks), dtype=np.int64)
    for rep in range(repeats):
        session = ControllerSession(
            algorithm, cache=cache, name=f"traced-{rep}", tracer=tracer
        )
        gc.disable()
        try:
            for value in demand_list:
                session.observe(value)
        finally:
            gc.enable()
        session.finish()
        if not np.array_equal(session.schedule.x, reference_schedule):
            raise AssertionError(
                f"latency smoke: traced repeat {rep} produced a different "
                "schedule — tracing must only read clocks, never decide"
            )
        deviation = abs(session.cumulative_cost - reference_cost)
        if not deviation <= 1e-9:
            raise AssertionError(
                f"latency smoke: traced repeat {rep} cost deviates by "
                f"{deviation:.3e} (> 1e-9)"
            )
        traced_tick[rep] = session.latencies_ns
    traced_floor_us = traced_tick.min(axis=0) / 1000.0
    traced_floor = {
        "p50_us": round(float(np.percentile(traced_floor_us, 50)), 2),
        "p90_us": round(float(np.percentile(traced_floor_us, 90)), 2),
        "p99_us": round(float(np.percentile(traced_floor_us, 99)), 2),
        "max_us": round(float(traced_floor_us.max()), 2),
    }
    if not traced_floor["p99_us"] < 2.0 * budget:
        raise AssertionError(
            f"latency smoke: fully-traced p99 tick latency {traced_floor['p99_us']}µs "
            f"exceeds 2x the {budget:g}µs budget — the tracer is on the wrong "
            "side of the hot path"
        )

    payload = {
        "benchmark": "latency_smoke",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "backend": get_backend().name,
        "scenario": scenario,
        "algorithm": algorithm,
        "ticks": ticks,
        "demand_levels": demand_levels,
        "repeats": repeats,
        "budget_us": float(budget_us),
        "budget_scale": float(budget_scale),
        "cost": reference_cost,
        "prewarmed_levels": len(levels),
        "table_gathers": cache.table_gathers,
        "floor_us": floor,
        "traced": {
            "trace_every": 1,
            "sampled_ticks": tracer.sampled_ticks,
            "floor_us": traced_floor,
            "budget_us": round(2.0 * budget, 6),
        },
        "per_repeat_us": per_rep_rows,
        "note": (
            "floor_us = percentiles of the per-tick minimum across repeats "
            "(cancels additive OS noise); per_repeat_us rows are raw and "
            "advisory; schedule/cost equality gates"
        ),
    }
    if json_path:
        directory = os.path.dirname(json_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        merged = _read_bench_json(json_path) or {}
        previous = merged.get("latency")
        runs = list(previous.get("runs", [])) if isinstance(previous, dict) else []
        runs.append(
            {
                "recorded_at": payload["recorded_at"],
                "environment": payload["environment"],
                "backend": payload["backend"],
                "floor_p99_us": floor["p99_us"],
                "floor_p50_us": floor["p50_us"],
                "budget_us": budget,
            }
        )
        payload["runs"] = runs[-TREND_MAX_RUNS:]
        merged["latency"] = payload
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=2)
    return payload
