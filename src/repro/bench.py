"""Benchmark regression harness: pinned smoke instances and exactness checks.

The batched dispatch engine (:mod:`repro.dispatch.allocation`) is a pure
hot-path optimisation — it must not change any computed optimum.  This module
pins three small instances together with their optimal costs as computed by
the original (pre-engine) implementation; ``python -m repro bench --smoke``
(or ``make bench-smoke``) re-solves them and fails loudly if any cost drifts
by more than ``1e-6``.

The three instances deliberately exercise the engine's three code paths:

* ``smoke-diurnal`` — time-independent costs, so slot deduplication by
  ``(demand, cost-row)`` signature applies,
* ``smoke-priced`` — time-dependent operating costs (Section 3), one cost row
  per slot, grouped-by-row vectorised bisection,
* ``smoke-counts`` — time-dependent fleet sizes (Section 4.3), several grids
  per horizon, per-grid dispatch blocks.

The harness also reports wall times, states explored and the engine's
cache-hit rate, and can emit the numbers as JSON for trend tracking.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

import numpy as np

from .core.instance import ProblemInstance
from .dispatch.allocation import DispatchSolver
from .offline.graph_optimal import solve_optimal
from .workloads import bursty_trace, cpu_gpu_fleet, diurnal_trace, fleet_instance, old_new_fleet

__all__ = ["PINNED_OPTIMAL_COSTS", "smoke_instances", "run_smoke_bench"]

#: Optimal costs of the pinned instances, computed with the seed (pre-engine)
#: implementation.  The DP must keep reproducing these exactly (tol 1e-6).
PINNED_OPTIMAL_COSTS: Dict[str, float] = {
    "smoke-diurnal": 269.9391201523013,
    "smoke-priced": 166.75819719190875,
    "smoke-counts": 187.90000000000003,
}


def smoke_instances() -> List[ProblemInstance]:
    """The three pinned regression instances (deterministic by construction)."""
    diurnal = fleet_instance(
        cpu_gpu_fleet(cpu_count=5, gpu_count=2),
        diurnal_trace(24, period=12, base=1.0, peak=10.0, noise=0.05, rng=1),
        name="smoke-diurnal",
    )

    priced_base = fleet_instance(
        cpu_gpu_fleet(cpu_count=5, gpu_count=2),
        diurnal_trace(16, period=8, base=1.0, peak=9.0, noise=0.0, rng=3),
    )
    prices = 1.0 + 0.5 * np.sin(np.arange(16) / 16 * 4 * np.pi + 0.7)
    priced = priced_base.with_price_profile(prices, name="smoke-priced")

    counts_base = fleet_instance(
        old_new_fleet(old_count=4, new_count=2),
        bursty_trace(16, base=1.0, burst_height=6.0, burst_probability=0.2, rng=2),
    )
    counts = np.tile([4, 2], (16, 1)).astype(int)
    counts[4:8, 0] = 2
    counts[10:13, 1] = 1
    varying = counts_base.with_counts(counts, name="smoke-counts")

    return [diurnal, priced, varying]


def run_smoke_bench(tolerance: float = 1e-6, json_path: Optional[str] = None) -> List[dict]:
    """Solve the pinned instances and assert seed-identical optimal costs.

    Returns one row per instance with the measured wall time, explored states
    and dispatch-engine counters.  Raises :class:`AssertionError` when a cost
    deviates from its pinned value by more than ``tolerance``.
    """
    rows: List[dict] = []
    for instance in smoke_instances():
        dispatcher = DispatchSolver(instance)
        start = time.perf_counter()
        result = solve_optimal(instance, dispatcher=dispatcher, return_schedule=False)
        elapsed = time.perf_counter() - start
        expected = PINNED_OPTIMAL_COSTS[instance.name]
        deviation = abs(result.cost - expected)
        rows.append(
            {
                "instance": instance.name,
                "T": instance.T,
                "d": instance.d,
                "optimal_cost": result.cost,
                "pinned_cost": expected,
                "deviation": deviation,
                "seconds": round(elapsed, 6),
                "states_explored": result.num_states_explored,
                "dispatch": dispatcher.stats.snapshot(),
            }
        )
        if deviation > tolerance:
            raise AssertionError(
                f"{instance.name}: optimal cost {result.cost!r} deviates from the "
                f"pinned seed value {expected!r} by {deviation:g} (> {tolerance:g}) — "
                "the dispatch/DP hot path is no longer exact"
            )
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump({"smoke": rows}, handle, indent=2)
    return rows
