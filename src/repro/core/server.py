"""Server-type description for heterogeneous data centers.

A data center in the model of Albers & Quedenfeld (SPAA 2021) consists of ``d``
server *types*.  Type ``j`` is described by

* ``count`` — the number ``m_j`` of physical servers of this type,
* ``switching_cost`` — the power-up cost ``beta_j`` (power-down is free; because
  every schedule starts and ends with all servers off, the down cost can always
  be folded into the up cost),
* ``capacity`` — the maximum job volume ``zmax_j`` one server can process during
  a single time slot, and
* ``cost_function`` — the convex, increasing operating-cost function ``f_j``.

Heterogeneity arises from different architectures (CPU vs. GPU nodes), from
different hardware generations, or simply from different energy contracts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from .cost_functions import CostFunction, LinearCost

__all__ = ["ServerType"]


@dataclass(frozen=True)
class ServerType:
    """Description of one server type ``j`` of the heterogeneous data center."""

    name: str
    count: int
    switching_cost: float
    capacity: float
    cost_function: CostFunction = field(default_factory=lambda: LinearCost(idle=1.0, slope=1.0))

    def __post_init__(self):
        if self.count < 0:
            raise ValueError(f"server count must be non-negative, got {self.count}")
        if int(self.count) != self.count:
            raise ValueError(f"server count must be integral, got {self.count}")
        object.__setattr__(self, "count", int(self.count))
        if self.switching_cost < 0:
            raise ValueError(f"switching cost must be non-negative, got {self.switching_cost}")
        if not (self.capacity > 0):
            raise ValueError(f"capacity (zmax) must be positive, got {self.capacity}")
        if not isinstance(self.cost_function, CostFunction):
            raise TypeError("cost_function must be a repro CostFunction instance")

    # ------------------------------------------------------------------ info
    @property
    def idle_cost(self) -> float:
        """Idle operating cost ``f_j(0)`` of one powered-up server per slot."""
        return self.cost_function.idle_cost()

    @property
    def full_load_cost(self) -> float:
        """Operating cost of one server running at full capacity for one slot."""
        cap = self.capacity if np.isfinite(self.capacity) else 1.0
        return float(self.cost_function.value(cap))

    def break_even_slots(self) -> float:
        """Number of idle slots after which keeping the server on costs more than
        a fresh power-up, i.e. ``ceil(beta_j / f_j(0))`` — the runtime ``\\bar t_j``
        used by online Algorithm A (the "ski-rental" horizon of this type).

        Returns ``inf`` when the idle cost is zero (such a server is never
        powered down by Algorithm A).
        """
        idle = self.idle_cost
        if idle <= 0.0:
            return float("inf")
        return float(np.ceil(self.switching_cost / idle))

    def with_count(self, count: int) -> "ServerType":
        """Return a copy of this type with a different number of servers."""
        return replace(self, count=int(count))

    def with_cost_function(self, cost_function: CostFunction) -> "ServerType":
        """Return a copy of this type with a different operating-cost function."""
        return replace(self, cost_function=cost_function)

    def describe(self) -> str:
        """One-line human readable summary (used by the example scripts)."""
        cap = "inf" if not np.isfinite(self.capacity) else f"{self.capacity:g}"
        return (
            f"{self.name}: m={self.count}, beta={self.switching_cost:g}, "
            f"zmax={cap}, idle={self.idle_cost:g}, full-load={self.full_load_cost:g}"
        )
