"""Exact cost evaluation of schedules.

The total cost of a schedule (equation (2) of the paper) is

``C(X) = sum_t [ g_t(x_t) + sum_j beta_j (x_{t,j} - x_{t-1,j})^+ ]``.

This module evaluates it exactly (up to the tolerance of the dispatch solver)
and additionally provides the *idle / load-dependent* decomposition of the
operating cost that drives the competitive analysis of Sections 2-3:

``L_{t,j}(X) = x_{t,j} * ( f_{t,j}(lambda_t z_{t,j} / x_{t,j}) - f_{t,j}(0) )``

is the load-dependent part (Lemma 4 shows it is dominated by the optimum), and
``x_{t,j} * f_{t,j}(0)`` is the idle part charged against blocks in Lemmas 6/7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..dispatch.allocation import DispatchSolver
from .instance import ProblemInstance
from .schedule import Schedule

__all__ = [
    "CostBreakdown",
    "breakdown_from_parts",
    "evaluate_schedule",
    "total_cost",
    "operating_cost",
    "switching_cost",
]


@dataclass(frozen=True, eq=False)
class CostBreakdown:
    """Complete per-slot cost decomposition of a schedule.

    Attributes
    ----------
    operating:
        ``(T,)`` array with ``g_t(x_t)`` per slot.
    switching:
        ``(T,)`` array with the power-up cost paid when entering each slot.
    idle:
        ``(T, d)`` array with the idle operating cost ``x_{t,j} f_{t,j}(0)``.
    load_dependent:
        ``(T, d)`` array with ``L_{t,j}(X)``.
    loads:
        ``(T, d)`` array with the dispatched volumes ``w_{t,j}``.
    feasible:
        Whether every slot could serve its demand.
    """

    operating: np.ndarray
    switching: np.ndarray
    idle: np.ndarray
    load_dependent: np.ndarray
    loads: np.ndarray
    feasible: bool

    @property
    def total(self) -> float:
        """Total schedule cost ``C(X)``."""
        return float(np.sum(self.operating) + np.sum(self.switching))

    @property
    def total_operating(self) -> float:
        return float(np.sum(self.operating))

    @property
    def total_switching(self) -> float:
        return float(np.sum(self.switching))

    @property
    def total_idle(self) -> float:
        return float(np.sum(self.idle))

    @property
    def total_load_dependent(self) -> float:
        return float(np.sum(self.load_dependent))

    def summary(self) -> dict:
        """Dictionary summary used by the reporting helpers."""
        return {
            "total": self.total,
            "operating": self.total_operating,
            "switching": self.total_switching,
            "idle": self.total_idle,
            "load_dependent": self.total_load_dependent,
            "feasible": self.feasible,
        }


def evaluate_schedule(
    instance: ProblemInstance,
    schedule: Schedule,
    dispatcher: Optional[DispatchSolver] = None,
    memoise: bool = True,
) -> CostBreakdown:
    """Evaluate a schedule against an instance, returning the full cost breakdown.

    Infeasible slots (demand exceeding the capacity of the chosen configuration)
    contribute ``inf`` operating cost, mirroring equation (1).  ``memoise=False``
    forwards to :meth:`~repro.dispatch.DispatchSolver.solve_block` so the
    streaming DP's final re-evaluation does not repopulate the per-slot dispatch
    cache it deliberately avoided building.
    """
    if schedule.x.shape != (instance.T, instance.d):
        raise ValueError(
            f"schedule shape {schedule.x.shape} does not match instance "
            f"(T={instance.T}, d={instance.d})"
        )
    dispatcher = dispatcher or DispatchSolver(instance)

    T, d = instance.T, instance.d
    operating = np.zeros(T)
    loads = np.zeros((T, d))
    feasible = True

    # Batch all dispatch work through the block engine: evaluate the schedule's
    # unique configurations against every slot.  The engine deduplicates slots
    # by (demand, cost-row) signature, so the number of actual dual-bisection
    # solves is (unique signatures) x (unique configs) fused into vectorised
    # passes — far cheaper than T sequential single-configuration solves.
    # Long horizons are *chunked* so the transient (slots x configs) result
    # block stays bounded (~500k entries, the streaming DP's final
    # re-evaluation must not reintroduce an O(T * |M|) allocation); a single
    # chunk reproduces the historical one-block behaviour exactly.  Only when
    # the schedule has so many distinct configurations that chunks would
    # degenerate to a handful of slots does the per-slot single-configuration
    # path remain the cheaper option.
    unique_configs, inverse = np.unique(schedule.x, axis=0, return_inverse=True)
    inverse = np.asarray(inverse).reshape(-1)
    chunk = max(1, 500_000 // max(len(unique_configs), 1)) if T else 0
    use_block = T > 0 and chunk >= 4

    for lo in range(0, T, chunk if use_block else max(T, 1)):
        if use_block:
            ts = range(lo, min(lo + chunk, T))
            block_costs, block_loads = dispatcher.solve_block(ts, unique_configs, memoise=memoise)
        else:
            ts = range(T)
        for i, t in enumerate(ts):
            x_t = schedule[t]
            counts = instance.counts_at(t)
            if np.any(x_t > counts):
                operating[t] = np.inf
                feasible = False
                continue
            if use_block:
                k = int(inverse[t])
                cost_t = float(block_costs[i, k])
                loads_t = block_loads[i, k]
            else:
                result = dispatcher.solve(t, x_t)
                cost_t = result.cost
                loads_t = result.loads
            operating[t] = cost_t
            loads[t] = loads_t
            if not np.isfinite(cost_t):
                feasible = False

    return breakdown_from_parts(instance, schedule, operating, loads, feasible)


def breakdown_from_parts(
    instance: ProblemInstance,
    schedule: Schedule,
    operating: np.ndarray,
    loads: np.ndarray,
    feasible: bool,
) -> CostBreakdown:
    """Assemble a :class:`CostBreakdown` from precomputed per-slot dispatch results.

    ``operating[t]`` is ``g_t(x_t)`` (``inf`` for infeasible slots) and
    ``loads[t]`` the optimal per-type volumes.  The sweep engine gathers both
    from the per-slot grid tensors it already computed instead of re-solving
    the schedule's configurations, then shares this assembly with
    :func:`evaluate_schedule`.
    """
    T, d = instance.T, instance.d
    idle = np.zeros((T, d))
    load_dep = np.zeros((T, d))
    for t in range(T):
        if not np.isfinite(operating[t]):
            continue
        x_t = schedule[t]
        loads_t = loads[t]
        functions = instance.cost_row(t)
        for j in range(d):
            f = functions[j]
            idle_cost = f.idle_cost()
            idle[t, j] = x_t[j] * idle_cost
            if x_t[j] > 0:
                per_server = loads_t[j] / x_t[j]
                load_dep[t, j] = x_t[j] * (float(f.value(per_server)) - idle_cost)

    switching = (schedule.power_ups() * instance.beta[None, :]).sum(axis=1)
    return CostBreakdown(
        operating=np.asarray(operating, dtype=float),
        switching=switching,
        idle=idle,
        load_dependent=load_dep,
        loads=np.asarray(loads, dtype=float),
        feasible=feasible,
    )


def total_cost(
    instance: ProblemInstance,
    schedule: Schedule,
    dispatcher: Optional[DispatchSolver] = None,
) -> float:
    """Total cost ``C(X)`` of a schedule (``inf`` when infeasible)."""
    return evaluate_schedule(instance, schedule, dispatcher).total


def operating_cost(
    instance: ProblemInstance,
    schedule: Schedule,
    dispatcher: Optional[DispatchSolver] = None,
) -> float:
    """Total operating cost ``C_op(X) = sum_t g_t(x_t)``."""
    return evaluate_schedule(instance, schedule, dispatcher).total_operating


def switching_cost(instance: ProblemInstance, schedule: Schedule) -> float:
    """Total switching cost ``C_sw(X)`` (no dispatch required)."""
    return schedule.switching_cost(instance)
