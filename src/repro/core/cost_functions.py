"""Convex operating-cost functions for heterogeneous servers.

In the model of Albers & Quedenfeld (SPAA 2021), the energy consumed by a single
server of type ``j`` running at load ``z`` during one time slot is described by an
increasing, convex, non-negative function ``f_j(z)`` (time-independent case,
Section 2 of the paper) or ``f_{t,j}(z)`` (time-dependent case, Section 3).

``f_j(0)`` is the *idle* operating cost of a powered-up server; the load-dependent
part ``f_j(z) - f_j(0)`` models dynamic power (frequency/voltage scaling makes it
superlinear in practice, which is why convexity is the natural assumption).

This module provides a small library of such functions.  Every cost function

* is vectorised: it accepts scalars or :class:`numpy.ndarray` loads and returns
  values of the same shape,
* exposes its derivative and — where it exists in closed form — the inverse of the
  derivative.  The inverse marginal is what makes the load-dispatch solver
  (:mod:`repro.dispatch`) fast: the KKT conditions of the separable allocation
  problem equalise marginals across server types, so evaluating
  ``(f_j')^{-1}(mu)`` for a candidate multiplier ``mu`` solves the inner problem
  in closed form.

The functions are intentionally simple dataclasses; they are hashable and
comparable which makes memoising dispatch results straightforward.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "CostFunction",
    "ConstantCost",
    "LinearCost",
    "QuadraticCost",
    "PowerCost",
    "PiecewiseLinearCost",
    "ScaledCost",
    "ShiftedCost",
    "CallableCost",
    "check_valid_cost_function",
]

_ArrayLike = "float | np.ndarray"


class CostFunction:
    """Abstract base class for convex, increasing, non-negative cost functions.

    Subclasses must implement :meth:`value` and :meth:`derivative`.  If a closed
    form for the inverse derivative exists, :meth:`inverse_derivative` should be
    overridden as well; otherwise a generic bisection-based fallback is used.

    The function is interpreted on ``z >= 0``.  Values for negative ``z`` are
    never requested by the library.
    """

    #: Marks functions whose derivative is constant (linear / constant cost).
    #: The dispatcher uses an exact greedy water-filling path for those.
    has_constant_marginal: bool = False

    # ----------------------------------------------------------------- values
    def value(self, z):
        """Return ``f(z)`` (vectorised)."""
        raise NotImplementedError

    def derivative(self, z):
        """Return ``f'(z)`` (vectorised).

        For piecewise functions the right derivative is returned at kinks.
        """
        raise NotImplementedError

    def inverse_derivative(self, y):
        """Return the largest ``z >= 0`` with ``f'(z) <= y`` (vectorised).

        This is the generalised inverse of the (non-decreasing) marginal cost.
        When ``y`` is below the marginal at 0 the result is ``0``; when the
        marginal never reaches ``y`` the result is ``+inf``.  The default
        implementation uses bisection on ``[0, _INV_UPPER]`` and is adequate for
        exotic user-supplied functions; built-in families override it with
        closed forms.
        """
        y_arr = np.asarray(y, dtype=float)
        scalar = y_arr.ndim == 0
        y_flat = np.atleast_1d(y_arr).astype(float)
        out = np.empty_like(y_flat)
        for i, yi in enumerate(y_flat):
            out[i] = self._inverse_derivative_scalar(float(yi))
        result = out.reshape(y_arr.shape) if not scalar else float(out[0])
        return result

    _INV_UPPER = 1e12

    def _inverse_derivative_scalar(self, y: float) -> float:
        if self.derivative(0.0) > y:
            return 0.0
        lo, hi = 0.0, 1.0
        # exponential search for an upper bracket
        while self.derivative(hi) <= y:
            hi *= 2.0
            if hi > self._INV_UPPER:
                return math.inf
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.derivative(mid) <= y:
                lo = mid
            else:
                hi = mid
        return lo

    # ----------------------------------------------------------- conveniences
    def __call__(self, z):
        return self.value(z)

    def idle_cost(self) -> float:
        """Return ``f(0)``, the idle operating cost of a powered-up server."""
        return float(self.value(0.0))

    def scaled(self, factor: float) -> "CostFunction":
        """Return ``factor * f`` (used for the sub-slot refinement of Alg. C)."""
        return ScaledCost(self, factor)


# --------------------------------------------------------------------------- #
# Concrete families
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ConstantCost(CostFunction):
    """Load-independent operating cost ``f(z) = level``.

    This is the special case studied in the companion paper (Albers &
    Quedenfeld, CIAC 2021) for which Algorithm A achieves the optimal
    competitive ratio of ``2d`` (Corollary 9).
    """

    level: float
    has_constant_marginal = True

    def __post_init__(self):
        if self.level < 0:
            raise ValueError(f"constant cost level must be non-negative, got {self.level}")

    def value(self, z):
        z = np.asarray(z, dtype=float)
        return np.broadcast_to(np.float64(self.level), z.shape).copy() if z.ndim else float(self.level)

    def derivative(self, z):
        z = np.asarray(z, dtype=float)
        return np.zeros(z.shape) if z.ndim else 0.0

    def inverse_derivative(self, y):
        y = np.asarray(y, dtype=float)
        res = np.where(y >= 0.0, np.inf, 0.0)
        return res if y.ndim else float(res)


@dataclass(frozen=True)
class LinearCost(CostFunction):
    """Affine operating cost ``f(z) = idle + slope * z``.

    ``idle`` is the static power draw of an active server and ``slope`` the
    energy per unit of processed work.  An idle modern server typically draws
    around half its peak power, i.e. ``idle ~ slope * zmax``.
    """

    idle: float
    slope: float
    has_constant_marginal = True

    def __post_init__(self):
        if self.idle < 0 or self.slope < 0:
            raise ValueError("idle and slope must be non-negative")

    def value(self, z):
        z = np.asarray(z, dtype=float)
        out = self.idle + self.slope * z
        return out if z.ndim else float(out)

    def derivative(self, z):
        z = np.asarray(z, dtype=float)
        out = np.full(z.shape, float(self.slope)) if z.ndim else float(self.slope)
        return out

    def inverse_derivative(self, y):
        y = np.asarray(y, dtype=float)
        res = np.where(y >= self.slope, np.inf, 0.0)
        return res if y.ndim else float(res)


@dataclass(frozen=True)
class QuadraticCost(CostFunction):
    """Quadratic operating cost ``f(z) = idle + a*z + b*z**2`` with ``a, b >= 0``.

    Quadratic (and more generally superlinear) dynamic power is the standard
    model for CPU frequency/voltage scaling (Wierman, Andrew & Tang 2009).
    """

    idle: float
    a: float = 0.0
    b: float = 1.0

    def __post_init__(self):
        if self.idle < 0 or self.a < 0 or self.b < 0:
            raise ValueError("all coefficients must be non-negative")

    def value(self, z):
        z = np.asarray(z, dtype=float)
        out = self.idle + self.a * z + self.b * z * z
        return out if z.ndim else float(out)

    def derivative(self, z):
        z = np.asarray(z, dtype=float)
        out = self.a + 2.0 * self.b * z
        return out if z.ndim else float(out)

    def inverse_derivative(self, y):
        y = np.asarray(y, dtype=float)
        if self.b == 0.0:
            res = np.where(y >= self.a, np.inf, 0.0)
        else:
            res = np.maximum(0.0, (y - self.a) / (2.0 * self.b))
        return res if y.ndim else float(res)

    @property
    def has_constant_marginal(self) -> bool:  # type: ignore[override]
        return self.b == 0.0


@dataclass(frozen=True)
class PowerCost(CostFunction):
    """Power-law operating cost ``f(z) = idle + coef * z**exponent`` (exponent >= 1).

    ``exponent`` close to 3 models dynamic voltage/frequency scaling of CPUs;
    ``exponent = 1`` degenerates to :class:`LinearCost`.
    """

    idle: float
    coef: float = 1.0
    exponent: float = 2.0

    def __post_init__(self):
        if self.idle < 0 or self.coef < 0:
            raise ValueError("idle and coef must be non-negative")
        if self.exponent < 1.0:
            raise ValueError("exponent must be >= 1 for convexity")

    def value(self, z):
        z = np.asarray(z, dtype=float)
        out = self.idle + self.coef * np.power(z, self.exponent)
        return out if z.ndim else float(out)

    def derivative(self, z):
        z = np.asarray(z, dtype=float)
        if self.exponent == 1.0:
            out = np.full(z.shape, float(self.coef)) if z.ndim else float(self.coef)
            return out
        with np.errstate(invalid="ignore"):
            out = self.coef * self.exponent * np.power(z, self.exponent - 1.0)
        return out if z.ndim else float(out)

    def inverse_derivative(self, y):
        y = np.asarray(y, dtype=float)
        if self.exponent == 1.0 or self.coef == 0.0:
            res = np.where(y >= self.derivative(0.0), np.inf, 0.0)
            return res if y.ndim else float(res)
        base = np.maximum(y, 0.0) / (self.coef * self.exponent)
        res = np.power(base, 1.0 / (self.exponent - 1.0))
        return res if y.ndim else float(res)

    @property
    def has_constant_marginal(self) -> bool:  # type: ignore[override]
        return self.exponent == 1.0 or self.coef == 0.0


@dataclass(frozen=True)
class PiecewiseLinearCost(CostFunction):
    """Convex piecewise-linear cost given by breakpoints and slopes.

    ``f(z) = idle + sum_k slopes[k] * max(0, min(z, breaks[k+1]) - breaks[k])``

    ``breaks`` must start at 0 and be strictly increasing, ``slopes`` must be
    non-decreasing (convexity) and non-negative (monotonicity).  The last
    segment extends to infinity.
    """

    idle: float
    breaks: tuple
    slopes: tuple

    def __post_init__(self):
        breaks = tuple(float(b) for b in self.breaks)
        slopes = tuple(float(s) for s in self.slopes)
        object.__setattr__(self, "breaks", breaks)
        object.__setattr__(self, "slopes", slopes)
        if self.idle < 0:
            raise ValueError("idle must be non-negative")
        if len(breaks) != len(slopes):
            raise ValueError("need exactly one slope per breakpoint")
        if len(breaks) == 0 or breaks[0] != 0.0:
            raise ValueError("breaks must start at 0")
        if any(b2 <= b1 for b1, b2 in zip(breaks, breaks[1:])):
            raise ValueError("breaks must be strictly increasing")
        if any(s < 0 for s in slopes):
            raise ValueError("slopes must be non-negative (increasing cost)")
        if any(s2 < s1 for s1, s2 in zip(slopes, slopes[1:])):
            raise ValueError("slopes must be non-decreasing (convexity)")

    def value(self, z):
        z = np.asarray(z, dtype=float)
        out = np.full(z.shape, float(self.idle))
        breaks = list(self.breaks) + [np.inf]
        for k, slope in enumerate(self.slopes):
            seg = np.clip(z, breaks[k], breaks[k + 1]) - breaks[k]
            out = out + slope * np.maximum(seg, 0.0)
        return out if z.ndim else float(out)

    def derivative(self, z):
        z = np.asarray(z, dtype=float)
        out = np.zeros(z.shape)
        breaks = np.asarray(self.breaks)
        slopes = np.asarray(self.slopes)
        idx = np.clip(np.searchsorted(breaks, z, side="right") - 1, 0, len(slopes) - 1)
        out = slopes[idx]
        return out if z.ndim else float(out)

    def inverse_derivative(self, y):
        y = np.asarray(y, dtype=float)
        breaks = np.asarray(self.breaks)
        slopes = np.asarray(self.slopes)
        # largest z with f'(z) <= y: the end of the last segment whose slope <= y
        n_ok = np.searchsorted(slopes, y, side="right")
        ext_breaks = np.append(breaks, np.inf)
        res = np.where(n_ok == 0, 0.0, ext_breaks[np.minimum(n_ok, len(breaks))])
        res = np.where(n_ok >= len(slopes), np.inf, res)
        return res if y.ndim else float(res)

    @property
    def has_constant_marginal(self) -> bool:  # type: ignore[override]
        return len(set(self.slopes)) <= 1


@dataclass(frozen=True)
class ScaledCost(CostFunction):
    """``factor * f`` for a base cost function ``f`` and ``factor > 0``.

    Used by Algorithm C's sub-slot refinement, where the operating cost of an
    original slot is split into ``n_t`` equal parts (Section 3.2 of the paper),
    and by time-varying electricity-price profiles.
    """

    base: CostFunction
    factor: float

    def __post_init__(self):
        if self.factor < 0:
            raise ValueError("factor must be non-negative")

    def value(self, z):
        return self.factor * np.asarray(self.base.value(z), dtype=float) if np.ndim(z) else self.factor * float(self.base.value(z))

    def derivative(self, z):
        return self.factor * np.asarray(self.base.derivative(z), dtype=float) if np.ndim(z) else self.factor * float(self.base.derivative(z))

    def inverse_derivative(self, y):
        if self.factor == 0.0:
            y_arr = np.asarray(y, dtype=float)
            res = np.full(y_arr.shape, np.inf)
            return res if y_arr.ndim else math.inf
        return self.base.inverse_derivative(np.asarray(y, dtype=float) / self.factor)

    @property
    def has_constant_marginal(self) -> bool:  # type: ignore[override]
        return self.base.has_constant_marginal


@dataclass(frozen=True)
class ShiftedCost(CostFunction):
    """``f + offset`` for a base cost function ``f`` and ``offset >= 0``.

    Useful to build time-varying idle costs (e.g. an electricity-price adder)
    without changing the load-dependent shape.
    """

    base: CostFunction
    offset: float

    def __post_init__(self):
        if self.offset < 0:
            raise ValueError("offset must be non-negative")

    def value(self, z):
        return np.asarray(self.base.value(z), dtype=float) + self.offset if np.ndim(z) else float(self.base.value(z)) + self.offset

    def derivative(self, z):
        return self.base.derivative(z)

    def inverse_derivative(self, y):
        return self.base.inverse_derivative(y)

    @property
    def has_constant_marginal(self) -> bool:  # type: ignore[override]
        return self.base.has_constant_marginal


class CallableCost(CostFunction):
    """Wrap an arbitrary convex increasing callable as a cost function.

    The derivative is approximated by central finite differences, and the
    inverse derivative by the generic bisection of the base class.  This path
    is slower than the built-in families (it forces the dispatcher onto its
    generic solver) but lets users plug in measured power curves.
    """

    def __init__(self, func: Callable[[float], float], name: str = "callable", eps: float = 1e-6):
        self._func = func
        self._name = name
        self._eps = float(eps)

    def value(self, z):
        z_arr = np.asarray(z, dtype=float)
        if z_arr.ndim == 0:
            return float(self._func(float(z_arr)))
        flat = np.array([float(self._func(float(v))) for v in z_arr.ravel()])
        return flat.reshape(z_arr.shape)

    def derivative(self, z):
        z_arr = np.asarray(z, dtype=float)
        eps = self._eps
        lo = np.maximum(z_arr - eps, 0.0)
        hi = z_arr + eps
        width = hi - lo
        return (np.asarray(self.value(hi)) - np.asarray(self.value(lo))) / np.where(width > 0, width, 1.0)

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"CallableCost({self._name})"

    def __eq__(self, other):
        return isinstance(other, CallableCost) and other._func is self._func

    def __hash__(self):
        return hash((CallableCost, id(self._func)))


# --------------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------------- #


def check_valid_cost_function(
    f: CostFunction,
    zmax: float = 1.0,
    samples: int = 33,
    tol: float = 1e-9,
) -> None:
    """Numerically verify that ``f`` is non-negative, increasing and convex on ``[0, zmax]``.

    Raises :class:`ValueError` if a violation larger than ``tol`` is detected.
    This is a sampling-based check and therefore a heuristic for user-supplied
    :class:`CallableCost` objects; the built-in families are convex by
    construction.
    """
    if not np.isfinite(zmax) or zmax <= 0:
        zmax = 1.0
    zs = np.linspace(0.0, float(zmax), samples)
    vals = np.asarray(f.value(zs), dtype=float)
    if np.any(vals < -tol):
        raise ValueError(f"cost function {f!r} takes negative values")
    diffs = np.diff(vals)
    if np.any(diffs < -tol * max(1.0, np.max(np.abs(vals)))):
        raise ValueError(f"cost function {f!r} is not non-decreasing")
    second = np.diff(vals, 2)
    if np.any(second < -1e-6 * max(1.0, np.max(np.abs(vals)))):
        raise ValueError(f"cost function {f!r} is not convex")
