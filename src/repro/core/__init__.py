"""Core problem model: cost functions, server types, instances, schedules, costs.

:mod:`repro.core.backend` (the compiled-kernel seam for the dispatch/DP hot
path) is intentionally not re-exported here — import it explicitly so the
kernel registry only loads where the hot path actually runs.
"""

from .cost_functions import (
    CallableCost,
    ConstantCost,
    CostFunction,
    LinearCost,
    PiecewiseLinearCost,
    PowerCost,
    QuadraticCost,
    ScaledCost,
    ShiftedCost,
    check_valid_cost_function,
)
from .costs import CostBreakdown, evaluate_schedule, operating_cost, switching_cost, total_cost
from .instance import ProblemInstance
from .schedule import Schedule
from .server import ServerType

__all__ = [
    "CallableCost",
    "ConstantCost",
    "CostBreakdown",
    "CostFunction",
    "LinearCost",
    "PiecewiseLinearCost",
    "PowerCost",
    "ProblemInstance",
    "QuadraticCost",
    "ScaledCost",
    "Schedule",
    "ServerType",
    "ShiftedCost",
    "check_valid_cost_function",
    "evaluate_schedule",
    "operating_cost",
    "switching_cost",
    "total_cost",
]
