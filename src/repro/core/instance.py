"""Problem instances for the data-center right-sizing problem.

An instance ``I = (T, d, m, beta, F, Lambda)`` (Section 1 of the paper) bundles

* the time horizon ``T`` (slots are indexed ``0 .. T-1`` in this library; the
  paper uses ``1 .. T``),
* ``d`` heterogeneous server types with counts ``m_j``, switching costs
  ``beta_j``, capacities ``zmax_j`` and operating-cost functions,
* the arriving job volumes ``lambda_t``.

Two optional generalisations of the basic model are supported:

* **time-dependent operating costs** ``f_{t,j}`` (Section 3) via an explicit
  ``T x d`` table of cost functions or a per-slot price profile, and
* **time-dependent data-center sizes** ``m_{t,j}`` (Section 4.3) via a
  ``T x d`` table of server counts.

Instances are immutable; "what-if" variants are created through the
``with_*`` / ``prefix`` helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from .cost_functions import CostFunction, ScaledCost
from .server import ServerType

__all__ = ["ProblemInstance"]


def _as_demand_array(demand) -> np.ndarray:
    arr = np.asarray(demand, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"demand must be a 1-D sequence, got shape {arr.shape}")
    if np.any(~np.isfinite(arr)):
        raise ValueError("demand contains non-finite values")
    if np.any(arr < 0):
        raise ValueError("demand must be non-negative")
    return arr


@dataclass(frozen=True, eq=False)
class ProblemInstance:
    """Immutable description of a right-sizing problem instance.

    Parameters
    ----------
    server_types:
        The ``d`` heterogeneous server types.
    demand:
        Job volumes ``lambda_t`` for ``t = 0 .. T-1``.
    cost_functions:
        Optional time-dependent operating-cost functions as a nested sequence
        ``cost_functions[t][j]``.  When omitted, the (time-independent) cost
        function of each :class:`ServerType` is used for every slot.
    counts:
        Optional time-dependent server counts ``m_{t,j}`` as a ``T x d``
        integer array (Section 4.3).  When omitted, ``m_j`` is constant.
    name:
        Cosmetic identifier used in reports.
    """

    server_types: tuple
    demand: np.ndarray
    cost_functions: Optional[tuple] = None
    counts: Optional[np.ndarray] = None
    name: str = "instance"

    # --------------------------------------------------------------- set-up
    def __post_init__(self):
        types = tuple(self.server_types)
        if len(types) == 0:
            raise ValueError("an instance needs at least one server type")
        for st in types:
            if not isinstance(st, ServerType):
                raise TypeError(f"server_types entries must be ServerType, got {type(st)!r}")
        object.__setattr__(self, "server_types", types)

        demand = _as_demand_array(self.demand)
        demand.setflags(write=False)
        object.__setattr__(self, "demand", demand)

        if self.cost_functions is not None:
            table = tuple(tuple(row) for row in self.cost_functions)
            if len(table) != self.T:
                raise ValueError(
                    f"cost_functions must have one row per slot: got {len(table)} rows, T={self.T}"
                )
            for t, row in enumerate(table):
                if len(row) != self.d:
                    raise ValueError(
                        f"cost_functions[{t}] must have {self.d} entries, got {len(row)}"
                    )
                for f in row:
                    if not isinstance(f, CostFunction):
                        raise TypeError("cost_functions entries must be CostFunction instances")
            object.__setattr__(self, "cost_functions", table)

        if self.counts is not None:
            counts = np.asarray(self.counts, dtype=int)
            if counts.shape != (self.T, self.d):
                raise ValueError(
                    f"counts must have shape (T, d) = {(self.T, self.d)}, got {counts.shape}"
                )
            if np.any(counts < 0):
                raise ValueError("time-dependent counts must be non-negative")
            counts.setflags(write=False)
            object.__setattr__(self, "counts", counts)

    # ------------------------------------------------------------ dimensions
    @property
    def T(self) -> int:
        """Number of time slots."""
        return int(self.demand.shape[0])

    @property
    def d(self) -> int:
        """Number of server types."""
        return len(self.server_types)

    @property
    def m(self) -> np.ndarray:
        """Base server counts ``m_j`` as an integer array of length ``d``."""
        return np.array([st.count for st in self.server_types], dtype=int)

    @property
    def beta(self) -> np.ndarray:
        """Switching costs ``beta_j`` as a float array of length ``d``."""
        return np.array([st.switching_cost for st in self.server_types], dtype=float)

    @property
    def zmax(self) -> np.ndarray:
        """Per-server capacities ``zmax_j`` as a float array of length ``d``."""
        return np.array([st.capacity for st in self.server_types], dtype=float)

    # -------------------------------------------------------------- accessors
    def cost_function(self, t: int, j: int) -> CostFunction:
        """Operating-cost function ``f_{t,j}`` of type ``j`` during slot ``t``."""
        self._check_slot(t)
        if self.cost_functions is not None:
            return self.cost_functions[t][j]
        return self.server_types[j].cost_function

    def cost_row(self, t: int) -> tuple:
        """All ``d`` operating-cost functions of slot ``t``.

        For time-independent instances the same tuple object is returned for
        every slot, so the dispatch engine can use it as a cheap identity key
        when deduplicating slots.
        """
        self._check_slot(t)
        if self.cost_functions is not None:
            return self.cost_functions[t]
        row = self.__dict__.get("_base_cost_row")
        if row is None:
            row = tuple(st.cost_function for st in self.server_types)
            object.__setattr__(self, "_base_cost_row", row)
        return row

    def counts_at(self, t: int) -> np.ndarray:
        """Available server counts ``m_{t,j}`` during slot ``t``."""
        self._check_slot(t)
        if self.counts is not None:
            return np.asarray(self.counts[t], dtype=int)
        return self.m

    def idle_costs(self, t: int) -> np.ndarray:
        """Idle operating costs ``l_{t,j} = f_{t,j}(0)`` of slot ``t``."""
        return np.array([f.idle_cost() for f in self.cost_row(t)], dtype=float)

    def _check_slot(self, t: int) -> None:
        if not (0 <= t < self.T):
            raise IndexError(f"slot index {t} out of range [0, {self.T})")

    # ------------------------------------------------------------- structure
    @property
    def has_time_dependent_costs(self) -> bool:
        """``True`` when operating-cost functions vary over time (Section 3)."""
        return self.cost_functions is not None

    @property
    def has_time_dependent_counts(self) -> bool:
        """``True`` when the fleet size varies over time (Section 4.3)."""
        return self.counts is not None

    @property
    def is_homogeneous(self) -> bool:
        """``True`` for single-type data centers (the setting of Lin et al.)."""
        return self.d == 1

    def is_load_independent(self, samples: int = 5, tol: float = 1e-12) -> bool:
        """Heuristically test whether every ``f_{t,j}`` is constant in the load.

        For load- and time-independent cost functions Algorithm A achieves the
        optimal competitive ratio ``2d`` (Corollary 9).
        """
        for t in range(self.T):
            for f in self.cost_row(t):
                cap = 1.0
                zs = np.linspace(0.0, cap, samples)
                vals = np.asarray(f.value(zs), dtype=float)
                if np.max(vals) - np.min(vals) > tol:
                    return False
            if not self.has_time_dependent_costs:
                break
        return True

    def c_constant(self) -> float:
        """The constant ``c(I) = sum_j max_t f_{t,j}(0) / beta_j`` of Theorem 13."""
        total = 0.0
        for j in range(self.d):
            beta_j = self.server_types[j].switching_cost
            if beta_j <= 0:
                return float("inf")
            max_idle = max(self.cost_function(t, j).idle_cost() for t in range(self.T))
            total += max_idle / beta_j
        return total

    # ------------------------------------------------------------ feasibility
    def total_capacity(self, t: int) -> float:
        """Maximum volume the whole fleet can serve during slot ``t``."""
        counts = self.counts_at(t)
        return float(np.sum(counts * self.zmax))

    def is_feasible(self) -> bool:
        """``True`` iff every slot's demand can be served by the available fleet."""
        return all(self.demand[t] <= self.total_capacity(t) + 1e-9 for t in range(self.T))

    def validate(self) -> None:
        """Raise :class:`ValueError` if the instance admits no feasible schedule."""
        for t in range(self.T):
            cap = self.total_capacity(t)
            if self.demand[t] > cap + 1e-9:
                raise ValueError(
                    f"demand {self.demand[t]:g} at slot {t} exceeds total capacity {cap:g}"
                )

    # ------------------------------------------------------------- factories
    def prefix(self, length: int, name: Optional[str] = None) -> "ProblemInstance":
        """The shortened instance ``I_t`` consisting of the first ``length`` slots.

        This is the instance for which the online algorithms compute the
        optimal schedule ``\\hat X^t`` at every step.
        """
        if not (0 <= length <= self.T):
            raise ValueError(f"prefix length {length} out of range [0, {self.T}]")
        return ProblemInstance(
            server_types=self.server_types,
            demand=self.demand[:length],
            cost_functions=None if self.cost_functions is None else self.cost_functions[:length],
            counts=None if self.counts is None else self.counts[:length],
            name=name or f"{self.name}[:{length}]",
        )

    def with_demand(self, demand, name: Optional[str] = None) -> "ProblemInstance":
        """Copy of this instance with a different demand trace (same length not required)."""
        demand = _as_demand_array(demand)
        cost_functions = self.cost_functions
        counts = self.counts
        if cost_functions is not None and len(cost_functions) != len(demand):
            raise ValueError("cannot change T of an instance with time-dependent costs")
        if counts is not None and counts.shape[0] != len(demand):
            raise ValueError("cannot change T of an instance with time-dependent counts")
        return ProblemInstance(
            server_types=self.server_types,
            demand=demand,
            cost_functions=cost_functions,
            counts=counts,
            name=name or self.name,
        )

    def with_price_profile(self, prices: Sequence[float], name: Optional[str] = None) -> "ProblemInstance":
        """Create a time-dependent-cost variant by scaling every ``f_j`` with a per-slot price.

        ``prices[t]`` multiplies the operating cost of every server type during
        slot ``t`` — a simple model of time-of-day electricity tariffs, which is
        the motivating scenario for Section 3 of the paper.
        """
        prices = np.asarray(prices, dtype=float)
        if prices.shape != (self.T,):
            raise ValueError(f"prices must have shape ({self.T},), got {prices.shape}")
        if np.any(prices < 0):
            raise ValueError("prices must be non-negative")
        if self.cost_functions is not None:
            base_rows = self.cost_functions
        else:
            base_rows = tuple(tuple(st.cost_function for st in self.server_types) for _ in range(self.T))
        table = tuple(
            tuple(ScaledCost(base_rows[t][j], float(prices[t])) for j in range(self.d))
            for t in range(self.T)
        )
        return ProblemInstance(
            server_types=self.server_types,
            demand=self.demand,
            cost_functions=table,
            counts=self.counts,
            name=name or f"{self.name}+prices",
        )

    def with_counts(self, counts, name: Optional[str] = None) -> "ProblemInstance":
        """Copy of this instance with time-dependent server counts ``m_{t,j}``."""
        return ProblemInstance(
            server_types=self.server_types,
            demand=self.demand,
            cost_functions=self.cost_functions,
            counts=np.asarray(counts, dtype=int),
            name=name or f"{self.name}+counts",
        )

    # --------------------------------------------------------------- reports
    def describe(self) -> str:
        """Multi-line human-readable summary used by examples and reports."""
        lines = [
            f"Instance '{self.name}': T={self.T} slots, d={self.d} server types",
            f"  demand: min={self.demand.min():g}, mean={self.demand.mean():g}, "
            f"max={self.demand.max():g}",
        ]
        for st in self.server_types:
            lines.append("  " + st.describe())
        if self.has_time_dependent_costs:
            lines.append("  operating costs: time-dependent")
        if self.has_time_dependent_counts:
            lines.append("  fleet size: time-dependent")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProblemInstance(name={self.name!r}, T={self.T}, d={self.d})"
