"""Schedules: sequences of server configurations.

A schedule ``X = (x_0, ..., x_{T-1})`` assigns to every time slot the number of
active servers of each type.  By convention the data center starts and ends
empty (``x_{-1} = x_T = 0``), so power-down costs can be folded into power-up
costs (Section 1 of the paper).

The class is a thin, immutable wrapper around an integer ``(T, d)`` array with
feasibility checks and switching-cost bookkeeping.  Operating costs require the
load-dispatch solver and live in :mod:`repro.core.costs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from .instance import ProblemInstance

__all__ = ["Schedule"]


@dataclass(frozen=True, eq=False)
class Schedule:
    """An assignment of active-server counts ``x_{t,j}`` for every slot and type."""

    x: np.ndarray

    def __post_init__(self):
        arr = np.asarray(self.x)
        if arr.ndim != 2:
            raise ValueError(f"schedule array must be 2-D (T, d), got shape {arr.shape}")
        if arr.size and not np.issubdtype(arr.dtype, np.integer):
            rounded = np.rint(arr)
            if not np.allclose(arr, rounded, atol=1e-9):
                raise ValueError("schedule entries must be integral (discrete setting)")
            arr = rounded
        arr = arr.astype(int, copy=True)
        if np.any(arr < 0):
            raise ValueError("schedule entries must be non-negative")
        arr.setflags(write=False)
        object.__setattr__(self, "x", arr)

    # ------------------------------------------------------------- factories
    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[int]]) -> "Schedule":
        """Build a schedule from an iterable of per-slot configurations."""
        return cls(np.asarray(list(rows), dtype=int))

    @classmethod
    def empty(cls, T: int, d: int) -> "Schedule":
        """The all-off schedule (feasible only for zero demand)."""
        return cls(np.zeros((T, d), dtype=int))

    @classmethod
    def constant(cls, T: int, config: Sequence[int]) -> "Schedule":
        """A static schedule holding the same configuration for all ``T`` slots."""
        row = np.asarray(config, dtype=int)
        return cls(np.tile(row, (T, 1)))

    # ------------------------------------------------------------ dimensions
    @property
    def T(self) -> int:
        return int(self.x.shape[0])

    @property
    def d(self) -> int:
        return int(self.x.shape[1])

    def __len__(self) -> int:
        return self.T

    def __getitem__(self, t: int) -> np.ndarray:
        """Configuration at slot ``t`` (the boundary slots return the zero vector)."""
        if t == -1 or t == self.T:
            return np.zeros(self.d, dtype=int)
        return self.x[t]

    def config(self, t: int) -> np.ndarray:
        """Alias of ``schedule[t]`` with boundary handling."""
        return self[t]

    # --------------------------------------------------------------- algebra
    def prefix(self, length: int) -> "Schedule":
        """The first ``length`` slots of this schedule."""
        return Schedule(self.x[:length])

    def same_as(self, other: "Schedule") -> bool:
        """Exact equality of the underlying configuration arrays."""
        return self.x.shape == other.x.shape and bool(np.array_equal(self.x, other.x))

    # --------------------------------------------------------- switching data
    def power_ups(self) -> np.ndarray:
        """``(T, d)`` array of power-up counts ``(x_{t,j} - x_{t-1,j})^+``."""
        prev = np.vstack([np.zeros((1, self.d), dtype=int), self.x[:-1]])
        return np.maximum(self.x - prev, 0)

    def power_downs(self) -> np.ndarray:
        """``(T+1, d)`` array of power-down counts, including the final shutdown.

        Row ``t < T`` counts servers switched off when entering slot ``t``;
        row ``T`` counts the servers still active in the last slot (they are
        switched off after the horizon at zero cost).
        """
        prev = np.vstack([np.zeros((1, self.d), dtype=int), self.x])
        nxt = np.vstack([self.x, np.zeros((1, self.d), dtype=int)])
        return np.maximum(prev - nxt, 0)

    def num_power_ups(self) -> np.ndarray:
        """Total number of power-up operations per type."""
        return self.power_ups().sum(axis=0)

    def switching_cost(self, instance: ProblemInstance) -> float:
        """Total switching cost ``sum_t sum_j beta_j (x_{t,j} - x_{t-1,j})^+``."""
        self._check_shape(instance)
        return float(np.sum(self.power_ups() * instance.beta[None, :]))

    # ------------------------------------------------------------ feasibility
    def violations(self, instance: ProblemInstance, tol: float = 1e-9) -> list:
        """Return a list of human-readable feasibility violations (empty if feasible)."""
        self._check_shape(instance)
        problems = []
        zmax = instance.zmax
        for t in range(self.T):
            counts = instance.counts_at(t)
            over = self.x[t] - counts
            if np.any(over > 0):
                j = int(np.argmax(over))
                problems.append(
                    f"slot {t}: {self.x[t, j]} active servers of type {j} but only {counts[j]} exist"
                )
            capacity = float(np.sum(np.where(self.x[t] > 0, self.x[t] * zmax, 0.0)))
            if capacity + tol < instance.demand[t]:
                problems.append(
                    f"slot {t}: capacity {capacity:g} cannot serve demand {instance.demand[t]:g}"
                )
        return problems

    def is_feasible(self, instance: ProblemInstance, tol: float = 1e-9) -> bool:
        """``True`` iff the schedule respects fleet sizes and covers all demand."""
        return not self.violations(instance, tol=tol)

    def check_feasible(self, instance: ProblemInstance, tol: float = 1e-9) -> None:
        """Raise :class:`ValueError` when the schedule is infeasible."""
        problems = self.violations(instance, tol=tol)
        if problems:
            raise ValueError("infeasible schedule: " + "; ".join(problems[:5]))

    def _check_shape(self, instance: ProblemInstance) -> None:
        if self.x.shape != (instance.T, instance.d):
            raise ValueError(
                f"schedule shape {self.x.shape} does not match instance (T={instance.T}, d={instance.d})"
            )

    # ----------------------------------------------------------------- stats
    def utilisation(self, instance: ProblemInstance) -> np.ndarray:
        """Per-slot fleet utilisation ``lambda_t / (sum_j x_{t,j} zmax_j)`` (0 when idle)."""
        self._check_shape(instance)
        cap = np.sum(np.where(self.x > 0, self.x * instance.zmax[None, :], 0.0), axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(cap > 0, instance.demand / cap, 0.0)
        return util

    def max_active(self) -> np.ndarray:
        """Per-type maximum number of simultaneously active servers."""
        if self.T == 0:
            return np.zeros(self.d, dtype=int)
        return self.x.max(axis=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schedule(T={self.T}, d={self.d})"
