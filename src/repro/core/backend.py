"""Compiled-kernel backend seam for the dispatch/DP hot path.

The two inner loops that dominate a steady-state tick are (a) the dual
bisection step of :class:`~repro.dispatch.allocation.DispatchSolver` and (b)
the separable min-plus relaxation of :mod:`repro.offline.transitions`.  Both
are factored here into *preallocated, dtype-stable kernel functions*: every
kernel writes into caller-owned ``float64`` buffers, allocates nothing, and is
a drop-in unit behind one dispatch point — callers never branch on the active
implementation.

Two implementations are registered:

* ``"numpy"`` (default, always available) — in-place ufunc calls whose
  operation sequence is *bit-identical* to the historical inline expressions
  (the correctness gates compare schedules exactly, so the kernels must not
  perturb last bits), and
* ``"numba"`` — the same kernels compiled with ``@njit(cache=True)``, built
  lazily and only when the wheel is importable.  Selecting it without numba
  installed raises a :class:`BackendUnavailableError` naming the available
  backends instead of an ImportError from deep inside a solve.

Selection: :func:`set_backend` / the ``REPRO_BACKEND`` environment variable
(read once, at first :func:`get_backend` call) / the ``--backend`` CLI flag of
``repro bench`` and ``repro serve``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

__all__ = [
    "Backend",
    "BackendUnavailableError",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
]


class BackendUnavailableError(RuntimeError):
    """A backend was requested whose implementation cannot be constructed."""


@dataclass(frozen=True)
class Backend:
    """One kernel implementation behind the hot-path dispatch point.

    All kernels operate on ``float64`` arrays and write into caller-provided
    buffers; none of them allocates.  ``bisect_step`` and
    ``propagate_brackets`` serve the dual bisection of
    :meth:`DispatchSolver._allocate_rows <repro.dispatch.allocation.DispatchSolver._allocate_rows>`;
    ``min_plus_axis`` is one axis of the separable min-plus transition
    (prefix-minimum power-up direction + suffix-minimum power-down direction).
    """

    name: str
    #: ``bisect_step(mu_lo, mu_hi, mid, tot, lam_col, mask)``: write the
    #: midpoint of the bracket into ``mid`` *for the next iteration* is the
    #: caller's job — this kernel applies one refinement: rows with
    #: ``tot < lam_col`` move their lower bracket to ``mid``, the rest move
    #: their upper bracket.  ``mask`` is a caller-owned boolean scratch.
    bisect_step: Callable
    #: ``midpoint(mu_lo, mu_hi, mid)``: ``mid[:] = 0.5 * (mu_lo + mu_hi)``.
    midpoint: Callable
    #: ``propagate_brackets(mu_lo, mu_hi)``: cross-row bracket propagation —
    #: lower brackets accumulate to larger demands, upper brackets to smaller
    #: (valid because the optimal multiplier is non-decreasing in the demand).
    propagate_brackets: Callable
    #: ``min_plus_axis(V, bsrc, bdst, up_idx, down_idx, shifted, shifted_rev,
    #: gather, out)``: one-dimensional min-plus relaxation along the *last*
    #: axis.  ``V`` is the input tensor (last axis = source values),
    #: ``bsrc``/``bdst`` are the precomputed ``beta * values`` vectors,
    #: ``up_idx``/``down_idx`` the plan's gather indices (all valid),
    #: ``shifted``/``gather``/``out`` caller-owned scratch/output buffers of
    #: the appropriate shapes and ``shifted_rev`` a preconstructed
    #: last-axis-reversed view of ``shifted`` (kernels that build their own
    #: reversed access may ignore it).
    min_plus_axis: Callable
    #: ``min_plus_axis_same(V, bsrc, bdst, shifted, shifted_rev, out)``: the
    #: same relaxation specialised to identity gather maps (source and
    #: destination value lists are equal — the steady-state same-grid slot).
    #: Operation values match ``min_plus_axis`` with identity indices exactly;
    #: the two gathers and their scratch buffer are simply elided.
    min_plus_axis_same: Callable


# --------------------------------------------------------------------------- #
# NumPy reference implementation (bit-identical to the historical inline ops)
# --------------------------------------------------------------------------- #


def _np_midpoint(mu_lo: np.ndarray, mu_hi: np.ndarray, mid: np.ndarray) -> None:
    np.add(mu_lo, mu_hi, out=mid)
    mid *= 0.5


def _np_bisect_step(
    mu_lo: np.ndarray,
    mu_hi: np.ndarray,
    mid: np.ndarray,
    tot: np.ndarray,
    lam_col: np.ndarray,
    mask: np.ndarray,
) -> None:
    np.less(tot, lam_col, out=mask)
    np.copyto(mu_lo, mid, where=mask)
    np.logical_not(mask, out=mask)
    np.copyto(mu_hi, mid, where=mask)


def _np_propagate_brackets(mu_lo: np.ndarray, mu_hi: np.ndarray) -> None:
    np.maximum.accumulate(mu_lo, axis=0, out=mu_lo)
    rev = mu_hi[::-1]
    np.minimum.accumulate(rev, axis=0, out=rev)


_subtract = np.subtract
_add = np.add
_minimum = np.minimum
_min_acc = np.minimum.accumulate


def _np_min_plus_axis(
    V: np.ndarray,
    bsrc: np.ndarray,
    bdst: np.ndarray,
    up_idx: np.ndarray,
    down_idx: np.ndarray,
    shifted: np.ndarray,
    shifted_rev: np.ndarray,
    gather: np.ndarray,
    out: np.ndarray,
) -> None:
    # power-up direction: prefix minimum of V - beta*src, gathered at up_idx,
    # plus beta*dst — the exact operation sequence of relax_dimension
    _subtract(V, bsrc, out=shifted)
    _min_acc(shifted, axis=-1, out=shifted)
    shifted.take(up_idx, axis=-1, out=out)
    _add(out, bdst, out=out)
    # power-down direction: suffix minimum of V, gathered at down_idx
    _min_acc(V[..., ::-1], axis=-1, out=shifted_rev)
    shifted.take(down_idx, axis=-1, out=gather)
    _minimum(out, gather, out=out)


def _np_min_plus_axis_same(
    V: np.ndarray,
    bsrc: np.ndarray,
    bdst: np.ndarray,
    shifted: np.ndarray,
    shifted_rev: np.ndarray,
    out: np.ndarray,
) -> None:
    # identity gathers elided: take(x, identity) is x, value for value
    _subtract(V, bsrc, out=shifted)
    _min_acc(shifted, axis=-1, out=shifted)
    _add(shifted, bdst, out=out)
    _min_acc(V[..., ::-1], axis=-1, out=shifted_rev)
    _minimum(out, shifted, out=out)


_NUMPY_BACKEND = Backend(
    name="numpy",
    bisect_step=_np_bisect_step,
    midpoint=_np_midpoint,
    propagate_brackets=_np_propagate_brackets,
    min_plus_axis=_np_min_plus_axis,
    min_plus_axis_same=_np_min_plus_axis_same,
)


# --------------------------------------------------------------------------- #
# Optional numba implementation (built lazily, only when importable)
# --------------------------------------------------------------------------- #


def _build_numba_backend() -> Backend:
    try:
        import numba  # noqa: F401
        from numba import njit
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise BackendUnavailableError(
            "backend 'numba' requires the numba package, which is not "
            f"importable here (available: {sorted(_BACKENDS)})"
        ) from exc

    @njit(cache=True)
    def nb_midpoint(mu_lo, mu_hi, mid):  # pragma: no cover - compiled
        p, n = mu_lo.shape
        for i in range(p):
            for k in range(n):
                mid[i, k] = 0.5 * (mu_lo[i, k] + mu_hi[i, k])

    @njit(cache=True)
    def nb_bisect_step(mu_lo, mu_hi, mid, tot, lam_col, mask):  # pragma: no cover
        p, n = mu_lo.shape
        for i in range(p):
            lam = lam_col[i, 0]
            for k in range(n):
                if tot[i, k] < lam:
                    mu_lo[i, k] = mid[i, k]
                else:
                    mu_hi[i, k] = mid[i, k]

    @njit(cache=True)
    def nb_propagate_brackets(mu_lo, mu_hi):  # pragma: no cover - compiled
        p, n = mu_lo.shape
        for i in range(1, p):
            for k in range(n):
                if mu_lo[i - 1, k] > mu_lo[i, k]:
                    mu_lo[i, k] = mu_lo[i - 1, k]
        for i in range(p - 2, -1, -1):
            for k in range(n):
                if mu_hi[i + 1, k] < mu_hi[i, k]:
                    mu_hi[i, k] = mu_hi[i + 1, k]

    @njit(cache=True)
    def nb_min_plus_axis(V, bsrc, bdst, up_idx, down_idx, shifted, shifted_rev, gather, out):
        # pragma: no cover - compiled
        flat_v = V.reshape(-1, V.shape[-1])
        flat_s = shifted.reshape(-1, shifted.shape[-1])
        flat_g = gather.reshape(-1, gather.shape[-1])
        flat_o = out.reshape(-1, out.shape[-1])
        rows, src_n = flat_v.shape
        dst_n = flat_o.shape[-1]
        for r in range(rows):
            running = np.inf
            for k in range(src_n):
                v = flat_v[r, k] - bsrc[k]
                if v < running:
                    running = v
                flat_s[r, k] = running
            for k in range(dst_n):
                flat_o[r, k] = flat_s[r, up_idx[k]] + bdst[k]
            running = np.inf
            for k in range(src_n - 1, -1, -1):
                v = flat_v[r, k]
                if v < running:
                    running = v
                flat_s[r, k] = running
            for k in range(dst_n):
                g = flat_s[r, down_idx[k]]
                flat_g[r, k] = g
                if g < flat_o[r, k]:
                    flat_o[r, k] = g

    @njit(cache=True)
    def nb_min_plus_axis_same(V, bsrc, bdst, shifted, shifted_rev, out):
        # pragma: no cover - compiled
        flat_v = V.reshape(-1, V.shape[-1])
        flat_s = shifted.reshape(-1, shifted.shape[-1])
        flat_o = out.reshape(-1, out.shape[-1])
        rows, n = flat_v.shape
        for r in range(rows):
            running = np.inf
            for k in range(n):
                v = flat_v[r, k] - bsrc[k]
                if v < running:
                    running = v
                flat_o[r, k] = running + bdst[k]
            running = np.inf
            for k in range(n - 1, -1, -1):
                v = flat_v[r, k]
                if v < running:
                    running = v
                flat_s[r, k] = running
                if running < flat_o[r, k]:
                    flat_o[r, k] = running

    return Backend(
        name="numba",
        bisect_step=nb_bisect_step,
        midpoint=nb_midpoint,
        propagate_brackets=nb_propagate_brackets,
        min_plus_axis=nb_min_plus_axis,
        min_plus_axis_same=nb_min_plus_axis_same,
    )


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #

_BACKENDS: Dict[str, object] = {
    "numpy": _NUMPY_BACKEND,
    # "numba" maps to a builder; it is materialised (and compiled) on first use
    "numba": _build_numba_backend,
}
_active: Optional[Backend] = None


def register_backend(name: str, backend) -> None:
    """Register a :class:`Backend` (or a zero-arg builder returning one)."""
    _BACKENDS[str(name)] = backend


def available_backends() -> tuple:
    """Names of registered backends (registration, not importability)."""
    return tuple(sorted(_BACKENDS))


def _materialise(name: str) -> Backend:
    entry = _BACKENDS.get(name)
    if entry is None:
        raise BackendUnavailableError(
            f"unknown backend {name!r} (available: {sorted(_BACKENDS)})"
        )
    if not isinstance(entry, Backend):
        entry = entry()
        if not isinstance(entry, Backend):
            raise BackendUnavailableError(
                f"backend {name!r} builder returned {type(entry).__name__}, not Backend"
            )
        _BACKENDS[name] = entry
    return entry


def set_backend(name: str) -> Backend:
    """Activate a backend by name; raises :class:`BackendUnavailableError`."""
    global _active
    _active = _materialise(str(name))
    return _active


def get_backend() -> Backend:
    """The active backend (resolving ``REPRO_BACKEND`` on first call)."""
    global _active
    if _active is None:
        _active = _materialise(os.environ.get("REPRO_BACKEND", "numpy"))
    return _active


class use_backend:
    """Context manager: temporarily activate a backend (tests/benchmarks)."""

    def __init__(self, name: str):
        self._name = str(name)
        self._previous: Optional[Backend] = None

    def __enter__(self) -> Backend:
        global _active
        self._previous = _active
        return set_backend(self._name)

    def __exit__(self, *exc) -> None:
        global _active
        _active = self._previous
