"""Experiment engine: shared-context sweeps of algorithms × instances.

``run_plan`` executes a :class:`SweepPlan` — N online algorithms and optional
offline solves over M instance sources — through one shared context per
instance (dispatch solver, per-slot grid tensors, memoised prefix-DP value
stream), with optional process-level sharding for large sweeps.  Instance
sources are pre-built :class:`~repro.core.instance.ProblemInstance` objects
and/or declarative :class:`~repro.scenarios.spec.ScenarioSpec` entries; the
latter are materialised lazily inside the executing shard and stamped into
every :class:`RunRecord`.  See ``docs/PERFORMANCE.md`` and
``docs/ARCHITECTURE.md``.
"""

from .engine import AlgorithmSpec, OfflineSpec, SweepPlan, run_instance, run_plan, spec
from .records import RunRecord, SweepReport
from .shared import SharedInstanceContext
from .sharding import assign_shards, chunked

__all__ = [
    "AlgorithmSpec",
    "OfflineSpec",
    "RunRecord",
    "SharedInstanceContext",
    "SweepPlan",
    "SweepReport",
    "assign_shards",
    "chunked",
    "run_instance",
    "run_plan",
    "spec",
]
