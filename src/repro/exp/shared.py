"""Per-instance shared execution context of the sweep engine.

Running ``N`` online algorithms plus the offline optimum on one instance
repeats four kinds of work that are identical across runs:

1. building a :class:`~repro.dispatch.allocation.DispatchSolver` and solving
   the per-slot grid operating-cost tensors,
2. constructing the ``T`` :class:`~repro.online.base.SlotInfo` objects,
3. maintaining the prefix-DP value stream (Algorithms A, B and both LCP
   tie-breaks recompute the *same* tensors ``V_t`` slot by slot), and
4. evaluating final schedules against every slot.

:class:`SharedInstanceContext` does each exactly once: one dispatch solver and
slot context (1, 2, 4 — see :class:`~repro.online.base.SlotContext`), one
:class:`~repro.online.tracker.SharedTrackerFactory` holding a memoised value
stream per ``gamma`` (3), and an offline optimum derived from that very stream
— ``min_x V_{T-1}[x]`` — so the prefix DP is not run a second time for the
baseline cost, and the optimal *schedule* is reconstructed by the standard
backward pass over the memoised tensors.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.costs import CostBreakdown
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..dispatch.allocation import DispatchSolver
from ..offline.dp import OfflineResult
from ..offline.graph_approx import solve_approx
from ..online.base import OnlineAlgorithm, OnlineRunResult, SlotContext, run_online
from ..online.tracker import DPPrefixTracker, SharedTrackerFactory

__all__ = ["SharedInstanceContext"]


class SharedInstanceContext:
    """All cross-run shared state for sweeping one problem instance.

    ``checkpoint_every`` puts the shared prefix-DP value streams into the
    checkpointed ``O(sqrt(T) * |M|)``-memory mode of the streaming DP core:
    trackers then retain one tensor per checkpoint window instead of the full
    per-slot history, and the offline optimum's backward pass rematerialises
    windows on demand.  Replays (every tracker after the first, plus the
    backward pass) each cost up to one extra forward DP — the trade that lets
    long-horizon sweeps fit in memory.  A checkpointed context also caps the
    slot context's grid-tensor memo (``tensor_budget_bytes``, default 64 MB)
    so a horizon of per-slot-unique demands cannot rebuild the
    ``O(T * |M| * d)`` footprint through the dispatch layer; slots past the
    budget are re-solved per query.
    """

    #: Grid-tensor memo cap applied when the context runs checkpointed.
    DEFAULT_TENSOR_BUDGET_BYTES = 64 * 1024 * 1024

    def __init__(
        self,
        instance: ProblemInstance,
        dispatcher: Optional[DispatchSolver] = None,
        checkpoint_every: Optional[int] = None,
        tensor_budget_bytes: Optional[int] = None,
    ):
        self.instance = instance
        if tensor_budget_bytes is None and checkpoint_every is not None:
            tensor_budget_bytes = self.DEFAULT_TENSOR_BUDGET_BYTES
        self.slots = SlotContext(instance, dispatcher, tensor_budget_bytes=tensor_budget_bytes)
        self.dispatcher = self.slots.dispatcher
        self.checkpoint_every = checkpoint_every
        self.trackers = SharedTrackerFactory(checkpoint_every=checkpoint_every)
        self._optimal_cost: Optional[float] = None

    # ------------------------------------------------------------- online runs
    def run(self, algorithm: OnlineAlgorithm) -> OnlineRunResult:
        """Run an online algorithm through the shared slot context."""
        return run_online(self.instance, algorithm, slot_context=self.slots)

    def tracker(self, gamma: Optional[float] = None, tie_break: str = "smallest") -> DPPrefixTracker:
        """A prefix-optimum tracker backed by this context's shared value stream."""
        return self.trackers.tracker(gamma=gamma, tie_break=tie_break)

    # ---------------------------------------------------------- offline solves
    def _full_stream(self):
        """The exact (gamma=None) value stream, advanced to the full horizon."""
        stream = self.trackers.stream(None)
        for t in range(len(stream), self.instance.T):
            stream.at(t, self.slots.slot(t))
        return stream

    def solve_optimal(self, return_schedule: bool = False) -> OfflineResult:
        """Offline optimum, computed from the shared value stream.

        The stream's tensors equal the forward-DP tables of
        :func:`repro.offline.dp.solve_dp` on the same grids, so the reported
        cost is the same ``min_x V_{T-1}[x]`` and the schedule (when requested)
        comes from the same backward pass — without running the DP again when
        any tracker already advanced the stream.  With a checkpointed context
        the backward pass rematerialises the stream's windows instead of
        reading a full table history.
        """
        instance = self.instance
        T, d = instance.T, instance.d
        if T == 0:
            return OfflineResult(
                schedule=Schedule.empty(0, d) if return_schedule else None, cost=0.0, grids=()
            )
        stream = self._full_stream()
        best_cost = float(np.min(stream.value_at(T - 1)))
        if not np.isfinite(best_cost):
            raise ValueError("no feasible schedule exists on the given grids")
        self._optimal_cost = best_cost
        if not return_schedule:
            return OfflineResult(
                schedule=None,
                cost=best_cost,
                grids=stream.grids,
                checkpoint_every=stream.checkpoint_every,
            )
        configs = stream.backtrack(instance.beta)
        schedule = Schedule(configs)
        breakdown = self.slots.evaluate_schedule(schedule)
        return OfflineResult(
            schedule=schedule,
            cost=float(breakdown.total),
            grids=stream.grids,
            checkpoint_every=stream.checkpoint_every,
        )

    def optimal_cost(self) -> float:
        """The instance's optimal total cost (cached after the first call)."""
        if self._optimal_cost is None:
            self.solve_optimal(return_schedule=False)
        return self._optimal_cost

    def solve_approx(self, epsilon: Optional[float] = None, gamma: Optional[float] = None,
                     return_schedule: bool = True, checkpoint_every: Optional[int] = None,
                     value_dtype=None) -> OfflineResult:
        """The ``(1+eps)``-approximation, sharing this context's dispatch solver.

        Streaming defaults to the context's ``checkpoint_every`` (pass an
        explicit value to override for one solve).
        """
        return solve_approx(
            self.instance,
            epsilon=epsilon,
            gamma=gamma,
            dispatcher=self.dispatcher,
            return_schedule=return_schedule,
            checkpoint_every=self.checkpoint_every if checkpoint_every is None else checkpoint_every,
            value_dtype=value_dtype,
        )

    # -------------------------------------------------------------- evaluation
    def evaluate(self, schedule: Schedule) -> CostBreakdown:
        """Exact cost breakdown via the shared per-slot grid tensors."""
        return self.slots.evaluate_schedule(schedule)
