"""Result records of the shared-context sweep engine.

A sweep runs ``N`` algorithms (plus optional offline solves) over ``M``
instances; every single run yields one :class:`RunRecord`, and one engine
invocation yields a :class:`SweepReport` bundling all records with timing and
environment metadata.  Records keep a reference to the underlying
``OnlineRunResult`` / ``OfflineResult`` for in-process consumers (benchmarks
asserting on schedules), but serialise to flat JSON-safe rows for
``BENCH_sweep.json`` and the reporting helpers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = ["RunRecord", "SweepReport"]


@dataclass(frozen=True, eq=False)
class RunRecord:
    """Outcome of one (instance, algorithm-or-solver) run inside a sweep.

    ``kind`` is ``"online"`` for algorithm runs and ``"offline"`` for exact /
    approximate solves; ``optimal_cost`` is the instance's shared offline
    optimum (one solve per instance, reused by every record of the instance).
    ``scenario`` is the declarative address of the instance — the
    ``{scenario, params, seed}`` dict of the
    :class:`~repro.scenarios.spec.ScenarioSpec` it was materialised from —
    stamped into every record of scenario-driven sweeps so any row of a
    report is reproducible from the row alone.
    """

    instance: str
    algorithm: str
    kind: str
    cost: float
    optimal_cost: float
    elapsed_seconds: float
    bound: Optional[float] = None
    breakdown: Optional[dict] = None
    dispatch_stats: Optional[dict] = None
    scenario: Optional[Dict] = None
    extras: Dict = field(default_factory=dict)
    result: Optional[object] = None

    @property
    def ratio(self) -> float:
        """Empirical ratio against the shared offline optimum."""
        if self.optimal_cost <= 0:
            return float("inf") if self.cost > 0 else 1.0
        return self.cost / self.optimal_cost

    @property
    def within_bound(self) -> Optional[bool]:
        if self.bound is None:
            return None
        return self.ratio <= self.bound + 1e-6

    def as_row(self) -> dict:
        """Flat JSON-safe row (drops the in-process ``result`` reference)."""
        row = {
            "instance": self.instance,
            "algorithm": self.algorithm,
            "kind": self.kind,
            "cost": self.cost,
            "optimal_cost": self.optimal_cost,
            "ratio": self.ratio,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }
        if self.bound is not None:
            row["bound"] = self.bound
            row["within_bound"] = bool(self.within_bound)
        if self.scenario is not None:
            row["scenario"] = dict(self.scenario)
        if self.extras:
            row.update(self.extras)
        if self.dispatch_stats is not None:
            row["dispatch"] = dict(self.dispatch_stats)
        return row

    def to_ratio_result(self):
        """Bridge into :class:`repro.analysis.competitive.RatioResult`."""
        from ..analysis.competitive import RatioResult

        return RatioResult(
            instance=self.instance,
            algorithm=self.algorithm,
            online_cost=self.cost,
            optimal_cost=self.optimal_cost,
            bound=self.bound,
        )


@dataclass(frozen=True, eq=False)
class SweepReport:
    """All records produced by one sweep-engine invocation."""

    records: Tuple[RunRecord, ...]
    total_seconds: float
    meta: Dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def filter(self, **conditions) -> "SweepReport":
        """Records whose attributes match all ``name == value`` conditions."""
        selected = tuple(
            r for r in self.records
            if all(getattr(r, k, None) == v for k, v in conditions.items())
        )
        return SweepReport(records=selected, total_seconds=self.total_seconds, meta=self.meta)

    def record(self, instance: str, algorithm: str) -> RunRecord:
        """The unique record of an (instance, algorithm) pair."""
        matches = [r for r in self.records if r.instance == instance and r.algorithm == algorithm]
        if len(matches) != 1:
            raise KeyError(f"expected exactly one record for ({instance!r}, {algorithm!r}), found {len(matches)}")
        return matches[0]

    def instances(self) -> List[str]:
        """Instance names in first-seen order."""
        seen: Dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.instance, None)
        return list(seen)

    def as_rows(self) -> List[dict]:
        return [r.as_row() for r in self.records]

    def ratio_results(self) -> list:
        """Online records as :class:`~repro.analysis.competitive.RatioResult` objects."""
        return [r.to_ratio_result() for r in self.records if r.kind == "online"]

    def json_payload(self) -> dict:
        return {
            "total_seconds": round(self.total_seconds, 6),
            "meta": dict(self.meta),
            "rows": self.as_rows(),
        }

    def write_json(self, path) -> Path:
        """Persist the report as machine-readable JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.json_payload(), indent=2) + "\n")
        return path
