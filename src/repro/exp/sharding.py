"""Shared sharding helpers: deterministic assignment of keyed work to shards.

The sweep engine distributes instance payloads across worker processes
(:func:`~repro.exp.engine.run_plan`) and the serve fabric distributes tenants
across supervised worker processes (:class:`~repro.serve.fabric.ServeFabric`).
Both need the same two properties:

* **determinism** — the same inputs must map to the same shards on every run
  (recovery re-derives the assignment after a crash; record order must be
  reproducible), and
* **affinity** — items carrying the same key must land on the same shard
  (tenants over one fleet geometry share a
  :class:`~repro.serve.session.ServeCache` only when they live in the same
  process, exactly as the sweep engine keeps one
  :class:`~repro.exp.shared.SharedInstanceContext` per instance within a
  shard).

:func:`assign_shards` groups items by key in first-appearance order and
assigns whole groups to the currently least-loaded shard (ties broken by
shard index), so co-keyed items stay together while the load stays balanced.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

__all__ = ["assign_shards", "chunked"]


def assign_shards(keys: Sequence, n_shards: int) -> List[int]:
    """Shard index for every item of ``keys`` (affinity-preserving, balanced).

    Items with equal keys always receive the same shard index.  Groups are
    placed greedily: in first-appearance order, each group goes to the shard
    with the fewest items so far (lowest index on ties) — deterministic, and
    within a factor of two of a perfectly balanced assignment.

    >>> assign_shards(["a", "b", "a", "c"], 2)
    [0, 1, 0, 1]
    """
    n_shards = int(n_shards)
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    groups: dict = {}
    order: list = []
    for i, key in enumerate(keys):
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(i)
    loads = [0] * n_shards
    assignment = [0] * len(keys)
    for key in order:
        members = groups[key]
        shard = min(range(n_shards), key=lambda s: (loads[s], s))
        loads[shard] += len(members)
        for i in members:
            assignment[i] = shard
    return assignment


def chunked(items: Sequence, size: int) -> Iterator[list]:
    """Yield consecutive chunks of at most ``size`` items (order preserved)."""
    size = int(size)
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    for lo in range(0, len(items), size):
        yield list(items[lo : lo + size])
