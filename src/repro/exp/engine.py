"""Shared-context sweep engine: batch N online algorithms × M instances.

The competitive-ratio experiments (THM8/13/15/22, the comparison and adversary
sweeps) all follow the same shape: for every instance, compute the offline
optimum, run a set of online algorithms, and report costs and ratios.  Run
sequentially, every ``run_online`` call builds its own solver and every
algorithm recomputes the identical prefix-DP value stream.  The engine instead
runs the whole plan through one :class:`~repro.exp.shared.SharedInstanceContext`
per instance:

* one dispatch solver and one set of per-slot grid operating-cost tensors,
* one memoised prefix-DP value stream per ``gamma`` shared by A/B/LCP (both
  tie-breaks) — and reused again for the offline optimum,
* schedule evaluation by gathers from the shared tensors, and
* optional process-level sharding across instances (``jobs > 1``) for large
  sweeps.

Algorithms are named by *specs* (small picklable descriptions resolved against
a registry) so that plans can be shipped to worker processes; a spec may also
carry an arbitrary ``factory`` callable for custom algorithms, which restricts
the plan to in-process execution.

Instances, too, can be named declaratively: a plan's ``scenarios`` tuple holds
:class:`~repro.scenarios.spec.ScenarioSpec` entries (family name + params +
seed, see :mod:`repro.scenarios`) that are materialised *lazily* — in-process
right before the runs, and inside the worker shard for process-sharded plans,
so only the tiny spec crosses the process boundary, never a pickled
:class:`ProblemInstance`.  The spec is stamped into every resulting
:class:`RunRecord`, making each report row reproducible by address.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..analysis.competitive import theoretical_bound
from ..core.instance import ProblemInstance
from ..online.algorithm_a import AlgorithmA
from ..online.algorithm_b import AlgorithmB
from ..online.algorithm_c import AlgorithmC
from ..online.baselines import AllOn, FollowDemand, Reactive
from ..online.lcp import LazyCapacityProvisioning
from .records import RunRecord, SweepReport
from .shared import SharedInstanceContext

__all__ = ["AlgorithmSpec", "OfflineSpec", "SweepPlan", "run_instance", "run_plan", "spec"]


# --------------------------------------------------------------------------- #
# Specs
# --------------------------------------------------------------------------- #


@dataclass(frozen=True, eq=False)
class AlgorithmSpec:
    """Description of one online algorithm of a sweep plan.

    ``kind`` names a registry entry (``"A"``, ``"B"``, ``"C"``, ``"lcp"``,
    ``"reactive"``, ``"follow-demand"``, ``"all-on"``); ``params`` are passed
    to its builder.  ``bound`` is a fixed float, ``None``, or ``"theory"``
    (resolve the proven competitive bound per instance, where one applies).
    ``factory`` overrides the registry with a custom
    ``SharedInstanceContext -> OnlineAlgorithm`` callable; such specs cannot be
    shipped to worker processes.
    """

    kind: str
    label: Optional[str] = None
    params: Dict = field(default_factory=dict)
    bound: object = "theory"
    factory: Optional[Callable] = None


def spec(kind: str, label: Optional[str] = None, bound: object = "theory", **params) -> AlgorithmSpec:
    """Convenience constructor: ``spec("C", epsilon=0.5)``."""
    return AlgorithmSpec(kind=kind, label=label, bound=bound, params=params)


@dataclass(frozen=True, eq=False)
class OfflineSpec:
    """Description of one offline solve of a sweep plan.

    ``solver`` is ``"optimal"`` or ``"approx"``; approximate solves take
    ``epsilon`` (or ``gamma``).  ``return_schedule=False`` skips the backward
    pass when only the cost is needed.
    """

    solver: str = "optimal"
    label: Optional[str] = None
    epsilon: Optional[float] = None
    gamma: Optional[float] = None
    return_schedule: bool = True
    #: Streaming-DP options for **approximate** solves only: a checkpoint
    #: window (``None`` = the plan's ``checkpoint_every``) and an optional
    #: float32 value pass.  ``solver="optimal"`` reads the shared value
    #: stream, whose streaming is governed by the plan's ``checkpoint_every``
    #: — setting either field on an optimal spec raises.
    checkpoint_every: Optional[int] = None
    value_dtype: Optional[str] = None


@dataclass(frozen=True, eq=False)
class SweepPlan:
    """A full sweep: instances and/or scenarios × (online algorithms + offline solves)."""

    instances: Tuple[ProblemInstance, ...] = ()
    #: Declarative instance sources: :class:`~repro.scenarios.spec.ScenarioSpec`
    #: entries (or names / spec dicts), materialised lazily by :func:`run_plan`
    #: — inside the worker shard when the plan is process-sharded.  They run
    #: after ``instances`` in plan order.
    scenarios: Tuple = ()
    algorithms: Tuple = ()
    offline: Tuple[OfflineSpec, ...] = ()
    #: Solve the shared offline optimum per instance (denominator of ratios).
    compute_optimal: bool = True
    #: Process-level sharding across instances (1 = in-process).
    jobs: int = 1
    #: Checkpoint window of the shared prefix-DP value streams (``None`` =
    #: full history).  Long-horizon plans set this to keep every instance's
    #: stream at O(sqrt(T) * |M|) resident tensors.
    checkpoint_every: Optional[int] = None


# --------------------------------------------------------------------------- #
# Algorithm registry
# --------------------------------------------------------------------------- #


def _build_a(ctx: SharedInstanceContext, params: dict):
    return AlgorithmA(tracker=ctx.tracker(gamma=params.get("gamma")))


def _build_b(ctx: SharedInstanceContext, params: dict):
    return AlgorithmB(tracker=ctx.tracker(gamma=params.get("gamma")))


def _build_c(ctx: SharedInstanceContext, params: dict):
    # Algorithm C's inner tracker observes scaled sub-slots — a different
    # value stream than A/B/LCP — so it keeps a private tracker and shares
    # only the dispatch solver and the per-slot grid tensors.
    return AlgorithmC(
        epsilon=params.get("epsilon", 0.25),
        gamma=params.get("gamma"),
        max_sub_slots=params.get("max_sub_slots", 1000),
    )


def _build_lcp(ctx: SharedInstanceContext, params: dict):
    return LazyCapacityProvisioning(
        gamma=params.get("gamma"),
        allow_heterogeneous=params.get("allow_heterogeneous", False),
        tracker_factory=ctx.trackers,
    )


ALGORITHM_BUILDERS: Dict[str, Callable] = {
    "A": _build_a,
    "B": _build_b,
    "C": _build_c,
    "lcp": _build_lcp,
    "reactive": lambda ctx, params: Reactive(),
    "follow-demand": lambda ctx, params: FollowDemand(),
    "all-on": lambda ctx, params: AllOn(),
}


def _normalise_spec(entry) -> AlgorithmSpec:
    if isinstance(entry, AlgorithmSpec):
        return entry
    if isinstance(entry, str):
        return AlgorithmSpec(kind=entry)
    raise TypeError(f"algorithm spec must be an AlgorithmSpec or registry key, got {entry!r}")


def _build_algorithm(entry: AlgorithmSpec, ctx: SharedInstanceContext):
    if entry.factory is not None:
        return entry.factory(ctx)
    builder = ALGORITHM_BUILDERS.get(entry.kind)
    if builder is None:
        raise KeyError(
            f"unknown algorithm kind {entry.kind!r} (known: {sorted(ALGORITHM_BUILDERS)})"
        )
    return builder(ctx, entry.params)


def _resolve_bound(entry: AlgorithmSpec, instance: ProblemInstance) -> Optional[float]:
    if entry.bound is None:
        return None
    if isinstance(entry.bound, (int, float)):
        return float(entry.bound)
    if entry.bound == "theory":
        kind = entry.kind.upper()
        if kind in ("A", "B"):
            return theoretical_bound(instance, kind)
        if kind == "C":
            return theoretical_bound(instance, "C", epsilon=entry.params.get("epsilon", 0.25))
        return None
    raise ValueError(f"bound must be a number, None or 'theory', got {entry.bound!r}")


def _algorithm_extras(algorithm) -> dict:
    if isinstance(algorithm, AlgorithmC):
        counts = algorithm.sub_slot_counts
        return {
            "epsilon": algorithm.epsilon,
            "mean_sub_slots": float(np.mean(counts)) if len(counts) else 0.0,
        }
    return {}


# --------------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------------- #


def run_instance(
    instance: ProblemInstance,
    algorithms: Sequence = (),
    offline: Sequence[OfflineSpec] = (),
    compute_optimal: bool = True,
    context: Optional[SharedInstanceContext] = None,
    checkpoint_every: Optional[int] = None,
    scenario=None,
) -> list:
    """Run all algorithms and offline solves of a plan on one instance.

    Everything shares one :class:`SharedInstanceContext` (pass ``context`` to
    share it further, e.g. with hand-written analysis code).  Returns one
    :class:`RunRecord` per run; the shared optimum is computed once and stamped
    into every record, as is the declarative ``scenario`` spec (name + params
    + seed) when the instance came out of the scenario registry.
    """
    scenario_row = scenario.to_dict() if scenario is not None else None
    if context is not None:
        if checkpoint_every is not None and context.checkpoint_every != checkpoint_every:
            raise ValueError(
                "run_instance was given both an explicit context and a conflicting "
                f"checkpoint_every ({context.checkpoint_every!r} vs {checkpoint_every!r}); "
                "configure streaming on the SharedInstanceContext instead"
            )
        ctx = context
    else:
        ctx = SharedInstanceContext(instance, checkpoint_every=checkpoint_every)
    records = []

    optimal_cost = float("nan")
    if compute_optimal:
        start = time.perf_counter()
        optimal_cost = ctx.optimal_cost()
        optimal_seconds = time.perf_counter() - start
    else:
        optimal_seconds = 0.0

    for off in offline:
        start = time.perf_counter()
        if off.solver == "optimal":
            if off.checkpoint_every is not None or off.value_dtype is not None:
                raise ValueError(
                    "OfflineSpec(solver='optimal') reads the shared value stream; its "
                    "streaming is set by the plan's checkpoint_every — per-spec "
                    "checkpoint_every/value_dtype apply to approx solves only"
                )
            result = ctx.solve_optimal(return_schedule=off.return_schedule)
            label = off.label or "offline-optimal"
        elif off.solver == "approx":
            result = ctx.solve_approx(
                epsilon=off.epsilon,
                gamma=off.gamma,
                return_schedule=off.return_schedule,
                checkpoint_every=off.checkpoint_every,
                value_dtype=off.value_dtype,
            )
            if off.label:
                label = off.label
            elif off.epsilon is not None:
                label = f"approx(eps={off.epsilon:g})"
            else:
                label = f"approx(gamma={result.gamma:g})"
        else:
            raise ValueError(f"unknown offline solver {off.solver!r}")
        elapsed = time.perf_counter() - start
        records.append(
            RunRecord(
                instance=instance.name,
                algorithm=label,
                kind="offline",
                cost=result.cost,
                optimal_cost=optimal_cost if compute_optimal else result.cost,
                elapsed_seconds=elapsed + (optimal_seconds if off.solver == "optimal" else 0.0),
                scenario=scenario_row,
                result=result,
            )
        )

    for entry in algorithms:
        entry = _normalise_spec(entry)
        algorithm = _build_algorithm(entry, ctx)
        start = time.perf_counter()
        result = ctx.run(algorithm)
        elapsed = time.perf_counter() - start
        records.append(
            RunRecord(
                instance=instance.name,
                algorithm=entry.label or result.algorithm,
                kind="online",
                cost=result.cost,
                optimal_cost=optimal_cost,
                elapsed_seconds=elapsed,
                bound=_resolve_bound(entry, instance),
                breakdown=result.breakdown.summary(),
                dispatch_stats=result.dispatch_stats,
                scenario=scenario_row,
                extras=_algorithm_extras(algorithm),
                result=result,
            )
        )
    return records


def _materialise(scenario) -> ProblemInstance:
    """Build a scenario spec through the registry (lazy import: the scenarios
    package layers *above* the engine and imports it for the plan compiler)."""
    from ..scenarios import registry

    return registry.family(scenario.name).build(scenario)


def _instance_worker(payload) -> list:
    """Module-level worker for process-sharded plans (must stay picklable).

    ``payload[0]`` is either a :class:`ProblemInstance` or ``None`` with
    ``payload[1]`` carrying a :class:`~repro.scenarios.spec.ScenarioSpec` —
    scenario shards ship only the spec and materialise the instance here,
    inside the worker process.
    """
    instance, scenario, algorithms, offline, compute_optimal, checkpoint_every = payload
    if instance is None:
        instance = _materialise(scenario)
    return run_instance(
        instance,
        algorithms=algorithms,
        offline=offline,
        compute_optimal=compute_optimal,
        checkpoint_every=checkpoint_every,
        scenario=scenario,
    )


def _plan_sources(plan: SweepPlan) -> list:
    """The plan's instance sources in run order, as ``(instance, spec)`` pairs.

    Pre-built instances keep ``spec=None``; scenario entries are validated
    against the registry here (fail fast, before any work runs) and keep
    ``instance=None`` — materialisation is deferred to the execution site.
    """
    from ..scenarios import registry
    from ..scenarios.spec import ScenarioSpec

    sources = [(instance, None) for instance in plan.instances]
    for entry in plan.scenarios:
        spec = registry.validate(ScenarioSpec.parse(entry))
        sources.append((None, spec))
    return sources


def _shard_payloads(plan: SweepPlan, algorithms: Tuple, offline: Tuple, sources=None) -> list:
    """Worker payloads of a process-sharded plan.

    Scenario entries contribute ``(None, spec, ...)`` payloads — the invariant
    (asserted by the test suite) is that no ``ProblemInstance`` of a scenario
    source is ever pickled into a shard.  ``sources`` takes the already
    computed :func:`_plan_sources` list so callers validate each spec once.
    """
    if sources is None:
        sources = _plan_sources(plan)
    return [
        (instance, spec, algorithms, offline, plan.compute_optimal, plan.checkpoint_every)
        for instance, spec in sources
    ]


def run_plan(plan: SweepPlan, jobs: Optional[int] = None) -> SweepReport:
    """Execute a sweep plan and return the bundled report.

    ``jobs > 1`` shards *instance sources* across worker processes (results
    and record order are identical to the serial path).  Scenario sources ship
    their spec only and are materialised inside the worker; pre-built
    instances are pickled as before.  Plans containing custom ``factory``
    specs, or whose instances fail to pickle, fall back to serial execution
    with a warning.
    """
    jobs = plan.jobs if jobs is None else int(jobs)
    algorithms = tuple(_normalise_spec(a) for a in plan.algorithms)
    offline = tuple(plan.offline)
    sources = _plan_sources(plan)

    start = time.perf_counter()
    parallel = jobs > 1 and len(sources) > 1 and all(a.factory is None for a in algorithms)
    records: list = []
    used_jobs = 1
    sharded = False
    if parallel:
        import pickle
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

        try:
            payloads = _shard_payloads(plan, algorithms, offline, sources=sources)
            with ProcessPoolExecutor(max_workers=min(jobs, len(sources))) as pool:
                for chunk in pool.map(_instance_worker, payloads):
                    records.extend(chunk)
            used_jobs = min(jobs, len(sources))
            sharded = True
        except (pickle.PicklingError, AttributeError, ImportError, OSError, BrokenExecutor) as exc:
            # infrastructure failures only (unpicklable instances, missing
            # semaphores, crashed workers) — genuine workload errors such as an
            # infeasible instance propagate to the caller unchanged
            warnings.warn(f"process sharding unavailable ({exc!r}); running serially")
            records = []
    if not sharded:
        for instance, scenario in sources:
            if instance is None:
                instance = _materialise(scenario)
            records.extend(
                run_instance(
                    instance,
                    algorithms=algorithms,
                    offline=offline,
                    compute_optimal=plan.compute_optimal,
                    checkpoint_every=plan.checkpoint_every,
                    scenario=scenario,
                )
            )
    total = time.perf_counter() - start
    meta = {
        "instances": len(sources),
        "algorithms": [a.label or a.kind for a in algorithms],
        "offline": [o.label or o.solver for o in offline],
        "jobs": used_jobs,
    }
    if plan.scenarios:
        meta["scenarios"] = [spec.to_dict() for _, spec in sources if spec is not None]
    return SweepReport(
        records=tuple(records),
        total_seconds=total,
        meta=meta,
    )
