"""Parameter-sweep runner used by the benchmark harness and the examples.

A sweep is a cartesian product of named parameter lists; for every combination
a user-supplied experiment function produces a result row (a flat ``dict``).
Timing is recorded per combination so that the runtime-scaling experiments
(Theorems 21 and 22) can report measured wall-clock growth alongside the
predicted complexity.

:func:`run_algorithm_sweep` bridges into the shared-context sweep engine
(:mod:`repro.exp`): it batches online algorithms × instances through one
shared context per instance and returns the flat rows as a
:class:`SweepResult`, so the grouping/reporting helpers here apply to engine
output as well.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence

__all__ = ["SweepResult", "run_algorithm_sweep", "run_sweep"]


@dataclass(frozen=True, eq=False)
class SweepResult:
    """All rows produced by one sweep, with helpers for grouping and reporting."""

    rows: tuple

    def filter(self, **conditions) -> "SweepResult":
        """Rows matching all ``column == value`` conditions."""
        selected = [r for r in self.rows if all(r.get(k) == v for k, v in conditions.items())]
        return SweepResult(rows=tuple(selected))

    def column(self, name: str) -> List:
        return [r.get(name) for r in self.rows]

    def as_rows(self) -> List[dict]:
        return [dict(r) for r in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


def run_sweep(
    experiment: Callable[..., Dict],
    parameters: Dict[str, Sequence],
    repeat: int = 1,
    include_timing: bool = True,
) -> SweepResult:
    """Run ``experiment(**combination)`` for every parameter combination.

    The experiment function returns a flat dictionary; the sweep adds the
    parameter values themselves plus ``elapsed_seconds`` (median over
    ``repeat`` runs) to every row.
    """
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    names = list(parameters)
    rows = []
    for combination in itertools.product(*(parameters[n] for n in names)):
        kwargs = dict(zip(names, combination))
        durations = []
        result_row: Dict = {}
        for _ in range(repeat):
            start = time.perf_counter()
            result_row = experiment(**kwargs)
            durations.append(time.perf_counter() - start)
        row = dict(kwargs)
        row.update(result_row)
        if include_timing:
            durations.sort()
            row["elapsed_seconds"] = durations[len(durations) // 2]
        rows.append(row)
    return SweepResult(rows=tuple(rows))


def run_algorithm_sweep(
    instances: Sequence,
    algorithms: Sequence,
    offline: Sequence = (),
    jobs: int = 1,
    compute_optimal: bool = True,
) -> SweepResult:
    """Batch online algorithms × instances through the shared-context engine.

    ``algorithms`` entries are registry keys (``"A"``, ``"B"``, ...) or
    :class:`repro.exp.AlgorithmSpec` objects; ``offline`` entries are
    :class:`repro.exp.OfflineSpec` objects.  Each instance's runs share one
    dispatch solver, grid tensors and prefix-DP value stream; ``jobs > 1``
    shards instances across processes.  Returns the flat result rows (cost,
    optimal, ratio, timing, dispatch counters) as a :class:`SweepResult`.
    """
    from ..exp.engine import SweepPlan, run_plan

    report = run_plan(
        SweepPlan(
            instances=tuple(instances),
            algorithms=tuple(algorithms),
            offline=tuple(offline),
            compute_optimal=compute_optimal,
            jobs=jobs,
        )
    )
    return SweepResult(rows=tuple(report.as_rows()))
