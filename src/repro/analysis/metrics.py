"""Schedule metrics: the quantities reported by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.costs import CostBreakdown, evaluate_schedule
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..dispatch.allocation import DispatchSolver

__all__ = ["ScheduleMetrics", "compute_metrics"]


@dataclass(frozen=True, eq=False)
class ScheduleMetrics:
    """Aggregated figures of merit of one schedule on one instance."""

    name: str
    total_cost: float
    operating_cost: float
    switching_cost: float
    idle_cost: float
    load_dependent_cost: float
    power_ups: np.ndarray
    mean_active: np.ndarray
    peak_active: np.ndarray
    mean_utilisation: float
    feasible: bool

    def as_row(self) -> dict:
        """Flat dictionary used by the table/CSV reporters."""
        return {
            "name": self.name,
            "total": round(self.total_cost, 4),
            "operating": round(self.operating_cost, 4),
            "switching": round(self.switching_cost, 4),
            "idle": round(self.idle_cost, 4),
            "load_dependent": round(self.load_dependent_cost, 4),
            "power_ups": int(np.sum(self.power_ups)),
            "peak_active": int(np.sum(self.peak_active)),
            "mean_utilisation": round(self.mean_utilisation, 4),
            "feasible": self.feasible,
        }


def compute_metrics(
    instance: ProblemInstance,
    schedule: Schedule,
    name: str = "schedule",
    dispatcher: Optional[DispatchSolver] = None,
    breakdown: Optional[CostBreakdown] = None,
) -> ScheduleMetrics:
    """Evaluate a schedule and aggregate the quantities used in reports."""
    breakdown = breakdown or evaluate_schedule(instance, schedule, dispatcher)
    util = schedule.utilisation(instance)
    active_any = np.any(schedule.x > 0, axis=1)
    mean_util = float(np.mean(util[active_any])) if np.any(active_any) else 0.0
    return ScheduleMetrics(
        name=name,
        total_cost=breakdown.total,
        operating_cost=breakdown.total_operating,
        switching_cost=breakdown.total_switching,
        idle_cost=breakdown.total_idle,
        load_dependent_cost=breakdown.total_load_dependent,
        power_ups=schedule.num_power_ups(),
        mean_active=schedule.x.mean(axis=0) if schedule.T else np.zeros(schedule.d),
        peak_active=schedule.max_active(),
        mean_utilisation=mean_util,
        feasible=breakdown.feasible,
    )
