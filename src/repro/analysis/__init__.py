"""Analysis toolkit: metrics, empirical ratios, sweeps, ASCII figures, reports."""

from .ascii_plot import compare_plot, schedule_plot, series_plot, step_plot
from .competitive import RatioResult, empirical_ratio, ratio_table, theoretical_bound
from .metrics import ScheduleMetrics, compute_metrics
from .report import format_markdown_table, format_table, print_table, rows_to_csv
from .sweep import SweepResult, run_algorithm_sweep, run_sweep

__all__ = [
    "RatioResult",
    "ScheduleMetrics",
    "SweepResult",
    "compare_plot",
    "compute_metrics",
    "empirical_ratio",
    "format_markdown_table",
    "format_table",
    "print_table",
    "ratio_table",
    "rows_to_csv",
    "run_algorithm_sweep",
    "run_sweep",
    "schedule_plot",
    "series_plot",
    "step_plot",
    "theoretical_bound",
]
