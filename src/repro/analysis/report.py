"""Tabular reporting helpers (plain text, markdown, CSV).

The benchmark harness prints the regenerated "tables" of the reproduction with
these helpers; EXPERIMENTS.md embeds their output.  No third-party formatting
library is used so the output is stable across environments.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Optional, Sequence

__all__ = ["format_table", "format_markdown_table", "rows_to_csv", "print_table"]


def _normalise(rows: Sequence[dict]) -> tuple:
    rows = list(rows)
    if not rows:
        return [], []
    columns = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns, rows


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[dict], title: Optional[str] = None) -> str:
    """Fixed-width plain-text table."""
    columns, rows = _normalise(rows)
    if not rows:
        return "(no rows)"
    widths = {c: max(len(c), max(len(_fmt(r.get(c, ""))) for r in rows)) for c in columns}
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(" | ".join(_fmt(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def format_markdown_table(rows: Sequence[dict], title: Optional[str] = None) -> str:
    """GitHub-flavoured markdown table (used to fill EXPERIMENTS.md)."""
    columns, rows = _normalise(rows)
    if not rows:
        return "(no rows)"
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_fmt(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[dict]) -> str:
    """Serialise rows as CSV text."""
    columns, rows = _normalise(rows)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    for row in rows:
        writer.writerow({c: row.get(c, "") for c in columns})
    return buffer.getvalue()


def print_table(rows: Sequence[dict], title: Optional[str] = None) -> None:
    """Print a plain-text table (convenience for benchmarks and examples)."""
    print(format_table(rows, title=title))
