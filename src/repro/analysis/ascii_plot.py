"""Text-based rendering of schedules and traces.

Matplotlib is not available in the offline build environment, so the figures of
the paper are regenerated as ASCII step plots plus CSV series (the information
content — which configuration is active when, where power-ups happen, how the
online schedule tracks the prefix optima — is fully preserved).  The renderers
are deliberately simple and deterministic so their output can be asserted on in
tests and embedded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["step_plot", "series_plot", "schedule_plot", "compare_plot"]


def step_plot(
    values: Sequence[float],
    height: int = 10,
    title: Optional[str] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render a single non-negative series as an ASCII step/bar chart.

    Each column is one time slot; a column of ``#`` characters reaches up to
    the (scaled) value of the slot.  Integer-valued series with a small range
    are rendered exactly (one row per unit), which is how the figure
    reproductions show server counts.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError("step_plot expects a 1-D series")
    if len(arr) == 0:
        return "(empty series)"
    top = float(y_max) if y_max is not None else float(np.max(arr))
    top = max(top, 1e-9)
    integral = np.allclose(arr, np.rint(arr)) and top <= 40
    levels = int(top) if integral else height
    levels = max(levels, 1)
    scaled = arr if integral else arr / top * levels
    lines = []
    if title:
        lines.append(title)
    for level in range(levels, 0, -1):
        row_val = level if integral else level * top / levels
        cells = ["#" if v >= level - 1e-9 else " " for v in scaled]
        label = f"{row_val:6.2f} |" if not integral else f"{int(row_val):6d} |"
        lines.append(label + "".join(cells))
    lines.append("       +" + "-" * len(arr))
    axis = "        "
    for t in range(len(arr)):
        axis += str(t % 10)
    lines.append(axis)
    return "\n".join(lines)


def series_plot(series: dict, height: int = 10, title: Optional[str] = None) -> str:
    """Render several named series stacked above each other."""
    blocks = []
    if title:
        blocks.append("=" * len(title))
        blocks.append(title)
        blocks.append("=" * len(title))
    for name, values in series.items():
        blocks.append(step_plot(values, height=height, title=name))
        blocks.append("")
    return "\n".join(blocks)


def schedule_plot(schedule_x: np.ndarray, type_names: Optional[Sequence[str]] = None, title: Optional[str] = None) -> str:
    """Render a schedule (one sub-plot per server type)."""
    arr = np.asarray(schedule_x)
    names = type_names or [f"type {j}" for j in range(arr.shape[1])]
    series = {f"active servers of {names[j]}": arr[:, j] for j in range(arr.shape[1])}
    return series_plot(series, title=title)


def compare_plot(
    demand: np.ndarray,
    schedules: dict,
    type_index: int = 0,
    title: Optional[str] = None,
) -> str:
    """Demand plus, per named schedule, the active servers of one type."""
    series = {"demand": demand}
    for name, x in schedules.items():
        arr = np.asarray(x)
        series[f"{name} (type {type_index})"] = arr[:, type_index]
    return series_plot(series, title=title)
