"""Empirical competitive- and approximation-ratio computations.

The paper's guarantees are worst-case bounds: Algorithm A is ``(2d+1)``-
competitive, B is ``(2d+1+c(I))``-competitive, C is ``(2d+1+eps)``-competitive
(Theorems 8, 13, 15), and the reduced-grid offline schedule is a
``(2*gamma-1)``-approximation (Theorem 16).  The benchmark harness measures the
*empirical* ratios on concrete workloads and checks that they respect — and
shows how far they typically stay below — the proven bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..core.costs import evaluate_schedule
from ..core.instance import ProblemInstance
from ..dispatch.allocation import DispatchSolver
from ..offline.graph_optimal import solve_optimal
from ..online.base import OnlineAlgorithm, run_online

__all__ = ["RatioResult", "empirical_ratio", "ratio_table", "theoretical_bound"]


@dataclass(frozen=True, eq=False)
class RatioResult:
    """Outcome of one algorithm-vs-optimum comparison."""

    instance: str
    algorithm: str
    online_cost: float
    optimal_cost: float
    bound: Optional[float] = None

    @property
    def ratio(self) -> float:
        if self.optimal_cost <= 0:
            return float("inf") if self.online_cost > 0 else 1.0
        return self.online_cost / self.optimal_cost

    @property
    def within_bound(self) -> Optional[bool]:
        if self.bound is None:
            return None
        return self.ratio <= self.bound + 1e-6

    def as_row(self) -> dict:
        row = {
            "instance": self.instance,
            "algorithm": self.algorithm,
            "cost": round(self.online_cost, 4),
            "optimal": round(self.optimal_cost, 4),
            "ratio": round(self.ratio, 4),
        }
        if self.bound is not None:
            row["bound"] = round(self.bound, 4)
            row["within_bound"] = bool(self.within_bound)
        return row


def theoretical_bound(instance: ProblemInstance, algorithm: str, epsilon: Optional[float] = None) -> float:
    """The proven competitive ratio applicable to an algorithm on an instance.

    ``algorithm`` is one of ``"A"``, ``"B"``, ``"C"``; for ``"A"`` the bound is
    ``2d`` when the instance is load- (and time-) independent (Corollary 9) and
    ``2d + 1`` otherwise; for ``"B"`` it is ``2d + 1 + c(I)`` (Theorem 13); for
    ``"C"`` it is ``2d + 1 + eps`` (Theorem 15).
    """
    d = instance.d
    key = algorithm.upper().strip().replace("ALGORITHM-", "")
    if key == "A":
        if not instance.has_time_dependent_costs and instance.is_load_independent():
            return 2.0 * d
        return 2.0 * d + 1.0
    if key == "B":
        return 2.0 * d + 1.0 + instance.c_constant()
    if key == "C":
        if epsilon is None:
            raise ValueError("epsilon is required for Algorithm C's bound")
        return 2.0 * d + 1.0 + float(epsilon)
    raise ValueError(f"unknown algorithm key {algorithm!r}")


def empirical_ratio(
    instance: ProblemInstance,
    algorithm: OnlineAlgorithm,
    optimal_cost: Optional[float] = None,
    bound: Optional[float] = None,
    dispatcher: Optional[DispatchSolver] = None,
) -> RatioResult:
    """Run an online algorithm and compare its cost against the offline optimum."""
    dispatcher = dispatcher or DispatchSolver(instance)
    result = run_online(instance, algorithm, dispatcher=dispatcher)
    if optimal_cost is None:
        optimal_cost = solve_optimal(instance, dispatcher=dispatcher, return_schedule=False).cost
    return RatioResult(
        instance=instance.name,
        algorithm=result.algorithm,
        online_cost=result.cost,
        optimal_cost=float(optimal_cost),
        bound=bound,
    )


def ratio_table(
    instances: Sequence[ProblemInstance],
    algorithm_factories: Sequence,
    bounds: Optional[Sequence[Optional[float]]] = None,
) -> list:
    """Compare a family of algorithms across a family of instances.

    ``algorithm_factories`` is a sequence of zero-argument callables returning
    fresh :class:`OnlineAlgorithm` objects (fresh state per run).  Returns a
    list of :class:`RatioResult`, one per (instance, algorithm) pair.

    The comparison routes through the sweep engine
    (:func:`repro.exp.run_plan`): every instance's runs share one dispatch
    solver and its per-slot grid tensors, and the offline optimum is taken
    from the engine's memoised prefix-DP value stream instead of a separate
    solve.
    """
    from ..exp.engine import AlgorithmSpec, SweepPlan, run_plan

    specs = []
    for k, factory in enumerate(algorithm_factories):
        bound = bounds[k] if bounds is not None else None
        specs.append(
            AlgorithmSpec(
                kind=f"custom-{k}",
                bound=bound,
                factory=lambda ctx, _factory=factory: _factory(),
            )
        )
    report = run_plan(SweepPlan(instances=tuple(instances), algorithms=tuple(specs)))
    return report.ratio_results()
