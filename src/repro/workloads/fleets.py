"""Heterogeneous fleet presets.

The paper motivates heterogeneity with two scenarios (Section 1): different
architectures — e.g. GPU nodes that process embarrassingly parallel work much
faster than CPU nodes but are a poor fit for branchy code — and different
hardware generations coexisting in the same data center.  These presets encode
such fleets with plausible relative magnitudes of switching cost, capacity and
power draw; the absolute numbers are synthetic (the paper reports none), chosen
so that the interesting regimes (power down at night vs. keep warm) actually
occur on the bundled traces.

All presets keep the per-type counts small enough that the *exact* offline DP
is tractable, because the benchmarks compare every algorithm against the true
optimum; the scaling benchmarks build larger fleets explicitly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence

import numpy as np

from ..core.cost_functions import ConstantCost, LinearCost, PowerCost, QuadraticCost
from ..core.instance import ProblemInstance
from ..core.server import ServerType
from .traces import RngLike, as_rng

__all__ = [
    "single_type_fleet",
    "cpu_gpu_fleet",
    "old_new_fleet",
    "three_tier_fleet",
    "load_independent_fleet",
    "perturbed_fleet",
    "fleet_instance",
]


def single_type_fleet(count: int = 10, switching_cost: float = 6.0) -> List[ServerType]:
    """A homogeneous fleet (``d = 1``) — the setting of Lin et al. and of the LCP baseline."""
    return [
        ServerType(
            name="standard",
            count=count,
            switching_cost=switching_cost,
            capacity=1.0,
            cost_function=QuadraticCost(idle=1.0, a=0.5, b=1.0),
        )
    ]


def cpu_gpu_fleet(cpu_count: int = 8, gpu_count: int = 3) -> List[ServerType]:
    """CPU nodes plus a few large GPU nodes (different architectures).

    GPU nodes process four times the volume per slot but cost more to keep
    idle and much more to power up (long boot, job drain, wear and tear).
    """
    return [
        ServerType(
            name="cpu",
            count=cpu_count,
            switching_cost=4.0,
            capacity=1.0,
            cost_function=QuadraticCost(idle=1.0, a=0.4, b=0.8),
        ),
        ServerType(
            name="gpu",
            count=gpu_count,
            switching_cost=20.0,
            capacity=4.0,
            cost_function=PowerCost(idle=3.0, coef=0.15, exponent=2.0),
        ),
    ]


def old_new_fleet(old_count: int = 10, new_count: int = 6) -> List[ServerType]:
    """Two hardware generations: old servers are cheap to cycle but power hungry."""
    return [
        ServerType(
            name="old-gen",
            count=old_count,
            switching_cost=3.0,
            capacity=1.0,
            cost_function=LinearCost(idle=2.0, slope=1.5),
        ),
        ServerType(
            name="new-gen",
            count=new_count,
            switching_cost=8.0,
            capacity=2.0,
            cost_function=QuadraticCost(idle=1.2, a=0.3, b=0.4),
        ),
    ]


def three_tier_fleet() -> List[ServerType]:
    """Three types (``d = 3``): efficient base-load, burst, and accelerator tiers."""
    return [
        ServerType(
            name="baseload",
            count=6,
            switching_cost=10.0,
            capacity=2.0,
            cost_function=QuadraticCost(idle=1.0, a=0.2, b=0.3),
        ),
        ServerType(
            name="burst",
            count=6,
            switching_cost=2.0,
            capacity=1.0,
            cost_function=LinearCost(idle=0.8, slope=1.2),
        ),
        ServerType(
            name="accelerator",
            count=2,
            switching_cost=25.0,
            capacity=6.0,
            cost_function=PowerCost(idle=4.0, coef=0.1, exponent=2.5),
        ),
    ]


def load_independent_fleet(d: int = 2, base_count: int = 6) -> List[ServerType]:
    """Load-independent operating costs (``f_j(z) = l_j``) — the regime of Corollary 9.

    Types are ordered from cheap-to-run/expensive-to-start to the opposite, the
    structure studied in the companion paper (CIAC 2021).
    """
    if d < 1:
        raise ValueError("d must be at least 1")
    types = []
    for j in range(d):
        types.append(
            ServerType(
                name=f"type-{j}",
                count=base_count,
                switching_cost=2.0 * (2.0**j),
                capacity=1.0 + j,
                cost_function=ConstantCost(level=3.0 / (j + 1.0)),
            )
        )
    return types


def perturbed_fleet(
    fleet: Sequence[ServerType],
    jitter: float = 0.2,
    rng: RngLike = None,
) -> List[ServerType]:
    """A randomised variant of a fleet preset: log-normal parameter jitter.

    Switching costs, idle/operating costs and capacities of every type are
    each scaled by an independent ``exp(jitter * N(0, 1))`` factor — a cheap
    model of procurement differences, energy contracts and hardware binning
    that turns each deterministic preset into a family of related fleets.

    Seeding follows the library convention (:func:`repro.workloads.traces.
    spawn_streams`): callers pass the *fleet sub-stream* of their scenario
    seed, so fleet randomness is derived from — but independent of — the
    demand trace's stream.  ``jitter=0`` returns the preset unchanged.
    """
    if jitter < 0:
        raise ValueError("jitter must be non-negative")
    if jitter == 0:
        return list(fleet)
    rng = as_rng(rng)
    perturbed = []
    for st in fleet:
        factors = np.exp(jitter * rng.standard_normal(3))
        perturbed.append(
            replace(
                st,
                switching_cost=float(st.switching_cost * factors[0]),
                capacity=float(st.capacity * factors[1]),
                cost_function=st.cost_function.scaled(float(factors[2])),
            )
        )
    return perturbed


def fleet_instance(
    fleet: Sequence[ServerType],
    demand: np.ndarray,
    name: str = "fleet",
) -> ProblemInstance:
    """Convenience wrapper: bundle a fleet preset and a trace into an instance.

    The demand is clipped to the fleet's total capacity so that presets and
    traces can be combined freely without creating infeasible instances.
    """
    demand = np.asarray(demand, dtype=float)
    capacity = float(sum(st.count * st.capacity for st in fleet if np.isfinite(st.capacity)))
    if capacity > 0:
        demand = np.minimum(demand, capacity)
    return ProblemInstance(tuple(fleet), demand, name=name)
