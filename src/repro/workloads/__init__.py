"""Synthetic workloads: demand-trace generators and heterogeneous fleet presets."""

from .fleets import (
    cpu_gpu_fleet,
    fleet_instance,
    load_independent_fleet,
    old_new_fleet,
    single_type_fleet,
    three_tier_fleet,
)
from .traces import (
    as_rng,
    bursty_trace,
    constant_trace,
    diurnal_trace,
    mmpp_trace,
    poisson_trace,
    ramp_trace,
    random_walk_trace,
    spike_trace,
)

__all__ = [
    "as_rng",
    "bursty_trace",
    "constant_trace",
    "cpu_gpu_fleet",
    "diurnal_trace",
    "fleet_instance",
    "load_independent_fleet",
    "mmpp_trace",
    "old_new_fleet",
    "poisson_trace",
    "ramp_trace",
    "random_walk_trace",
    "single_type_fleet",
    "spike_trace",
    "three_tier_fleet",
]
