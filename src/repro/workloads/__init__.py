"""Synthetic workloads: demand-trace generators, fleet presets and scale scenarios."""

from .fleets import (
    cpu_gpu_fleet,
    fleet_instance,
    load_independent_fleet,
    old_new_fleet,
    perturbed_fleet,
    single_type_fleet,
    three_tier_fleet,
)
from .scale import (
    big_fleet_instance,
    long_horizon_instance,
    mega_fleet,
    metered_trace,
    quantise_trace,
    scale_scenarios,
    wide_cpu_gpu_fleet,
)
from .traces import (
    as_rng,
    bursty_trace,
    constant_trace,
    diurnal_trace,
    mmpp_trace,
    poisson_trace,
    ramp_trace,
    random_walk_trace,
    spawn_streams,
    spike_trace,
)

__all__ = [
    "as_rng",
    "big_fleet_instance",
    "bursty_trace",
    "constant_trace",
    "cpu_gpu_fleet",
    "diurnal_trace",
    "fleet_instance",
    "load_independent_fleet",
    "long_horizon_instance",
    "mega_fleet",
    "metered_trace",
    "mmpp_trace",
    "old_new_fleet",
    "perturbed_fleet",
    "poisson_trace",
    "quantise_trace",
    "ramp_trace",
    "random_walk_trace",
    "scale_scenarios",
    "single_type_fleet",
    "spawn_streams",
    "spike_trace",
    "three_tier_fleet",
    "wide_cpu_gpu_fleet",
]
