"""Synthetic demand traces.

The paper evaluates nothing empirically (it is a theory paper), so this module
provides the synthetic workloads the benchmark harness runs the algorithms on.
The generators cover the workload regimes the paper's introduction appeals to:

* **diurnal** traffic with day/night swing and noise — the canonical case where
  right-sizing saves energy at night,
* **bursty** traffic — short spikes over a low base load, stressing the
  switching-cost trade-off,
* **Markov-modulated (MMPP-style)** load — alternating high/low regimes with
  geometric sojourn times,
* **random walks**, **ramps**, **constant** and **spike-train** traces as
  structural corner cases,
* the **ski-rental adversarial trace** lives in :mod:`repro.online.adversary`.

All generators take an explicit ``numpy.random.Generator`` (or a seed) so that
experiments are reproducible, and return plain non-negative ``float`` arrays
that can be fed to :class:`repro.core.ProblemInstance`.

Seeding convention
------------------
A *scenario* owns exactly one seed.  Everything random inside it — the demand
trace, fleet perturbations, future noise sources — draws from independent
child streams spawned off that one seed via :func:`spawn_streams` (NumPy's
``Generator.spawn``, i.e. ``SeedSequence`` children).  Consumers therefore
never share or re-use a raw seed across modules: one scenario seed
deterministically derives every stream, and adding a new randomness consumer
never perturbs the existing ones.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = [
    "as_rng",
    "spawn_streams",
    "constant_trace",
    "diurnal_trace",
    "bursty_trace",
    "mmpp_trace",
    "random_walk_trace",
    "ramp_trace",
    "spike_trace",
    "poisson_trace",
    "named_trace",
    "trace_preset_names",
]

RngLike = Union[int, np.random.Generator, None]


def as_rng(rng: RngLike) -> np.random.Generator:
    """Normalise a seed / generator / ``None`` into a :class:`numpy.random.Generator`."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_streams(rng: RngLike, n: int) -> list:
    """Spawn ``n`` independent child generators from one scenario seed.

    This is the library-wide seeding convention: a scenario seed is normalised
    through :func:`as_rng` and split into statistically independent
    sub-streams (``SeedSequence`` children), one per randomness consumer —
    e.g. ``trace_rng, fleet_rng = spawn_streams(seed, 2)``.  The split is
    deterministic in the seed, and each consumer's stream is unaffected by how
    much entropy the others draw.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return list(as_rng(rng).spawn(n))


def _clip_non_negative(trace: np.ndarray, peak: Optional[float] = None) -> np.ndarray:
    trace = np.maximum(trace, 0.0)
    if peak is not None:
        trace = np.minimum(trace, peak)
    return trace


def constant_trace(T: int, level: float = 1.0) -> np.ndarray:
    """A flat demand of ``level`` for ``T`` slots."""
    if level < 0:
        raise ValueError("level must be non-negative")
    return np.full(int(T), float(level))


def diurnal_trace(
    T: int,
    period: int = 24,
    base: float = 2.0,
    peak: float = 10.0,
    noise: float = 0.05,
    rng: RngLike = None,
) -> np.ndarray:
    """Day/night sinusoidal demand with multiplicative noise.

    ``period`` slots per day, demand oscillating between ``base`` and ``peak``;
    ``noise`` is the relative standard deviation of the multiplicative jitter.
    """
    if base < 0 or peak < base:
        raise ValueError("need 0 <= base <= peak")
    rng = as_rng(rng)
    t = np.arange(int(T))
    mid = 0.5 * (base + peak)
    amp = 0.5 * (peak - base)
    trace = mid - amp * np.cos(2.0 * np.pi * t / max(period, 1))
    if noise > 0:
        trace = trace * (1.0 + noise * rng.standard_normal(int(T)))
    return _clip_non_negative(trace)


def bursty_trace(
    T: int,
    base: float = 1.0,
    burst_height: float = 8.0,
    burst_probability: float = 0.1,
    burst_length: int = 3,
    rng: RngLike = None,
) -> np.ndarray:
    """A low base load with randomly placed rectangular bursts."""
    if burst_length < 1:
        raise ValueError("burst_length must be at least 1")
    rng = as_rng(rng)
    trace = np.full(int(T), float(base))
    t = 0
    while t < T:
        if rng.random() < burst_probability:
            trace[t : t + burst_length] = burst_height
            t += burst_length
        else:
            t += 1
    return _clip_non_negative(trace)


def mmpp_trace(
    T: int,
    low: float = 1.0,
    high: float = 8.0,
    p_up: float = 0.1,
    p_down: float = 0.2,
    noise: float = 0.1,
    rng: RngLike = None,
) -> np.ndarray:
    """Markov-modulated demand: a two-state regime process with per-slot jitter."""
    rng = as_rng(rng)
    trace = np.zeros(int(T))
    state_high = False
    for t in range(int(T)):
        if state_high:
            if rng.random() < p_down:
                state_high = False
        else:
            if rng.random() < p_up:
                state_high = True
        level = high if state_high else low
        trace[t] = level * (1.0 + noise * rng.standard_normal()) if noise > 0 else level
    return _clip_non_negative(trace)


def random_walk_trace(
    T: int,
    start: float = 5.0,
    step: float = 0.8,
    minimum: float = 0.0,
    maximum: Optional[float] = None,
    rng: RngLike = None,
) -> np.ndarray:
    """A reflected random walk — slowly drifting demand without periodic structure."""
    rng = as_rng(rng)
    trace = np.zeros(int(T))
    level = float(start)
    for t in range(int(T)):
        level += step * rng.standard_normal()
        level = max(level, minimum)
        if maximum is not None:
            level = min(level, maximum)
        trace[t] = level
    return trace


def ramp_trace(T: int, start: float = 0.0, end: float = 10.0) -> np.ndarray:
    """Linearly increasing (or decreasing) demand."""
    return _clip_non_negative(np.linspace(float(start), float(end), int(T)))


def spike_trace(
    T: int,
    base: float = 0.0,
    spike_height: float = 5.0,
    spike_every: int = 10,
    rng: RngLike = None,
    jitter: int = 0,
) -> np.ndarray:
    """Isolated spikes on an (almost) idle system — the regime where powering down pays off most."""
    if spike_every < 1:
        raise ValueError("spike_every must be at least 1")
    rng = as_rng(rng)
    trace = np.full(int(T), float(base))
    t = 0
    while t < T:
        pos = t
        if jitter > 0:
            pos = min(int(T) - 1, max(0, t + int(rng.integers(-jitter, jitter + 1))))
        trace[pos] = spike_height
        t += spike_every
    return _clip_non_negative(trace)


def poisson_trace(T: int, mean: float = 4.0, rng: RngLike = None) -> np.ndarray:
    """Independent Poisson-distributed per-slot job counts."""
    if mean < 0:
        raise ValueError("mean must be non-negative")
    rng = as_rng(rng)
    return rng.poisson(mean, int(T)).astype(float)


# --------------------------------------------------------------------------- #
# Named presets (the `--trace NAME` spellings of the CLI and the serve feeds)
# --------------------------------------------------------------------------- #

_TRACE_PRESETS = {
    "diurnal": lambda T, rng: diurnal_trace(T, period=max(4, T // 2), base=1.0, peak=10.0, rng=rng),
    "bursty": lambda T, rng: bursty_trace(T, rng=rng),
    "mmpp": lambda T, rng: mmpp_trace(T, rng=rng),
    "spikes": lambda T, rng: spike_trace(T, spike_height=6.0, spike_every=max(2, T // 6), rng=rng),
    "constant": lambda T, rng: constant_trace(T, level=4.0),
    "random-walk": lambda T, rng: random_walk_trace(T, rng=rng),
}


def trace_preset_names() -> list:
    """The registered named trace presets, sorted."""
    return sorted(_TRACE_PRESETS)


def named_trace(name: str, T: int, rng: RngLike = None) -> np.ndarray:
    """Generate a demand trace from a named preset.

    These are the exact parameterisations the CLI has always used for
    ``--trace NAME``; the serve layer's synthetic feeds resolve the same
    names, so a streamed synthetic workload equals its batch counterpart.
    """
    try:
        preset = _TRACE_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown trace preset {name!r} (known: {', '.join(trace_preset_names())})"
        ) from None
    return preset(int(T), rng)
