"""Large-scale scenario suite: long horizons and big heterogeneous fleets.

The bundled presets (:mod:`repro.workloads.fleets`) deliberately keep fleets
small so every benchmark can compare against the exact optimum.  This module
goes the other way: it generates the instances on which the *memory* of the
solver — not its FLOPs — used to be the binding constraint, the workloads the
streaming DP core (:func:`repro.offline.dp.solve_dp` with checkpointed
backtracking) exists for:

* **long horizons** — months of slots (``T`` up to ``5 * 10^4`` and beyond)
  over mid-sized heterogeneous fleets, where the classic all-tables DP holds
  ``T`` value tensors alive, and
* **big fleets** — up to ``d = 4`` server types with ``m_j`` up to ``10^4``
  machines, tractable only on the geometric grids ``M^gamma`` of Section 4.2,
  where even the *reduced* per-slot tensor is large enough that ``T`` of them
  do not fit.

Demand traces are quantised to a configurable number of discrete levels.
Metered/aggregated traffic genuinely arrives that way, and it keeps the number
of distinct dispatch signatures per checkpoint window bounded, so the batched
dual bisection stays vectorised instead of degenerating into one row per slot.

All generators are seeded and deterministic under the library-wide seeding
convention: each instance builder takes a *single* scenario seed and spawns
independent sub-streams (:func:`repro.workloads.traces.spawn_streams`) for the
demand trace and the fleet perturbation, so trace and fleet randomness are
derived from — and only from — that one seed.  ``scale_scenarios`` bundles
the named instances used by ``benchmarks/bench_scale_streaming.py`` and
``repro bench --scale``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.cost_functions import LinearCost, PowerCost, QuadraticCost
from ..core.instance import ProblemInstance
from ..core.server import ServerType
from .fleets import fleet_instance, perturbed_fleet
from .traces import as_rng, RngLike, spawn_streams

__all__ = [
    "quantise_trace",
    "metered_trace",
    "wide_cpu_gpu_fleet",
    "mega_fleet",
    "long_horizon_instance",
    "big_fleet_instance",
    "scale_scenarios",
]


def quantise_trace(trace: np.ndarray, levels: int, peak: Optional[float] = None) -> np.ndarray:
    """Snap a demand trace to ``levels`` evenly spaced discrete levels.

    Mirrors metered traffic (requests per 5-minute bucket, MW of load, ...)
    and bounds the number of distinct dispatch signatures of the horizon.
    """
    if levels < 1:
        raise ValueError("levels must be at least 1")
    trace = np.asarray(trace, dtype=float)
    top = float(np.max(trace)) if peak is None else float(peak)
    if top <= 0:
        return np.zeros_like(trace)
    step = top / levels
    return np.clip(np.round(trace / step) * step, 0.0, top)


def metered_trace(
    T: int,
    period: int = 288,
    base: float = 2.0,
    peak: float = 10.0,
    weekly_amplitude: float = 0.2,
    noise: float = 0.05,
    levels: int = 32,
    rng: RngLike = None,
) -> np.ndarray:
    """A long-horizon demand trace: diurnal swing x weekly envelope x noise, quantised.

    ``period`` is the number of slots per day (288 = 5-minute slots); the
    weekly envelope modulates the peak by ``weekly_amplitude`` over 7 periods.
    """
    rng = as_rng(rng)
    t = np.arange(int(T))
    day = 0.5 * (base + peak) - 0.5 * (peak - base) * np.cos(2.0 * np.pi * t / max(period, 1))
    week = 1.0 - weekly_amplitude * 0.5 * (1.0 + np.cos(2.0 * np.pi * t / max(7 * period, 1)))
    trace = day * week
    if noise > 0:
        trace = trace * (1.0 + noise * rng.standard_normal(int(T)))
    return quantise_trace(np.maximum(trace, 0.0), levels=levels, peak=peak)


def wide_cpu_gpu_fleet(cpu_count: int = 60, gpu_count: int = 40) -> List[ServerType]:
    """A mid-sized two-type fleet whose *horizon*, not grid, is the scaling axis.

    The full grid has ``(cpu_count + 1) * (gpu_count + 1)`` states — small
    enough for the exact DP per slot, large enough that holding one tensor per
    slot of a long horizon is the dominant memory cost.
    """
    return [
        ServerType(
            name="cpu",
            count=cpu_count,
            switching_cost=4.0,
            capacity=1.0,
            cost_function=QuadraticCost(idle=1.0, a=0.4, b=0.8),
        ),
        ServerType(
            name="gpu",
            count=gpu_count,
            switching_cost=20.0,
            capacity=4.0,
            cost_function=PowerCost(idle=3.0, coef=0.15, exponent=2.0),
        ),
    ]


def mega_fleet(d: int = 4, m_max: int = 10_000) -> List[ServerType]:
    """Up to four server types with per-type counts scaling down from ``m_max``.

    Counts follow a factor-5 ladder (``m_max, m_max/5, m_max/25, ...``) —
    a large base tier of cheap machines, down to a handful of accelerators.
    Only tractable on geometric grids: the full grid would have
    ``prod_j (m_j + 1)`` states (``~10^4 * 2 * 10^3 * 4 * 10^2 * 80 ~ 10^{12}``
    at the defaults).
    """
    if not 1 <= d <= 4:
        raise ValueError("d must be between 1 and 4")
    if m_max < 1:
        raise ValueError("m_max must be positive")
    types: List[ServerType] = []
    for j in range(d):
        count = max(int(m_max // 5**j), 1)
        types.append(
            ServerType(
                name=f"tier-{j}",
                count=count,
                # higher tiers: beefier machines, pricier to cycle and to idle
                switching_cost=2.0 * 3.0**j,
                capacity=1.0 + 2.0 * j,
                cost_function=(
                    LinearCost(idle=0.05 * (j + 1), slope=0.1 * (j + 1))
                    if j % 2 == 0
                    else QuadraticCost(idle=0.05 * (j + 1), a=0.05 * (j + 1), b=0.1)
                ),
            )
        )
    return types


def long_horizon_instance(
    T: int = 50_000,
    cpu_count: int = 60,
    gpu_count: int = 40,
    levels: int = 32,
    heterogeneity: float = 0.0,
    seed: int = 0,
    name: Optional[str] = None,
) -> ProblemInstance:
    """A long-horizon right-sizing instance (full grids stay exact).

    The default — ``T = 5 * 10^4`` five-minute slots (~6 months) over a
    ``61 x 41``-state fleet — needs ~1 GB of value-table history in the classic
    all-tables DP and a few MB in the streaming pass.

    ``seed`` derives both the trace and (when ``heterogeneity > 0``) the fleet
    perturbation through spawned sub-streams, and the trace is sized against
    the *unperturbed* fleet's capacity, so instances with and without fleet
    jitter share the identical demand trace (up to the feasibility clip
    against the perturbed capacity).
    """
    trace_rng, fleet_rng = spawn_streams(seed, 2)
    base_fleet = wide_cpu_gpu_fleet(cpu_count=cpu_count, gpu_count=gpu_count)
    capacity = sum(st.count * st.capacity for st in base_fleet)
    fleet = perturbed_fleet(base_fleet, jitter=heterogeneity, rng=fleet_rng)
    demand = metered_trace(
        T, period=288, base=0.05 * capacity, peak=0.75 * capacity, levels=levels, rng=trace_rng
    )
    return fleet_instance(
        fleet, demand, name=name or f"long-horizon-T{T}-d2-{cpu_count}x{gpu_count}"
    )


def big_fleet_instance(
    T: int = 4_000,
    d: int = 4,
    m_max: int = 10_000,
    levels: int = 24,
    heterogeneity: float = 0.0,
    seed: int = 1,
    name: Optional[str] = None,
) -> ProblemInstance:
    """A big heterogeneous fleet instance (``d`` up to 4, ``m_j`` up to ``10^4``).

    Solve it with ``gamma``-reduced grids (:func:`repro.offline.graph_approx.
    solve_approx`); the full grid is astronomically large, and even the
    geometric grid tensor is big enough that the all-tables history dwarfs RAM
    on longer horizons.  Trace and (optional) fleet randomness both derive
    from ``seed`` via spawned sub-streams; the trace is sized against the
    unperturbed fleet so fleet jitter never changes the demand pattern.
    """
    trace_rng, fleet_rng = spawn_streams(seed, 2)
    base_fleet = mega_fleet(d=d, m_max=m_max)
    capacity = sum(st.count * st.capacity for st in base_fleet)
    fleet = perturbed_fleet(base_fleet, jitter=heterogeneity, rng=fleet_rng)
    demand = metered_trace(
        T, period=96, base=0.02 * capacity, peak=0.6 * capacity, levels=levels, rng=trace_rng
    )
    return fleet_instance(fleet, demand, name=name or f"big-fleet-T{T}-d{d}-m{m_max}")


def scale_scenarios(full: bool = False) -> List[dict]:
    """The named large-scale scenarios of the streaming benchmark.

    Each entry carries the instance plus the solver configuration
    (``gamma`` for geometric grids) and which modes the benchmark runs:
    ``compare`` scenarios execute both the streaming and the all-tables pass
    to measure the memory/time trade; ``streaming_only`` scenarios are the
    ones whose all-tables footprint is documented (projected) rather than
    paid.  ``full=False`` returns a scaled-down suite for quick regression
    runs; ``full=True`` the headline sizes (T up to ``5 * 10^4``).
    """
    if not full:
        return [
            {
                "label": "long-horizon (quick)",
                "instance": long_horizon_instance(T=4_000, cpu_count=30, gpu_count=20, seed=0),
                "gamma": None,
                "compare": True,
            },
            {
                "label": "big-fleet (quick)",
                "instance": big_fleet_instance(T=1_500, d=3, m_max=2_000, seed=1),
                "gamma": 2.0,
                "compare": True,
            },
        ]
    return [
        {
            "label": "long-horizon T=20k",
            "instance": long_horizon_instance(T=20_000, seed=0),
            "gamma": None,
            "compare": True,
        },
        {
            "label": "long-horizon T=50k",
            "instance": long_horizon_instance(T=50_000, seed=0),
            "gamma": None,
            "compare": False,
        },
        {
            "label": "big-fleet d=4 m=10k",
            "instance": big_fleet_instance(T=4_000, d=4, m_max=10_000, seed=1),
            "gamma": 2.0,
            "compare": False,
        },
    ]
