"""repro — reproduction of "Algorithms for Right-Sizing Heterogeneous Data Centers".

Albers & Quedenfeld, SPAA 2021 (arXiv:2107.14692).

The package implements the paper's discrete data-center right-sizing model, the
optimal offline shortest-path algorithm and its (1+eps)-approximation
(Section 4), and the online Algorithms A, B and C with competitive ratios
2d+1, 2d+1+c(I) and 2d+1+eps (Sections 2 and 3), together with baselines,
workload generators and an experiment harness.

Performance architecture
------------------------
Every solver routes its operating-cost evaluations through the *batched
dispatch engine* (:meth:`repro.dispatch.DispatchSolver.solve_block`), which
solves ``g_t(x)`` for a whole ``(slots x configurations)`` block at once:
slots are deduplicated by their ``(demand, cost-row)`` signature, the dual
bisection is vectorised over a 2-D ``(unique slots, configs)`` array with
derivative-bound initial brackets and monotone cross-demand bracket
propagation, and results are memoised per ``(signature, configuration set)``.
State grids are memoised per ``(counts, gamma)`` on the instance, so
time-invariant instances build exactly one grid (with one cached ``configs()``
enumeration) for the whole horizon.

On top of the dispatch engine sits the *shared-context sweep engine*
(:mod:`repro.exp`): :func:`run_plan` batches N online algorithms × M instances
through one shared context per instance — one dispatch solver, per-slot grid
operating-cost tensors computed once, and a single memoised prefix-DP value
stream shared by Algorithms A/B and both LCP tie-breaks (and reused again for
the offline optimum) — with optional process sharding for large sweeps.  See
``docs/PERFORMANCE.md`` for the design, the measured speedups and the
benchmark harness (``make bench-smoke`` / ``python -m repro bench --smoke``
guards the DP's exactness, ``make perf-regress`` / ``repro bench --sweep``
guards the sweep engine's).

Experiments are addressed *declaratively* through the scenario registry
(:mod:`repro.scenarios`): a :class:`ScenarioSpec` names a registered instance
family plus parameters and one seed, a ``plan.json`` selection compiles into
a :class:`SweepPlan` (:func:`compile_plan` / :func:`load_plan`), and the
engine materialises instances lazily — inside worker shards for process-
sharded plans — stamping each spec into its records.  See
``docs/ARCHITECTURE.md`` for the full layer stack.

The *serve* layer (:mod:`repro.serve`) drives the same algorithms from live
demand streams instead of materialised instances: a :class:`ControllerSession`
wraps any registered algorithm behind an incremental ``observe(demand_t)``
API with latency telemetry and JSON checkpoint/restore, trace feeds replay
scenarios / JSONL streams / synthetic generators at configurable time-warp
speed, and a :class:`ServeEngine` multiplexes many tenants over shared
dispatch caches.  Streamed replay reproduces batch ``run_online`` exactly
(``make serve-smoke`` gates this for every scenario family).
"""

from .core import (
    CallableCost,
    ConstantCost,
    CostBreakdown,
    CostFunction,
    LinearCost,
    PiecewiseLinearCost,
    PowerCost,
    ProblemInstance,
    QuadraticCost,
    ScaledCost,
    Schedule,
    ServerType,
    ShiftedCost,
    evaluate_schedule,
    operating_cost,
    switching_cost,
    total_cost,
)
from .dispatch import DispatchResult, DispatchSolver, DispatchStats
from .offline import (
    OfflineResult,
    StateGrid,
    approximation_guarantee,
    optimal_cost,
    solve_approx,
    solve_milp,
    solve_optimal,
)
from .online import (
    AlgorithmA,
    AlgorithmB,
    AlgorithmC,
    AllOn,
    DPPrefixTracker,
    FollowDemand,
    LazyCapacityProvisioning,
    OnlineAlgorithm,
    OnlineRunResult,
    Reactive,
    run_online,
)
from .analysis import (
    compute_metrics,
    empirical_ratio,
    format_table,
    ratio_table,
    theoretical_bound,
)
from .exp import (
    AlgorithmSpec,
    OfflineSpec,
    SharedInstanceContext,
    SweepPlan,
    SweepReport,
    run_plan,
)
from .scenarios import ScenarioSpec, compile_plan, load_plan
from .scenarios import build as build_scenario
from .serve import (
    ControllerSession,
    FleetState,
    InstanceFeed,
    ScenarioFeed,
    ServeCache,
    ServeEngine,
    verify_replay,
)
from .workloads import (
    bursty_trace,
    cpu_gpu_fleet,
    diurnal_trace,
    fleet_instance,
    single_type_fleet,
    three_tier_fleet,
)

__version__ = "1.0.0"

__all__ = [
    "AlgorithmA",
    "AlgorithmB",
    "AlgorithmC",
    "AlgorithmSpec",
    "AllOn",
    "CallableCost",
    "ConstantCost",
    "ControllerSession",
    "CostBreakdown",
    "CostFunction",
    "DPPrefixTracker",
    "DispatchResult",
    "DispatchSolver",
    "DispatchStats",
    "FleetState",
    "FollowDemand",
    "InstanceFeed",
    "LazyCapacityProvisioning",
    "LinearCost",
    "OfflineResult",
    "OfflineSpec",
    "OnlineAlgorithm",
    "OnlineRunResult",
    "PiecewiseLinearCost",
    "PowerCost",
    "ProblemInstance",
    "QuadraticCost",
    "Reactive",
    "ScaledCost",
    "ScenarioFeed",
    "ScenarioSpec",
    "Schedule",
    "ServeCache",
    "ServeEngine",
    "ServerType",
    "SharedInstanceContext",
    "ShiftedCost",
    "StateGrid",
    "SweepPlan",
    "SweepReport",
    "approximation_guarantee",
    "build_scenario",
    "bursty_trace",
    "compile_plan",
    "compute_metrics",
    "cpu_gpu_fleet",
    "diurnal_trace",
    "empirical_ratio",
    "evaluate_schedule",
    "fleet_instance",
    "format_table",
    "load_plan",
    "operating_cost",
    "optimal_cost",
    "ratio_table",
    "run_online",
    "run_plan",
    "single_type_fleet",
    "solve_approx",
    "solve_milp",
    "solve_optimal",
    "switching_cost",
    "theoretical_bound",
    "three_tier_fleet",
    "total_cost",
    "verify_replay",
    "__version__",
]
