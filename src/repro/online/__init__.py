"""Online algorithms: the paper's Algorithms A/B/C, trackers, baselines, adversaries."""

from .adversary import (
    AdaptiveAdversaryResult,
    ChasingGameResult,
    adaptive_adversary,
    convex_chasing_game,
    greedy_cube_strategy,
    interleaved_ski_rental_instance,
    rounding_pathology,
    ski_rental_instance,
    ski_rental_trace,
)
from .algorithm_a import AlgorithmA
from .algorithm_b import AlgorithmB, compute_retirement_sets, compute_runtimes
from .algorithm_c import AlgorithmC, sub_slot_count
from .base import OnlineAlgorithm, OnlineContext, OnlineRunResult, SlotContext, SlotInfo, run_online
from .baselines import AllOn, FollowDemand, Reactive, optimal_static_schedule, receding_horizon_schedule
from .blocks import Block, block_index_sets, blocks_from_power_ups, special_slots, verify_partition
from .lcp import LazyCapacityProvisioning
from .obd import FractionalRunResult, round_up, run_obd
from .tracker import (
    DPPrefixTracker,
    FixedSequenceTracker,
    PrefixOptimumTracker,
    SharedTrackerFactory,
    SharedValueStream,
    argmin_config,
)

__all__ = [
    "AdaptiveAdversaryResult",
    "AlgorithmA",
    "AlgorithmB",
    "AlgorithmC",
    "AllOn",
    "Block",
    "ChasingGameResult",
    "DPPrefixTracker",
    "FixedSequenceTracker",
    "FollowDemand",
    "FractionalRunResult",
    "LazyCapacityProvisioning",
    "OnlineAlgorithm",
    "OnlineContext",
    "OnlineRunResult",
    "PrefixOptimumTracker",
    "Reactive",
    "SharedTrackerFactory",
    "SharedValueStream",
    "SlotContext",
    "SlotInfo",
    "adaptive_adversary",
    "argmin_config",
    "block_index_sets",
    "blocks_from_power_ups",
    "compute_retirement_sets",
    "compute_runtimes",
    "convex_chasing_game",
    "greedy_cube_strategy",
    "interleaved_ski_rental_instance",
    "optimal_static_schedule",
    "receding_horizon_schedule",
    "round_up",
    "rounding_pathology",
    "run_obd",
    "run_online",
    "ski_rental_instance",
    "ski_rental_trace",
    "special_slots",
    "sub_slot_count",
    "verify_partition",
]
