"""Online Algorithm C: sub-slot refinement achieving ``2d + 1 + eps`` (Section 3.2).

Algorithm B's competitive ratio carries the additive constant
``c(I) = sum_j max_t l_{t,j} / beta_j``, which can be large when idle costs are
comparable to switching costs.  Algorithm C removes it by a refinement trick:

* every original slot ``t`` is split into ``n_t = ceil( d/eps * max_j l_{t,j}/beta_j )``
  *sub-slots*, each carrying ``1/n_t`` of the slot's operating cost and the
  full demand ``lambda_t`` (i.e. state changes are allowed "inside" a slot),
* Algorithm B runs on the refined instance — its constant becomes
  ``c(~I) <= d/n <= eps`` (equation (16)),
* the configuration reported for the original slot is the sub-slot
  configuration with the cheapest operating cost,
  ``x^C_t = x^B_{mu(t)}`` with ``mu(t) = argmin_{u in U(t)} ~g_u(x^B_u)``
  (Lemma 14 shows this repair never increases the cost).

Theorem 15: for every ``eps > 0`` this yields a ``(2d + 1 + eps)``-competitive
algorithm for time-dependent operating costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .algorithm_b import AlgorithmB
from .base import OnlineAlgorithm, OnlineContext, SlotInfo
from .tracker import DPPrefixTracker, PrefixOptimumTracker

__all__ = ["AlgorithmC", "sub_slot_count"]


def sub_slot_count(d: int, epsilon: float, idle_costs: np.ndarray, beta: np.ndarray) -> int:
    """The number of sub-slots ``n_t`` used for one original slot.

    ``n_t = ceil( d/eps * max_j l_{t,j} / beta_j )``, and at least 1 so that the
    slot is always represented.  (The paper sets ``n = d/eps`` and
    ``n_t = n * max_j l_{t,j}/beta_j``; taking the ceiling keeps ``n_t``
    integral without weakening the bound ``c(~I) <= eps``.)
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    idle_costs = np.asarray(idle_costs, dtype=float)
    beta = np.asarray(beta, dtype=float)
    if np.any(beta <= 0):
        raise ValueError("switching costs must be positive for the refinement")
    ratio = float(np.max(idle_costs / beta)) if len(idle_costs) else 0.0
    n_t = math.ceil((d / epsilon) * ratio)
    return max(1, int(n_t))


class AlgorithmC(OnlineAlgorithm):
    """The ``(2d + 1 + eps)``-competitive online algorithm of Section 3.2.

    Parameters
    ----------
    epsilon:
        The desired additive slack ``eps > 0``.  Smaller values mean more
        sub-slots per original slot and therefore more work per step.
    tracker / gamma:
        Prefix-optimum tracker used by the *internal* Algorithm B on the
        refined instance; defaults to the exact incremental DP tracker.
    max_sub_slots:
        Safety cap on ``n_t`` (the refinement count grows with
        ``max_j l_{t,j}/beta_j``; the cap guards against pathological
        instances with near-zero switching costs).  ``None`` disables the cap.
    """

    name = "algorithm-C"

    def __init__(
        self,
        epsilon: float = 0.25,
        tracker: Optional[PrefixOptimumTracker] = None,
        gamma: Optional[float] = None,
        max_sub_slots: Optional[int] = 1000,
    ):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if tracker is not None and gamma is not None:
            raise ValueError("give either an explicit tracker or gamma, not both")
        self.epsilon = float(epsilon)
        self.max_sub_slots = max_sub_slots
        self._inner = AlgorithmB(tracker=tracker, gamma=gamma)
        self._d = 0
        self._sub_slot_counts: List[int] = []
        self._sub_slot_cursor = 0

    # ---------------------------------------------------------------- life-cycle
    def start(self, context: OnlineContext) -> None:
        self._d = context.d
        self._inner.start(context)
        self._sub_slot_counts = []
        self._sub_slot_cursor = 0

    def step(self, slot: SlotInfo) -> np.ndarray:
        n_t = sub_slot_count(self._d, self.epsilon, slot.idle_costs(), slot.beta)
        if self.max_sub_slots is not None:
            n_t = min(n_t, int(self.max_sub_slots))
        self._sub_slot_counts.append(n_t)

        scaled = slot.with_scaled_costs(1.0 / n_t)
        sub_configs = []
        for _ in range(n_t):
            sub_slot = SlotInfo(
                t=self._sub_slot_cursor,
                demand=scaled.demand,
                cost_functions=scaled.cost_functions,
                counts=scaled.counts,
                beta=scaled.beta,
                zmax=scaled.zmax,
                _evaluator=scaled._evaluator,
                _grid_evaluator=scaled._grid_evaluator,
            )
            sub_configs.append(np.asarray(self._inner.step(sub_slot), dtype=int))
            self._sub_slot_cursor += 1

        # Repair step (Lemma 14): pick the sub-slot configuration with the
        # cheapest operating cost for the original slot.  Since every sub-slot
        # cost is the original cost divided by n_t, minimising ~g_u(x) is the
        # same as minimising g_t(x).  Consecutive sub-slots mostly repeat the
        # same configuration, so evaluate the distinct ones only (the dispatch
        # engine memoises them anyway, but this keeps even the lookup count
        # independent of n_t).
        stacked = np.stack(sub_configs)
        unique, inverse = np.unique(stacked, axis=0, return_inverse=True)
        inverse = np.asarray(inverse).reshape(-1)
        costs = slot.operating_cost(unique)
        best = int(np.argmin(np.asarray(costs)[inverse]))
        return sub_configs[best]

    def finish(self) -> None:
        self._inner.finish()

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Decision-relevant state: the inner Algorithm B plus the sub-slot cursor."""
        return {
            "inner": self._inner.state_dict(),
            "cursor": int(self._sub_slot_cursor),
            "d": int(self._d),
        }

    def load_state_dict(self, state: dict) -> None:
        self._d = int(state["d"])
        self._inner.load_state_dict(state["inner"])
        self._sub_slot_cursor = int(state["cursor"])
        self._sub_slot_counts = []

    # ------------------------------------------------------------------ analysis
    @property
    def sub_slot_counts(self) -> np.ndarray:
        """The refinement counts ``n_t`` used for every original slot."""
        return np.asarray(self._sub_slot_counts, dtype=int)

    @property
    def inner_algorithm(self) -> AlgorithmB:
        """The internal Algorithm B instance (its schedule lives on the refined time axis)."""
        return self._inner
