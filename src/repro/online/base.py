"""Online algorithm interface and driver.

In the online version of the right-sizing problem the job volumes ``lambda_t``
and operating-cost functions ``f_{t,j}`` arrive one by one; the configuration
``x_t`` must be fixed before anything about slots ``t' > t`` is revealed.

The driver :func:`run_online` enforces this information model: an algorithm
only ever receives a :class:`SlotInfo` describing the *current* slot (demand,
cost functions, available fleet, and an evaluator for the slot's operating
cost ``g_t``), plus the static fleet description at start-up.  The total
horizon ``T`` is *not* revealed.

Algorithms return one integral configuration per step; the driver validates it
against the fleet limits, assembles the schedule, and evaluates its exact cost.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.costs import CostBreakdown, evaluate_schedule
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..dispatch.allocation import DispatchSolver

__all__ = ["OnlineContext", "SlotInfo", "OnlineAlgorithm", "OnlineRunResult", "run_online"]


@dataclass(frozen=True, eq=False)
class OnlineContext:
    """Static information available to an online algorithm before the first slot."""

    server_types: tuple
    beta: np.ndarray
    zmax: np.ndarray
    base_counts: np.ndarray

    @property
    def d(self) -> int:
        return len(self.server_types)


@dataclass(frozen=True, eq=False)
class SlotInfo:
    """Everything an online algorithm may see about the current time slot ``t``.

    ``operating_cost`` evaluates ``g_t(x)`` for one or many configurations of
    the *current* slot; it is backed by the instance's dispatch solver but can
    only be queried for this slot, so no future information leaks.
    Configurations may be fractional (used by the fractional baselines).
    """

    t: int
    demand: float
    cost_functions: tuple
    counts: np.ndarray
    beta: np.ndarray
    zmax: np.ndarray
    _evaluator: Callable[[np.ndarray], np.ndarray]

    def idle_costs(self) -> np.ndarray:
        """Idle operating costs ``l_{t,j} = f_{t,j}(0)`` of the current slot."""
        return np.array([f.idle_cost() for f in self.cost_functions], dtype=float)

    def operating_cost(self, configs) -> np.ndarray:
        """Evaluate ``g_t`` for a single configuration or a batch of configurations."""
        arr = np.asarray(configs, dtype=float)
        single = arr.ndim == 1
        batch = arr[None, :] if single else arr
        costs = self._evaluator(batch)
        return float(costs[0]) if single else costs

    def with_scaled_costs(self, factor: float) -> "SlotInfo":
        """A copy of this slot whose operating costs are multiplied by ``factor``.

        Used by Algorithm C, which splits a slot into ``n_t`` sub-slots each
        carrying ``1/n_t`` of the operating cost (Section 3.2).
        """
        scaled_functions = tuple(f.scaled(factor) for f in self.cost_functions)
        evaluator = self._evaluator

        def scaled_evaluator(configs: np.ndarray) -> np.ndarray:
            return factor * evaluator(configs)

        return SlotInfo(
            t=self.t,
            demand=self.demand,
            cost_functions=scaled_functions,
            counts=self.counts,
            beta=self.beta,
            zmax=self.zmax,
            _evaluator=scaled_evaluator,
        )


class OnlineAlgorithm(abc.ABC):
    """Base class of integral online right-sizing algorithms."""

    #: Human-readable identifier used in reports and benchmark tables.
    name: str = "online"

    def start(self, context: OnlineContext) -> None:
        """Reset internal state for a new run (called once before the first slot)."""

    @abc.abstractmethod
    def step(self, slot: SlotInfo) -> np.ndarray:
        """Choose the configuration ``x_t`` for the current slot."""

    def finish(self) -> None:
        """Hook called after the last slot (optional bookkeeping)."""


@dataclass(frozen=True, eq=False)
class OnlineRunResult:
    """Outcome of running an online algorithm over a full instance.

    ``dispatch_stats`` is a snapshot of the shared dispatch engine's work
    counters for the run (block calls, unique solves, cache-hit rate) — the
    benchmark harness uses it to track how much of the per-slot grid work the
    batched engine deduplicates.
    """

    algorithm: str
    schedule: Schedule
    breakdown: CostBreakdown
    prefix_optima: Optional[np.ndarray] = None
    dispatch_stats: Optional[dict] = None

    @property
    def cost(self) -> float:
        return self.breakdown.total

    def summary(self) -> dict:
        out = {"algorithm": self.algorithm}
        out.update(self.breakdown.summary())
        return out


def run_online(
    instance: ProblemInstance,
    algorithm: OnlineAlgorithm,
    dispatcher: Optional[DispatchSolver] = None,
) -> OnlineRunResult:
    """Feed an instance slot-by-slot to an online algorithm and evaluate the result.

    The driver reveals each slot only when its configuration is requested; the
    algorithm therefore operates under the paper's online information model.
    The chosen configurations are validated against the per-slot fleet sizes;
    choosing more servers than exist raises immediately (this would mean the
    algorithm is not producing feasible schedules, cf. Lemmas 1 and 10).
    """
    dispatcher = dispatcher or DispatchSolver(instance)
    context = OnlineContext(
        server_types=instance.server_types,
        beta=instance.beta,
        zmax=instance.zmax,
        base_counts=instance.m,
    )
    algorithm.start(context)

    T, d = instance.T, instance.d
    configs = np.zeros((T, d), dtype=int)
    for t in range(T):
        def evaluator(batch: np.ndarray, _t: int = t) -> np.ndarray:
            costs, _ = dispatcher.solve_grid(_t, batch)
            return costs

        slot = SlotInfo(
            t=t,
            demand=float(instance.demand[t]),
            cost_functions=instance.cost_row(t),
            counts=instance.counts_at(t),
            beta=instance.beta,
            zmax=instance.zmax,
            _evaluator=evaluator,
        )
        choice = np.asarray(algorithm.step(slot))
        if choice.shape != (d,):
            raise ValueError(
                f"{algorithm.name}: step() must return a configuration of shape ({d},), got {choice.shape}"
            )
        rounded = np.rint(choice).astype(int)
        if not np.allclose(choice, rounded, atol=1e-9):
            raise ValueError(f"{algorithm.name}: returned a non-integral configuration {choice}")
        if np.any(rounded < 0) or np.any(rounded > slot.counts):
            raise ValueError(
                f"{algorithm.name}: configuration {rounded} violates fleet limits {slot.counts} at slot {t}"
            )
        configs[t] = rounded
    algorithm.finish()

    schedule = Schedule(configs)
    breakdown = evaluate_schedule(instance, schedule, dispatcher)
    return OnlineRunResult(
        algorithm=algorithm.name,
        schedule=schedule,
        breakdown=breakdown,
        dispatch_stats=dispatcher.stats.snapshot(),
    )
