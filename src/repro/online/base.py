"""Online algorithm interface and driver.

In the online version of the right-sizing problem the job volumes ``lambda_t``
and operating-cost functions ``f_{t,j}`` arrive one by one; the configuration
``x_t`` must be fixed before anything about slots ``t' > t`` is revealed.

The driver :func:`run_online` enforces this information model: an algorithm
only ever receives a :class:`SlotInfo` describing the *current* slot (demand,
cost functions, available fleet, and an evaluator for the slot's operating
cost ``g_t``), plus the static fleet description at start-up.  The total
horizon ``T`` is *not* revealed.

Algorithms return one integral configuration per step; the driver validates it
against the fleet limits, assembles the schedule, and evaluates its exact cost.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.costs import CostBreakdown, breakdown_from_parts, evaluate_schedule
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..dispatch.allocation import DispatchSolver
from ..dispatch.tables import SolutionTable
from ..offline.state_grid import grid_for_slot

__all__ = [
    "OnlineContext",
    "SlotContext",
    "SlotInfo",
    "OnlineAlgorithm",
    "OnlineRunResult",
    "run_online",
]


@dataclass(frozen=True, eq=False)
class OnlineContext:
    """Static information available to an online algorithm before the first slot."""

    server_types: tuple
    beta: np.ndarray
    zmax: np.ndarray
    base_counts: np.ndarray

    @property
    def d(self) -> int:
        return len(self.server_types)


@dataclass(frozen=True, eq=False)
class SlotInfo:
    """Everything an online algorithm may see about the current time slot ``t``.

    ``operating_cost`` evaluates ``g_t(x)`` for one or many configurations of
    the *current* slot; it is backed by the instance's dispatch solver but can
    only be queried for this slot, so no future information leaks.
    Configurations may be fractional (used by the fractional baselines).
    """

    t: int
    demand: float
    cost_functions: tuple
    counts: np.ndarray
    beta: np.ndarray
    zmax: np.ndarray
    _evaluator: Callable[[np.ndarray], np.ndarray]
    #: Optional fast path: ``grid -> value tensor of g_t over the whole grid``.
    #: Populated by :class:`SlotContext` so that every tracker sharing the
    #: context reads one precomputed tensor instead of re-querying dispatch.
    _grid_evaluator: Optional[Callable] = None

    def idle_costs(self) -> np.ndarray:
        """Idle operating costs ``l_{t,j} = f_{t,j}(0)`` of the current slot."""
        return np.array([f.idle_cost() for f in self.cost_functions], dtype=float)

    def operating_cost(self, configs) -> np.ndarray:
        """Evaluate ``g_t`` for a single configuration or a batch of configurations."""
        arr = np.asarray(configs, dtype=float)
        single = arr.ndim == 1
        batch = arr[None, :] if single else arr
        costs = self._evaluator(batch)
        return float(costs[0]) if single else costs

    def grid_operating_cost(self, grid) -> np.ndarray:
        """Value tensor of ``g_t`` over a whole :class:`~repro.offline.state_grid.StateGrid`.

        The returned tensor is read-only and may be shared between callers.
        """
        if self._grid_evaluator is not None:
            return self._grid_evaluator(grid)
        return self.operating_cost(grid.configs()).reshape(grid.shape)

    def with_scaled_costs(self, factor: float) -> "SlotInfo":
        """A copy of this slot whose operating costs are multiplied by ``factor``.

        Used by Algorithm C, which splits a slot into ``n_t`` sub-slots each
        carrying ``1/n_t`` of the operating cost (Section 3.2).
        """
        scaled_functions = tuple(f.scaled(factor) for f in self.cost_functions)
        evaluator = self._evaluator
        grid_evaluator = self._grid_evaluator

        def scaled_evaluator(configs: np.ndarray) -> np.ndarray:
            return factor * evaluator(configs)

        scaled_grid_evaluator = None
        if grid_evaluator is not None:
            def scaled_grid_evaluator(grid) -> np.ndarray:
                return factor * grid_evaluator(grid)

        return SlotInfo(
            t=self.t,
            demand=self.demand,
            cost_functions=scaled_functions,
            counts=self.counts,
            beta=self.beta,
            zmax=self.zmax,
            _evaluator=scaled_evaluator,
            _grid_evaluator=scaled_grid_evaluator,
        )


class OnlineAlgorithm(abc.ABC):
    """Base class of integral online right-sizing algorithms."""

    #: Human-readable identifier used in reports and benchmark tables.
    name: str = "online"

    def start(self, context: OnlineContext) -> None:
        """Reset internal state for a new run (called once before the first slot)."""

    @abc.abstractmethod
    def step(self, slot: SlotInfo) -> np.ndarray:
        """Choose the configuration ``x_t`` for the current slot."""

    def finish(self) -> None:
        """Hook called after the last slot (optional bookkeeping)."""

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """JSON-safe snapshot of all *decision-relevant* state.

        The serve layer (:mod:`repro.serve`) persists this dict in a
        :meth:`~repro.serve.ControllerSession.checkpoint` and feeds it back
        through :meth:`load_state_dict` after a restart; an algorithm must
        capture enough state here that every future :meth:`step` decision is
        unchanged by the round-trip.  Analysis-only logs (power-up history,
        block records) may be dropped.  Stateless algorithms inherit this
        empty default.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (called after :meth:`start`)."""
        if state:
            raise ValueError(
                f"{self.name}: cannot restore checkpoint state {sorted(state)} "
                "(algorithm does not override load_state_dict)"
            )


@dataclass(frozen=True, eq=False)
class OnlineRunResult:
    """Outcome of running an online algorithm over a full instance.

    ``dispatch_stats`` holds the *per-run delta* of the dispatch engine's work
    counters (block calls, unique solves, cache-hit rate) — the benchmark
    harness uses it to track how much of the per-slot grid work the batched
    engine deduplicates.  Deltas (not cumulative snapshots) are reported
    because the sweep engine shares one solver across every run of an
    instance.
    """

    algorithm: str
    schedule: Schedule
    breakdown: CostBreakdown
    prefix_optima: Optional[np.ndarray] = None
    dispatch_stats: Optional[dict] = None

    @property
    def cost(self) -> float:
        return self.breakdown.total

    def summary(self) -> dict:
        out = {"algorithm": self.algorithm}
        out.update(self.breakdown.summary())
        return out


class SlotContext:
    """Reusable per-instance driver state shared by many online runs.

    ``run_online`` builds ``T`` :class:`SlotInfo` objects and evaluates the
    final schedule for every run.  When one instance is swept by several
    algorithms (the sweep engine's core loop), that work is identical across
    runs; a ``SlotContext`` does it once:

    * one shared :class:`DispatchSolver`,
    * prebuilt, immutable per-slot :class:`SlotInfo` objects whose
      :meth:`SlotInfo.grid_operating_cost` serves memoised whole-grid value
      tensors — computed once per distinct dispatch signature and handed to
      every algorithm and tracker that shares the context, and
    * schedule evaluation by *gathering* costs and loads from those tensors
      (:meth:`evaluate_schedule`) instead of re-solving each schedule's
      configuration set from scratch.

    ``tensor_budget_bytes`` caps the grid-tensor memo (and tells the dispatch
    engine not to mirror the entries in its own block cache): once the budget
    is spent, further slots are re-solved per query instead of memoised.  A
    horizon whose demands are all distinct would otherwise pin one ``|M|``
    cost tensor plus one ``|M| x d`` load block per slot — the very
    ``O(T * |M| * d)`` footprint the checkpointed value streams exist to
    avoid, which is why :class:`~repro.exp.shared.SharedInstanceContext`
    sets a budget whenever it runs checkpointed.  ``None`` (default) keeps
    the unbounded classic behaviour.
    """

    def __init__(
        self,
        instance: ProblemInstance,
        dispatcher: Optional[DispatchSolver] = None,
        tensor_budget_bytes: Optional[int] = None,
    ):
        self.instance = instance
        self.dispatcher = dispatcher or DispatchSolver(instance)
        self.context = OnlineContext(
            server_types=instance.server_types,
            beta=instance.beta,
            zmax=instance.zmax,
            base_counts=instance.m,
        )
        self.tensor_budget_bytes = tensor_budget_bytes
        self._tensor_bytes_used = 0
        self._slots: list = [None] * instance.T
        self._tensor_cache: dict = {}
        self._batched_grids: set = set()

    def _cache_tensors(self, key, costs: np.ndarray, loads: np.ndarray) -> None:
        if self.tensor_budget_bytes is not None:
            size = costs.nbytes + loads.nbytes
            if self._tensor_bytes_used + size > self.tensor_budget_bytes:
                return
            self._tensor_bytes_used += size
            # copy rows out of the batched block so a cached entry pins its
            # own bytes, not the whole (slots x configs) result it came from
            costs = costs.copy()
            costs.setflags(write=False)
            loads = loads.copy()
            loads.setflags(write=False)
        self._tensor_cache[key] = (costs, loads)

    def slot(self, t: int) -> SlotInfo:
        """The (cached) :class:`SlotInfo` of slot ``t``."""
        slot = self._slots[t]
        if slot is None:
            instance, dispatcher = self.instance, self.dispatcher

            def evaluator(batch: np.ndarray, _t: int = t) -> np.ndarray:
                costs, _ = dispatcher.solve_grid(_t, batch)
                return costs

            def grid_evaluator(grid, _t: int = t) -> np.ndarray:
                return self._grid_tensors(_t, grid)[0]

            slot = SlotInfo(
                t=t,
                demand=float(instance.demand[t]),
                cost_functions=instance.cost_row(t),
                counts=instance.counts_at(t),
                beta=instance.beta,
                zmax=instance.zmax,
                _evaluator=evaluator,
                _grid_evaluator=grid_evaluator,
            )
            self._slots[t] = slot
        return slot

    def _grid_tensors(self, t: int, grid) -> tuple:
        """``(cost tensor, per-config loads)`` of ``g_t`` over ``grid``.

        Memoised per ``(dispatch signature, scale, grid)``, so slots that share
        a signature share one tensor and repeat queries skip even the dispatch
        block-cache lookup and reshape.  The first query for a grid triggers
        :meth:`_batch_grid`, which pushes *every* slot sharing the grid through
        one ``solve_block`` call — keeping the cross-demand vectorised dual
        bisection that slot-by-slot queries would forfeit.
        """
        sig, scale = self.dispatcher._slot_signature(t)
        key = (sig, scale, grid.key)
        hit = self._tensor_cache.get(key)
        if hit is None:
            self._batch_grid(grid)
            hit = self._tensor_cache.get(key)
        if hit is None:
            # budget-evicted slot, or a slot whose counts match no batch:
            # re-solve per query (correct, just not memoised)
            costs, loads = self.dispatcher.solve_block(
                [t], grid.configs(), memoise=self.tensor_budget_bytes is None
            )
            hit = (costs[0].reshape(grid.shape), loads[0])
            self._cache_tensors(key, *hit)
        return hit

    def _batch_grid(self, grid) -> None:
        """Solve ``g_t`` over ``grid`` for all matching slots in one block.

        A grid applies to every slot whose available counts equal the grid's
        per-dimension maxima (full and geometric grids both satisfy this), so
        those slots form one dispatch block: the solver deduplicates them by
        signature and runs a single vectorised bisection across the unique
        demands, exactly as the offline DP's ``operating_cost_tensors`` does.
        """
        if grid.key in self._batched_grids:
            return
        self._batched_grids.add(grid.key)
        instance = self.instance
        counts_key = tuple(int(v) for v in grid.max_values())
        pending_keys: list = []
        pending_ts: list = []
        seen: set = set()
        for t in range(instance.T):
            if tuple(int(c) for c in instance.counts_at(t)) != counts_key:
                continue
            sig, scale = self.dispatcher._slot_signature(t)
            key = (sig, scale, grid.key)
            if key in self._tensor_cache or key in seen:
                continue
            seen.add(key)
            pending_keys.append(key)
            pending_ts.append(t)
        if not pending_ts:
            return
        memoise = self.tensor_budget_bytes is None
        if memoise:
            chunk = len(pending_ts)
        else:
            # bound the transient (slots x configs x (1+d)) result block the
            # same way evaluate_schedule chunks long horizons — one unchunked
            # call would materialise O(T * |M| * d) regardless of the budget
            chunk = max(1, 500_000 // max(grid.size * (1 + self.instance.d), 1))
        for lo in range(0, len(pending_ts), chunk):
            if not memoise and self._tensor_bytes_used >= self.tensor_budget_bytes:
                # budget exhausted: the remaining slots would be solved only
                # to be discarded — leave them to the per-query safety net
                break
            costs, loads = self.dispatcher.solve_block(
                pending_ts[lo : lo + chunk], grid.configs(), memoise=memoise
            )
            for i, key in enumerate(pending_keys[lo : lo + chunk]):
                self._cache_tensors(key, costs[i].reshape(grid.shape), loads[i])

    def solution_table(self, grid, reference_slot: int = 0) -> SolutionTable:
        """Quantised :class:`~repro.dispatch.SolutionTable` of ``g_t`` over ``grid``.

        Collects one row per *unique demand level* among the slots that share
        the reference slot's base cost row and scale (and whose fleet matches
        the grid) — on a ``quantise_trace``-binned stream that is the whole
        demand alphabet.  Every row is pulled through :meth:`_grid_tensors`,
        i.e. the exact memoised tensors a cold online run reads, so a table
        gather is bit-identical to the cold path by construction.
        """
        ref_sig, ref_scale = self.dispatcher._slot_signature(reference_slot)
        ref_row = ref_sig[1]
        counts_key = tuple(int(v) for v in grid.max_values())
        levels: list = []
        cost_rows: list = []
        load_rows: list = []
        seen: set = set()
        for t in range(self.instance.T):
            sig, scale = self.dispatcher._slot_signature(t)
            if sig[1] != ref_row or scale != ref_scale:
                continue
            if tuple(int(c) for c in self.instance.counts_at(t)) != counts_key:
                continue
            lam = float(sig[0])
            if lam in seen:
                continue
            seen.add(lam)
            costs, loads = self._grid_tensors(t, grid)
            levels.append(lam)
            cost_rows.append(costs.reshape(-1))
            load_rows.append(loads)
        if not levels:
            raise ValueError(
                f"no slot shares the cost row and fleet of slot {reference_slot} "
                "on this grid; cannot build a solution table"
            )
        return SolutionTable(
            levels, grid.configs(), np.stack(cost_rows), np.stack(load_rows)
        )

    def evaluate_schedule(self, schedule: Schedule) -> CostBreakdown:
        """Exact cost breakdown of a schedule, gathered from the grid tensors.

        Gathers only from tensors that earlier runs already materialised; a
        cold slot (e.g. a reduced-grid-only sweep that never touched the full
        grid) falls back to the general path, which solves just the schedule's
        own configurations instead of a whole grid.
        """
        instance = self.instance
        T, d = instance.T, instance.d
        operating = np.zeros(T)
        loads = np.zeros((T, d))
        feasible = True
        # the fallback must honour the tensor budget: with memoise=True it
        # would repopulate the unbounded dispatch block cache the budget caps
        memoise = self.tensor_budget_bytes is None
        for t in range(T):
            grid = grid_for_slot(instance, t)
            sig, scale = self.dispatcher._slot_signature(t)
            hit = self._tensor_cache.get((sig, scale, grid.key))
            if hit is None:
                return evaluate_schedule(instance, schedule, self.dispatcher, memoise=memoise)
            try:
                idx = grid.index_of(schedule[t])
            except ValueError:
                # off-grid configuration (exceeds the slot's fleet): take the
                # general path, which reports the slot as infeasible
                return evaluate_schedule(instance, schedule, self.dispatcher, memoise=memoise)
            costs, load_rows = hit
            flat = int(np.ravel_multi_index(idx, grid.shape))
            operating[t] = float(costs.reshape(-1)[flat])
            loads[t] = load_rows[flat]
            if not np.isfinite(operating[t]):
                feasible = False
        return breakdown_from_parts(instance, schedule, operating, loads, feasible)


def run_online(
    instance: ProblemInstance,
    algorithm: OnlineAlgorithm,
    dispatcher: Optional[DispatchSolver] = None,
    slot_context: Optional[SlotContext] = None,
) -> OnlineRunResult:
    """Feed an instance slot-by-slot to an online algorithm and evaluate the result.

    The driver reveals each slot only when its configuration is requested; the
    algorithm therefore operates under the paper's online information model.
    The chosen configurations are validated against the per-slot fleet sizes;
    choosing more servers than exist raises immediately (this would mean the
    algorithm is not producing feasible schedules, cf. Lemmas 1 and 10).

    ``slot_context`` enables the shared-context path of the sweep engine: the
    run reuses the context's dispatch solver, prebuilt slots and memoised grid
    tensors, and the final schedule is evaluated by gathering from those
    tensors.  ``dispatch_stats`` always reports the *per-run delta* of the
    solver's work counters, so shared solvers do not leak one run's work into
    the next run's report.
    """
    if slot_context is not None:
        if slot_context.instance is not instance:
            raise ValueError("slot_context was built for a different instance")
        if dispatcher is not None and dispatcher is not slot_context.dispatcher:
            raise ValueError("give either a dispatcher or a slot_context, not both")
        dispatcher = slot_context.dispatcher
        context = slot_context.context
    else:
        dispatcher = dispatcher or DispatchSolver(instance)
        context = OnlineContext(
            server_types=instance.server_types,
            beta=instance.beta,
            zmax=instance.zmax,
            base_counts=instance.m,
        )
    stats_before = dispatcher.stats.snapshot()
    algorithm.start(context)

    T, d = instance.T, instance.d
    configs = np.zeros((T, d), dtype=int)
    for t in range(T):
        if slot_context is not None:
            slot = slot_context.slot(t)
        else:
            def evaluator(batch: np.ndarray, _t: int = t) -> np.ndarray:
                costs, _ = dispatcher.solve_grid(_t, batch)
                return costs

            slot = SlotInfo(
                t=t,
                demand=float(instance.demand[t]),
                cost_functions=instance.cost_row(t),
                counts=instance.counts_at(t),
                beta=instance.beta,
                zmax=instance.zmax,
                _evaluator=evaluator,
            )
        choice = np.asarray(algorithm.step(slot))
        if choice.shape != (d,):
            raise ValueError(
                f"{algorithm.name}: step() must return a configuration of shape ({d},), got {choice.shape}"
            )
        rounded = np.rint(choice).astype(int)
        if not np.allclose(choice, rounded, atol=1e-9):
            raise ValueError(f"{algorithm.name}: returned a non-integral configuration {choice}")
        if np.any(rounded < 0) or np.any(rounded > slot.counts):
            raise ValueError(
                f"{algorithm.name}: configuration {rounded} violates fleet limits {slot.counts} at slot {t}"
            )
        configs[t] = rounded
    algorithm.finish()

    schedule = Schedule(configs)
    if slot_context is not None:
        breakdown = slot_context.evaluate_schedule(schedule)
    else:
        breakdown = evaluate_schedule(instance, schedule, dispatcher)
    return OnlineRunResult(
        algorithm=algorithm.name,
        schedule=schedule,
        breakdown=breakdown,
        dispatch_stats=dispatcher.stats.delta_since(stats_before),
    )
