"""Prefix-optimum trackers: computing ``\\hat x^t_t`` online.

Algorithms A, B and C all follow the same power-up rule: after every slot they
make sure that, per server type, at least as many servers are active as in the
last slot of an *optimal schedule of the prefix instance* ``I_t``
(``x^A_{t,j} >= \\hat x^t_{t,j}``).  The pseudocode in the paper recomputes
``\\hat X^t`` from scratch with the offline algorithm of Section 4.1, which
costs ``O(t)`` DP layers per slot and ``O(T^2)`` overall.

Because power-down is free and every schedule ends in the empty configuration,
``OPT(I_t) = min_x V_t[x]`` where ``V_t`` is the forward DP tensor of
:mod:`repro.offline.dp` — and ``V_t`` can be *maintained incrementally*: one
separable min-plus transition plus one operating-cost accumulation per slot.
:class:`DPPrefixTracker` implements exactly that, so the online algorithms run
in the same asymptotic time as a single offline solve.  Ties among optimal last
configurations are broken deterministically (lexicographically smallest or
largest); the competitive analysis holds for any optimal schedule, so the
choice only matters for reproducibility.

:class:`FixedSequenceTracker` replays an explicitly given ``\\hat x`` series.
It exists so that the behaviour of Algorithms A and B can be verified against
the exact numbers printed in Figures 1 and 3 of the paper, independent of the
offline solver.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from ..offline.dp import _backtrack_windowed, backtrack_schedule
from ..offline.state_grid import StateGrid
from ..offline.transitions import make_transition_plan, startup_cost_tensor, transition
from .base import SlotInfo

__all__ = [
    "PrefixOptimumTracker",
    "DPPrefixTracker",
    "FixedSequenceTracker",
    "SharedValueStream",
    "SharedTrackerFactory",
    "argmin_config",
]


def argmin_config(
    value: np.ndarray,
    grid: StateGrid,
    tie_break: str,
    scratch: Optional[np.ndarray] = None,
) -> tuple:
    """Deterministic argmin configuration of a value tensor.

    ``tie_break`` picks the lexicographically smallest or largest optimal
    configuration.  The 'largest' path needs a reversed copy of the flattened
    tensor (argmin on a negatively-strided view is slow); the copy goes into
    ``scratch`` when its shape fits.  Returns ``(config, scratch)`` so callers
    can thread one buffer through repeated calls.
    """
    flat = value.reshape(-1)
    if tie_break == "smallest":
        idx = int(flat.argmin())
    else:
        # last occurrence of the minimum = lexicographically largest config
        if scratch is None or scratch.shape != flat.shape:
            scratch = np.empty_like(flat)
        np.copyto(scratch, flat[::-1])
        idx = flat.size - 1 - int(scratch.argmin())
    # grid.configs() row i corresponds to flat index i of the value tensor
    # (C order), so the config is a single row gather — no unravel needed.
    return grid.configs()[idx].copy(), scratch


class SharedValueStream:
    """Memoised prefix-DP value-tensor stream of one canonical slot sequence.

    The incremental DP behind :class:`DPPrefixTracker` depends only on the
    *observed slots*, never on the consuming algorithm's decisions — so when
    several algorithms sweep the same instance, their trackers all recompute
    the identical sequence of value tensors ``V_t``.  A shared stream computes
    each tensor once (on first traversal) and replays it to every later
    tracker; both tie-breaks read the same stream because tie-breaking only
    affects which argmin is reported, not the tensors.

    ``checkpoint_every`` switches the stream's history to the checkpointed
    ``O(sqrt(T) * |M|)`` representation of :func:`repro.offline.dp.solve_dp`:
    only every ``k``-th tensor (plus the frontier) is retained, and replayed
    steps rematerialise their checkpoint window by re-running the forward DP
    inside it — the tensors come out bit-identical because the recurrence is
    deterministic.  Each full replay (a later tracker, or the backward pass of
    the offline optimum) then costs at most one extra forward pass instead of
    ``O(T * |M|)`` resident history.

    The stream trusts its callers to feed the same slot sequence in order
    (``run_online`` over one :class:`~repro.online.base.SlotContext` guarantees
    this); a stream must not be shared between different instances or between
    differently-scaled slot sequences (e.g. Algorithm C's sub-slot stream).
    """

    def __init__(self, gamma: Optional[float] = None, checkpoint_every: Optional[int] = None):
        if gamma is not None and gamma <= 1.0:
            raise ValueError("gamma must be > 1 when given")
        if checkpoint_every is not None and int(checkpoint_every) < 1:
            raise ValueError("checkpoint_every must be a positive integer when given")
        self.gamma = gamma
        self.checkpoint_every = None if checkpoint_every is None else int(checkpoint_every)
        self._steps = 0
        self._grids: list = []
        self._values: list = []  # full history (checkpoint_every is None)
        self._slots: list = []  # SlotInfo refs for window rematerialisation
        self._checkpoints: dict = {}  # step -> tensor (checkpointed mode)
        self._last_value: Optional[np.ndarray] = None
        self._window: dict = {}  # last rematerialised window, step -> tensor
        self._grid_cache: dict = {}

    def __len__(self) -> int:
        return self._steps

    @property
    def grids(self) -> tuple:
        """Per-step grids computed so far."""
        return tuple(self._grids)

    @property
    def values(self) -> tuple:
        """Per-step (read-only) value tensors computed so far.

        ``values[t]`` equals the forward-DP tensor ``V_t`` of
        :func:`repro.offline.dp.solve_dp` on the same grids, which is what lets
        the sweep engine reuse the stream for the offline optimum and its
        backward pass.  Only available with the full history; a checkpointed
        stream exposes :meth:`value_at` and :meth:`backtrack` instead —
        materialising every tensor at once is exactly what it exists to avoid.
        """
        if self.checkpoint_every is not None:
            raise RuntimeError(
                "a checkpointed SharedValueStream keeps O(sqrt(T)) tensors; "
                "use value_at(step) / backtrack(beta) instead of .values"
            )
        return tuple(self._values)

    def value_at(self, step: int) -> np.ndarray:
        """The value tensor ``V_step``, rematerialising its window if needed."""
        if not 0 <= step < self._steps:
            raise IndexError(f"step {step} outside the computed range 0..{self._steps - 1}")
        if self.checkpoint_every is None:
            return self._values[step]
        if step == self._steps - 1:
            return self._last_value
        hit = self._checkpoints.get(step)
        if hit is None:
            hit = self._window.get(step)
        if hit is None:
            k = self.checkpoint_every
            self._rematerialise((step // k) * k)
            hit = self._window[step]
        return hit

    def at(self, step: int, slot: SlotInfo) -> tuple:
        """``(grid, value tensor)`` after observing ``slot`` as step ``step``.

        Previously-computed steps are replayed from the memo (or rematerialised
        from the nearest checkpoint); the next new step extends the stream.
        Requesting a step beyond the frontier means the caller skipped slots
        and is an error.
        """
        if step < self._steps:
            return self._grids[step], self.value_at(step)
        if step != self._steps:
            raise IndexError(
                f"stream is at step {self._steps} but step {step} was requested"
            )
        grid = self._build_grid(slot.counts)
        g_tensor = slot.grid_operating_cost(grid)
        if not np.any(np.isfinite(g_tensor)):
            raise ValueError(
                f"slot {slot.t}: no grid configuration can serve demand {slot.demand:g}"
            )
        if step == 0:
            arrival = startup_cost_tensor(grid.values, slot.beta)
        else:
            prev = self._values[step - 1] if self.checkpoint_every is None else self._last_value
            arrival = transition(prev, self._grids[step - 1].values, grid.values, slot.beta)
        value = np.add(arrival, g_tensor, out=arrival)
        value.setflags(write=False)
        self._grids.append(grid)
        if self.checkpoint_every is None:
            self._values.append(value)
        else:
            self._slots.append(slot)
            if step % self.checkpoint_every == 0:
                self._checkpoints[step] = value
            self._last_value = value
        self._steps += 1
        return grid, value

    def backtrack(self, beta: np.ndarray) -> np.ndarray:
        """Optimal configuration path over all observed steps (backward pass).

        Full-history streams hand their tensors straight to
        :func:`repro.offline.dp.backtrack_schedule`; checkpointed streams walk
        the same argmin chain window by window, rematerialising each window's
        tensors from its checkpoint — the sweep engine's offline-optimum path
        at ``O(sqrt(T) * |M|)`` memory.
        """
        beta = np.asarray(beta, dtype=float)
        if self.checkpoint_every is None:
            return backtrack_schedule(self._grids, self._values, beta)
        grids = tuple(self._grids)
        return _backtrack_windowed(
            grids,
            beta,
            self._steps,
            self.checkpoint_every,
            lambda c, e: self._rematerialise(c),
        )

    def _rematerialise(self, c: int) -> list:
        """Recompute (and cache) the tensors of the window starting at ``c``."""
        k = self.checkpoint_every
        e = min(c + k, self._steps) - 1
        value = self._checkpoints[c]
        window = {c: value}
        for t in range(c + 1, e + 1):
            grid = self._grids[t]
            slot = self._slots[t]
            g_tensor = slot.grid_operating_cost(grid)
            arrival = transition(value, self._grids[t - 1].values, grid.values, slot.beta)
            value = np.add(arrival, g_tensor, out=arrival)
            value.setflags(write=False)
            window[t] = value
        self._window = window
        return [window[t] for t in range(c, e + 1)]

    def _build_grid(self, counts: np.ndarray) -> StateGrid:
        key = tuple(int(c) for c in counts)
        grid = self._grid_cache.get(key)
        if grid is None:
            if self.gamma is None:
                grid = StateGrid.full(counts)
            else:
                grid = StateGrid.geometric(counts, self.gamma)
            self._grid_cache[key] = grid
        return grid


class SharedTrackerFactory:
    """Hands out trackers that share one memoised value stream per ``gamma``.

    One factory serves one instance sweep: Algorithms A and B, and both LCP
    tie-breaks, then maintain a *single* prefix-DP value stream between them
    instead of four independent ones.  (Algorithm C's inner tracker observes
    scaled sub-slots and must keep a private stream — give it a plain
    :class:`DPPrefixTracker`.)  ``checkpoint_every`` puts every stream the
    factory creates into the checkpointed ``O(sqrt(T))``-memory mode.
    """

    def __init__(self, checkpoint_every: Optional[int] = None):
        self.checkpoint_every = checkpoint_every
        self._streams: dict = {}

    def stream(self, gamma: Optional[float] = None) -> SharedValueStream:
        key = None if gamma is None else float(gamma)
        stream = self._streams.get(key)
        if stream is None:
            stream = SharedValueStream(gamma=gamma, checkpoint_every=self.checkpoint_every)
            self._streams[key] = stream
        return stream

    def tracker(self, gamma: Optional[float] = None, tie_break: str = "smallest") -> "DPPrefixTracker":
        return DPPrefixTracker(gamma=gamma, tie_break=tie_break, stream=self.stream(gamma))


class PrefixOptimumTracker(abc.ABC):
    """Produces the last configuration of an optimal prefix schedule, slot by slot."""

    def reset(self) -> None:
        """Forget all previously observed slots (called by the algorithms' ``start``)."""

    @abc.abstractmethod
    def observe(self, slot: SlotInfo) -> np.ndarray:
        """Consume the next slot and return ``\\hat x^t_t`` (integer array of length ``d``)."""

    def prefix_optimum_cost(self) -> float:
        """Cost ``C(\\hat X^t)`` of the optimal schedule for the observed prefix.

        Optional diagnostic; trackers that cannot provide it return ``nan``.
        """
        return float("nan")

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """JSON-safe snapshot of the tracker state (serve-layer checkpoints)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        if state:
            raise ValueError(
                f"{type(self).__name__} cannot restore checkpoint state {sorted(state)}"
            )


class DPPrefixTracker(PrefixOptimumTracker):
    """Incremental dynamic-programming tracker (exact or grid-reduced).

    Parameters
    ----------
    gamma:
        ``None`` for the exact prefix optimum (full grids, as in the paper's
        pseudocode).  A value ``> 1`` uses the reduced grids ``M^gamma`` of
        Section 4.2 instead — the resulting online algorithm then compares
        itself against a ``(2 gamma - 1)``-approximate prefix optimum, which
        degrades the competitive guarantee by the same factor but makes the
        per-slot work polynomial in ``log m_j`` (an engineering extension,
        see DESIGN.md).
    tie_break:
        ``"smallest"`` (default) or ``"largest"``: which optimal last
        configuration to report when several exist.  The LCP baseline uses one
        tracker of each kind to obtain its lower/upper bounds.
    stream:
        Optional :class:`SharedValueStream`.  When given, the tracker replays
        (and lazily extends) the shared memoised value stream instead of
        maintaining a private one — the cross-run tensor-reuse path of the
        sweep engine.  Use :class:`SharedTrackerFactory` to construct matching
        trackers.
    """

    def __init__(
        self,
        gamma: Optional[float] = None,
        tie_break: str = "smallest",
        stream: Optional[SharedValueStream] = None,
    ):
        if stream is not None:
            if gamma is None:
                gamma = stream.gamma
            elif stream.gamma is None or float(gamma) != float(stream.gamma):
                raise ValueError("gamma does not match the shared value stream")
        if gamma is not None and gamma <= 1.0:
            raise ValueError("gamma must be > 1 when given")
        if tie_break not in ("smallest", "largest"):
            raise ValueError("tie_break must be 'smallest' or 'largest'")
        self.gamma = gamma
        self.tie_break = tie_break
        self._stream = stream
        self._value: Optional[np.ndarray] = None
        self._grid: Optional[StateGrid] = None
        self._grid_counts: Optional[tuple] = None
        self._steps = 0
        self._scratch: Optional[np.ndarray] = None
        # counts -> StateGrid; grids do not depend on the observed demands, so
        # the cache survives reset() and is shared by consecutive runs.  The
        # cached grid also carries its configs() enumeration, so the per-slot
        # work reduces to one batched dispatch query plus one transition.
        self._grid_cache: dict = {}
        # Steady-state fast paths (all correctness-neutral memos; see observe):
        # the last counts *object* -> its grid, so repeat ticks skip the tuple
        # key build; ids of cost tensors already past the finiteness check
        # (value holds the tensor so the id cannot be recycled while mapped);
        # and a preplanned in-place transition for the unchanged-grid case.
        self._counts_obj: Optional[np.ndarray] = None
        self._counts_grid: Optional[StateGrid] = None
        self._counts_tuple: Optional[tuple] = None
        self._finite_seen: dict = {}
        self._plan = None
        self._plan_key: Optional[tuple] = None

    # -------------------------------------------------------------- interface
    def reset(self) -> None:
        self._value = None
        self._grid = None
        self._grid_counts = None
        self._steps = 0

    def observe(self, slot: SlotInfo) -> np.ndarray:
        if self._stream is not None:
            self._grid, self._value = self._stream.at(self._steps, slot)
            self._steps += 1
            return self._argmin_config()
        counts = slot.counts
        if counts is self._counts_obj:
            grid = self._counts_grid
        else:
            grid = self._build_grid(counts)
            self._counts_obj = counts
            self._counts_grid = grid
            self._counts_tuple = tuple(int(c) for c in counts)
        g_tensor = slot.grid_operating_cost(grid)
        # Memoised tensors (the serve cache and SlotContext both hand back one
        # shared read-only object per slot signature) only need the finiteness
        # scan once; fresh tensors always miss and are checked.
        if id(g_tensor) not in self._finite_seen:
            if not np.any(np.isfinite(g_tensor)):
                raise ValueError(
                    f"slot {slot.t}: no grid configuration can serve demand {slot.demand:g}"
                )
            if len(self._finite_seen) >= 512:
                self._finite_seen.clear()
            self._finite_seen[id(g_tensor)] = g_tensor
        if self._value is None:
            arrival = startup_cost_tensor(grid.values, slot.beta)
        else:
            arrival = None
            if self._grid is grid:
                arrival = self._planned_transition(grid, slot.beta)
            if arrival is None:
                arrival = transition(self._value, self._grid.values, grid.values, slot.beta)
        # arrival is freshly allocated each step (or a plan-owned buffer that
        # becomes this step's value) — accumulate in place
        self._value = np.add(arrival, g_tensor, out=arrival)
        self._grid = grid
        self._grid_counts = self._counts_tuple
        self._steps += 1
        return self._argmin_config()

    def _planned_transition(self, grid: StateGrid, beta: np.ndarray) -> Optional[np.ndarray]:
        """Apply the cached same-grid :class:`TransitionPlan`, or ``None``.

        The plan's preallocated kernels are bit-identical to
        :func:`~repro.offline.transitions.transition`; feeding the plan's own
        previous output back as input is explicitly supported (see the plan's
        aliasing contract), which is exactly the tracker's steady-state loop.
        Any mismatch — non-float64 value, unexpected shape, a grid whose relax
        steps cannot be planned — falls back to the generic path.
        """
        value = self._value
        if value.dtype != np.float64 or value.shape != grid.shape:
            return None
        key = (id(grid), beta.tobytes())
        if key != self._plan_key:
            self._plan_key = key
            self._plan = make_transition_plan(grid.values, grid.values, beta)
        if self._plan is None:
            return None
        return self._plan.apply(value)

    def prefix_optimum_cost(self) -> float:
        if self._value is None:
            return 0.0
        return float(np.min(self._value))

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """JSON-safe snapshot: step count, current value tensor and grid counts.

        Python floats are doubles, so finite values round-trip exactly and a
        restored tracker continues the incremental DP bit-identically; the
        ``+inf`` entries of infeasible configurations are encoded as ``None``
        to stay strictly JSON-compliant.  Trackers backed by a
        :class:`SharedValueStream` are sweep-engine internals and are
        deliberately not checkpointable — the serve layer gives every session
        a private tracker.
        """
        if self._stream is not None:
            raise RuntimeError(
                "a tracker backed by a SharedValueStream is not checkpointable; "
                "use a private DPPrefixTracker for serve sessions"
            )
        if self._value is None:
            value = None
        else:
            value = [
                None if np.isinf(v) else float(v) for v in self._value.reshape(-1)
            ]
        return {
            "steps": int(self._steps),
            "value": value,
            "counts": None if self._grid_counts is None else list(self._grid_counts),
        }

    def load_state_dict(self, state: dict) -> None:
        if self._stream is not None:
            raise RuntimeError("cannot restore state into a shared-stream tracker")
        self._steps = int(state["steps"])
        if state["value"] is None:
            self._value = None
            self._grid = None
            self._grid_counts = None
        else:
            counts = np.asarray(state["counts"], dtype=int)
            self._grid = self._build_grid(counts)
            self._grid_counts = tuple(int(c) for c in counts)
            flat = np.array(
                [np.inf if v is None else v for v in state["value"]], dtype=float
            )
            self._value = flat.reshape(self._grid.shape)

    # -------------------------------------------------------------- internals
    def _build_grid(self, counts: np.ndarray) -> StateGrid:
        key = tuple(int(c) for c in counts)
        grid = self._grid_cache.get(key)
        if grid is None:
            if self.gamma is None:
                grid = StateGrid.full(counts)
            else:
                grid = StateGrid.geometric(counts, self.gamma)
            self._grid_cache[key] = grid
        return grid

    def _argmin_config(self) -> np.ndarray:
        config, self._scratch = argmin_config(self._value, self._grid, self.tie_break, self._scratch)
        return config


class FixedSequenceTracker(PrefixOptimumTracker):
    """Replay an explicitly given sequence of ``\\hat x^t_t`` values.

    Primarily a test fixture: Figures 1 and 3 of the paper specify the
    ``\\hat x`` series directly (not the underlying workload), so the exact
    bookkeeping of Algorithms A and B can be validated against the figures by
    feeding the printed series through this tracker.
    """

    def __init__(self, sequence: Sequence[Sequence[int]]):
        arr = np.asarray(sequence, dtype=int)
        if arr.ndim == 1:
            arr = arr[:, None]
        if np.any(arr < 0):
            raise ValueError("reference sequence must be non-negative")
        self._sequence = arr
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def state_dict(self) -> dict:
        return {"cursor": int(self._cursor)}

    def load_state_dict(self, state: dict) -> None:
        self._cursor = int(state["cursor"])

    def observe(self, slot: SlotInfo) -> np.ndarray:
        if self._cursor >= len(self._sequence):
            raise IndexError("FixedSequenceTracker ran out of reference values")
        value = self._sequence[self._cursor]
        self._cursor += 1
        if len(value) != len(slot.counts):
            raise ValueError(
                f"reference value has {len(value)} types but the instance has {len(slot.counts)}"
            )
        return np.array(value, dtype=int)
