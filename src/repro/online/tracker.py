"""Prefix-optimum trackers: computing ``\\hat x^t_t`` online.

Algorithms A, B and C all follow the same power-up rule: after every slot they
make sure that, per server type, at least as many servers are active as in the
last slot of an *optimal schedule of the prefix instance* ``I_t``
(``x^A_{t,j} >= \\hat x^t_{t,j}``).  The pseudocode in the paper recomputes
``\\hat X^t`` from scratch with the offline algorithm of Section 4.1, which
costs ``O(t)`` DP layers per slot and ``O(T^2)`` overall.

Because power-down is free and every schedule ends in the empty configuration,
``OPT(I_t) = min_x V_t[x]`` where ``V_t`` is the forward DP tensor of
:mod:`repro.offline.dp` — and ``V_t`` can be *maintained incrementally*: one
separable min-plus transition plus one operating-cost accumulation per slot.
:class:`DPPrefixTracker` implements exactly that, so the online algorithms run
in the same asymptotic time as a single offline solve.  Ties among optimal last
configurations are broken deterministically (lexicographically smallest or
largest); the competitive analysis holds for any optimal schedule, so the
choice only matters for reproducibility.

:class:`FixedSequenceTracker` replays an explicitly given ``\\hat x`` series.
It exists so that the behaviour of Algorithms A and B can be verified against
the exact numbers printed in Figures 1 and 3 of the paper, independent of the
offline solver.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from ..offline.state_grid import StateGrid
from ..offline.transitions import startup_cost_tensor, transition
from .base import SlotInfo

__all__ = ["PrefixOptimumTracker", "DPPrefixTracker", "FixedSequenceTracker"]


class PrefixOptimumTracker(abc.ABC):
    """Produces the last configuration of an optimal prefix schedule, slot by slot."""

    def reset(self) -> None:
        """Forget all previously observed slots (called by the algorithms' ``start``)."""

    @abc.abstractmethod
    def observe(self, slot: SlotInfo) -> np.ndarray:
        """Consume the next slot and return ``\\hat x^t_t`` (integer array of length ``d``)."""

    def prefix_optimum_cost(self) -> float:
        """Cost ``C(\\hat X^t)`` of the optimal schedule for the observed prefix.

        Optional diagnostic; trackers that cannot provide it return ``nan``.
        """
        return float("nan")


class DPPrefixTracker(PrefixOptimumTracker):
    """Incremental dynamic-programming tracker (exact or grid-reduced).

    Parameters
    ----------
    gamma:
        ``None`` for the exact prefix optimum (full grids, as in the paper's
        pseudocode).  A value ``> 1`` uses the reduced grids ``M^gamma`` of
        Section 4.2 instead — the resulting online algorithm then compares
        itself against a ``(2 gamma - 1)``-approximate prefix optimum, which
        degrades the competitive guarantee by the same factor but makes the
        per-slot work polynomial in ``log m_j`` (an engineering extension,
        see DESIGN.md).
    tie_break:
        ``"smallest"`` (default) or ``"largest"``: which optimal last
        configuration to report when several exist.  The LCP baseline uses one
        tracker of each kind to obtain its lower/upper bounds.
    """

    def __init__(self, gamma: Optional[float] = None, tie_break: str = "smallest"):
        if gamma is not None and gamma <= 1.0:
            raise ValueError("gamma must be > 1 when given")
        if tie_break not in ("smallest", "largest"):
            raise ValueError("tie_break must be 'smallest' or 'largest'")
        self.gamma = gamma
        self.tie_break = tie_break
        self._value: Optional[np.ndarray] = None
        self._grid: Optional[StateGrid] = None
        self._steps = 0
        # counts -> StateGrid; grids do not depend on the observed demands, so
        # the cache survives reset() and is shared by consecutive runs.  The
        # cached grid also carries its configs() enumeration, so the per-slot
        # work reduces to one batched dispatch query plus one transition.
        self._grid_cache: dict = {}

    # -------------------------------------------------------------- interface
    def reset(self) -> None:
        self._value = None
        self._grid = None
        self._steps = 0

    def observe(self, slot: SlotInfo) -> np.ndarray:
        grid = self._build_grid(slot.counts)
        g_tensor = slot.operating_cost(grid.configs()).reshape(grid.shape)
        if not np.any(np.isfinite(g_tensor)):
            raise ValueError(
                f"slot {slot.t}: no grid configuration can serve demand {slot.demand:g}"
            )
        if self._value is None:
            arrival = startup_cost_tensor(grid.values, slot.beta)
        else:
            arrival = transition(self._value, self._grid.values, grid.values, slot.beta)
        # arrival is freshly allocated each step — accumulate in place
        self._value = np.add(arrival, g_tensor, out=arrival)
        self._grid = grid
        self._steps += 1
        return self._argmin_config()

    def prefix_optimum_cost(self) -> float:
        if self._value is None:
            return 0.0
        return float(np.min(self._value))

    # -------------------------------------------------------------- internals
    def _build_grid(self, counts: np.ndarray) -> StateGrid:
        key = tuple(int(c) for c in counts)
        grid = self._grid_cache.get(key)
        if grid is None:
            if self.gamma is None:
                grid = StateGrid.full(counts)
            else:
                grid = StateGrid.geometric(counts, self.gamma)
            self._grid_cache[key] = grid
        return grid

    def _argmin_config(self) -> np.ndarray:
        flat = self._value.reshape(-1)
        if self.tie_break == "smallest":
            idx = int(np.argmin(flat))
        else:
            # last occurrence of the minimum = lexicographically largest config
            reversed_idx = int(np.argmin(flat[::-1]))
            idx = flat.size - 1 - reversed_idx
        multi = np.unravel_index(idx, self._grid.shape)
        return self._grid.config_at(multi)


class FixedSequenceTracker(PrefixOptimumTracker):
    """Replay an explicitly given sequence of ``\\hat x^t_t`` values.

    Primarily a test fixture: Figures 1 and 3 of the paper specify the
    ``\\hat x`` series directly (not the underlying workload), so the exact
    bookkeeping of Algorithms A and B can be validated against the figures by
    feeding the printed series through this tracker.
    """

    def __init__(self, sequence: Sequence[Sequence[int]]):
        arr = np.asarray(sequence, dtype=int)
        if arr.ndim == 1:
            arr = arr[:, None]
        if np.any(arr < 0):
            raise ValueError("reference sequence must be non-negative")
        self._sequence = arr
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def observe(self, slot: SlotInfo) -> np.ndarray:
        if self._cursor >= len(self._sequence):
            raise IndexError("FixedSequenceTracker ran out of reference values")
        value = self._sequence[self._cursor]
        self._cursor += 1
        if len(value) != len(slot.counts):
            raise ValueError(
                f"reference value has {len(value)} types but the instance has {len(slot.counts)}"
            )
        return np.array(value, dtype=int)
