"""Simple baselines for the comparison benchmarks.

None of these carry interesting worst-case guarantees; they bracket the
behaviour of the paper's algorithms in the experiment harness:

* :class:`AllOn` — keep the whole fleet active (the "no right-sizing" status
  quo the paper's introduction argues against: idle servers still burn roughly
  half their peak power).
* :class:`FollowDemand` — per slot, use the cheapest configuration for that
  slot and ignore switching costs entirely (the other extreme; thrashes when
  the demand fluctuates).
* :class:`Reactive` — myopic: per slot, minimise ``g_t(x) + switching cost
  from the previous configuration``; a natural greedy that still has no
  look-back structure.
* :func:`optimal_static_schedule` — the best *single* configuration held for
  the whole horizon (an offline quantity; useful as a "capacity planning
  without elasticity" reference).
* :func:`receding_horizon_schedule` — semi-online with a lookahead window
  (offline information within the window); quantifies the value of knowing
  the near future.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.costs import evaluate_schedule
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..dispatch.allocation import DispatchSolver
from ..offline.dp import solve_dp
from ..offline.state_grid import StateGrid, grid_for_slot
from ..offline.transitions import switching_cost_tensor
from .base import OnlineAlgorithm, OnlineContext, SlotInfo

__all__ = [
    "AllOn",
    "FollowDemand",
    "Reactive",
    "optimal_static_schedule",
    "receding_horizon_schedule",
]


class AllOn(OnlineAlgorithm):
    """Keep every available server powered up in every slot."""

    name = "all-on"

    def step(self, slot: SlotInfo) -> np.ndarray:
        return np.asarray(slot.counts, dtype=int)


class FollowDemand(OnlineAlgorithm):
    """Per slot, pick the configuration minimising ``g_t`` alone (ignoring switching).

    Ties are broken towards fewer servers (lexicographically smallest argmin).
    A ``gamma`` parameter restricts the search to the reduced grid ``M^gamma``
    for large fleets.
    """

    name = "follow-demand"

    def __init__(self, gamma: Optional[float] = None):
        self.gamma = gamma

    def step(self, slot: SlotInfo) -> np.ndarray:
        grid = StateGrid.full(slot.counts) if self.gamma is None else StateGrid.geometric(slot.counts, self.gamma)
        configs = grid.configs()
        costs = slot.operating_cost(configs)
        best = int(np.argmin(costs))
        return configs[best].astype(int)


class Reactive(OnlineAlgorithm):
    """Myopic greedy: minimise ``g_t(x) + sum_j beta_j (x_j - x^{prev}_j)^+`` per slot."""

    name = "reactive"

    def __init__(self, gamma: Optional[float] = None):
        self.gamma = gamma
        self._current: Optional[np.ndarray] = None

    def start(self, context: OnlineContext) -> None:
        self._current = np.zeros(context.d, dtype=int)

    def step(self, slot: SlotInfo) -> np.ndarray:
        grid = StateGrid.full(slot.counts) if self.gamma is None else StateGrid.geometric(slot.counts, self.gamma)
        configs = grid.configs()
        costs = slot.operating_cost(configs)
        switch = np.sum(
            np.maximum(configs - self._current[None, :], 0) * slot.beta[None, :], axis=1
        )
        best = int(np.argmin(costs + switch))
        self._current = configs[best].astype(int)
        return self._current.copy()

    def state_dict(self) -> dict:
        return {
            "current": None if self._current is None else [int(v) for v in self._current],
        }

    def load_state_dict(self, state: dict) -> None:
        current = state["current"]
        self._current = None if current is None else np.asarray(current, dtype=int)


def optimal_static_schedule(
    instance: ProblemInstance,
    dispatcher: Optional[DispatchSolver] = None,
) -> Schedule:
    """The cheapest schedule that never changes its configuration.

    All servers are powered up once at the beginning; the configuration must be
    feasible for every slot.  Requires constant fleet sizes (with time-varying
    counts a static configuration may not exist).
    """
    dispatcher = dispatcher or DispatchSolver(instance)
    grid = StateGrid.full(instance.m)
    configs = grid.configs()
    totals = np.zeros(len(configs))
    for t in range(instance.T):
        costs, _ = dispatcher.solve_grid(t, configs)
        totals += costs
    totals += configs @ instance.beta
    best = int(np.argmin(totals))
    if not np.isfinite(totals[best]):
        raise ValueError("no single configuration is feasible for every slot")
    return Schedule.constant(instance.T, configs[best])


def receding_horizon_schedule(
    instance: ProblemInstance,
    lookahead: int,
    dispatcher: Optional[DispatchSolver] = None,
) -> Schedule:
    """Receding-horizon control with a fixed lookahead window.

    At every slot the controller knows the next ``lookahead`` slots, solves
    that window optimally (conditioned on its current configuration), commits
    the first decision and moves on.  ``lookahead = 0`` degenerates to the
    myopic :class:`Reactive` baseline; ``lookahead >= T`` recovers the offline
    optimum.  This quantifies how much of the online penalty stems from not
    knowing the near future (a question the related work on "online convex
    optimisation using predictions" studies).
    """
    if lookahead < 0:
        raise ValueError("lookahead must be non-negative")
    dispatcher = dispatcher or DispatchSolver(instance)
    T, d = instance.T, instance.d
    beta = instance.beta
    xs = np.zeros((T, d), dtype=int)
    current = np.zeros(d, dtype=int)

    for t in range(T):
        end = min(T, t + lookahead + 1)
        window = range(t, end)
        # forward DP over the window, seeded with the switching cost from `current`
        value = None
        prev_grid = None
        first_tables = []
        grids = []
        for u in window:
            grid = grid_for_slot(instance, u)
            configs = grid.configs()
            costs, _ = dispatcher.solve_grid(u, configs)
            g_tensor = costs.reshape(grid.shape)
            if value is None:
                # switching cost from `current` to every configuration of the grid
                arrival = np.zeros(grid.shape)
                for j in range(d):
                    vals = np.asarray(grid.values[j], dtype=float)
                    per_dim = beta[j] * np.maximum(vals - current[j], 0.0)
                    shape = [1] * d
                    shape[j] = len(vals)
                    arrival = arrival + per_dim.reshape(shape)
            else:
                from ..offline.transitions import transition

                arrival = transition(value, prev_grid.values, grid.values, beta)
            value = arrival + g_tensor
            prev_grid = grid
            grids.append(grid)
            first_tables.append(value)
        # choose the window-optimal end state, then backtrack to the first slot
        flat = int(np.argmin(value))
        idx = np.unravel_index(flat, grids[-1].shape)
        chosen = grids[-1].config_at(idx)
        for u_index in range(len(grids) - 1, 0, -1):
            prev_value = first_tables[u_index - 1]
            switch = switching_cost_tensor(grids[u_index - 1].values, chosen, beta)
            flat = int(np.argmin(prev_value + switch))
            idx = np.unravel_index(flat, grids[u_index - 1].shape)
            chosen = grids[u_index - 1].config_at(idx)
        xs[t] = chosen
        current = chosen
    return Schedule(xs)
