"""Online Algorithm A for time-independent operating costs (Section 2).

Algorithm A is ``(2d + 1)``-competitive (Theorem 8) and ``2d``-competitive for
load-independent operating costs (Corollary 9), which matches the lower bound
of ``2d`` known from the companion paper.

The algorithm maintains two invariants:

1. **Power-up rule** — after every slot, per server type at least as many
   servers are active as in the last slot of an optimal schedule of the prefix
   instance ``I_t``: ``x^A_{t,j} >= \\hat x^t_{t,j}``.
2. **Ski-rental power-down rule** — a server powered up at slot ``s`` stays
   active for exactly ``\\bar t_j = ceil(beta_j / f_j(0))`` slots (including
   ``s``) and is then shut down regardless of whether it was used; at that
   point its accumulated idle cost equals its power-up cost, exactly like the
   break-even point of the classical ski-rental problem.

The implementation separates the *tracker* (which produces ``\\hat x^t_t``,
see :mod:`repro.online.tracker`) from the power-up/-down bookkeeping, so the
bookkeeping can be tested against the exact series shown in Figure 1.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from .base import OnlineAlgorithm, OnlineContext, SlotInfo
from .blocks import Block, blocks_from_power_ups
from .tracker import DPPrefixTracker, PrefixOptimumTracker

__all__ = ["AlgorithmA"]


class AlgorithmA(OnlineAlgorithm):
    """The deterministic ``(2d+1)``-competitive online algorithm of Section 2.

    Parameters
    ----------
    tracker:
        Source of the prefix optima ``\\hat x^t_t``.  Defaults to the exact
        incremental DP tracker; a :class:`~repro.online.tracker.FixedSequenceTracker`
        can be supplied for unit tests, and a grid-reduced tracker
        (``DPPrefixTracker(gamma=...)``) for large fleets.
    gamma:
        Convenience shortcut for ``DPPrefixTracker(gamma=gamma)``.

    Notes
    -----
    Algorithm A assumes *time-independent* operating-cost functions: the
    server runtime ``\\bar t_j`` is computed from the cost functions of the
    first slot.  For time-dependent costs use
    :class:`~repro.online.algorithm_b.AlgorithmB` /
    :class:`~repro.online.algorithm_c.AlgorithmC` instead (the driver does not
    enforce this — running A on a time-dependent instance simply voids the
    theoretical guarantee).
    """

    name = "algorithm-A"

    def __init__(self, tracker: Optional[PrefixOptimumTracker] = None, gamma: Optional[float] = None):
        if tracker is not None and gamma is not None:
            raise ValueError("give either an explicit tracker or gamma, not both")
        self._tracker = tracker if tracker is not None else DPPrefixTracker(gamma=gamma)
        self._runtimes: Optional[np.ndarray] = None
        self._runtime_ticks: Optional[List[int]] = None
        self._current: Optional[np.ndarray] = None
        self._power_ups: List[np.ndarray] = []
        self._xhat_history: List[np.ndarray] = []
        self._expiry: Dict[int, np.ndarray] = {}
        self._d = 0

    # ---------------------------------------------------------------- life-cycle
    def start(self, context: OnlineContext) -> None:
        self._d = context.d
        self._tracker.reset()
        self._runtimes = None
        self._runtime_ticks = None
        self._current = np.zeros(self._d, dtype=int)
        self._power_ups = []
        self._xhat_history = []
        self._expiry = {}

    def step(self, slot: SlotInfo) -> np.ndarray:
        if self._current is None:
            raise RuntimeError("start() must be called before step()")
        t = slot.t
        if self._runtimes is None:
            self._runtimes = self._compute_runtimes(slot)
        if self._runtime_ticks is None:
            # integer ski-rental runtimes as plain ints (-1 = infinite): the
            # per-type expiry bookkeeping below stays off numpy scalars
            self._runtime_ticks = [
                int(r) if math.isfinite(r) else -1 for r in self._runtimes
            ]

        xhat = np.asarray(self._tracker.observe(slot), dtype=int)
        self._xhat_history.append(xhat.copy())

        # Power-down rule: servers powered up exactly \bar t_j slots ago expire
        # now.  Expirations are scheduled at power-up time, so each step pops a
        # single pre-aggregated vector instead of scanning the power-up log.
        expired = self._expiry.pop(t, None)
        if expired is not None:
            self._current -= expired

        # Power-up rule: match the prefix optimum.
        w_t = xhat - self._current
        np.maximum(w_t, 0, out=w_t)
        self._current = np.maximum(self._current, xhat)
        self._power_ups.append(w_t)
        for j, w in enumerate(w_t.tolist()):
            if w > 0:
                runtime = self._runtime_ticks[j]
                if runtime >= 0:
                    due = t + runtime
                    bucket = self._expiry.get(due)
                    if bucket is None:
                        bucket = np.zeros(self._d, dtype=int)
                        self._expiry[due] = bucket
                    bucket[j] += w
        return self._current.copy()

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Decision-relevant state: tracker, runtimes, fleet, pending expiries.

        The analysis logs (power-up history, prefix optima) restart empty
        after a restore; they do not influence future ``step`` decisions.
        ``inf`` runtimes (zero idle cost) are encoded as ``None`` to stay
        strictly JSON-safe.
        """
        return {
            "tracker": self._tracker.state_dict(),
            "runtimes": None if self._runtimes is None else [
                None if math.isinf(r) else float(r) for r in self._runtimes
            ],
            "current": None if self._current is None else [int(v) for v in self._current],
            "expiry": {str(t): [int(v) for v in vec] for t, vec in self._expiry.items()},
            "d": int(self._d),
        }

    def load_state_dict(self, state: dict) -> None:
        self._d = int(state["d"])
        self._tracker.load_state_dict(state["tracker"])
        runtimes = state["runtimes"]
        self._runtimes = None if runtimes is None else np.array(
            [math.inf if r is None else float(r) for r in runtimes]
        )
        self._runtime_ticks = None
        current = state["current"]
        self._current = None if current is None else np.asarray(current, dtype=int)
        self._expiry = {
            int(t): np.asarray(vec, dtype=int) for t, vec in state["expiry"].items()
        }
        self._power_ups = []
        self._xhat_history = []

    # ------------------------------------------------------------------ analysis
    @property
    def runtimes(self) -> Optional[np.ndarray]:
        """The per-type runtimes ``\\bar t_j`` (``inf`` when the idle cost is zero)."""
        return None if self._runtimes is None else self._runtimes.copy()

    @property
    def power_up_log(self) -> np.ndarray:
        """``(T, d)`` array ``w_{t,j}`` of servers powered up in every slot."""
        if not self._power_ups:
            return np.zeros((0, self._d), dtype=int)
        return np.stack(self._power_ups)

    @property
    def prefix_optima(self) -> np.ndarray:
        """``(T, d)`` array of the observed prefix optima ``\\hat x^t_t``."""
        if not self._xhat_history:
            return np.zeros((0, self._d), dtype=int)
        return np.stack(self._xhat_history)

    def blocks(self, j: int, horizon: Optional[int] = None) -> List[Block]:
        """The blocks ``A_{j,i}`` (activity intervals) of server type ``j``.

        One block per powered-up server, of length exactly ``\\bar t_j``
        (clipped to the horizon).  Used to reproduce Figures 1 and 2 and by the
        tests of Lemma 6/7's premises.
        """
        log = self.power_up_log
        if self._runtimes is None:
            return []
        runtime = self._runtimes[j]
        if not math.isfinite(runtime):
            runtime = len(log) if horizon is None else horizon
        slots = []
        for t in range(len(log)):
            slots.extend([t] * int(log[t, j]))
        return blocks_from_power_ups(slots, [int(runtime)] * len(slots), horizon=horizon)

    # ------------------------------------------------------------------ internals
    def _compute_runtimes(self, slot: SlotInfo) -> np.ndarray:
        """``\\bar t_j = ceil(beta_j / f_j(0))`` (``inf`` for zero idle cost)."""
        runtimes = np.zeros(self._d)
        idle = slot.idle_costs()
        for j in range(self._d):
            if idle[j] <= 0.0:
                runtimes[j] = math.inf
            else:
                runtimes[j] = math.ceil(slot.beta[j] / idle[j])
                runtimes[j] = max(runtimes[j], 1.0)
        return runtimes
