"""Online Algorithm B for time-dependent operating costs (Section 3.1).

Algorithm B generalises Algorithm A to operating-cost functions ``f_{t,j}``
that change over time (e.g. variable electricity prices).  The power-up rule
is unchanged — always keep at least as many servers active as the last slot of
an optimal prefix schedule — but the power-down rule becomes adaptive: a server
powered up at slot ``s`` stays active until the *accumulated idle operating
cost since its power-up* first exceeds its switching cost, i.e. it runs for

``\\bar t_{s,j} = max{ \\bar t : sum_{u=s+1}^{s+\\bar t} l_{u,j} <= beta_j }``

further slots (``l_{t,j} = f_{t,j}(0)``).  Crucially this rule is *online*: the
runtime is unknown at power-up time, but whether the server must be shut down
*now* only depends on idle costs that have already been revealed.

Theorem 13 shows Algorithm B is ``(2d + 1 + c(I))``-competitive with
``c(I) = sum_j max_t l_{t,j} / beta_j``; Algorithm C (Section 3.2) shrinks the
additive constant to any ``eps > 0`` by sub-slot refinement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .base import OnlineAlgorithm, OnlineContext, SlotInfo
from .blocks import Block
from .tracker import DPPrefixTracker, PrefixOptimumTracker

__all__ = ["AlgorithmB", "compute_runtimes", "compute_retirement_sets"]


@dataclass
class _PowerUpRecord:
    """Bookkeeping for the servers of one type powered up at one slot."""

    slot: int
    count: int
    accumulated_idle: float = 0.0


class AlgorithmB(OnlineAlgorithm):
    """The ``(2d + 1 + c(I))``-competitive online algorithm of Section 3.1."""

    name = "algorithm-B"

    def __init__(self, tracker: Optional[PrefixOptimumTracker] = None, gamma: Optional[float] = None):
        if tracker is not None and gamma is not None:
            raise ValueError("give either an explicit tracker or gamma, not both")
        self._tracker = tracker if tracker is not None else DPPrefixTracker(gamma=gamma)
        self._d = 0
        self._steps = 0
        self._current: Optional[np.ndarray] = None
        self._records: List[List[_PowerUpRecord]] = []
        self._power_ups: List[np.ndarray] = []
        self._xhat_history: List[np.ndarray] = []
        self._retired: List[List[Block]] = []
        self._retirement_log: List[dict] = []

    # ---------------------------------------------------------------- life-cycle
    def start(self, context: OnlineContext) -> None:
        self._d = context.d
        self._steps = 0
        self._tracker.reset()
        self._current = np.zeros(self._d, dtype=int)
        self._records = [[] for _ in range(self._d)]
        self._power_ups = []
        self._xhat_history = []
        self._retired = [[] for _ in range(self._d)]
        self._retirement_log = []

    def step(self, slot: SlotInfo) -> np.ndarray:
        if self._current is None:
            raise RuntimeError("start() must be called before step()")
        t = slot.t
        idle = slot.idle_costs()

        xhat = np.asarray(self._tracker.observe(slot), dtype=int)
        self._xhat_history.append(xhat.copy())

        # Power-down rule: retire the servers whose accumulated idle cost since
        # power-up would exceed beta_j if they also stayed active during slot t.
        retired_now = {j: [] for j in range(self._d)}
        for j in range(self._d):
            # a zero idle cost can never push the accumulated idle over beta_j
            # (records only survive while accumulated <= beta_j), so the scan
            # of the power-up records is skipped entirely
            if idle[j] == 0.0 and self._records[j]:
                continue
            surviving = []
            for record in self._records[j]:
                if record.accumulated_idle + idle[j] > slot.beta[j] + 1e-12:
                    self._current[j] -= record.count
                    self._retired[j].append(Block(start=record.slot, end=t - 1))
                    retired_now[j].append(record.slot)
                else:
                    record.accumulated_idle += idle[j]
                    surviving.append(record)
            self._records[j] = surviving
        self._retirement_log.append(retired_now)

        # Power-up rule: match the prefix optimum.
        w_t = np.maximum(xhat - self._current, 0)
        for j in range(self._d):
            if w_t[j] > 0:
                self._records[j].append(_PowerUpRecord(slot=t, count=int(w_t[j])))
        self._current = np.maximum(self._current, xhat)
        self._power_ups.append(w_t.astype(int))
        self._steps += 1
        return self._current.copy()

    def finish(self) -> None:
        # close the blocks of servers that are still running at the end of the
        # horizon (the step counter, not the analysis log — the log restarts
        # empty after a checkpoint restore while records keep absolute slots)
        horizon = self._steps
        for j in range(self._d):
            for record in self._records[j]:
                self._retired[j].append(Block(start=record.slot, end=horizon - 1))
            self._records[j] = []

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Decision-relevant state: tracker, fleet and open power-up records.

        The retired-block and power-up logs are analysis-only and restart
        empty after a restore.
        """
        return {
            "tracker": self._tracker.state_dict(),
            "current": None if self._current is None else [int(v) for v in self._current],
            "records": [
                [
                    {"slot": int(r.slot), "count": int(r.count), "idle": float(r.accumulated_idle)}
                    for r in records
                ]
                for records in self._records
            ],
            "d": int(self._d),
            "steps": int(self._steps),
        }

    def load_state_dict(self, state: dict) -> None:
        self._d = int(state["d"])
        self._steps = int(state["steps"])
        self._tracker.load_state_dict(state["tracker"])
        current = state["current"]
        self._current = None if current is None else np.asarray(current, dtype=int)
        self._records = [
            [
                _PowerUpRecord(slot=int(r["slot"]), count=int(r["count"]),
                               accumulated_idle=float(r["idle"]))
                for r in records
            ]
            for records in state["records"]
        ]
        self._power_ups = []
        self._xhat_history = []
        self._retired = [[] for _ in range(self._d)]
        self._retirement_log = []

    # ------------------------------------------------------------------ analysis
    @property
    def power_up_log(self) -> np.ndarray:
        """``(T, d)`` array ``w_{t,j}`` of servers powered up in every slot."""
        if not self._power_ups:
            return np.zeros((0, self._d), dtype=int)
        return np.stack(self._power_ups)

    @property
    def prefix_optima(self) -> np.ndarray:
        """``(T, d)`` array of the observed prefix optima ``\\hat x^t_t``."""
        if not self._xhat_history:
            return np.zeros((0, self._d), dtype=int)
        return np.stack(self._xhat_history)

    @property
    def retirement_log(self) -> List[dict]:
        """Per-slot mapping ``j -> [power-up slots retired at this slot]``.

        This reproduces the sets ``W_t`` of the paper's pseudocode (Figure 3):
        ``W_t`` contains the power-up slots whose servers are shut down when
        slot ``t`` is processed.
        """
        return list(self._retirement_log)

    def blocks(self, j: int) -> List[Block]:
        """The blocks ``A_{j,i}`` (activity intervals) of server type ``j``.

        One block per power-up event (events that power up ``k`` servers at
        once yield a single record covering all ``k`` — they share the same
        interval).  Call after the run finished.
        """
        return sorted(self._retired[j], key=lambda b: (b.start, b.end))


# --------------------------------------------------------------------------- #
# Stand-alone helpers mirroring the paper's definitions (used in tests/benches)
# --------------------------------------------------------------------------- #


def compute_runtimes(idle_costs: np.ndarray, beta: float) -> np.ndarray:
    """The runtimes ``\\bar t_{t,j}`` of the paper for a single server type.

    ``idle_costs[t]`` is ``l_{t,j}`` for ``t = 0..T-1`` (0-based slots).  The
    returned array contains, for every slot ``t``, the largest ``\\bar t`` such
    that ``sum_{u=t+1}^{t+\\bar t} l_u <= beta`` — i.e. how many *further* slots
    a server powered up at ``t`` stays active.  Values whose defining sum would
    need idle costs beyond the horizon are still reported (they are simply
    capped by the horizon), matching the "not known yet" entries of Figure 3.
    """
    idle_costs = np.asarray(idle_costs, dtype=float)
    T = len(idle_costs)
    runtimes = np.zeros(T, dtype=int)
    for t in range(T):
        total = 0.0
        steps = 0
        for u in range(t + 1, T):
            total += idle_costs[u]
            if total > beta + 1e-12:
                break
            steps += 1
        runtimes[t] = steps
    return runtimes


def compute_retirement_sets(idle_costs: np.ndarray, beta: float) -> List[List[int]]:
    """The sets ``W_t`` of Algorithm B's pseudocode for a single server type.

    ``W_t`` contains every power-up slot ``u < t`` with
    ``sum_{v=u+1}^{t-1} l_v <= beta < sum_{v=u+1}^{t} l_v`` — the servers
    powered up at ``u`` are shut down when slot ``t`` is processed.  Returned
    as a list indexed by ``t`` (0-based); the paper's Figure 3 lists these sets
    with 1-based indices.
    """
    idle_costs = np.asarray(idle_costs, dtype=float)
    T = len(idle_costs)
    sets: List[List[int]] = [[] for _ in range(T)]
    for u in range(T):
        total = 0.0
        for t in range(u + 1, T):
            total += idle_costs[t]
            if total > beta + 1e-12:
                sets[t].append(u)
                break
    return sets
