"""Adversarial constructions and lower-bound experiments.

Three constructions from the paper's discussion are reproduced:

1. **Convex-function-chasing lower bound** (Section 1, "Related work"): for
   *general* convex functions in the discrete setting no online algorithm can
   be better than ``Omega(2^d / d)``-competitive.  The adversary works on the
   hypercube ``{0,1}^d`` with unit switching costs and, at every step, makes
   the cost of the online algorithm's current position infinite while all
   other positions are free.  After ``2^d - 1`` steps the offline adversary
   can sit on a never-penalised position for a total cost of at most ``d``.
   :func:`convex_chasing_game` simulates this game against a pluggable online
   strategy and computes the offline optimum exactly.  This motivates why the
   paper restricts attention to operating costs of the load-dispatch form (1).

2. **Ski-rental adversarial traces** (:func:`ski_rental_trace`): the classical
   worst case for any break-even rule — demand bursts separated by idle gaps
   just shy of the break-even horizon ``\\bar t_j`` force an algorithm that
   keeps servers around to waste idle energy, and an algorithm that shuts them
   down to pay the switching cost again.  These traces empirically push
   Algorithm A towards its competitive ratio (the formal ``2d`` lower bound of
   the companion paper [5] uses a more intricate interleaving across types,
   which is not described in this paper; the trace generator is the spiritual
   equivalent, see DESIGN.md).

3. **Rounding pathology** (:func:`rounding_pathology`): a fractional schedule
   oscillating between ``1`` and ``1 + delta`` whose ceiling has switching cost
   proportional to ``T`` — the example the paper uses to argue that fractional
   algorithms cannot simply be rounded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.instance import ProblemInstance
from ..core.server import ServerType

__all__ = [
    "AdaptiveAdversaryResult",
    "ChasingGameResult",
    "adaptive_adversary",
    "convex_chasing_game",
    "greedy_cube_strategy",
    "interleaved_ski_rental_instance",
    "ski_rental_trace",
    "ski_rental_instance",
    "rounding_pathology",
]


# --------------------------------------------------------------------------- #
# 1. Convex-function-chasing lower bound on the hypercube
# --------------------------------------------------------------------------- #


@dataclass(frozen=True, eq=False)
class ChasingGameResult:
    """Outcome of the hypercube chasing game."""

    d: int
    online_positions: np.ndarray
    online_cost: float
    offline_cost: float
    penalised_positions: np.ndarray

    @property
    def ratio(self) -> float:
        return self.online_cost / self.offline_cost if self.offline_cost > 0 else float("inf")


def greedy_cube_strategy(current: Tuple[int, ...], forbidden: Tuple[int, ...]) -> Tuple[int, ...]:
    """Default online strategy: flip the lowest coordinate that escapes the penalty.

    Any strategy must leave the penalised position; this one prefers powering a
    single server up or down, mimicking what a reasonable online algorithm
    would do without knowledge of the adversary.
    """
    d = len(current)
    # try power-downs first (free), then power-ups
    for j in range(d):
        if current[j] == 1:
            candidate = tuple(0 if k == j else v for k, v in enumerate(current))
            if candidate != forbidden:
                return candidate
    for j in range(d):
        if current[j] == 0:
            candidate = tuple(1 if k == j else v for k, v in enumerate(current))
            if candidate != forbidden:
                return candidate
    raise RuntimeError("no escape move exists (d must be >= 1)")


def convex_chasing_game(
    d: int,
    steps: Optional[int] = None,
    strategy: Callable[[Tuple[int, ...], Tuple[int, ...]], Tuple[int, ...]] = greedy_cube_strategy,
) -> ChasingGameResult:
    """Play the lower-bound game of Section 1 on the hypercube ``{0,1}^d``.

    Every server type has ``m_j = 1`` and ``beta_j = 1``.  At each step the
    adversary penalises (makes infinitely expensive) the online algorithm's
    current position; the online algorithm must move.  After
    ``steps = 2^d - 1`` rounds the offline player can choose a position that
    was never penalised and pay at most ``d`` in switching cost, so the ratio
    grows like ``2^d / d``.

    The offline optimum is computed exactly by dynamic programming over the
    ``2^d`` positions (operating cost 0 away from the penalised position,
    infinite on it, one-sided unit switching costs).
    """
    if d < 1:
        raise ValueError("d must be at least 1")
    if steps is None:
        steps = 2**d - 1
    positions = [tuple(0 for _ in range(d))]
    online_cost = 0.0
    penalised: List[Tuple[int, ...]] = []

    current = positions[0]
    for _ in range(steps):
        forbidden = current
        penalised.append(forbidden)
        nxt = strategy(current, forbidden)
        if nxt == forbidden:
            raise ValueError("online strategy failed to leave the penalised position")
        online_cost += sum(max(b - a, 0) for a, b in zip(current, nxt))
        current = nxt
        positions.append(current)

    # exact offline optimum by DP over the hypercube
    cube = list(itertools.product((0, 1), repeat=d))
    index = {pos: i for i, pos in enumerate(cube)}
    n = len(cube)
    switch = np.zeros((n, n))
    for a in cube:
        for b in cube:
            switch[index[a], index[b]] = sum(max(bb - aa, 0) for aa, bb in zip(a, b))
    INF = float("inf")
    value = np.full(n, INF)
    start = index[tuple(0 for _ in range(d))]
    for i, pos in enumerate(cube):
        value[i] = switch[start, i] + (INF if pos == penalised[0] else 0.0)
    for forbidden in penalised[1:]:
        new_value = np.full(n, INF)
        for i, pos in enumerate(cube):
            if pos == forbidden:
                continue
            new_value[i] = float(np.min(value + switch[:, i]))
        value = new_value
    offline_cost = float(np.min(value))

    return ChasingGameResult(
        d=d,
        online_positions=np.array(positions, dtype=int),
        online_cost=float(online_cost),
        offline_cost=offline_cost,
        penalised_positions=np.array(penalised, dtype=int),
    )


# --------------------------------------------------------------------------- #
# 2. Ski-rental adversarial traces
# --------------------------------------------------------------------------- #


def ski_rental_trace(
    break_even_slots: int,
    n_cycles: int,
    burst_height: float = 1.0,
    gap_factor: float = 1.0,
) -> np.ndarray:
    """A bursty demand trace tuned to a break-even horizon.

    Each cycle is one slot of demand ``burst_height`` followed by
    ``round(gap_factor * break_even_slots)`` idle slots.  With
    ``gap_factor ~ 1`` the gap matches the ski-rental horizon
    ``\\bar t_j = ceil(beta_j / f_j(0))``: whatever an online algorithm does
    (keep the server warm through the gap, or shut it down and power it up
    again) costs about ``beta_j`` more than the offline schedule, which is the
    mechanism behind the ``2d`` lower bound.
    """
    if break_even_slots < 1:
        raise ValueError("break_even_slots must be at least 1")
    if n_cycles < 1:
        raise ValueError("n_cycles must be at least 1")
    gap = max(1, int(round(gap_factor * break_even_slots)))
    cycle = [burst_height] + [0.0] * gap
    return np.array(cycle * n_cycles, dtype=float)


def interleaved_ski_rental_instance(
    server_types: Sequence[ServerType],
    n_cycles: int = 6,
    gap_factor: float = 1.0,
    max_gap: int = 12,
    name: Optional[str] = None,
) -> ProblemInstance:
    """Interleave per-type ski-rental pressure across a heterogeneous fleet.

    The ``2d`` lower bound of the companion paper [5] interleaves ski-rental
    gadgets across the ``d`` types; with a scalar load-dispatch demand the
    closest expressible construction is a *staircase of bursts*: for each type
    ``j`` (ordered as given) a burst to the cumulative capacity of types
    ``0..j`` — forcing all of them on — followed by an idle gap tuned to
    ``gap_factor`` times type ``j``'s break-even horizon.  Every type is
    therefore repeatedly driven through its own worst-case keep-warm /
    power-down dilemma, at a different cadence per type.  Gaps are capped at
    ``max_gap`` slots (types with zero idle cost never break even; they get
    the cap) to keep the horizon bounded.
    """
    types = tuple(server_types)
    if not types:
        raise ValueError("interleaved ski rental needs at least one server type")
    if n_cycles < 1:
        raise ValueError("n_cycles must be at least 1")
    if max_gap < 1:
        raise ValueError("max_gap must be at least 1")
    levels = np.cumsum([st.count * st.capacity for st in types])
    if not np.all(np.isfinite(levels)):
        raise ValueError("interleaved ski rental needs finite per-type capacities")
    gaps = []
    for st in types:
        break_even = st.break_even_slots()
        gap = max_gap if not np.isfinite(break_even) else int(round(gap_factor * break_even))
        gaps.append(int(np.clip(gap, 1, max_gap)))
    demand: List[float] = []
    for _ in range(int(n_cycles)):
        for level, gap in zip(levels, gaps):
            demand.append(float(level))
            demand.extend([0.0] * gap)
    return ProblemInstance(
        types, np.array(demand), name=name or f"interleaved-ski-d{len(types)}"
    )


# --------------------------------------------------------------------------- #
# 2b. Adaptive adversary: greedy worst-prefix extension
# --------------------------------------------------------------------------- #


@dataclass(frozen=True, eq=False)
class AdaptiveAdversaryResult:
    """Outcome of :func:`adaptive_adversary` (the worst prefix found)."""

    instance: ProblemInstance
    online_cost: float
    offline_cost: float
    #: Best empirical ratio after each prefix extension (length ``T``).
    ratio_history: tuple

    @property
    def ratio(self) -> float:
        if self.offline_cost > 0:
            return self.online_cost / self.offline_cost
        return float("inf") if self.online_cost > 0 else 1.0


def adaptive_adversary(
    server_types: Sequence[ServerType],
    T: int = 12,
    candidates: int = 4,
    seed: int = 0,
    algorithm_factory: Optional[Callable[[], "object"]] = None,
    name: Optional[str] = None,
) -> AdaptiveAdversaryResult:
    """Grow a demand prefix greedily against a deterministic online algorithm.

    At each of the ``T`` steps the adversary proposes ``candidates`` demand
    levels (always including idle and full capacity, plus seeded uniform
    draws), replays the online algorithm from scratch on *every candidate
    extension of the worst prefix found so far*, computes the exact offline
    optimum of each extended prefix, and keeps the extension maximising the
    empirical competitive ratio.  Because the algorithm is deterministic the
    replay-from-scratch loop is exactly the adaptive-adversary game: the
    adversary reacts to everything the algorithm has revealed.  The returned
    instance is feasible by construction (demands never exceed capacity) and
    the whole procedure is deterministic in ``seed``.

    Cost: ``O(candidates * T)`` full prefix replays (each an ``run_online`` +
    ``solve_optimal`` pass), so keep ``T`` modest — this is a lower-bound
    probe, not a workload generator.
    """
    from ..offline import solve_optimal
    from .algorithm_a import AlgorithmA
    from .base import run_online

    types = tuple(server_types)
    if T < 1:
        raise ValueError("T must be at least 1")
    if candidates < 2:
        raise ValueError("need at least 2 candidate demand levels per step")
    factory = algorithm_factory if algorithm_factory is not None else AlgorithmA
    capacity = float(np.sum([st.count * st.capacity for st in types]))
    if not np.isfinite(capacity) or capacity <= 0:
        raise ValueError("the adversary needs a fleet with finite positive capacity")

    rng = np.random.default_rng(seed)
    prefix: List[float] = []
    history: List[float] = []
    label = name or f"adaptive-adversary-d{len(types)}"
    best_instance: Optional[ProblemInstance] = None
    best_online = 0.0
    best_offline = 0.0

    for _ in range(int(T)):
        extras = sorted(
            round(float(v), 6) for v in rng.uniform(0.0, capacity, size=max(0, candidates - 2))
        )
        values = [0.0, *extras, capacity]
        best_ratio = -1.0
        chosen = None
        for value in values:
            trial = ProblemInstance(types, np.array(prefix + [value]), name=label)
            online = run_online(trial, factory())
            offline = solve_optimal(trial, return_schedule=False).cost
            if offline > 0:
                ratio = online.cost / offline
            else:
                ratio = float("inf") if online.cost > 0 else 1.0
            # Ties on ratio are broken towards the higher online cost: a first
            # burst has ratio 1.0 just like staying idle, but only the burst
            # creates the stranded capacity whose idle/switching dilemma later
            # zero slots exploit.
            better = ratio > best_ratio + 1e-12 or (
                ratio > best_ratio - 1e-12 and chosen is not None and online.cost > chosen[2] + 1e-12
            )
            if better:
                best_ratio = ratio
                chosen = (value, trial, online.cost, offline)
        value, best_instance, best_online, best_offline = chosen
        prefix.append(value)
        history.append(best_ratio)

    return AdaptiveAdversaryResult(
        instance=best_instance,
        online_cost=float(best_online),
        offline_cost=float(best_offline),
        ratio_history=tuple(history),
    )


def ski_rental_instance(
    server_type: ServerType,
    n_cycles: int = 20,
    gap_factor: float = 1.0,
    extra_types: Sequence[ServerType] = (),
) -> ProblemInstance:
    """Wrap :func:`ski_rental_trace` into an instance targeting one server type.

    Additional (more expensive) types can be appended so that the instance is
    heterogeneous while the adversarial pressure stays on the first type.
    """
    break_even = server_type.break_even_slots()
    if not np.isfinite(break_even):
        raise ValueError("the targeted server type must have a positive idle cost")
    demand = ski_rental_trace(int(break_even), n_cycles, burst_height=min(1.0, server_type.capacity), gap_factor=gap_factor)
    types = (server_type, *extra_types)
    return ProblemInstance(types, demand, name=f"ski-rental[{server_type.name}]")


# --------------------------------------------------------------------------- #
# 3. Rounding pathology
# --------------------------------------------------------------------------- #


def rounding_pathology(T: int, delta: float = 0.01, beta: float = 1.0) -> dict:
    """Quantify the switching-cost blow-up of naively rounding a fractional schedule.

    The fractional schedule alternates between ``1`` and ``1 + delta`` servers
    (total fractional switching cost ``~ beta * delta * T / 2``); its ceiling
    alternates between 1 and 2 (switching cost ``~ beta * T / 2``).  The ratio
    therefore grows like ``1/delta`` — unbounded as ``delta -> 0``, which is
    the paper's argument that rounding fractional solutions is a genuinely hard
    open problem.
    """
    if T < 2:
        raise ValueError("T must be at least 2")
    if not (0 < delta < 1):
        raise ValueError("delta must lie in (0, 1)")
    fractional = np.array([1.0 + delta * (t % 2) for t in range(T)])
    rounded = np.ceil(fractional - 1e-12)
    frac_switch = beta * float(np.sum(np.maximum(np.diff(np.concatenate([[0.0], fractional])), 0.0)))
    int_switch = beta * float(np.sum(np.maximum(np.diff(np.concatenate([[0.0], rounded])), 0.0)))
    return {
        "T": T,
        "delta": delta,
        "fractional_schedule": fractional,
        "rounded_schedule": rounded,
        "fractional_switching_cost": frac_switch,
        "rounded_switching_cost": int_switch,
        "blowup": int_switch / frac_switch if frac_switch > 0 else float("inf"),
    }
