"""Online Balanced Descent (OBD) — the fractional convex-chasing baseline.

The paper relates heterogeneous right-sizing to *smoothed online convex
optimisation / convex function chasing* (Section 1): in the fractional setting
(real-valued server counts) the problem is a special case, and Online Balanced
Descent (Goel & Wierman 2019; Chen, Goel & Wierman 2018) is the reference
algorithm for that setting.  The paper also explains why such fractional
algorithms do *not* solve the discrete problem — naive rounding can blow up the
switching cost arbitrarily, and per-type randomised rounding can produce
infeasible schedules.

This module provides

* :func:`run_obd` — a projection-based OBD implementation producing a
  fractional schedule together with its operating and (one-sided) movement
  cost, and
* :func:`round_up` — the naive "round every coordinate up" conversion to an
  integral schedule, used by the benchmarks to demonstrate the rounding
  pathology the paper warns about.

The movement metric is the symmetrised switching cost
``||y - x|| = sum_j (beta_j / 2) |y_j - x_j|`` (over a closed trajectory the
one-sided power-up cost equals half of the total variation, so this is the
natural metric of the chasing formulation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import optimize

from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..dispatch.allocation import DispatchSolver

__all__ = ["FractionalRunResult", "run_obd", "round_up"]


@dataclass(frozen=True, eq=False)
class FractionalRunResult:
    """A fractional trajectory with its cost decomposition."""

    xs: np.ndarray
    operating: np.ndarray
    switching: np.ndarray

    @property
    def cost(self) -> float:
        """Total cost: operating plus one-sided (power-up) switching cost."""
        return float(np.sum(self.operating) + np.sum(self.switching))

    @property
    def total_operating(self) -> float:
        return float(np.sum(self.operating))

    @property
    def total_switching(self) -> float:
        return float(np.sum(self.switching))


def _slot_evaluator(dispatcher: DispatchSolver, t: int, penalty_slope: float = 1e6):
    """Evaluator of ``g_t`` over fractional configurations.

    Infeasible configurations (not enough capacity for the demand) are mapped to
    a large *finite* penalty that grows with the capacity deficit instead of
    ``inf``; SLSQP's finite-difference gradients would otherwise produce NaNs
    and stall.  The penalty never affects reported costs because OBD only ever
    commits to feasible points.
    """
    instance = dispatcher.instance
    lam = float(instance.demand[t])
    zmax = np.where(np.isfinite(instance.zmax), instance.zmax, max(lam, 1.0))

    def evaluate(x: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        capacity = float(np.sum(np.maximum(x, 0.0) * zmax))
        if capacity < lam - 1e-9:
            return penalty_slope * (1.0 + lam - capacity)
        costs, _ = dispatcher.solve_grid(t, x[None, :])
        value = float(costs[0])
        if not math.isfinite(value):
            return penalty_slope * (1.0 + lam)
        return value

    return evaluate


def _feasible_minimiser(instance, t, evaluate, x_start):
    """Minimise ``g_t`` over the fractional box intersected with the coverage constraint."""
    d = instance.d
    counts = instance.counts_at(t).astype(float)
    lam = float(instance.demand[t])
    zmax = np.where(np.isfinite(instance.zmax), instance.zmax, max(lam, 1.0))
    bounds = [(0.0, float(c)) for c in counts]
    constraints = [{"type": "ineq", "fun": lambda x: float(np.sum(x * zmax) - lam)}]
    x0 = np.clip(x_start, 0.0, counts)
    if np.sum(x0 * zmax) < lam:
        x0 = np.minimum(counts, np.full(d, lam / max(np.sum(zmax), 1e-9) + 1.0))
    res = optimize.minimize(
        evaluate, x0, method="SLSQP", bounds=bounds, constraints=constraints,
        options={"maxiter": 60, "ftol": 1e-8},
    )
    x = np.clip(res.x, 0.0, counts)
    return x, float(evaluate(x))


def _segment_balance_point(evaluate, x_prev, x_min, weights, min_step=0.0, iterations=12):
    """Balanced point on the segment from ``x_prev`` towards the slot minimiser.

    Full OBD projects onto level sets of ``g_t``; for the right-sizing cost
    structure (jointly convex, monotone along the segment towards the
    minimiser) restricting the projection to the segment ``x_prev -> x_min``
    keeps the balancing idea — walk towards the minimiser until the movement
    cost paid equals the operating cost still incurred — while avoiding a
    nested constrained solve per bisection step.  This "segment OBD" is the
    documented simplification used as the fractional baseline (see DESIGN.md).

    ``min_step`` is the smallest admissible step along the segment (the point
    must at least reach the capacity needed to serve the slot's demand, so the
    committed configuration is always feasible).
    """
    direction = x_min - x_prev
    seg_cost = float(np.sum(weights * np.abs(direction)))
    if seg_cost <= 1e-12:
        return x_min.copy()
    min_step = float(np.clip(min_step, 0.0, 1.0))

    def movement(s):
        return s * seg_cost

    def hitting(s):
        return float(evaluate(x_prev + s * direction))

    if movement(1.0) <= hitting(1.0):
        # even walking all the way to the minimiser costs less than staying
        return x_min.copy()
    lo, hi = min_step, 1.0
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        if movement(mid) <= hitting(mid):
            lo = mid
        else:
            hi = mid
    return x_prev + lo * direction


def run_obd(
    instance: ProblemInstance,
    dispatcher: Optional[DispatchSolver] = None,
    balance_iterations: int = 12,
) -> FractionalRunResult:
    """Run (segment-)Online Balanced Descent on the fractional relaxation.

    At every slot the algorithm computes the feasible minimiser of ``g_t``,
    then walks from its previous point towards it until the movement cost (in
    the symmetrised metric ``sum_j beta_j/2 |dx_j|``) balances the operating
    cost at the stopping point — the balancing rule that gives OBD its
    competitive guarantees for strongly convex or locally polyhedral costs.
    As the paper notes, those conditions fail for load-independent operating
    costs, which is precisely what the comparison benchmarks illustrate.

    The projection step is restricted to the segment towards the minimiser
    (a documented simplification that avoids a nested constrained solve; see
    :func:`_segment_balance_point`).
    """
    dispatcher = dispatcher or DispatchSolver(instance)
    T, d = instance.T, instance.d
    weights = instance.beta / 2.0
    xs = np.zeros((T, d))
    x_prev = np.zeros(d)

    for t in range(T):
        evaluate = _slot_evaluator(dispatcher, t)
        x_min, g_min = _feasible_minimiser(instance, t, evaluate, x_prev)
        move_to_min = float(np.sum(weights * np.abs(x_min - x_prev)))
        if move_to_min <= g_min:
            x_t = x_min
        else:
            # smallest step along the segment that already covers the demand,
            # so the committed configuration is always feasible
            lam = float(instance.demand[t])
            zmax = np.where(np.isfinite(instance.zmax), instance.zmax, max(lam, 1.0))
            cap_prev = float(np.sum(np.maximum(x_prev, 0.0) * zmax))
            cap_min = float(np.sum(np.maximum(x_min, 0.0) * zmax))
            if cap_prev >= lam - 1e-9 or cap_min <= cap_prev:
                min_step = 0.0
            else:
                min_step = min(1.0, max(0.0, (lam - cap_prev) / (cap_min - cap_prev) + 1e-9))
            x_t = _segment_balance_point(
                evaluate, x_prev, x_min, weights, min_step=min_step, iterations=balance_iterations
            )
        counts = instance.counts_at(t).astype(float)
        x_t = np.clip(x_t, 0.0, counts)
        xs[t] = x_t
        x_prev = x_t

    operating = np.zeros(T)
    switching = np.zeros(T)
    prev = np.zeros(d)
    for t in range(T):
        evaluate = _slot_evaluator(dispatcher, t)
        operating[t] = evaluate(xs[t])
        switching[t] = float(np.sum(instance.beta * np.maximum(xs[t] - prev, 0.0)))
        prev = xs[t]
    return FractionalRunResult(xs=xs, operating=operating, switching=switching)


def round_up(result: FractionalRunResult, instance: ProblemInstance) -> Schedule:
    """Naive integral conversion: round every coordinate up (and clip to the fleet).

    Rounding up preserves feasibility (more servers never hurt capacity), but —
    as the paper's discussion of the rounding problem points out — it can
    multiply the switching cost arbitrarily when the fractional trajectory
    oscillates just above an integer.  The benchmarks quantify this effect.
    """
    xs = np.ceil(result.xs - 1e-9).astype(int)
    counts = np.stack([instance.counts_at(t) for t in range(instance.T)])
    xs = np.minimum(xs, counts)
    return Schedule(xs)
