"""Lazy Capacity Provisioning (LCP) baseline for homogeneous data centers.

Lin, Wierman, Andrew and Thereska introduced the right-sizing model for
*homogeneous* data centers (``d = 1``) and proposed the 3-competitive Lazy
Capacity Provisioning algorithm; Albers & Quedenfeld (SPAA 2018) later showed
3 is the optimal deterministic ratio in the discrete setting.  This paper
(Section 1, "Related work") uses those results as the starting point for the
heterogeneous generalisation, so LCP is the natural baseline to compare the
heterogeneous Algorithms A/B/C against on single-type instances.

The implementation follows the classic *lazy projection* scheme in the
discrete setting:

* a lower target ``X^L_t`` — the smallest last configuration among optimal
  schedules of the prefix instance ``I_t``,
* an upper target ``X^U_t`` — the largest such configuration,
* ``x^LCP_t = clip(x^LCP_{t-1}, X^L_t, X^U_t)`` — move only when forced.

Both targets are produced by the incremental DP tracker with opposite
tie-breaking.  This is a faithful adaptation of LCP's "lazy between prefix
optima" principle to the discrete heterogeneous code base rather than a
line-by-line port of the original (which is defined through charging arguments
specific to ``d = 1``); see DESIGN.md.  For ``d > 1`` the per-type clipping is
still well defined and is provided as a heuristic (`allow_heterogeneous=True`),
but no competitive guarantee is claimed — the benchmarks use it to illustrate
why the heterogeneous problem needs the new algorithms of this paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import OnlineAlgorithm, OnlineContext, SlotInfo
from .tracker import DPPrefixTracker, SharedTrackerFactory

__all__ = ["LazyCapacityProvisioning"]


class LazyCapacityProvisioning(OnlineAlgorithm):
    """Discrete Lazy Capacity Provisioning (Lin et al.) on top of the prefix-optimum DP.

    ``tracker_factory`` (a :class:`~repro.online.tracker.SharedTrackerFactory`)
    lets the sweep engine hand LCP its per-instance shared value stream: the
    lower and upper targets then read one memoised prefix-DP stream — also
    shared with Algorithms A and B — instead of maintaining two private ones.
    """

    name = "LCP"

    def __init__(
        self,
        gamma: Optional[float] = None,
        allow_heterogeneous: bool = False,
        tracker_factory: Optional[SharedTrackerFactory] = None,
    ):
        if tracker_factory is not None:
            self._lower_tracker = tracker_factory.tracker(gamma=gamma, tie_break="smallest")
            self._upper_tracker = tracker_factory.tracker(gamma=gamma, tie_break="largest")
        else:
            self._lower_tracker = DPPrefixTracker(gamma=gamma, tie_break="smallest")
            self._upper_tracker = DPPrefixTracker(gamma=gamma, tie_break="largest")
        self.allow_heterogeneous = bool(allow_heterogeneous)
        self._current: Optional[np.ndarray] = None
        self._bounds_history = []

    def start(self, context: OnlineContext) -> None:
        if context.d != 1 and not self.allow_heterogeneous:
            raise ValueError(
                "LCP is defined for homogeneous data centers (d=1); "
                "pass allow_heterogeneous=True to use the per-type heuristic extension"
            )
        self._lower_tracker.reset()
        self._upper_tracker.reset()
        self._current = np.zeros(context.d, dtype=int)
        self._bounds_history = []

    def step(self, slot: SlotInfo) -> np.ndarray:
        lower = np.asarray(self._lower_tracker.observe(slot), dtype=int)
        upper = np.asarray(self._upper_tracker.observe(slot), dtype=int)
        # Degenerate ties can make the two targets cross on heterogeneous
        # instances (different optimal schedules trade one type for another);
        # normalise so that the projection interval is well defined.
        lo = np.minimum(lower, upper)
        hi = np.maximum(lower, upper)
        self._bounds_history.append((lo.copy(), hi.copy()))
        self._current = np.clip(self._current, lo, hi)
        return self._current.copy()

    # -------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Decision-relevant state: current configuration and both trackers."""
        return {
            "current": None if self._current is None else [int(v) for v in self._current],
            "lower": self._lower_tracker.state_dict(),
            "upper": self._upper_tracker.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        current = state["current"]
        self._current = None if current is None else np.asarray(current, dtype=int)
        self._lower_tracker.load_state_dict(state["lower"])
        self._upper_tracker.load_state_dict(state["upper"])
        self._bounds_history = []

    @property
    def bounds_history(self):
        """Per-slot ``(X^L_t, X^U_t)`` targets (after normalisation)."""
        return list(self._bounds_history)
