"""Block decomposition used in the competitive analysis (Figure 2).

The analysis of Algorithms A and B charges the switching and idle operating
cost of the online schedule per *block*: a block ``A_{j,i} = [s_{j,i}, e_{j,i}]``
is the interval of slots during which one particular powered-up server of type
``j`` stays active.  For Algorithm A every block has length exactly
``\\bar t_j = ceil(beta_j / f_j(0))``; for Algorithm B the length depends on the
power-up slot (``\\bar t_{t,j}``).

*Special time slots* ``tau_{j,1} < ... < tau_{j,n'_j}`` are constructed in
reverse: ``tau_{j,n'_j}`` is the last power-up slot, and given ``tau_{j,k}``
the previous one is the latest power-up whose block ends strictly before
``tau_{j,k}``.  This guarantees that every block contains exactly one special
slot, which partitions the blocks into the index sets
``B_{j,k} = { i : tau_{j,k} in A_{j,i} }`` used in Lemmas 7 and 12.

These helpers reproduce Figure 2's decomposition and are exercised by the
benchmark ``bench_fig2_blocks.py`` and by the property-based tests (every
block contains exactly one special slot; consecutive special slots of
Algorithm A are at least ``\\bar t_j`` apart).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Block", "special_slots", "block_index_sets", "blocks_from_power_ups"]


@dataclass(frozen=True)
class Block:
    """One activity interval ``[start, end]`` (inclusive) of a powered-up server."""

    start: int
    end: int

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(f"block end {self.end} before start {self.start}")

    def __contains__(self, slot: int) -> bool:
        return self.start <= slot <= self.end

    @property
    def length(self) -> int:
        return self.end - self.start + 1


def blocks_from_power_ups(
    power_up_slots: Sequence[int],
    runtimes: Sequence[int],
    horizon: int | None = None,
) -> List[Block]:
    """Build the block list from power-up slots and per-block runtimes.

    ``runtimes[i]`` is the number of slots the ``i``-th powered-up server stays
    active *including* its power-up slot; ``horizon`` (the number of slots ``T``)
    clips blocks that would extend past the end of the workload.
    """
    if len(power_up_slots) != len(runtimes):
        raise ValueError("power_up_slots and runtimes must have the same length")
    blocks = []
    for s, r in zip(power_up_slots, runtimes):
        if r < 1:
            raise ValueError("runtimes must be at least 1 slot")
        end = s + int(r) - 1
        if horizon is not None:
            end = min(end, horizon - 1)
        blocks.append(Block(start=int(s), end=int(end)))
    return sorted(blocks, key=lambda b: (b.start, b.end))


def special_slots(blocks: Sequence[Block]) -> List[int]:
    """The special time slots ``tau_{j,1} < ... < tau_{j,n'_j}`` of a block list.

    Constructed in reverse exactly as in the paper: start from the last
    power-up slot, then repeatedly jump to the latest power-up whose block ends
    strictly before the current special slot.
    """
    if not blocks:
        return []
    ordered = sorted(blocks, key=lambda b: (b.start, b.end))
    taus = [ordered[-1].start]
    while True:
        current = taus[-1]
        candidates = [b.start for b in ordered if b.end < current]
        if not candidates:
            break
        taus.append(max(candidates))
    return sorted(taus)


def block_index_sets(blocks: Sequence[Block]) -> List[List[int]]:
    """The index sets ``B_{j,k}`` = blocks containing the ``k``-th special slot.

    Returns one list of (0-based) block indices per special slot, in the order
    of the sorted block list.  The analysis relies on these sets forming a
    partition of all blocks — :func:`verify_partition` checks this and is used
    by the test suite.
    """
    ordered = sorted(blocks, key=lambda b: (b.start, b.end))
    taus = special_slots(ordered)
    return [[i for i, b in enumerate(ordered) if tau in b] for tau in taus]


def verify_partition(blocks: Sequence[Block]) -> bool:
    """Check that every block contains exactly one special slot (Lemma 7's premise)."""
    ordered = sorted(blocks, key=lambda b: (b.start, b.end))
    taus = special_slots(ordered)
    counts = np.zeros(len(ordered), dtype=int)
    for tau in taus:
        for i, b in enumerate(ordered):
            if tau in b:
                counts[i] += 1
    return bool(np.all(counts == 1))
