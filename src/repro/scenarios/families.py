"""The built-in scenario families.

Every family wraps the :mod:`repro.workloads` generators behind one
``build(spec)`` entry point with the unified seeding convention: a family
takes a *single* ``seed`` and, where it has more than one randomness consumer
(trace + fleet), derives independent sub-streams via
:func:`repro.workloads.traces.spawn_streams`.

The first seven families are byte-for-byte the instances the benchmark and
perf-regression suites have always run (``thm8``/``thm13``/``thm15``/``thm22``
and the comparison workloads) — their default parameters reproduce the pinned
costs in :data:`repro.bench.PINNED_SWEEP_COSTS` exactly.  The remaining ones
cover the scale suite (long horizons, big fleets on geometric grids) and a
randomised-fleet family exercising the spawned fleet sub-stream.

Families are registered at import time; ``import repro.scenarios`` is enough
to populate the registry.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.instance import ProblemInstance
from ..workloads.fleets import (
    cpu_gpu_fleet,
    fleet_instance,
    load_independent_fleet,
    old_new_fleet,
    perturbed_fleet,
    single_type_fleet,
    three_tier_fleet,
)
from ..online.adversary import (
    adaptive_adversary,
    interleaved_ski_rental_instance,
    ski_rental_instance,
)
from ..workloads.scale import big_fleet_instance, long_horizon_instance
from ..workloads.traces import bursty_trace, diurnal_trace, spawn_streams, spike_trace
from .events import ChaosEvent, EventPlan, apply_event_plan
from .registry import register

__all__ = ["price_profile"]


def _period(T: int, period: Optional[int]) -> int:
    return int(period) if period is not None else max(4, int(T) // 2)


def price_profile(T: int, amplitude: float, phase: float = 0.7, cycles: float = 2.0) -> np.ndarray:
    """The sinusoidal time-of-day electricity tariff used by the priced families."""
    return 1.0 + amplitude * np.sin(np.arange(int(T)) / max(int(T), 1) * cycles * 2.0 * np.pi + phase)


# --------------------------------------------------------------------------- #
# Benchmark workhorse families (pinned by the perf-regression gates)
# --------------------------------------------------------------------------- #


@register("diurnal-cpu-gpu", smoke_params={"T": 10}, tags=("thm8", "comparison"))
def _diurnal_cpu_gpu(
    T: int = 48,
    period: Optional[int] = None,
    base: float = 1.0,
    peak: float = 10.0,
    noise: float = 0.05,
    cpu_count: int = 5,
    gpu_count: int = 2,
    seed: int = 1,
    name: Optional[str] = None,
) -> ProblemInstance:
    """Diurnal workload on a CPU+GPU fleet (d=2) — the workhorse scenario."""
    demand = diurnal_trace(T, period=_period(T, period), base=base, peak=peak, noise=noise, rng=seed)
    return fleet_instance(
        cpu_gpu_fleet(cpu_count=cpu_count, gpu_count=gpu_count),
        demand,
        name=name or f"diurnal-cpu-gpu-T{T}",
    )


@register("homogeneous", smoke_params={"T": 10}, tags=("thm8", "lcp", "comparison"))
def _homogeneous(
    T: int = 48,
    period: Optional[int] = None,
    base: float = 0.5,
    peak: float = 6.0,
    noise: float = 0.05,
    count: int = 8,
    seed: int = 5,
    name: Optional[str] = None,
) -> ProblemInstance:
    """Single-type instance (d=1) for the LCP / homogeneous comparisons."""
    demand = diurnal_trace(T, period=_period(T, period), base=base, peak=peak, noise=noise, rng=seed)
    return fleet_instance(single_type_fleet(count=count), demand, name=name or f"homogeneous-T{T}")


@register("bursty-old-new", smoke_params={"T": 10}, tags=("thm8",))
def _bursty_old_new(
    T: int = 40,
    base: float = 1.0,
    burst_height: float = 8.0,
    burst_probability: float = 0.15,
    old_count: int = 5,
    new_count: int = 3,
    seed: int = 2,
    name: Optional[str] = None,
) -> ProblemInstance:
    """Bursty workload on an old/new-generation fleet (d=2)."""
    demand = bursty_trace(
        T, base=base, burst_height=burst_height, burst_probability=burst_probability, rng=seed
    )
    return fleet_instance(
        old_new_fleet(old_count=old_count, new_count=new_count),
        demand,
        name=name or f"bursty-old-new-T{T}",
    )


@register("load-independent", smoke_params={"T": 10}, tags=("thm8", "corollary9"))
def _load_independent(
    T: int = 40,
    d: int = 2,
    base_count: int = 6,
    base: float = 1.0,
    burst_height: float = 6.0,
    burst_probability: float = 0.2,
    seed: int = 7,
    name: Optional[str] = None,
) -> ProblemInstance:
    """Load-independent operating costs (the Corollary 9 regime)."""
    demand = bursty_trace(
        T, base=base, burst_height=burst_height, burst_probability=burst_probability, rng=seed
    )
    return fleet_instance(
        load_independent_fleet(d=d, base_count=base_count),
        demand,
        name=name or f"load-independent-T{T}",
    )


@register("spiky-three-tier", smoke_params={"T": 10, "spike_every": 4}, tags=("thm8",))
def _spiky_three_tier(
    T: int = 32,
    base: float = 0.5,
    spike_height: float = 8.0,
    spike_every: int = 8,
    max_count: int = 3,
    jitter: int = 0,
    seed: int = 0,
    name: Optional[str] = None,
) -> ProblemInstance:
    """Spiky workload on the three-tier fleet (d=3, capped per-type counts)."""
    demand = spike_trace(
        T, base=base, spike_height=spike_height, spike_every=spike_every, jitter=jitter, rng=seed
    )
    fleet = [st.with_count(min(st.count, max_count)) for st in three_tier_fleet()]
    return fleet_instance(fleet, demand, name=name or f"spiky-three-tier-T{T}")


@register("priced-cpu-gpu", smoke_params={"T": 10}, tags=("thm13", "thm15", "priced"))
def _priced_cpu_gpu(
    T: int = 30,
    period: Optional[int] = None,
    base: float = 1.0,
    peak: float = 10.0,
    noise: float = 0.05,
    cpu_count: int = 5,
    gpu_count: int = 2,
    amplitude: float = 0.5,
    phase: float = 0.7,
    cycles: float = 2.0,
    seed: int = 11,
    name: Optional[str] = None,
) -> ProblemInstance:
    """Time-dependent operating costs: a CPU+GPU diurnal workload under a
    sinusoidal electricity tariff (Section 3).  ``amplitude=0`` keeps the
    costs time-independent (the reference point of the THM13 sweep)."""
    instance = _diurnal_cpu_gpu(
        T=T, period=period, base=base, peak=peak, noise=noise,
        cpu_count=cpu_count, gpu_count=gpu_count, seed=seed,
    )
    target = name or f"priced-cpu-gpu-T{T}"
    if amplitude == 0:
        return instance.with_demand(instance.demand, name=target)
    prices = price_profile(T, amplitude=amplitude, phase=phase, cycles=cycles)
    return instance.with_price_profile(prices, name=target)


@register("time-varying-m", smoke_params={"T": 12, "maintenance_start": 4, "maintenance_end": 6, "expansion_start": 8}, tags=("thm22",))
def _time_varying_m(
    T: int = 30,
    period: int = 10,
    base: float = 2.0,
    peak: float = 10.0,
    noise: float = 0.05,
    old_count: int = 6,
    new_count: int = 4,
    maintenance_start: int = 10,
    maintenance_end: int = 15,
    maintenance_count: int = 2,
    expansion_start: int = 20,
    expansion_count: int = 6,
    cap_fraction: float = 0.95,
    seed: int = 21,
    name: Optional[str] = None,
) -> ProblemInstance:
    """Time-dependent fleet sizes (Section 4.3): a maintenance window on the
    old generation followed by an expansion of the new one."""
    fleet = old_new_fleet(old_count=old_count, new_count=new_count)
    demand = diurnal_trace(T, period=period, base=base, peak=peak, noise=noise, rng=seed)
    counts = np.tile([old_count, new_count], (T, 1)).astype(int)
    counts[maintenance_start:maintenance_end, 0] = maintenance_count
    counts[expansion_start:, 1] = expansion_count
    instance = ProblemInstance(tuple(fleet), demand, counts=counts, name=name or "time-varying-m")
    cap = np.array([instance.total_capacity(t) for t in range(T)])
    return ProblemInstance(
        tuple(fleet),
        np.minimum(demand, cap_fraction * cap),
        counts=counts,
        name=name or "time-varying-m",
    )


# --------------------------------------------------------------------------- #
# Randomised-fleet and scale families
# --------------------------------------------------------------------------- #


@register("heterogeneous-random", smoke_params={"T": 10}, tags=("randomised",))
def _heterogeneous_random(
    T: int = 32,
    period: Optional[int] = None,
    base: float = 1.0,
    peak: float = 10.0,
    noise: float = 0.05,
    cpu_count: int = 5,
    gpu_count: int = 2,
    jitter: float = 0.25,
    seed: int = 0,
    name: Optional[str] = None,
) -> ProblemInstance:
    """A randomised CPU+GPU fleet: switching costs, capacities and operating
    costs jittered log-normally.  One scenario seed spawns independent trace
    and fleet sub-streams, so varying ``jitter`` never perturbs the demand."""
    trace_rng, fleet_rng = spawn_streams(seed, 2)
    fleet = perturbed_fleet(
        cpu_gpu_fleet(cpu_count=cpu_count, gpu_count=gpu_count), jitter=jitter, rng=fleet_rng
    )
    demand = diurnal_trace(
        T, period=_period(T, period), base=base, peak=peak, noise=noise, rng=trace_rng
    )
    return fleet_instance(fleet, demand, name=name or f"heterogeneous-random-T{T}-s{seed}")


register(
    "long-horizon",
    long_horizon_instance,
    smoke_params={"T": 96, "cpu_count": 6, "gpu_count": 4, "levels": 8},
    tags=("scale", "streaming"),
)

register(
    "big-fleet",
    big_fleet_instance,
    smoke_params={"T": 48, "d": 2, "m_max": 10, "levels": 8},
    tags=("scale", "geometric-grid"),
)


# --------------------------------------------------------------------------- #
# Chaos families: event plans and the paper's adversarial constructions
# --------------------------------------------------------------------------- #
#
# The event-plan families bake the *batch-safe* fault kinds into the instance
# (price shocks, flash crowds, and chaos-outage's planned drop/recovery
# window, with demand re-clipped so the strict batch/serve gates stay
# feasible).  Unplanned faults — capacity that vanishes mid-stream under live
# sessions — are the serve layer's job: the same EventPlan objects are
# injected tick by tick through repro.serve.chaos.FaultInjector, where
# shed-mode sessions absorb the resulting infeasibility (`repro serve chaos`).


def _diurnal_base(T, base, peak, noise, cpu_count, gpu_count, rng, name):
    demand = diurnal_trace(T, period=_period(T, None), base=base, peak=peak, noise=noise, rng=rng)
    return fleet_instance(cpu_gpu_fleet(cpu_count=cpu_count, gpu_count=gpu_count), demand, name=name)


def _chaos_plan(T, d, chaos_rng, n_events, kinds, events):
    """Resolve a family's event plan: explicit spec events win over generation."""
    if events is not None:
        return EventPlan.parse(events)
    return EventPlan.generate(T, d, seed=chaos_rng, n_events=n_events, kinds=kinds)


@register("chaos-outage", smoke_params={"T": 12, "drop_start": 5, "drop_duration": 3}, tags=("chaos", "thm22"))
def _chaos_outage(
    T: int = 32,
    drop_start: int = 12,
    drop_duration: int = 6,
    drop_fraction: float = 0.5,
    type_index: int = 0,
    base: float = 1.0,
    peak: float = 8.0,
    noise: float = 0.05,
    cpu_count: int = 5,
    gpu_count: int = 2,
    cap_fraction: float = 0.85,
    seed: int = 3,
    events=None,
    name: Optional[str] = None,
) -> ProblemInstance:
    """A planned capacity outage with recovery: ``drop_fraction`` of one
    type's machines leave for ``drop_duration`` slots and come back, expressed
    as a ``capacity_drop`` event baked into the counts table (demand is
    re-clipped against the post-outage capacity).  An explicit spec-level
    event plan replaces the built-in window."""
    target = name or f"chaos-outage-T{T}"
    instance = _diurnal_base(T, base, peak, noise, cpu_count, gpu_count, seed, target)
    if events is None:
        events = [
            ChaosEvent(
                kind="capacity_drop",
                t=drop_start,
                duration=drop_duration,
                magnitude=drop_fraction,
                type_index=type_index,
            )
        ]
    return apply_event_plan(instance, EventPlan.parse(events), cap_fraction=cap_fraction, name=target)


@register("chaos-price-shock", smoke_params={"T": 10, "n_events": 2}, tags=("chaos", "priced"))
def _chaos_price_shock(
    T: int = 30,
    n_events: int = 3,
    base: float = 1.0,
    peak: float = 10.0,
    noise: float = 0.05,
    cpu_count: int = 5,
    gpu_count: int = 2,
    seed: int = 13,
    events=None,
    name: Optional[str] = None,
) -> ProblemInstance:
    """Seeded price-shock windows on the diurnal CPU+GPU workload: every
    operating-cost function is ``ScaledCost``-multiplied while a shock is
    active (Section 3's time-dependent-cost regime, adversarially timed)."""
    trace_rng, chaos_rng = spawn_streams(seed, 2)
    target = name or f"chaos-price-shock-T{T}"
    instance = _diurnal_base(T, base, peak, noise, cpu_count, gpu_count, trace_rng, target)
    plan = _chaos_plan(T, 2, chaos_rng, n_events, ("price_shock",), events)
    return apply_event_plan(instance, plan, name=target)


@register("chaos-flash-crowd", smoke_params={"T": 10, "n_events": 2}, tags=("chaos",))
def _chaos_flash_crowd(
    T: int = 30,
    n_events: int = 3,
    base: float = 1.0,
    peak: float = 6.0,
    noise: float = 0.05,
    cpu_count: int = 5,
    gpu_count: int = 2,
    cap_fraction: float = 0.95,
    seed: int = 17,
    events=None,
    name: Optional[str] = None,
) -> ProblemInstance:
    """Seeded flash crowds: demand multiplied in adversarially timed windows,
    clipped to ``cap_fraction`` of capacity so the batch instance stays
    feasible (the *unclipped* variant is what serve-time injection sheds)."""
    trace_rng, chaos_rng = spawn_streams(seed, 2)
    target = name or f"chaos-flash-crowd-T{T}"
    instance = _diurnal_base(T, base, peak, noise, cpu_count, gpu_count, trace_rng, target)
    plan = _chaos_plan(T, 2, chaos_rng, n_events, ("flash_crowd",), events)
    return apply_event_plan(instance, plan, cap_fraction=cap_fraction, name=target)


@register("chaos-mixed", smoke_params={"T": 12, "n_events": 3}, tags=("chaos", "priced"))
def _chaos_mixed(
    T: int = 36,
    n_events: int = 5,
    base: float = 1.0,
    peak: float = 7.0,
    noise: float = 0.05,
    cpu_count: int = 5,
    gpu_count: int = 2,
    cap_fraction: float = 0.95,
    seed: int = 23,
    events=None,
    name: Optional[str] = None,
) -> ProblemInstance:
    """Price shocks and flash crowds drawn from one seeded plan (capacity
    drops are deliberately not generated here — unplanned capacity loss is a
    serve-time fault, exercised by ``repro serve chaos`` / ``--chaos``; an
    explicit spec-level event plan may still bake drops, chaos-outage
    style)."""
    trace_rng, chaos_rng = spawn_streams(seed, 2)
    target = name or f"chaos-mixed-T{T}"
    instance = _diurnal_base(T, base, peak, noise, cpu_count, gpu_count, trace_rng, target)
    plan = _chaos_plan(T, 2, chaos_rng, n_events, ("price_shock", "flash_crowd"), events)
    return apply_event_plan(instance, plan, cap_fraction=cap_fraction, name=target)


@register("chaos-ski-rental", smoke_params={"n_cycles": 3}, tags=("chaos", "lower-bound"))
def _chaos_ski_rental(
    count: int = 4,
    switching_cost: float = 6.0,
    n_cycles: int = 12,
    gap_factor: float = 1.0,
    name: Optional[str] = None,
) -> ProblemInstance:
    """The classical ski-rental adversarial trace as a registry family:
    demand bursts separated by idle gaps tuned to the break-even horizon
    ``\\bar t_j`` (deterministic — no seed)."""
    server_type = single_type_fleet(count=count, switching_cost=switching_cost)[0]
    instance = ski_rental_instance(server_type, n_cycles=n_cycles, gap_factor=gap_factor)
    return instance.with_demand(instance.demand, name=name or f"chaos-ski-rental-c{n_cycles}")


@register("chaos-interleaved-ski", smoke_params={"n_cycles": 1, "max_gap": 6}, tags=("chaos", "lower-bound"))
def _chaos_interleaved_ski(
    n_cycles: int = 6,
    gap_factor: float = 1.0,
    max_gap: int = 12,
    cpu_count: int = 4,
    gpu_count: int = 2,
    name: Optional[str] = None,
) -> ProblemInstance:
    """Per-type ski-rental pressure interleaved across the CPU+GPU fleet — a
    burst staircase with gaps tuned to each type's break-even horizon (the
    spiritual equivalent of the companion paper's ``2d`` lower-bound
    interleaving; deterministic — no seed)."""
    fleet = cpu_gpu_fleet(cpu_count=cpu_count, gpu_count=gpu_count)
    return interleaved_ski_rental_instance(
        fleet, n_cycles=n_cycles, gap_factor=gap_factor, max_gap=max_gap, name=name
    )


@register("chaos-adaptive", smoke_params={"T": 5, "candidates": 2}, tags=("chaos", "lower-bound", "adaptive"))
def _chaos_adaptive(
    T: int = 10,
    candidates: int = 3,
    count: int = 3,
    switching_cost: float = 6.0,
    seed: int = 0,
    name: Optional[str] = None,
) -> ProblemInstance:
    """The adaptive adversary's worst prefix as a family: the demand trace is
    grown one slot at a time, replaying Algorithm A from scratch against every
    candidate extension and keeping the one that maximises the empirical
    ratio.  Building this family *runs* the adversary (O(candidates * T)
    prefix replays) — keep T modest."""
    fleet = single_type_fleet(count=count, switching_cost=switching_cost)
    result = adaptive_adversary(fleet, T=T, candidates=candidates, seed=seed)
    instance = result.instance
    return instance.with_demand(instance.demand, name=name or f"chaos-adaptive-T{T}-s{seed}")
