"""Chaos event plans: seeded, JSON-serialisable fault schedules.

A :class:`ChaosEvent` is one timed fault — a machine-count drop (recovering
when its window closes), an operating-cost price shock, or a flash crowd
multiplying demand.  An :class:`EventPlan` is an ordered, seed-stamped tuple
of events with a canonical JSON form, so a chaos experiment is addressable
the same way a scenario is: same seed + same event plan ⇒ the same faults at
the same ticks, which is what the ``repro serve chaos`` determinism gate
checks (bit-identical schedules across replays).

Plans act in two places:

* **baked** into a batch :class:`~repro.core.instance.ProblemInstance` via
  :func:`apply_event_plan` (the ``chaos-*`` scenario families): price shocks
  become :class:`~repro.core.cost_functions.ScaledCost` rows, flash crowds
  multiply the demand trace, outages shrink the ``counts`` table, and demand
  is re-clipped against the post-event capacity so the batch instance stays
  feasible for the strict batch/serve equivalence gates;
* **injected mid-stream** by :class:`repro.serve.chaos.FaultInjector`, which
  perturbs live ticks *without* re-clipping — an unplanned fault may make a
  tick infeasible, and the serve layer's graceful degradation (load shedding,
  forced power-downs, SLA accounting) is what absorbs it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from ..core.instance import ProblemInstance
from ..workloads.traces import as_rng

__all__ = [
    "EVENT_KINDS",
    "ChaosEvent",
    "EventPlan",
    "apply_event_plan",
]


#: The fault kinds an event plan can schedule.
EVENT_KINDS = ("capacity_drop", "price_shock", "flash_crowd")


@dataclass(frozen=True)
class ChaosEvent:
    """One timed fault.

    ``magnitude`` is interpreted per kind:

    * ``capacity_drop`` — fraction of the affected type's machines removed
      (in ``(0, 1]``; at least one machine goes whenever the type has any),
      restored when the window closes,
    * ``price_shock`` — multiplier applied to every operating-cost function
      while active (``ScaledCost`` wrapping),
    * ``flash_crowd`` — multiplier applied to the demand while active.

    ``type_index`` restricts a ``capacity_drop`` to one server type
    (``None`` hits the whole fleet); it is ignored by the other kinds.
    """

    kind: str
    t: int
    duration: int = 1
    magnitude: float = 2.0
    type_index: Optional[int] = None

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown chaos event kind {self.kind!r} (known: {EVENT_KINDS})")
        if not isinstance(self.t, (int, np.integer)) or isinstance(self.t, bool) or self.t < 0:
            raise ValueError(f"event start t must be a non-negative int, got {self.t!r}")
        object.__setattr__(self, "t", int(self.t))
        if int(self.duration) != self.duration or self.duration < 1:
            raise ValueError(f"event duration must be a positive int, got {self.duration!r}")
        object.__setattr__(self, "duration", int(self.duration))
        magnitude = float(self.magnitude)
        if not np.isfinite(magnitude) or magnitude <= 0:
            raise ValueError(f"event magnitude must be finite and positive, got {self.magnitude!r}")
        if self.kind == "capacity_drop" and magnitude > 1.0:
            raise ValueError(
                f"capacity_drop magnitude is the removed machine fraction and must be <= 1, "
                f"got {magnitude!r}"
            )
        object.__setattr__(self, "magnitude", magnitude)
        if self.type_index is not None:
            if int(self.type_index) != self.type_index or self.type_index < 0:
                raise ValueError(f"type_index must be a non-negative int or None, got {self.type_index!r}")
            object.__setattr__(self, "type_index", int(self.type_index))

    def active_at(self, t: int) -> bool:
        """Whether this event's window ``[t, t + duration)`` covers tick ``t``."""
        return self.t <= t < self.t + self.duration

    # ---------------------------------------------------------- (de)serialise
    def to_dict(self) -> dict:
        payload = {
            "kind": self.kind,
            "t": self.t,
            "duration": self.duration,
            "magnitude": self.magnitude,
        }
        if self.type_index is not None:
            payload["type_index"] = self.type_index
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ChaosEvent":
        payload = dict(payload)
        kind = payload.pop("kind", None)
        if kind is None:
            raise ValueError(f"chaos event dict needs a 'kind' key, got {sorted(payload)}")
        known = {"t", "duration", "magnitude", "type_index"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown chaos event keys {unknown} (expected: kind, {sorted(known)})")
        return cls(kind=kind, **payload)


@dataclass(frozen=True)
class EventPlan:
    """A seed-stamped, ordered fault schedule (see module docstring).

    ``seed`` is provenance only — it records what :meth:`generate` was fed so
    a plan printed in a report can be regenerated; replaying a plan never
    draws randomness.
    """

    events: tuple = ()
    seed: Optional[int] = None

    def __post_init__(self):
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, ChaosEvent):
                raise TypeError(f"EventPlan events must be ChaosEvent instances, got {event!r}")
        object.__setattr__(self, "events", events)
        if self.seed is not None and (not isinstance(self.seed, (int, np.integer)) or isinstance(self.seed, bool)):
            raise TypeError(f"EventPlan seed must be an int or None, got {self.seed!r}")

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------- generation
    @classmethod
    def generate(
        cls,
        T: int,
        d: int,
        seed=0,
        n_events: int = 4,
        kinds: Sequence[str] = EVENT_KINDS,
    ) -> "EventPlan":
        """Draw a seeded plan of ``n_events`` faults over horizon ``T``.

        Event windows stay inside ``[1, T)`` (tick 0 is never faulted, so every
        replay starts from a clean slot), durations span up to a quarter of the
        horizon, and capacity drops target a single random type half the time.
        Deterministic: the same ``(T, d, seed, n_events, kinds)`` always yields
        the same plan.
        """
        if T < 2:
            raise ValueError(f"event plans need a horizon T >= 2, got {T}")
        kinds = tuple(kinds)
        unknown = sorted(set(kinds) - set(EVENT_KINDS))
        if unknown:
            raise ValueError(f"unknown chaos event kinds {unknown} (known: {EVENT_KINDS})")
        rng = as_rng(seed)
        events = []
        for _ in range(int(n_events)):
            kind = str(kinds[int(rng.integers(0, len(kinds)))])
            t = int(rng.integers(1, T))
            duration = int(rng.integers(1, max(2, T // 4) + 1))
            type_index = None
            if kind == "capacity_drop":
                magnitude = round(float(rng.uniform(0.3, 0.8)), 6)
                if d > 1 and rng.random() < 0.5:
                    type_index = int(rng.integers(0, d))
            elif kind == "price_shock":
                magnitude = round(float(rng.uniform(1.5, 4.0)), 6)
            else:  # flash_crowd
                magnitude = round(float(rng.uniform(1.5, 3.5)), 6)
            events.append(
                ChaosEvent(kind=kind, t=t, duration=duration, magnitude=magnitude, type_index=type_index)
            )
        events.sort(key=lambda e: (e.t, e.kind, e.duration))
        recorded = seed if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool) else None
        return cls(events=tuple(events), seed=None if recorded is None else int(recorded))

    # ------------------------------------------------------------ application
    def events_at(self, t: int, kind: Optional[str] = None) -> tuple:
        """The events whose windows cover tick ``t`` (optionally one kind)."""
        return tuple(
            e for e in self.events if e.active_at(t) and (kind is None or e.kind == kind)
        )

    def counts_at(self, t: int, base_counts) -> np.ndarray:
        """Available machine counts at tick ``t`` given the fleet's base counts.

        Overlapping drops compound sequentially; a drop always removes at
        least one machine from a non-empty type and never goes below zero.
        """
        counts = np.asarray(base_counts, dtype=int).copy()
        for event in self.events_at(t, "capacity_drop"):
            targets = range(len(counts)) if event.type_index is None else (event.type_index,)
            for j in targets:
                if j >= len(counts) or counts[j] <= 0:
                    continue
                removed = int(np.floor(event.magnitude * counts[j]))
                removed = max(removed, 1)
                counts[j] = max(int(counts[j]) - removed, 0)
        return counts

    def price_factor_at(self, t: int) -> float:
        """Product of the price-shock multipliers active at tick ``t``."""
        factor = 1.0
        for event in self.events_at(t, "price_shock"):
            factor *= event.magnitude
        return factor

    def demand_factor_at(self, t: int) -> float:
        """Product of the flash-crowd multipliers active at tick ``t``."""
        factor = 1.0
        for event in self.events_at(t, "flash_crowd"):
            factor *= event.magnitude
        return factor

    def max_t(self) -> int:
        """Last tick any event window still covers (``-1`` for an empty plan)."""
        return max((e.t + e.duration - 1 for e in self.events), default=-1)

    def restrict(self, kinds: Sequence[str]) -> "EventPlan":
        """A copy keeping only the given event kinds (seed stamp preserved)."""
        kinds = set(kinds)
        return EventPlan(tuple(e for e in self.events if e.kind in kinds), seed=self.seed)

    # ---------------------------------------------------------- (de)serialise
    def to_dict(self) -> dict:
        payload: dict = {"events": [e.to_dict() for e in self.events]}
        if self.seed is not None:
            payload["seed"] = int(self.seed)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "EventPlan":
        payload = dict(payload)
        events = payload.pop("events", ())
        seed = payload.pop("seed", None)
        if payload:
            raise ValueError(f"unknown event-plan keys {sorted(payload)} (expected: events, seed)")
        return cls(tuple(ChaosEvent.from_dict(e) for e in events), seed=seed)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EventPlan":
        return cls.parse(json.loads(text))

    @classmethod
    def parse(cls, entry: Union["EventPlan", Mapping, Sequence, str, None]) -> "EventPlan":
        """Normalise a plan / dict / event list / JSON text into an :class:`EventPlan`."""
        if entry is None:
            return cls()
        if isinstance(entry, EventPlan):
            return entry
        if isinstance(entry, str):
            return cls.parse(json.loads(entry))
        if isinstance(entry, Mapping):
            return cls.from_dict(entry)
        if isinstance(entry, Sequence):
            return cls(tuple(
                e if isinstance(e, ChaosEvent) else ChaosEvent.from_dict(e) for e in entry
            ))
        raise TypeError(f"cannot parse an event plan from {entry!r}")

    def key(self) -> str:
        """Compact human-readable identity (used in reports and telemetry)."""
        if not self.events:
            return "[no events]"
        parts = [
            f"{e.kind}@{e.t}+{e.duration}x{e.magnitude:g}"
            + ("" if e.type_index is None else f"/j{e.type_index}")
            for e in self.events
        ]
        prefix = "" if self.seed is None else f"seed={self.seed} "
        return "[" + prefix + " ".join(parts) + "]"


def apply_event_plan(
    instance: ProblemInstance,
    plan,
    kinds: Optional[Sequence[str]] = None,
    cap_fraction: float = 0.95,
    name: Optional[str] = None,
) -> ProblemInstance:
    """Bake an event plan into a batch instance (feasible by construction).

    Flash crowds multiply the demand trace, capacity drops shrink the
    ``counts`` table (recovering after their windows), and price shocks wrap
    the cost rows in :class:`~repro.core.cost_functions.ScaledCost` — composing
    with any tariff the base instance already carries.  The perturbed demand
    is clipped to ``cap_fraction`` of the post-event capacity so the baked
    instance is demand-feasible; the *unclipped* serve-time counterpart is
    :class:`repro.serve.chaos.FaultInjector`.  ``kinds`` restricts which event
    kinds are baked (default: all).

    Caveat on baked capacity drops: demand-feasibility does not guarantee
    every online algorithm survives strict batch validation — an algorithm's
    already-powered machines can exceed a suddenly shrunken counts table
    (Algorithms A/B power down on their own schedule).  Families that bake
    drops (``chaos-outage``) tune their windows to stay replayable; unplanned
    drops belong to serve-time injection, where shed-mode sessions absorb
    them.
    """
    plan = EventPlan.parse(plan)
    if kinds is not None:
        plan = plan.restrict(kinds)
    if not 0 < cap_fraction <= 1:
        raise ValueError(f"cap_fraction must lie in (0, 1], got {cap_fraction!r}")
    T = instance.T
    target = name or f"{instance.name}+chaos"

    counts = np.stack([plan.counts_at(t, instance.counts_at(t)) for t in range(T)])
    demand = np.array(
        [float(instance.demand[t]) * plan.demand_factor_at(t) for t in range(T)]
    )
    zmax = np.asarray(instance.zmax, dtype=float)
    finite = np.isfinite(zmax)
    if np.all(finite):
        capacity = counts @ zmax
        demand = np.minimum(demand, cap_fraction * capacity)

    out = instance.with_demand(demand, name=target)
    if not np.array_equal(counts, np.stack([instance.counts_at(t) for t in range(T)])):
        out = out.with_counts(counts, name=target)
    prices = np.array([plan.price_factor_at(t) for t in range(T)])
    if np.any(prices != 1.0):
        out = out.with_price_profile(prices, name=target)
    return out
