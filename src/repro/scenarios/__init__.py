"""Declarative scenario registry and plan compiler.

This package makes every experiment *addressable*: a scenario is a registered
family name plus a JSON-safe parameter dict and one seed
(:class:`ScenarioSpec`), materialised lazily into a
:class:`~repro.core.instance.ProblemInstance` through the registry
(:func:`build`).  A plan file selecting ``{scenarios, algorithms, offline}``
compiles into the sweep engine's :class:`~repro.exp.engine.SweepPlan`
(:func:`compile_plan` / :func:`load_plan`) with instances built *inside*
worker shards — specs, not tensors, cross process boundaries.

Layering: ``workloads`` (generators) → ``scenarios`` (this package: names,
validation, lazy materialisation) → ``exp`` (execution) → ``analysis``/CLI.
See ``docs/ARCHITECTURE.md``.
"""

from . import families  # noqa: F401  — registers the built-in families on import
from .compiler import compile_plan, load_plan, scenario_specs
from .registry import (
    ScenarioError,
    ScenarioFamily,
    ScenarioParamError,
    UnknownScenarioError,
    build,
    describe,
    family,
    names,
    register,
    validate,
)
from .spec import ScenarioSpec

__all__ = [
    "ScenarioError",
    "ScenarioFamily",
    "ScenarioParamError",
    "ScenarioSpec",
    "UnknownScenarioError",
    "build",
    "compile_plan",
    "describe",
    "family",
    "load_plan",
    "names",
    "register",
    "scenario_specs",
    "validate",
]
